// Dynamics lab -- convergence behaviour and the paper's non-convergence
// results, live.
//
// Three demonstrations:
//  (1) scheduler comparison: how fast best-response dynamics converge under
//      round-robin / random / max-gain activation across model classes;
//  (2) Theorem 17: the verified best-response cycle on the paper's exact
//      Figure 8 point set, replayed move by move;
//  (3) Theorem 14: an exhaustively certified improving-move cycle on a tree
//      metric (the witness that the game admits no potential function).
#include <iostream>

#include "constructions/cycle_instances.hpp"
#include "core/dynamics.hpp"
#include "core/fip.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace gncg;

int main() {
  // (1) Scheduler comparison.
  print_banner(std::cout, "1 | Convergence under different schedulers");
  ConsoleTable conv({"model", "scheduler", "converged", "avg moves",
                     "max moves"});
  Rng rng(3);
  const struct {
    const char* name;
    SchedulerKind kind;
  } schedulers[] = {{"round-robin", SchedulerKind::kRoundRobin},
                    {"random", SchedulerKind::kRandomOrder},
                    {"max-gain", SchedulerKind::kMaxGain}};
  for (int flavor = 0; flavor < 2; ++flavor) {
    const std::string model = flavor == 0 ? "M-GNCG (n=8)" : "1-2-GNCG (n=8)";
    for (const auto& sched : schedulers) {
      RunningStats moves;
      int converged = 0;
      for (int trial = 0; trial < 5; ++trial) {
        const Game game(flavor == 0 ? random_metric_host(8, rng)
                                    : random_one_two_host(8, 0.5, rng),
                        1.0);
        DynamicsOptions options;
        options.rule = MoveRule::kBestSingleMove;
        options.scheduler = sched.kind;
        options.max_moves = 5000;
        options.seed = rng();
        const auto run = run_dynamics(game, random_profile(game, rng), options);
        converged += run.converged ? 1 : 0;
        moves.add(static_cast<double>(run.moves));
      }
      conv.begin_row()
          .add(model)
          .add(sched.name)
          .add(std::to_string(converged) + "/5")
          .add(moves.mean(), 1)
          .add(moves.max(), 0);
    }
  }
  conv.print(std::cout);

  // (2) Theorem 17 best-response cycle on the paper's points.
  print_banner(std::cout, "2 | Theorem 17: best-response cycle, Figure 8 points");
  const auto plane = search_theorem17_cycle({1.0}, 24, 777);
  if (plane.found) {
    const Game game(HostGraph::from_points(theorem17_points(), 1.0), 1.0);
    const bool verified = verify_improvement_cycle(
        game, plane.analysis.cycle_start, plane.analysis.cycle, true);
    std::cout << "cycle of " << plane.analysis.cycle.size()
              << " best-response moves, replay verified: "
              << (verified ? "yes" : "NO") << "\n";
    for (const auto& step : plane.analysis.cycle)
      std::cout << "  agent a" << step.agent << ": cost "
                << format_double(step.old_cost, 3) << " -> "
                << format_double(step.new_cost, 3) << "\n";
    std::cout << "Best-response dynamics on this instance never stabilize -- "
                 "the Rd-GNCG\nwith the 1-norm has no finite improvement "
                 "property (Theorem 17).\n";
  } else {
    std::cout << "no cycle found within budget (raise attempts)\n";
  }

  // (3) Theorem 14 improving-move cycle on a tree metric.
  print_banner(std::cout, "3 | Theorem 14: improving-move cycle, tree metric");
  const auto tree_cycle = find_tree_fip_violation(4, 100, 12345, 1.0);
  if (tree_cycle.found) {
    std::cout << "tree edges:";
    for (const auto& e : tree_cycle.tree->edges())
      std::cout << "  (" << e.u << "," << e.v << ") w="
                << format_double(e.weight, 2);
    std::cout << "\ncycle of " << tree_cycle.analysis.cycle.size()
              << " improving moves (exhaustively certified):\n";
    for (const auto& step : tree_cycle.analysis.cycle) {
      std::cout << "  agent " << step.agent << ": {";
      bool first = true;
      step.new_strategy.for_each([&](int v) {
        std::cout << (first ? "" : ",") << v;
        first = false;
      });
      std::cout << "}  cost " << format_double(step.old_cost, 2) << " -> "
                << format_double(step.new_cost, 2) << "\n";
    }
    std::cout << "No ordinal potential function can exist for the T-GNCG "
                 "(Theorem 14).\n";
  }
  return 0;
}
