// Dynamics lab -- convergence behaviour and the paper's non-convergence
// results, live.
//
// Four demonstrations:
//  (1) scheduler comparison: how fast best-single-move dynamics converge
//      under the five activation schedulers, as thin run_restarts calls --
//      every scheduler faces the identical start profiles (same restart
//      label), and the statistics come straight from the RestartReport;
//  (2) the StepObserver API: a gain trace streamed live from one run;
//  (3) Theorem 17: the verified best-response cycle on the paper's exact
//      Figure 8 point set, replayed move by move;
//  (4) Theorem 14: an exhaustively certified improving-move cycle on a tree
//      metric (the witness that the game admits no potential function).
#include <iostream>

#include "constructions/cycle_instances.hpp"
#include "core/dynamics.hpp"
#include "core/fip.hpp"
#include "core/restarts.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace gncg;

namespace {

/// Observer demo: prints the first few step gains as they stream.
class GainPrinter final : public StepObserver {
 public:
  explicit GainPrinter(std::size_t limit) : limit_(limit) {}

  void on_step(const DynamicsStep& step, std::uint64_t move_index) override {
    if (move_index > limit_) return;
    std::cout << "  step " << move_index << ": agent " << step.agent
              << " gains " << format_double(step.old_cost - step.new_cost, 3)
              << "\n";
  }
  void on_run_end(const DynamicsResult& result) override {
    std::cout << "  ... " << result.moves << " moves total, mean gain "
              << format_double(result.step_gains.mean(), 3) << " (from "
              << result.step_gains.count() << " streamed steps)\n";
  }

 private:
  std::size_t limit_;
};

}  // namespace

int main() {
  // (1) Scheduler comparison over the restart driver.
  print_banner(std::cout, "1 | Convergence under the five schedulers");
  ConsoleTable conv({"model", "scheduler", "converged", "avg moves",
                     "median", "max moves"});
  Rng rng(3);
  const SchedulerKind schedulers[] = {
      SchedulerKind::kRoundRobin, SchedulerKind::kRandomOrder,
      SchedulerKind::kMaxGain, SchedulerKind::kFairnessBounded,
      SchedulerKind::kSoftmaxGain};
  for (int flavor = 0; flavor < 2; ++flavor) {
    const std::string model = flavor == 0 ? "M-GNCG (n=8)" : "1-2-GNCG (n=8)";
    const Game game(flavor == 0 ? random_metric_host(8, rng)
                                : random_one_two_host(8, 0.5, rng),
                    1.0);
    for (const auto scheduler : schedulers) {
      RestartOptions options;
      options.restarts = 5;
      options.seed = 3;
      // One label for all schedulers: every row faces identical starts.
      options.label = "dynamics_lab";
      options.dynamics.rule = MoveRule::kBestSingleMove;
      options.dynamics.scheduler = scheduler;
      options.dynamics.max_moves = 5000;
      const RestartReport report = run_restarts(game, options);
      SampleStats moves;
      for (const auto& run : report.runs)
        moves.add(static_cast<double>(run.result.moves));
      conv.begin_row()
          .add(model)
          .add(std::string(scheduler_name(scheduler)))
          .add(std::to_string(report.converged) + "/5")
          .add(moves.mean(), 1)
          .add(moves.median(), 1)
          .add(moves.max(), 0);
    }
  }
  conv.print(std::cout);

  // (2) Observer API: stream one run's gains.
  print_banner(std::cout, "2 | StepObserver: live gain trace (max-gain)");
  {
    const Game game(random_metric_host(8, rng), 1.0);
    GainPrinter printer(/*limit=*/6);
    DynamicsOptions options;
    options.rule = MoveRule::kBestSingleMove;
    options.scheduler = SchedulerKind::kMaxGain;
    options.max_moves = 5000;
    options.observer = &printer;
    Rng start_rng(17);
    run_dynamics(game, random_profile(game, start_rng), options);
  }

  // (3) Theorem 17 best-response cycle on the paper's points.
  print_banner(std::cout, "3 | Theorem 17: best-response cycle, Figure 8 points");
  const auto plane = search_theorem17_cycle({1.0}, 24, 8);
  if (plane.found) {
    const Game game(HostGraph::from_points(theorem17_points(), 1.0), 1.0);
    const bool verified = verify_improvement_cycle(
        game, plane.analysis.cycle_start, plane.analysis.cycle, true);
    std::cout << "cycle of " << plane.analysis.cycle.size()
              << " best-response moves, replay verified: "
              << (verified ? "yes" : "NO") << "\n";
    for (const auto& step : plane.analysis.cycle)
      std::cout << "  agent a" << step.agent << ": cost "
                << format_double(step.old_cost, 3) << " -> "
                << format_double(step.new_cost, 3) << "\n";
    std::cout << "Best-response dynamics on this instance never stabilize -- "
                 "the Rd-GNCG\nwith the 1-norm has no finite improvement "
                 "property (Theorem 17).\n";
  } else {
    std::cout << "no cycle found within budget (raise attempts)\n";
  }

  // (4) Theorem 14 improving-move cycle on a tree metric.
  print_banner(std::cout, "4 | Theorem 14: improving-move cycle, tree metric");
  const auto tree_cycle = find_tree_fip_violation(4, 100, 12345, 1.0);
  if (tree_cycle.found) {
    std::cout << "tree edges:";
    for (const auto& e : tree_cycle.tree->edges())
      std::cout << "  (" << e.u << "," << e.v << ") w="
                << format_double(e.weight, 2);
    std::cout << "\ncycle of " << tree_cycle.analysis.cycle.size()
              << " improving moves (exhaustively certified):\n";
    for (const auto& step : tree_cycle.analysis.cycle) {
      std::cout << "  agent " << step.agent << ": {";
      bool first = true;
      step.new_strategy.for_each([&](int v) {
        std::cout << (first ? "" : ",") << v;
        first = false;
      });
      std::cout << "}  cost " << format_double(step.old_cost, 2) << " -> "
                << format_double(step.new_cost, 2) << "\n";
    }
    std::cout << "No ordinal potential function can exist for the T-GNCG "
                 "(Theorem 14).\n";
  }
  return 0;
}
