// PoA explorer -- a small CLI over the equilibrium-search machinery.
//
// Usage:
//   poa_explorer [model] [n] [alpha] [seeds]
//     model : one-two | one-inf | tree | plane | metric | general (default
//             metric)
//     n     : number of agents (default 5; exact enumeration needs n <= 5)
//     alpha : edge price factor (default 1.0)
//     seeds : number of random instances (default 3)
//
// For each sampled instance the tool reports the exact (or sampled) Price
// of Anarchy and Stability next to the paper's bound for that model class.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/equilibrium_search.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/table.hpp"

using namespace gncg;

namespace {

Game sample_game(const std::string& model, int n, double alpha, Rng& rng) {
  if (model == "one-two") return Game(random_one_two_host(n, 0.5, rng), alpha);
  if (model == "one-inf")
    return Game(random_one_inf_host(n, 0.6, rng), alpha);
  if (model == "tree")
    return Game(HostGraph::from_tree(random_tree(n, rng, 1.0, 8.0)), alpha);
  if (model == "plane")
    return Game(HostGraph::from_points(uniform_points(n, 2, 10.0, rng), 2.0),
                alpha);
  if (model == "general") return Game(random_general_host(n, rng), alpha);
  return Game(random_metric_host(n, rng), alpha);
}

double paper_bound(const std::string& model, double alpha) {
  if (model == "general" || model == "one-inf")
    return paper::general_poa_upper(alpha);
  return paper::metric_poa(alpha);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "metric";
  const int n = argc > 2 ? std::atoi(argv[2]) : 5;
  const double alpha = argc > 3 ? std::atof(argv[3]) : 1.0;
  const int seeds = argc > 4 ? std::atoi(argv[4]) : 3;
  if (n < 2 || alpha <= 0.0 || seeds < 1) {
    std::cerr << "usage: poa_explorer [one-two|one-inf|tree|plane|metric|"
                 "general] [n>=2] [alpha>0] [seeds>=1]\n";
    return 1;
  }
  const bool exact = n <= 5;

  print_banner(std::cout, "PoA explorer: " + model + ", n=" +
                              std::to_string(n) + ", alpha=" +
                              format_double(alpha, 2));
  std::cout << (exact ? "mode: exhaustive NE enumeration + exact optimum\n"
                      : "mode: sampled dynamics + heuristic optimum (n > 5)\n");

  ConsoleTable table({"seed", "#NE", "OPT cost", "PoA", "PoS", "paper bound",
                      "bound holds"});
  Rng rng(20190416);
  for (int seed = 0; seed < seeds; ++seed) {
    const Game game = sample_game(model, n, alpha, rng);
    EquilibriumSet equilibria;
    double opt_cost = 0.0;
    if (exact) {
      equilibria = enumerate_nash_equilibria(game);
      opt_cost = exact_social_optimum(game).cost.total();
    } else {
      SamplingOptions options;
      options.attempts = 20;
      options.seed = rng();
      options.verify_exact_ne = n <= 9;
      equilibria = sample_equilibria(game, options);
      opt_cost = local_search_optimum(game).cost.total();
    }
    const auto estimate = estimate_poa(equilibria, opt_cost, exact);
    table.begin_row()
        .add(seed)
        .add(static_cast<long long>(equilibria.profiles.size()))
        .add(opt_cost, 3)
        .add(estimate.poa, 4)
        .add(estimate.pos, 4)
        .add(paper_bound(model, alpha), 4)
        .add(equilibria.empty()
                 ? "no NE found"
                 : (estimate.poa <= paper_bound(model, alpha) + 1e-6
                        ? "yes"
                        : "NO"));
  }
  table.print(std::cout);
  return 0;
}
