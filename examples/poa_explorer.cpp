// PoA explorer -- a small CLI over the equilibrium-search machinery.
//
// Two modes:
//
// 1. Table mode (positional args, the original interface):
//      poa_explorer [model] [n] [alpha] [seeds]
//        model : one-two | one-inf | tree | plane | metric | general
//                (default metric)
//        n     : number of agents (default 5; exact enumeration needs n <= 5)
//        alpha : edge price factor (default 1.0)
//        seeds : number of random instances (default 3)
//    For each sampled instance the tool reports the exact (or sampled) Price
//    of Anarchy and Stability next to the paper's bound for that model class.
//
// 2. Sweep mode (flag args): scriptable large-n runs, one JSONL record per
//    dynamics round on stdout -- a thin wrapper over the sweep subsystem's
//    `br_dynamics` scenario (src/sweep/, `sweep_runner` is the full CLI).
//      poa_explorer --host <dense|lazy|euclidean|tree> --n <agents>
//                   --seed <seed> [--alpha a] [--rounds r] [--agents k]
//    Per round, the sweep scans `k` evenly spaced agents with the deviation
//    engine's exact best-single-move, applies the improving moves, and
//    emits {host, n, seed, alpha, round, social_cost, agents_scanned,
//    agents_improved, construct_ms, elapsed_ms} -- the same record schema
//    as before the subsystem existed.  The RNG stream now derives from the
//    job identity via stream_seed (uncorrelated across seeds), so recorded
//    values differ from pre-subsystem runs of the same --seed; flags and
//    schema are unchanged.  Euclidean and tree hosts run implicitly (no
//    O(n^2) matrix), so n in the thousands is fine:
//      poa_explorer --host euclidean --n 4096 --seed 7 --rounds 3
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/equilibrium_search.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/table.hpp"
#include "sweep/runner.hpp"

using namespace gncg;

namespace {

Game sample_game(const std::string& model, int n, double alpha, Rng& rng) {
  if (model == "one-two") return Game(random_one_two_host(n, 0.5, rng), alpha);
  if (model == "one-inf")
    return Game(random_one_inf_host(n, 0.6, rng), alpha);
  if (model == "tree")
    return Game(HostGraph::from_tree(random_tree(n, rng, 1.0, 8.0)), alpha);
  if (model == "plane")
    return Game(HostGraph::from_points(uniform_points(n, 2, 10.0, rng), 2.0),
                alpha);
  if (model == "general") return Game(random_general_host(n, rng), alpha);
  return Game(random_metric_host(n, rng), alpha);
}

double paper_bound(const std::string& model, double alpha) {
  if (model == "general" || model == "one-inf")
    return paper::general_poa_upper(alpha);
  return paper::metric_poa(alpha);
}

int table_mode(const std::string& model, int n, double alpha, int seeds) {
  const bool exact = n <= 5;

  print_banner(std::cout, "PoA explorer: " + model + ", n=" +
                              std::to_string(n) + ", alpha=" +
                              format_double(alpha, 2));
  std::cout << (exact ? "mode: exhaustive NE enumeration + exact optimum\n"
                      : "mode: sampled dynamics + heuristic optimum (n > 5)\n");

  ConsoleTable table({"seed", "#NE", "OPT cost", "PoA", "PoS", "paper bound",
                      "bound holds"});
  Rng rng(20190416);
  for (int seed = 0; seed < seeds; ++seed) {
    const Game game = sample_game(model, n, alpha, rng);
    EquilibriumSet equilibria;
    double opt_cost = 0.0;
    if (exact) {
      equilibria = enumerate_nash_equilibria(game);
      opt_cost = exact_social_optimum(game).cost.total();
    } else {
      SamplingOptions options;
      options.attempts = 20;
      options.seed = rng();
      options.verify_exact_ne = n <= 9;
      equilibria = sample_equilibria(game, options);
      opt_cost = local_search_optimum(game).cost.total();
    }
    const auto estimate = estimate_poa(equilibria, opt_cost, exact);
    table.begin_row()
        .add(seed)
        .add(static_cast<long long>(equilibria.profiles.size()))
        .add(opt_cost, 3)
        .add(estimate.poa, 4)
        .add(estimate.pos, 4)
        .add(paper_bound(model, alpha), 4)
        .add(equilibria.empty()
                 ? "no NE found"
                 : (estimate.poa <= paper_bound(model, alpha) + 1e-6
                        ? "yes"
                        : "NO"));
  }
  table.print(std::cout);
  return 0;
}

// --- sweep (JSONL) mode ---------------------------------------------------

struct SweepOptions {
  std::string host = "euclidean";
  int n = 1024;
  std::uint64_t seed = 1;
  double alpha = 1.0;
  int rounds = 3;
  int agents = 64;  ///< agents scanned per round (evenly spaced)
};

/// One-job plan over the registered br_dynamics scenario: the flags map
/// onto the plan axes (--seed becomes the replicate seed value) and the
/// per-round rows come back from the runner.
int sweep_mode(const SweepOptions& options) {
  if (options.host != "dense" && options.host != "lazy" &&
      options.host != "euclidean" && options.host != "tree") {
    std::cerr << "unknown --host " << options.host
              << " (want dense|lazy|euclidean|tree)\n";
    return 1;
  }
  if (options.n < 2 || options.alpha <= 0.0 || options.rounds < 1 ||
      options.agents < 1) {
    std::cerr << "invalid sweep options (need n>=2, alpha>0, rounds>=1, "
                 "agents>=1)\n";
    return 1;
  }

  SweepPlan plan;
  plan.scenarios = {"br_dynamics"};
  plan.hosts = {options.host};
  plan.ns = {options.n};
  plan.alphas = {options.alpha};
  plan.seeds = 1;
  plan.seed_base = options.seed;
  plan.extras = {{"agents", static_cast<double>(options.agents)},
                 {"rounds", static_cast<double>(options.rounds)}};
  const SweepReport report = run_sweep(plan);

  for (const ScenarioRow& row : report.outcomes.front().result.rows) {
    std::printf(
        "{\"host\":\"%s\",\"n\":%d,\"seed\":%llu,\"alpha\":%.17g,"
        "\"round\":%d,\"social_cost\":%.17g,\"agents_scanned\":%d,"
        "\"agents_improved\":%d,\"construct_ms\":%.3f,\"elapsed_ms\":%.3f}\n",
        options.host.c_str(), options.n,
        static_cast<unsigned long long>(options.seed), options.alpha,
        static_cast<int>(row.metric_or_nan("round")),
        row.metric_or_nan("social_cost"),
        static_cast<int>(row.metric_or_nan("agents_scanned")),
        static_cast<int>(row.metric_or_nan("agents_improved")),
        row.metric_or_nan("construct_ms"), row.metric_or_nan("elapsed_ms"));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Flag mode: any --option switches to the JSONL sweep.
  bool sweep = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--", 0) == 0) sweep = true;

  if (sweep) {
    const auto sweep_usage = [] {
      std::cerr << "usage: poa_explorer --host <dense|lazy|euclidean|tree> "
                   "--n <agents> --seed <seed> [--alpha a] [--rounds r] "
                   "[--agents k]\n";
    };
    SweepOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--help" || flag == "-h") {
        sweep_usage();
        return 0;
      }
      if (i + 1 >= argc) {
        std::cerr << "flag " << flag << " is missing its value\n";
        sweep_usage();
        return 1;
      }
      const std::string value = argv[++i];
      if (flag == "--host") options.host = value;
      else if (flag == "--n") options.n = std::atoi(value.c_str());
      else if (flag == "--seed")
        options.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      else if (flag == "--alpha") options.alpha = std::atof(value.c_str());
      else if (flag == "--rounds") options.rounds = std::atoi(value.c_str());
      else if (flag == "--agents") options.agents = std::atoi(value.c_str());
      else {
        std::cerr << "unknown flag " << flag << "\n";
        sweep_usage();
        return 1;
      }
    }
    return sweep_mode(options);
  }

  const std::string model = argc > 1 ? argv[1] : "metric";
  const int n = argc > 2 ? std::atoi(argv[2]) : 5;
  const double alpha = argc > 3 ? std::atof(argv[3]) : 1.0;
  const int seeds = argc > 4 ? std::atoi(argv[4]) : 3;
  if (n < 2 || alpha <= 0.0 || seeds < 1) {
    std::cerr << "usage: poa_explorer [one-two|one-inf|tree|plane|metric|"
                 "general] [n>=2] [alpha>0] [seeds>=1]\n"
              << "   or: poa_explorer --host <dense|lazy|euclidean|tree> "
                 "--n <agents> --seed <seed>  (JSONL sweep mode)\n";
    return 1;
  }
  return table_mode(model, n, alpha, seeds);
}
