// Fiber-optic backbone scenario -- the paper's motivating application.
//
// Sixteen German cities (approximate plane coordinates in units of 10 km)
// play the geometric network creation game: each city is an ISP that buys
// fiber links at alpha times their length and wants low latency (summed
// distance) to everyone.  Sweeping alpha shows the paper's structural
// trade-off live: cheap edges (small alpha) produce dense, near-clique
// networks; expensive edges (large alpha) drive the equilibrium towards
// trees, and the equilibrium/optimum gap stays within (alpha+2)/2.
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/social_optimum.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "support/table.hpp"

using namespace gncg;

int main() {
  // City coordinates roughly follow the map (x east, y north, ~10 km units).
  struct City {
    const char* name;
    double x, y;
  };
  const std::vector<City> cities = {
      {"Hamburg", 22.0, 72.0},   {"Bremen", 14.0, 65.0},
      {"Berlin", 52.0, 58.0},    {"Hannover", 24.0, 55.0},
      {"Magdeburg", 40.0, 54.0}, {"Essen", 4.0, 44.0},
      {"Kassel", 22.0, 42.0},    {"Leipzig", 46.0, 44.0},
      {"Dresden", 58.0, 40.0},   {"Cologne", 2.0, 36.0},
      {"Frankfurt", 14.0, 28.0}, {"Wuerzburg", 26.0, 24.0},
      {"Nuremberg", 36.0, 18.0}, {"Stuttgart", 18.0, 10.0},
      {"Munich", 36.0, 2.0},     {"Freiburg", 8.0, 0.0},
  };
  PointSet points(static_cast<int>(cities.size()), 2);
  for (int i = 0; i < points.size(); ++i) {
    points.set_coord(i, 0, cities[static_cast<std::size_t>(i)].x);
    points.set_coord(i, 1, cities[static_cast<std::size_t>(i)].y);
  }
  const HostGraph host = HostGraph::from_points(points, 2.0);

  print_banner(std::cout, "Fiber backbone: 16 German cities, alpha sweep");
  ConsoleTable table({"alpha", "moves", "edges", "tree?", "diameter",
                      "edge cost", "distance cost", "vs OPT heuristic",
                      "paper bound (a+2)/2"});
  for (double alpha : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    const Game game(host, alpha);
    Rng rng(7 + static_cast<std::uint64_t>(alpha * 4));
    DynamicsOptions options;
    // UMFL-approximate responses keep n = 16 dynamics fast; finish with
    // single-move polishing so the outcome is at least greedy-stable.
    options.rule = MoveRule::kUmflResponse;
    options.max_moves = 250;  // approx responses may wander; cap the phase
    auto run = run_dynamics(game, random_profile(game, rng), options);
    DynamicsOptions polish;
    polish.rule = MoveRule::kBestSingleMove;
    polish.max_moves = 3000;
    run = run_dynamics(game, run.final_profile, polish);

    const auto& profile = run.final_profile;
    const auto network = built_graph(game, profile);
    const auto cost = social_cost_breakdown(game, profile);
    const auto opt = local_search_optimum(game);
    table.begin_row()
        .add(alpha, 2)
        .add(static_cast<long long>(run.moves))
        .add(network.edge_count())
        .add(is_tree(network))
        .add(diameter(network), 1)
        .add(cost.edge_cost, 1)
        .add(cost.dist_cost, 1)
        .add(cost.total() / opt.cost.total(), 4)
        .add((alpha + 2.0) / 2.0, 2);
  }
  table.print(std::cout);

  // Show one concrete equilibrium topology for the high-alpha regime.
  const double alpha = 64.0;
  const Game game(host, alpha);
  Rng rng(99);
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.max_moves = 8000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  std::cout << "\nGreedy-stable backbone at alpha = 64 (owner -> target):\n";
  for (int u = 0; u < game.node_count(); ++u) {
    run.final_profile.strategy(u).for_each([&](int v) {
      std::cout << "  " << cities[static_cast<std::size_t>(u)].name << " -> "
                << cities[static_cast<std::size_t>(v)].name << "  ("
                << format_double(game.weight(u, v) * 10.0, 0) << " km)\n";
    });
  }
  std::cout << "\nReading: low alpha buys near-cliques (latency-optimal),\n"
               "high alpha collapses the equilibrium into sparse tree-like\n"
               "backbones -- the decentralized Network Design trade-off the\n"
               "paper models.\n";
  return 0;
}
