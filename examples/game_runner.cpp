// game_runner -- file-driven game solving (the batch/scripting interface).
//
// Usage:
//   game_runner <host-file> <alpha> [--rule br|single|umfl] [--seed S]
//               [--out profile.txt] [--dot equilibrium.dot]
//
// Reads a host graph in the gncg text format (see metric/instance_io.hpp),
// runs dynamics to an equilibrium, prints a report, and optionally writes
// the equilibrium profile and a Graphviz rendering.  With no host file
// argument, a demo instance is generated and its serialized form printed,
// so the tool is self-documenting:
//   game_runner --demo > host.txt && game_runner host.txt 2.0 --dot eq.dot
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "metric/instance_io.hpp"
#include "support/dot.hpp"
#include "support/table.hpp"

using namespace gncg;

namespace {

int run_demo() {
  Rng rng(7);
  const auto host = random_metric_host(8, rng);
  save_host(std::cout, host);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--demo") return run_demo();
  if (argc < 3) {
    std::cerr << "usage: game_runner <host-file> <alpha> [--rule br|single|"
                 "umfl] [--seed S] [--out profile.txt] [--dot file.dot]\n"
                 "       game_runner --demo   (prints a sample host file)\n";
    return 1;
  }
  const std::string host_path = argv[1];
  const double alpha = std::atof(argv[2]);
  MoveRule rule = MoveRule::kBestResponse;
  std::uint64_t seed = 1;
  std::string out_path, dot_path;
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--rule") {
      if (value == "single") rule = MoveRule::kBestSingleMove;
      else if (value == "umfl") rule = MoveRule::kUmflResponse;
      else if (value != "br") {
        std::cerr << "unknown rule: " << value << "\n";
        return 1;
      }
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--out") {
      out_path = value;
    } else if (flag == "--dot") {
      dot_path = value;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return 1;
    }
  }

  std::ifstream host_file(host_path);
  if (!host_file) {
    std::cerr << "cannot open " << host_path << "\n";
    return 1;
  }
  const HostGraph host = load_host(host_file);
  const Game game(host, alpha);
  std::cout << "host: " << host.node_count() << " nodes, detected class "
            << model_name(host.classify()) << "\n";

  Rng rng(seed);
  DynamicsOptions options;
  options.rule = rule;
  options.max_moves = 20000;
  options.seed = rng();
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  std::cout << "dynamics: "
            << (run.converged
                    ? "converged"
                    : (run.cycle_found ? "cycle detected" : "move budget hit"))
            << " after " << run.moves << " moves\n";

  const auto& profile = run.final_profile;
  const auto cost = social_cost_breakdown(game, profile);
  const auto network = built_graph(game, profile);
  std::cout << "result: " << network.edge_count() << " edges, "
            << (is_tree(network) ? "tree" : "non-tree") << ", social cost "
            << format_double(cost.total(), 3) << " (edges "
            << format_double(cost.edge_cost, 3) << " + distances "
            << format_double(cost.dist_cost, 3) << ")\n";
  if (game.node_count() <= 12)
    std::cout << "exact NE: "
              << (is_nash_equilibrium(game, profile) ? "yes" : "no") << "\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    save_profile(out, profile);
    std::cout << "profile written to " << out_path << "\n";
  }
  if (!dot_path.empty()) {
    std::ofstream dot(dot_path);
    write_dot(dot, game, profile);
    std::cout << "DOT written to " << dot_path << "\n";
  }
  return 0;
}
