// Quickstart: the library in ~60 lines.
//
//   1. Place agents as points in the plane (a geometric host graph).
//   2. Pick the edge-price parameter alpha.
//   3. Run best-response dynamics to an equilibrium.
//   4. Inspect the equilibrium: cost split, structure, stability, and how
//      far it is from the social optimum (the Price of Anarchy sample).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/social_optimum.hpp"
#include "core/spanner_bounds.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "support/table.hpp"

using namespace gncg;

int main() {
  // 1. Twelve agents at fixed planar coordinates, Euclidean distances.
  const PointSet cities({{0, 0},  {4, 1},  {1, 5},  {6, 4},  {9, 1},  {3, 9},
                         {8, 7},  {12, 3}, {11, 9}, {2, 12}, {7, 12}, {13, 12}});
  const HostGraph host = HostGraph::from_points(cities, /*p=*/2.0);

  // 2. alpha trades edge price against distance cost.
  const double alpha = 3.0;
  const Game game(host, alpha);

  // 3. Best-response dynamics from a random connected profile.
  Rng rng(2019);
  DynamicsOptions options;
  options.rule = MoveRule::kBestResponse;
  options.max_moves = 5000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  std::cout << "dynamics: " << (run.converged ? "converged" : "stopped")
            << " after " << run.moves << " moves in " << run.rounds
            << " rounds\n";

  // 4. Inspect the outcome.
  const auto& equilibrium = run.final_profile;
  const auto cost = social_cost_breakdown(game, equilibrium);
  const auto network = built_graph(game, equilibrium);
  std::cout << "equilibrium: " << network.edge_count() << " edges, "
            << (is_tree(network) ? "a tree" : "not a tree")
            << ", diameter " << format_double(diameter(network), 2) << "\n";
  std::cout << "social cost: " << format_double(cost.total(), 2) << "  (edges "
            << format_double(cost.edge_cost, 2) << " + distances "
            << format_double(cost.dist_cost, 2) << ")\n";
  std::cout << "stability : exact NE? "
            << (is_nash_equilibrium(game, equilibrium) ? "yes" : "no")
            << ", host stretch "
            << format_double(profile_stretch(game, equilibrium), 3)
            << " (Lemma 1 bound " << format_double(alpha + 1.0, 1) << ")\n";

  // Compare with a social-optimum heuristic (exact OPT is exponential).
  const auto heuristic = local_search_optimum(game);
  std::cout << "optimum (local-search heuristic): "
            << format_double(heuristic.cost.total(), 2)
            << "  -> equilibrium / optimum = "
            << format_double(cost.total() / heuristic.cost.total(), 4)
            << "  (paper bound (alpha+2)/2 = "
            << format_double((alpha + 2.0) / 2.0, 2) << ")\n";
  return 0;
}
