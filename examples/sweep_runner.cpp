// sweep_runner -- the sweep orchestrator CLI.
//
// Expands a scenario x grid plan, executes it on the worker pool with
// journaled checkpointing, and emits aggregated results.
//
//   sweep_runner --list
//       Print every registered scenario with its description, supported
//       host backends and extra parameters.
//
//   sweep_runner --scenario a,b,... [grid flags] [output flags]
//     grid flags:
//       --host dense,euclidean,tree   host backend kinds   (default dense)
//       --n 5,6,8                     size axis            (default 5)
//       --alpha 0.5,1.0               price factors        (default 1.0)
//       --p 2.0                       p-norms, euclidean   (default 2.0)
//       --seeds 3                     replicates per cell  (default 1)
//       --seed-base 0                 first replicate seed (default 0)
//       --set key=value[,key=value]   scenario extras (e.g. rounds=5)
//       --threads 4                   worker threads (0 = hardware)
//     output flags:
//       --journal sweep.jsonl         checkpoint journal (JSONL)
//       --resume                      skip jobs already in the journal
//       --metrics metrics.jsonl       per-job kernel counters (JSONL; pins
//                                     each job to one thread so records are
//                                     thread-count invariant)
//       --trace trace.json            Chrome trace-event spans (load in
//                                     chrome://tracing / ui.perfetto.dev)
//       --out results.jsonl           canonical records, sorted by point
//       --summary summary.jsonl       per-(group, metric) statistics
//       --csv summary.csv             the summary as CSV
//       --table                       print the summary table to stdout
//       --quiet                       no per-job progress on stderr
//
//   sweep_runner --dump-host <point-index> <file> --scenario ... [grid]
//       Rebuild the host instance job <point-index> played on and save it
//       with x-scenario/x-point/x-stream provenance (instance_io format).
//
// Determinism contract: every job's RNG stream is derived from (scenario,
// point_index, seed), so any thread count and any execution order produce
// byte-identical journal records; `sort`ing two journals of the same plan
// yields identical files.  A run killed mid-sweep resumes with --resume:
// completed records are never re-run and a truncated trailing line is
// discarded.  See README "Running sweeps".
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "metric/instance_io.hpp"
#include "support/table.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

using namespace gncg;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int list_scenarios() {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const std::string& name : registry.names()) {
    const Scenario& scenario = registry.at(name);
    std::cout << name << "\n  " << scenario.description() << "\n  hosts:";
    for (const auto& host : scenario.supported_hosts()) std::cout << ' ' << host;
    std::cout << "\n";
    for (const auto& param : scenario.params())
      std::cout << "  param " << param.name << " (default "
                << format_double(param.default_value, 4)
                << "): " << param.description << "\n";
    std::cout << "\n";
  }
  return 0;
}

int usage(int code) {
  std::cerr
      << "usage: sweep_runner --list\n"
         "   or: sweep_runner --scenario a,b [--host kinds] [--n list]\n"
         "       [--alpha list] [--p list] [--seeds k] [--seed-base s]\n"
         "       [--set k=v,...] [--threads t] [--journal file] [--resume]\n"
         "       [--metrics file] [--trace file]\n"
         "       [--out file] [--summary file] [--csv file] [--table]\n"
         "       [--quiet]\n"
         "   or: sweep_runner --dump-host <point> <file> --scenario ...\n"
         "see the header comment of examples/sweep_runner.cpp for details\n";
  return code;
}

struct CliOptions {
  SweepPlan plan;
  SweepRunnerOptions runner;
  std::string out_path;
  std::string summary_path;
  std::string csv_path;
  bool table = false;
  bool quiet = false;
  long long dump_point = -1;
  std::string dump_path;
};

bool parse_extras(const std::string& csv,
                  std::vector<std::pair<std::string, double>>& extras) {
  for (const std::string& item : split_list(csv)) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "--set wants key=value, got '" << item << "'\n";
      return false;
    }
    extras.emplace_back(item.substr(0, eq),
                        std::atof(item.c_str() + eq + 1));
  }
  return true;
}

int dump_host(const CliOptions& options) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  const auto points = options.plan.expand(registry);
  if (options.dump_point < 0 ||
      options.dump_point >= static_cast<long long>(points.size())) {
    std::cerr << "--dump-host point " << options.dump_point
              << " out of range (plan has " << points.size() << " jobs)\n";
    return 1;
  }
  const SweepPoint& point = points[static_cast<std::size_t>(options.dump_point)];
  Rng rng(point.rng_stream());
  const auto host = registry.at(point.scenario).build_host(point, rng);
  if (!host.has_value()) {
    std::cerr << "scenario " << point.scenario
              << " has no host-shaped instance to dump (closed-form "
                 "construction)\n";
    return 1;
  }
  std::ofstream out(options.dump_path);
  if (!out.is_open()) {
    std::cerr << "cannot open " << options.dump_path << "\n";
    return 1;
  }
  const HostProvenance provenance{point.scenario, point.point_index,
                                  point.rng_stream()};
  save_host(out, *host, &provenance);
  std::cerr << "wrote " << options.dump_path << " (scenario "
            << point.scenario << ", point " << point.point_index << ", host "
            << point.host << ", n " << point.n << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) return usage(1);

  CliOptions options;
  options.plan.hosts = {"dense"};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return usage(0);
    if (flag == "--list") return list_scenarios();
    if (flag == "--resume") {
      options.runner.resume = true;
      continue;
    }
    if (flag == "--table") {
      options.table = true;
      continue;
    }
    if (flag == "--quiet") {
      options.quiet = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "flag " << flag << " is missing its value\n";
      return usage(1);
    }
    const std::string value = argv[++i];
    if (flag == "--scenario") options.plan.scenarios = split_list(value);
    else if (flag == "--host") options.plan.hosts = split_list(value);
    else if (flag == "--n") {
      options.plan.ns.clear();
      for (const auto& item : split_list(value))
        options.plan.ns.push_back(std::atoi(item.c_str()));
    } else if (flag == "--alpha") {
      options.plan.alphas.clear();
      for (const auto& item : split_list(value))
        options.plan.alphas.push_back(std::atof(item.c_str()));
    } else if (flag == "--p") {
      options.plan.norm_ps.clear();
      for (const auto& item : split_list(value))
        options.plan.norm_ps.push_back(std::atof(item.c_str()));
    } else if (flag == "--seeds") {
      options.plan.seeds = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--seed-base") {
      options.plan.seed_base = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--set") {
      if (!parse_extras(value, options.plan.extras)) return usage(1);
    } else if (flag == "--threads") {
      options.runner.threads =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (flag == "--journal") {
      options.runner.journal_path = value;
    } else if (flag == "--metrics") {
      options.runner.metrics_path = value;
    } else if (flag == "--trace") {
      options.runner.trace_path = value;
    } else if (flag == "--out") {
      options.out_path = value;
    } else if (flag == "--summary") {
      options.summary_path = value;
    } else if (flag == "--csv") {
      options.csv_path = value;
    } else if (flag == "--dump-host") {
      options.dump_point = std::atoll(value.c_str());
      if (i + 1 >= argc) {
        std::cerr << "--dump-host wants <point-index> <file>\n";
        return usage(1);
      }
      options.dump_path = argv[++i];
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return usage(1);
    }
  }

  if (options.plan.scenarios.empty()) {
    std::cerr << "--scenario is required (try --list)\n";
    return usage(1);
  }
  if (options.runner.resume && options.runner.journal_path.empty()) {
    std::cerr << "--resume needs --journal\n";
    return usage(1);
  }

  try {
    if (options.dump_point >= 0) return dump_host(options);

    if (!options.quiet) options.runner.progress = &std::cerr;
    const SweepReport report = run_sweep(options.plan, options.runner);

    if (!options.out_path.empty()) {
      std::ofstream out(options.out_path);
      if (!out.is_open()) {
        std::cerr << "cannot open " << options.out_path << "\n";
        return 1;
      }
      write_records_jsonl(out, report.outcomes);
    }

    const auto aggregates = aggregate_outcomes(report.outcomes);
    if (!options.summary_path.empty()) {
      std::ofstream out(options.summary_path);
      if (!out.is_open()) {
        std::cerr << "cannot open " << options.summary_path << "\n";
        return 1;
      }
      write_summary_jsonl(out, aggregates);
    }
    if (!options.csv_path.empty()) {
      std::ofstream out(options.csv_path);
      if (!out.is_open()) {
        std::cerr << "cannot open " << options.csv_path << "\n";
        return 1;
      }
      aggregate_table(aggregates).write_csv(out);
    }
    if (options.table) aggregate_table(aggregates).print(std::cout);

    std::cerr << "[sweep] " << report.outcomes.size() << " jobs ("
              << report.executed << " executed, " << report.resumed
              << " resumed) in " << format_double(report.elapsed_ms, 1)
              << " ms\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "sweep_runner: " << error.what() << "\n";
    return 1;
  }
}
