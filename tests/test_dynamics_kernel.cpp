// Tests for the dynamics kernel's state and orchestration layers:
// incremental Zobrist hashing vs the from-scratch reference, hashed cycle
// detection vs exact full-profile comparison (differential fuzz), the
// policy registry, the observer API, and the restart driver's thread-count
// determinism contract (1-vs-N byte-identical results, same probe style as
// tests/test_sweep.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/equilibrium_search.hpp"
#include "core/fip.hpp"
#include "core/restarts.hpp"
#include "core/transposition.hpp"
#include "constructions/cycle_instances.hpp"
#include "metric/host_graph.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

/// Restores the worker-pool width on scope exit.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(default_thread_count()) {}
  ~ThreadGuard() { set_default_thread_count(saved_); }

 private:
  std::size_t saved_;
};

/// Canonical byte serialization of one restart run (the cross-thread
/// equality probe: every field that could expose execution order).
std::string run_bytes(const RestartRun& run) {
  std::ostringstream os;
  os << run.stream << '|' << run.scheduler << '|'
     << run.result.converged << '|' << run.result.cycle_found << '|'
     << run.result.cycle_start << '|' << run.result.cycle_length << '|'
     << run.result.moves << '|' << run.result.rounds << '|'
     << run.cycle_verified << '|';
  const StrategyProfile& profile = run.result.final_profile;
  for (int u = 0; u < profile.node_count(); ++u) {
    os << 'a' << u << ':';
    profile.strategy(u).for_each([&](int v) { os << v << ','; });
  }
  os << '|' << run.result.step_gains.count() << '|'
     << run.result.step_gains.sum();
  return os.str();
}

// --- incremental Zobrist hashing ------------------------------------------

TEST(Zobrist, IncrementalEngineHashMatchesScratchReference) {
  Rng rng(4001);
  const Game game(random_metric_host(7, rng), 1.0);
  DeviationEngine engine(game, random_profile(game, rng));
  EXPECT_EQ(engine.profile_hash(), zobrist_profile_hash(engine.profile()));

  const int n = game.node_count();
  for (int step = 0; step < 400; ++step) {
    const int u = static_cast<int>(rng.uniform_below(n));
    int v = static_cast<int>(rng.uniform_below(n));
    if (v == u) v = (v + 1) % n;
    switch (rng.uniform_below(4)) {
      case 0: engine.add_buy(u, v); break;
      case 1: engine.remove_buy(u, v); break;
      case 2: {
        NodeSet strategy(n);
        for (int t = 0; t < n; ++t)
          if (t != u && rng.bernoulli(0.3)) strategy.insert(t);
        engine.set_strategy(u, std::move(strategy));
        break;
      }
      default: engine.set_profile(random_profile(game, rng)); break;
    }
    ASSERT_EQ(engine.profile_hash(), zobrist_profile_hash(engine.profile()))
        << "mutation step " << step;
  }
}

TEST(Zobrist, DoubleOwnershipChangesTheHash) {
  // Ownership-only mutations leave the topology (and distance caches)
  // alone but MUST change the hash: the profiles differ.
  Rng rng(4003);
  const Game game(random_metric_host(5, rng), 1.0);
  StrategyProfile profile(5);
  profile.add_buy(0, 1);
  DeviationEngine engine(game, profile);
  const std::uint64_t before = engine.profile_hash();
  engine.add_buy(1, 0);  // double ownership: same topology, new profile
  EXPECT_NE(engine.profile_hash(), before);
  EXPECT_EQ(engine.profile_hash(), zobrist_profile_hash(engine.profile()));
  engine.remove_buy(1, 0);
  EXPECT_EQ(engine.profile_hash(), before);
}

// --- hashed revisit detection vs exact comparison (differential fuzz) -----

/// Exact reference detector: compares against every previous profile.
std::pair<std::size_t, std::size_t> naive_first_revisit(
    const std::vector<StrategyProfile>& trajectory) {
  for (std::size_t j = 1; j < trajectory.size(); ++j)
    for (std::size_t i = 0; i < j; ++i)
      if (trajectory[i] == trajectory[j]) return {i, j};
  return {TranspositionTable::npos, TranspositionTable::npos};
}

TEST(Transposition, HashedRevisitAgreesWithExactComparison) {
  Rng rng(4007);
  for (int trial = 0; trial < 12; ++trial) {
    const Game game(trial % 2 == 0
                        ? random_metric_host(6, rng)
                        : HostGraph::from_points(theorem17_points(), 1.0),
                    1.0);
    DynamicsOptions options;
    options.rule = trial % 2 == 0 ? MoveRule::kBestSingleMove
                                  : MoveRule::kBestResponse;
    options.scheduler = SchedulerKind::kRandomOrder;
    options.max_moves = 60;
    options.detect_cycles = false;  // record the raw trajectory
    options.seed = rng();
    const StrategyProfile start = random_profile(game, rng);
    const auto run = run_dynamics(game, start, options);

    // Reconstruct the visited profile sequence.
    std::vector<StrategyProfile> trajectory{start};
    for (const auto& step : run.steps) {
      StrategyProfile next = trajectory.back();
      next.set_strategy(step.agent, step.new_strategy);
      trajectory.push_back(std::move(next));
    }

    // Hashed detector over the same sequence.
    TranspositionTable table;
    std::size_t hashed_first = TranspositionTable::npos;
    std::size_t hashed_prev = TranspositionTable::npos;
    for (std::size_t j = 0; j < trajectory.size(); ++j) {
      const std::uint64_t hash = zobrist_profile_hash(trajectory[j]);
      const std::size_t slot = table.find(hash, trajectory[j]);
      if (slot != TranspositionTable::npos) {
        hashed_first = j;
        hashed_prev = static_cast<std::size_t>(table.value(slot));
        break;
      }
      table.insert(hash, trajectory[j], j);
    }

    const auto [naive_prev, naive_first] = naive_first_revisit(trajectory);
    EXPECT_EQ(hashed_first, naive_first) << "trial " << trial;
    EXPECT_EQ(hashed_prev, naive_prev) << "trial " << trial;

    // And the kernel's own detection stops at exactly that revisit.
    DynamicsOptions detecting = options;
    detecting.detect_cycles = true;
    const auto detected = run_dynamics(game, start, detecting);
    if (naive_first != TranspositionTable::npos &&
        naive_first <= options.max_moves) {
      EXPECT_TRUE(detected.cycle_found) << "trial " << trial;
      EXPECT_EQ(detected.moves, naive_first) << "trial " << trial;
      EXPECT_EQ(detected.cycle_start, naive_prev) << "trial " << trial;
    } else {
      EXPECT_FALSE(detected.cycle_found) << "trial " << trial;
    }
  }
}

// --- policy registry ------------------------------------------------------

TEST(PolicyRegistry, BuiltinsAreRegistered) {
  const auto& registry = DynamicsPolicyRegistry::instance();
  const auto schedulers = registry.scheduler_names();
  for (const char* expected : {"fairness_bounded", "max_gain", "parallel_mgm",
                               "random_order", "round_robin", "softmax_gain"})
    EXPECT_NE(std::find(schedulers.begin(), schedulers.end(), expected),
              schedulers.end())
        << expected;
  const auto rules = registry.rule_names();
  for (const char* expected : {"best_addition", "best_response",
                               "best_single_move", "umfl_response"})
    EXPECT_NE(std::find(rules.begin(), rules.end(), expected), rules.end())
        << expected;
}

TEST(PolicyRegistry, UnknownNamesContractFail) {
  const PolicyConfig config{/*node_count=*/4};
  EXPECT_THROW(DynamicsPolicyRegistry::instance().make_scheduler("nope",
                                                                 config),
               ContractViolation);
  EXPECT_THROW(DynamicsPolicyRegistry::instance().make_rule("nope", config),
               ContractViolation);
}

TEST(PolicyRegistry, NameOverridesResolveThroughRegistry) {
  Rng rng(4013);
  const Game game(HostGraph::unit(5), 3.0);
  DynamicsOptions options;
  options.rule_name = "best_single_move";
  options.scheduler_name = "max_gain";
  options.max_moves = 2000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(is_greedy_equilibrium(game, run.final_profile));
  DynamicsOptions bad = options;
  bad.scheduler_name = "no_such_scheduler";
  EXPECT_THROW(run_dynamics(game, random_profile(game, rng), bad),
               ContractViolation);
}

// --- observer API ---------------------------------------------------------

class RecordingObserver final : public StepObserver {
 public:
  void on_run_start(const DeviationEngine&) override { ++starts; }
  void on_step(const DynamicsStep& step, std::uint64_t move_index) override {
    steps.push_back(step);
    EXPECT_EQ(move_index, steps.size());
  }
  void on_run_end(const DynamicsResult& result) override {
    ++ends;
    EXPECT_EQ(result.moves, steps.size());
  }

  int starts = 0;
  int ends = 0;
  std::vector<DynamicsStep> steps;
};

TEST(Observer, StreamsEveryAppliedStepInOrder) {
  Rng rng(4019);
  const Game game(random_metric_host(6, rng), 1.0);
  RecordingObserver observer;
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.max_moves = 500;
  options.observer = &observer;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_EQ(observer.starts, 1);
  EXPECT_EQ(observer.ends, 1);
  ASSERT_EQ(observer.steps.size(), run.steps.size());
  for (std::size_t i = 0; i < run.steps.size(); ++i) {
    EXPECT_EQ(observer.steps[i].agent, run.steps[i].agent);
    EXPECT_TRUE(observer.steps[i].new_strategy == run.steps[i].new_strategy);
  }
}

TEST(Observer, StepGainsMatchTrace) {
  Rng rng(4021);
  const Game game(random_metric_host(6, rng), 1.2);
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.max_moves = 500;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  SampleStats expected;
  for (const auto& step : run.steps)
    if (step.old_cost < kInf) expected.add(step.old_cost - step.new_cost);
  EXPECT_EQ(run.step_gains.count(), expected.count());
  EXPECT_DOUBLE_EQ(run.step_gains.sum(), expected.sum());
  EXPECT_DOUBLE_EQ(run.step_gains.max(), expected.max());
}

TEST(Observer, RecordStepsOffStillFillsGainStats) {
  Rng rng(4022);
  const Game game(random_metric_host(6, rng), 1.2);
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.max_moves = 500;
  options.record_steps = false;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(run.steps.empty());
  if (run.moves > 0) EXPECT_GT(run.step_gains.count(), 0u);
}

// --- new schedulers -------------------------------------------------------

TEST(Schedulers, AllFiveConvergeToNashOnUnitHostHighAlpha) {
  Rng rng(4027);
  const Game game(HostGraph::unit(6), 4.0);
  for (auto scheduler :
       {SchedulerKind::kRoundRobin, SchedulerKind::kRandomOrder,
        SchedulerKind::kMaxGain, SchedulerKind::kFairnessBounded,
        SchedulerKind::kSoftmaxGain}) {
    DynamicsOptions options;
    options.scheduler = scheduler;
    options.max_moves = 3000;
    options.seed = 7;
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    EXPECT_TRUE(run.converged) << "scheduler " << static_cast<int>(scheduler);
    EXPECT_TRUE(is_nash_equilibrium(game, run.final_profile));
  }
}

TEST(Schedulers, SoftmaxIsSeedDeterministic) {
  Rng start_a(4031), start_b(4031);
  Rng host_rng(4033);
  const Game game(random_metric_host(7, host_rng), 1.0);
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.scheduler = SchedulerKind::kSoftmaxGain;
  options.max_moves = 2000;
  options.seed = 99;
  const auto a = run_dynamics(game, random_profile(game, start_a), options);
  const auto b = run_dynamics(game, random_profile(game, start_b), options);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_TRUE(a.final_profile == b.final_profile);
}

// --- parallel MGM round kernel --------------------------------------------

/// Conservative touch set of one recorded step: {agent} ∪ old ∪ new (the
/// same approximation the scheduler's conflict graph uses).
std::vector<int> step_touch_set(const DynamicsStep& step) {
  std::vector<int> touch{step.agent};
  step.old_strategy.for_each([&](int v) { touch.push_back(v); });
  step.new_strategy.for_each([&](int v) { touch.push_back(v); });
  std::sort(touch.begin(), touch.end());
  touch.erase(std::unique(touch.begin(), touch.end()), touch.end());
  return touch;
}

TEST(ParallelMgm, ConvergesToNashOnUnitHostHighAlpha) {
  Rng rng(4051);
  const Game game(HostGraph::unit(6), 4.0);
  DynamicsOptions options;
  options.scheduler = SchedulerKind::kParallelMgm;
  options.max_moves = 3000;
  options.seed = 7;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(run.converged);
  // Convergence certificate is the same as the sequential schedulers': the
  // final (empty) round proposed every agent against the final profile.
  EXPECT_TRUE(is_nash_equilibrium(game, run.final_profile));
}

TEST(ParallelMgm, CommittedRoundsHaveDisjointConflictSets) {
  Rng rng(4053);
  const Game game(random_one_two_host(24, 0.5, rng), 1.5);
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.scheduler = SchedulerKind::kParallelMgm;
  options.mgm_shards = 8;
  options.max_moves = 600;
  options.seed = 3;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  ASSERT_GT(run.moves, 0u);

  std::size_t max_batch = 0;
  for (std::size_t i = 0; i < run.steps.size();) {
    const std::uint64_t round = run.steps[i].round;
    ASSERT_GE(round, 1u);
    std::vector<int> claimed;
    std::size_t batch = 0;
    int last_agent = -1;
    for (; i < run.steps.size() && run.steps[i].round == round; ++i, ++batch) {
      const DynamicsStep& step = run.steps[i];
      // Commit order within a round is ascending agent id.
      EXPECT_GT(step.agent, last_agent) << "round " << round;
      last_agent = step.agent;
      // Every committed move improves against the round's start profile.
      EXPECT_LT(step.new_cost, step.old_cost) << "round " << round;
      // Independence: the step's touch set is disjoint from every other
      // committed move's in the same round.
      for (int t : step_touch_set(step)) {
        EXPECT_FALSE(std::binary_search(claimed.begin(), claimed.end(), t))
            << "round " << round << " agent " << step.agent
            << " touches already-claimed node " << t;
        claimed.insert(std::lower_bound(claimed.begin(), claimed.end(), t),
                       t);
      }
    }
    max_batch = std::max(max_batch, batch);
  }
  EXPECT_EQ(max_batch, run.max_round_commits);
  // With 8 shards on 24 agents some round must have committed in parallel,
  // otherwise this test exercises nothing.
  EXPECT_GT(max_batch, 1u);
}

TEST(ParallelMgm, OneShardDegeneratesToSequentialMaxGain) {
  Rng host_rng(4057);
  const Game game(random_one_two_host(12, 0.5, host_rng), 1.5);
  Rng start_a(4061), start_b(4061);
  const StrategyProfile start = random_profile(game, start_a);
  const StrategyProfile start_copy = random_profile(game, start_b);

  DynamicsOptions mgm;
  mgm.rule = MoveRule::kBestSingleMove;
  mgm.scheduler = SchedulerKind::kParallelMgm;
  mgm.mgm_shards = 1;
  mgm.max_moves = 800;
  mgm.seed = 17;
  const auto mgm_run = run_dynamics(game, start, mgm);

  DynamicsOptions max_gain = mgm;
  max_gain.scheduler = SchedulerKind::kMaxGain;
  max_gain.mgm_shards = 0;
  const auto ref_run = run_dynamics(game, start_copy, max_gain);

  // One shard nominates the global max-gain agent with the gain-scheduler
  // tie-break: the runs must be identical move for move.
  EXPECT_EQ(mgm_run.converged, ref_run.converged);
  EXPECT_EQ(mgm_run.cycle_found, ref_run.cycle_found);
  EXPECT_EQ(mgm_run.moves, ref_run.moves);
  EXPECT_EQ(mgm_run.rounds, ref_run.rounds);
  EXPECT_EQ(mgm_run.max_round_commits, 1u);
  ASSERT_EQ(mgm_run.steps.size(), ref_run.steps.size());
  for (std::size_t i = 0; i < mgm_run.steps.size(); ++i) {
    EXPECT_EQ(mgm_run.steps[i].agent, ref_run.steps[i].agent) << i;
    EXPECT_TRUE(mgm_run.steps[i].new_strategy ==
                ref_run.steps[i].new_strategy)
        << i;
    EXPECT_EQ(mgm_run.steps[i].new_cost, ref_run.steps[i].new_cost) << i;
  }
  EXPECT_TRUE(mgm_run.final_profile == ref_run.final_profile);
}

/// Observer checking the round-callback contract: round indices increase by
/// one, batch sizes are >= 1 and sum to the move count.
class RoundObserver final : public StepObserver {
 public:
  void on_step(const DynamicsStep& step, std::uint64_t) override {
    EXPECT_EQ(step.round, rounds_seen + 1);
  }
  void on_round_end(std::uint64_t round_index,
                    std::size_t committed) override {
    EXPECT_EQ(round_index, rounds_seen + 1);
    EXPECT_GE(committed, 1u);
    ++rounds_seen;
    total_committed += committed;
  }

  std::uint64_t rounds_seen = 0;
  std::size_t total_committed = 0;
};

TEST(ParallelMgm, ObserverSeesRoundBatches) {
  Rng rng(4063);
  const Game game(random_one_two_host(24, 0.5, rng), 1.5);
  RoundObserver observer;
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.scheduler = SchedulerKind::kParallelMgm;
  options.mgm_shards = 8;
  options.max_moves = 600;
  options.observer = &observer;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_EQ(observer.total_committed, run.moves);
  EXPECT_GE(observer.rounds_seen, 1u);
}

TEST(ParallelMgm, ByteIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  Rng rng(4067);
  const Game game(random_one_two_host(24, 0.5, rng), 1.5);

  RestartOptions options;
  options.restarts = 24;
  options.seed = 13;
  options.label = "test_parallel_mgm";
  options.dynamics.rule = MoveRule::kBestSingleMove;
  options.dynamics.scheduler = SchedulerKind::kParallelMgm;
  options.dynamics.mgm_shards = 8;
  options.dynamics.max_moves = 400;

  set_default_thread_count(1);
  const RestartReport serial = run_restarts(game, options);
  set_default_thread_count(8);
  const RestartReport parallel = run_restarts(game, options);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i)
    EXPECT_EQ(run_bytes(serial.runs[i]), run_bytes(parallel.runs[i]))
        << "restart " << i;
  EXPECT_EQ(serial.converged, parallel.converged);
  EXPECT_EQ(serial.moves_to_convergence.sum(),
            parallel.moves_to_convergence.sum());
}

// --- restart driver determinism (acceptance) ------------------------------

TEST(Restarts, ByteIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  Rng rng(4037);
  const Game game(random_one_two_host(16, 0.5, rng), 1.5);

  RestartOptions options;
  options.restarts = 40;
  options.seed = 11;
  options.label = "test_restarts";
  options.dynamics.rule = MoveRule::kBestSingleMove;
  options.dynamics.max_moves = 400;
  options.scheduler_cycle = {SchedulerKind::kRoundRobin,
                             SchedulerKind::kRandomOrder,
                             SchedulerKind::kSoftmaxGain};

  set_default_thread_count(1);
  const RestartReport serial = run_restarts(game, options);
  set_default_thread_count(4);
  const RestartReport parallel = run_restarts(game, options);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  std::vector<std::string> serial_bytes, parallel_bytes;
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    serial_bytes.push_back(run_bytes(serial.runs[i]));
    parallel_bytes.push_back(run_bytes(parallel.runs[i]));
    EXPECT_EQ(serial_bytes.back(), parallel_bytes.back()) << "restart " << i;
  }
  std::sort(serial_bytes.begin(), serial_bytes.end());
  std::sort(parallel_bytes.begin(), parallel_bytes.end());
  EXPECT_EQ(serial_bytes, parallel_bytes);
  EXPECT_EQ(serial.converged, parallel.converged);
  EXPECT_EQ(serial.moves_to_convergence.count(),
            parallel.moves_to_convergence.count());
  EXPECT_EQ(serial.moves_to_convergence.sum(),
            parallel.moves_to_convergence.sum());
}

TEST(Restarts, EngineReusePerWorkerMatchesFreshEngines) {
  Rng rng(4039);
  const Game game(random_metric_host(8, rng), 1.0);
  RestartOptions options;
  options.restarts = 12;
  options.seed = 5;
  options.label = "reuse_probe";
  options.dynamics.rule = MoveRule::kBestSingleMove;
  options.dynamics.max_moves = 500;
  const RestartReport report = run_restarts(game, options);

  // Reference: every restart from a fresh engine via the serial entry
  // point, same streams.
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    Rng stream(stream_seed("reuse_probe", i, 5));
    StrategyProfile start = make_start_profile(
        game, stream, options.start, options.extra_edge_prob);
    DynamicsOptions dynamics = options.dynamics;
    dynamics.seed = stream();
    const auto reference = run_dynamics(game, std::move(start), dynamics);
    EXPECT_EQ(report.runs[i].result.moves, reference.moves) << i;
    EXPECT_TRUE(report.runs[i].result.final_profile ==
                reference.final_profile)
        << i;
  }
}

TEST(Restarts, SampleEquilibriaIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  Rng rng(4043);
  const Game game(random_metric_host(6, rng), 1.0);
  SamplingOptions options;
  options.attempts = 24;
  options.seed = 99;

  set_default_thread_count(1);
  const auto serial = sample_equilibria(game, options);
  set_default_thread_count(4);
  const auto parallel = sample_equilibria(game, options);

  ASSERT_EQ(serial.profiles.size(), parallel.profiles.size());
  for (std::size_t i = 0; i < serial.profiles.size(); ++i) {
    EXPECT_TRUE(serial.profiles[i] == parallel.profiles[i]) << i;
    EXPECT_EQ(serial.social_costs[i], parallel.social_costs[i]) << i;
  }
}

TEST(Restarts, CycleWitnessIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  const Game game(HostGraph::from_points(theorem17_points(), 1.0), 1.0);
  Rng outer(8);
  const std::uint64_t seed = outer();

  set_default_thread_count(1);
  const auto serial = search_best_response_cycle(game, 24, seed);
  set_default_thread_count(4);
  const auto parallel = search_best_response_cycle(game, 24, seed);

  ASSERT_TRUE(serial.cycle_found);
  ASSERT_TRUE(parallel.cycle_found);
  EXPECT_TRUE(serial.cycle_start == parallel.cycle_start);
  ASSERT_EQ(serial.cycle.size(), parallel.cycle.size());
  for (std::size_t i = 0; i < serial.cycle.size(); ++i) {
    EXPECT_EQ(serial.cycle[i].agent, parallel.cycle[i].agent);
    EXPECT_TRUE(serial.cycle[i].new_strategy == parallel.cycle[i].new_strategy);
  }
  EXPECT_TRUE(verify_improvement_cycle(game, serial.cycle_start, serial.cycle,
                                       /*require_best_response=*/true));
}

TEST(Restarts, ObserverAndUnverifiedCyclesAreRejectedByContract) {
  Rng rng(4049);
  const Game game(random_metric_host(5, rng), 1.0);
  RecordingObserver observer;
  RestartOptions options;
  options.restarts = 2;
  options.dynamics.observer = &observer;
  EXPECT_THROW(run_restarts(game, options), ContractViolation);

  RestartOptions no_steps;
  no_steps.restarts = 2;
  no_steps.verify_cycles = true;
  no_steps.dynamics.record_steps = false;
  EXPECT_THROW(run_restarts(game, no_steps), ContractViolation);
}

}  // namespace
}  // namespace gncg
