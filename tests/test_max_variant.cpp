// Tests for the MAX (egalitarian) variant: cost semantics, the pruned
// exact best response against brute force, and cross-objective relations.
#include <gtest/gtest.h>

#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "variants/max_game.hpp"

namespace gncg {
namespace {

Game triangle_game(double alpha) {
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(1, 2, 2.0);
  weights.set_symmetric(0, 2, 2.5);
  return Game(HostGraph::from_weights(std::move(weights)), alpha);
}

/// Unpruned reference best response under the egalitarian objective.
BestResponseResult brute_force_max_br(const Game& game,
                                      const StrategyProfile& s, int u) {
  std::vector<int> candidates;
  for (int v = 0; v < game.node_count(); ++v)
    if (game.can_buy(u, v)) candidates.push_back(v);
  BestResponseResult best;
  best.strategy = NodeSet(game.node_count());
  best.cost = kInf;
  for (std::uint64_t mask = 0;
       mask < (std::uint64_t{1} << candidates.size()); ++mask) {
    StrategyProfile changed = s;
    NodeSet strategy(game.node_count());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if ((mask >> i) & 1U) strategy.insert(candidates[i]);
    changed.set_strategy(u, strategy);
    const double cost = max_agent_cost(game, changed, u);
    ++best.evaluations;
    if (cost < best.cost) {
      best.cost = cost;
      best.strategy = strategy;
    }
  }
  return best;
}

TEST(MaxVariant, AgentCostOnTriangle) {
  const Game game = triangle_game(2.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  profile.add_buy(1, 2);
  // Agent 0: edge cost 2*1, eccentricity max(1, 3) = 3.
  EXPECT_DOUBLE_EQ(max_agent_cost(game, profile, 0), 2.0 + 3.0);
  // Agent 1: edge cost 2*2, eccentricity max(1, 2) = 2.
  EXPECT_DOUBLE_EQ(max_agent_cost(game, profile, 1), 4.0 + 2.0);
  // Agent 2: no edges, eccentricity 3.
  EXPECT_DOUBLE_EQ(max_agent_cost(game, profile, 2), 3.0);
}

TEST(MaxVariant, DisconnectionIsInfinite) {
  const Game game = triangle_game(1.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  EXPECT_EQ(max_agent_cost(game, profile, 2), kInf);
  EXPECT_EQ(max_social_cost(game, profile), kInf);
}

TEST(MaxVariant, MaxCostNeverExceedsSumCost) {
  Rng rng(1501);
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_metric_host(5, rng), rng.uniform_real(0.3, 3.0));
    const auto profile = random_profile(game, rng);
    for (int u = 0; u < 5; ++u)
      EXPECT_LE(max_agent_cost(game, profile, u),
                agent_cost(game, profile, u) + 1e-9);
  }
}

TEST(MaxVariant, ExactBestResponseMatchesBruteForce) {
  Rng rng(1511);
  for (int trial = 0; trial < 12; ++trial) {
    const Game game(trial % 2 == 0
                        ? random_metric_host(5, rng)
                        : random_one_two_host(5, 0.5, rng),
                    rng.uniform_real(0.3, 3.0));
    const auto profile = random_profile(game, rng);
    const int u = static_cast<int>(rng.uniform_below(5));
    const auto exact = max_exact_best_response(game, profile, u);
    const auto brute = brute_force_max_br(game, profile, u);
    EXPECT_NEAR(exact.cost, brute.cost, 1e-9 * std::max(1.0, brute.cost))
        << "trial " << trial;
    EXPECT_LE(exact.evaluations, brute.evaluations);
  }
}

TEST(MaxVariant, NashCheckConsistentWithBruteForce) {
  Rng rng(1523);
  int equilibria = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_one_two_host(4, 0.6, rng),
                    rng.uniform_real(0.5, 4.0));
    const auto profile = random_profile(game, rng);
    bool brute_nash = true;
    for (int u = 0; u < 4 && brute_nash; ++u) {
      const double current = max_agent_cost(game, profile, u);
      if (improves(brute_force_max_br(game, profile, u).cost, current))
        brute_nash = false;
    }
    EXPECT_EQ(max_is_nash_equilibrium(game, profile), brute_nash);
    equilibria += brute_nash ? 1 : 0;
  }
  (void)equilibria;  // informational; random profiles are rarely stable
}

TEST(MaxVariant, StarCenterEgalitarianCost) {
  // On a unit host the star gives every node eccentricity <= 2 and the
  // center exactly 1; hand-check the numbers.
  const Game game(HostGraph::unit(5), 2.0);
  const auto star = star_profile(game, 0);
  EXPECT_DOUBLE_EQ(max_agent_cost(game, star, 0), 2.0 * 4.0 + 1.0);
  EXPECT_DOUBLE_EQ(max_agent_cost(game, star, 3), 2.0);
  EXPECT_DOUBLE_EQ(max_network_social_cost(
                       game, built_graph(game, star).edges()),
                   2.0 * 4.0 + 1.0 + 4 * 2.0);
}

TEST(MaxVariant, SumEquilibriaNeedNotBeMaxEquilibria) {
  // The two objectives genuinely differ: find some converged SUM NE that
  // fails the MAX check (or vice versa) across a small sample.  Both being
  // always equal would signal a wiring bug.
  Rng rng(1531);
  int differing = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_metric_host(5, rng), rng.uniform_real(0.3, 2.0));
    DynamicsOptions options;
    options.max_moves = 3000;
    options.seed = rng();
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    if (!run.converged) continue;
    if (!max_is_nash_equilibrium(game, run.final_profile)) ++differing;
  }
  EXPECT_GT(differing, 0)
      << "every SUM equilibrium was also a MAX equilibrium -- suspicious";
}

TEST(MaxVariant, SharedDriverMatchesNaiveSearch) {
  // The MAX best response now runs the shared incremental br_search driver;
  // the pre-refactor per-subset-Dijkstra search is the differential
  // baseline (full and certification modes, profile and engine paths).
  Rng rng(1733);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 5 + (trial % 4);
    const Game game(trial % 2 == 0 ? random_metric_host(n, rng)
                                   : random_one_two_host(n, 0.5, rng),
                    rng.uniform_real(0.2, 3.0));
    const auto profile = random_profile(game, rng);
    DeviationEngine engine(game, profile);
    for (int u = 0; u < n; ++u) {
      const auto naive = naive_max_exact_best_response(game, profile, u);
      const auto fast = max_exact_best_response(game, profile, u);
      EXPECT_TRUE(fast.strategy == naive.strategy)
          << "trial " << trial << " agent " << u;
      // Canonical-cost contract: the driver's cost equals the egalitarian
      // re-evaluation of the winning strategy bitwise (the naive search's
      // raw cost carries DFS-accumulator noise; see br_search.hpp).
      StrategyProfile rewired = profile;
      rewired.set_strategy(u, naive.strategy);
      EXPECT_EQ(fast.cost, max_agent_cost(game, rewired, u))
          << "trial " << trial << " agent " << u;
      const auto via_engine = max_exact_best_response(engine, u);
      EXPECT_EQ(via_engine.cost, fast.cost);
      EXPECT_TRUE(via_engine.strategy == naive.strategy);

      BestResponseOptions options;
      options.incumbent = max_agent_cost(game, profile, u);
      options.first_improvement = true;
      const auto naive_cert =
          naive_max_exact_best_response(game, profile, u, options);
      EXPECT_EQ(max_has_improving_deviation(engine, u), naive_cert.improved);
    }
  }
}

TEST(MaxVariant, EngineAgentCostMatchesProfileBuild) {
  Rng rng(1741);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5 + (trial % 4);
    const Game game(random_metric_host(n, rng), rng.uniform_real(0.3, 3.0));
    const auto profile = random_profile(game, rng);
    DeviationEngine engine(game, profile);
    for (int u = 0; u < n; ++u)
      EXPECT_EQ(max_agent_cost(engine, u), max_agent_cost(game, profile, u));
  }
}

}  // namespace
}  // namespace gncg
