// Tests for UMFL and the Theorem 3 reduction: the cost bijection between
// agent strategies and facility sets, the locality gap, and the induced
// 3-approximate best response.
#include <gtest/gtest.h>

#include "core/best_response.hpp"
#include "core/dynamics.hpp"
#include "core/facility_location.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

UmflInstance hand_instance() {
  // Two facilities, three clients.
  UmflInstance instance;
  instance.open_cost = {5.0, 1.0};
  instance.service = {{1.0, 2.0, 9.0}, {4.0, 1.0, 1.0}};
  return instance;
}

TEST(Umfl, CostEvaluation) {
  const auto instance = hand_instance();
  EXPECT_DOUBLE_EQ(umfl_cost(instance, {1, 0}), 5.0 + 1.0 + 2.0 + 9.0);
  EXPECT_DOUBLE_EQ(umfl_cost(instance, {0, 1}), 1.0 + 4.0 + 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(umfl_cost(instance, {1, 1}), 6.0 + 1.0 + 1.0 + 1.0);
  EXPECT_EQ(umfl_cost(instance, {0, 0}), kInf);  // clients unserved
}

TEST(Umfl, ExactFindsOptimum) {
  const auto instance = hand_instance();
  const auto best = umfl_exact(instance);
  EXPECT_DOUBLE_EQ(best.cost, 7.0);  // open only facility 1
  EXPECT_EQ(best.open, (std::vector<char>{0, 1}));
}

TEST(Umfl, LocalSearchReachesLocalOptimumWithinGap) {
  Rng rng(601);
  for (int trial = 0; trial < 10; ++trial) {
    // Random metric-ish instance from points on a line.
    const std::size_t f = 4, c = 5;
    UmflInstance instance;
    instance.open_cost.resize(f);
    instance.service.assign(f, std::vector<double>(c));
    std::vector<double> fpos(f), cpos(c);
    for (auto& x : fpos) x = rng.uniform_real(0.0, 10.0);
    for (auto& x : cpos) x = rng.uniform_real(0.0, 10.0);
    for (std::size_t i = 0; i < f; ++i) {
      instance.open_cost[i] = rng.uniform_real(0.0, 5.0);
      for (std::size_t j = 0; j < c; ++j)
        instance.service[i][j] = std::abs(fpos[i] - cpos[j]);
    }
    const auto local = umfl_local_search(instance);
    const auto exact = umfl_exact(instance);
    EXPECT_LE(local.cost, 3.0 * exact.cost + 1e-9)
        << "locality gap 3 violated on metric instance, trial " << trial;
    EXPECT_GE(local.cost, exact.cost - 1e-9);
  }
}

TEST(Umfl, ForcedFacilitiesStayOpen) {
  auto instance = hand_instance();
  instance.forced_open = {1, 0};  // facility 0 pinned
  const auto local = umfl_local_search(instance);
  EXPECT_EQ(local.open[0], 1);
  const auto exact = umfl_exact(instance);
  EXPECT_EQ(exact.open[0], 1);
}

TEST(Umfl, InfiniteOpenCostFacilitiesNeverOpen) {
  auto instance = hand_instance();
  instance.open_cost[0] = kInf;
  const auto local = umfl_local_search(instance);
  EXPECT_EQ(local.open[0], 0);
}

TEST(Theorem3Reduction, CostBijectionHolds) {
  // cost(u, G(S)) == umfl_cost(pi(S)) for arbitrary S (the paper's mapping).
  Rng rng(607);
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_metric_host(6, rng), rng.uniform_real(0.4, 2.5));
    const auto profile = random_profile(game, rng);
    const int u = static_cast<int>(rng.uniform_below(6));
    const auto reduction = umfl_from_best_response(game, profile, u);
    // Try the agent's current strategy and two random ones.
    for (int k = 0; k < 3; ++k) {
      NodeSet strategy(6);
      if (k == 0) {
        strategy = profile.strategy(u);
      } else {
        // The paper's bijection pi(S) = S u Z covers strategies disjoint
        // from Z (buying an edge someone else already owns is dominated and
        // breaks the cost identity by the duplicated payment).
        for (int v = 0; v < 6; ++v)
          if (v != u && !profile.buys(v, u) && rng.bernoulli(0.4))
            strategy.insert(v);
      }
      StrategyProfile changed = profile;
      changed.set_strategy(u, strategy);
      const double game_cost = agent_cost(game, changed, u);
      const double fl_cost = umfl_cost(
          reduction.instance, strategy_to_umfl_open(reduction, strategy));
      if (game_cost < kInf)
        EXPECT_NEAR(game_cost, fl_cost, 1e-9 * std::max(1.0, game_cost))
            << "trial " << trial << " k " << k;
      else
        EXPECT_EQ(fl_cost, kInf);
    }
  }
}

TEST(Theorem3Reduction, RoundTripStrategyMapping) {
  Rng rng(613);
  const Game game(random_metric_host(5, rng), 1.0);
  const auto profile = random_profile(game, rng);
  const auto reduction = umfl_from_best_response(game, profile, 2);
  NodeSet strategy(5);
  strategy.insert(0);
  strategy.insert(4);
  const auto open = strategy_to_umfl_open(reduction, strategy);
  UmflSolution solution;
  solution.open = open;
  const auto back = umfl_solution_to_strategy(reduction, solution, 5);
  // The round trip re-derives S = F \ Z, so bought-by-others nodes drop out.
  strategy.for_each([&](int v) {
    if (!profile.buys(v, 2)) EXPECT_TRUE(back.contains(v));
  });
}

TEST(Theorem3Reduction, ApproxBestResponseWithinFactorThree) {
  // Theorem 3's consequence: the UMFL-local-search response costs at most
  // 3x the exact best response on metric hosts.
  Rng rng(617);
  for (int trial = 0; trial < 8; ++trial) {
    const Game game(random_metric_host(6, rng), rng.uniform_real(0.5, 2.0));
    const auto profile = random_profile(game, rng);
    const int u = static_cast<int>(rng.uniform_below(6));
    const NodeSet approx = approx_best_response_umfl(game, profile, u);
    const AgentEnvironment env(game, profile, u);
    const double approx_cost = env.cost_of(approx);
    const auto exact = exact_best_response(game, profile, u);
    EXPECT_LE(approx_cost, 3.0 * exact.cost + 1e-6)
        << "trial " << trial << " agent " << u;
  }
}

TEST(Theorem3Reduction, ApproxResponseNeverWorseThanCurrent) {
  Rng rng(619);
  const Game game(random_metric_host(7, rng), 1.0);
  const auto profile = random_profile(game, rng);
  for (int u = 0; u < 7; ++u) {
    const AgentEnvironment env(game, profile, u);
    const NodeSet approx = approx_best_response_umfl(game, profile, u);
    EXPECT_LE(env.cost_of(approx),
              agent_cost(game, profile, u) + 1e-9);
  }
}

}  // namespace
}  // namespace gncg
