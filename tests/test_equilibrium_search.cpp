// Tests for NE enumeration, sampling and PoA estimation -- including the
// Theorem 9 statement (PoA = 1 for the 1-2-GNCG with alpha < 1/2).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/equilibrium.hpp"
#include "core/equilibrium_search.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

TEST(Enumeration, FindsStarEquilibriaOnUnitHost) {
  // NCG, n=4, alpha = 3: stars are NE; enumeration must find some NE and
  // every reported profile must pass the exact check.
  const Game game(HostGraph::unit(4), 3.0);
  const auto set = enumerate_nash_equilibria(game);
  EXPECT_TRUE(set.exhaustive);
  ASSERT_FALSE(set.empty());
  for (const auto& profile : set.profiles)
    EXPECT_TRUE(is_nash_equilibrium(game, profile));
  // The star centered at 0 (owned by 0) must be among them.
  const auto star = star_profile(game, 0);
  EXPECT_NE(std::find(set.profiles.begin(), set.profiles.end(), star),
            set.profiles.end());
}

TEST(Enumeration, CostsAlignWithProfiles) {
  Rng rng(701);
  const Game game(random_one_two_host(4, 0.5, rng), 1.5);
  const auto set = enumerate_nash_equilibria(game);
  ASSERT_EQ(set.profiles.size(), set.social_costs.size());
  for (std::size_t i = 0; i < set.profiles.size(); ++i)
    EXPECT_NEAR(set.social_costs[i], social_cost(game, set.profiles[i]), 1e-9);
}

TEST(Enumeration, RespectsStateCap) {
  const Game game(HostGraph::unit(8), 1.0);  // 3^28 states
  EnumerationOptions options;
  options.max_states = 1000;
  EXPECT_THROW(enumerate_nash_equilibria(game, options), ContractViolation);
}

TEST(Enumeration, Theorem9PoaIsOneForTinyAlpha) {
  // alpha < 1/2 in the 1-2-GNCG: every NE equals the Algorithm 1 optimum.
  Rng rng(709);
  for (int trial = 0; trial < 4; ++trial) {
    const double alpha = rng.uniform_real(0.05, 0.49);
    const Game game(random_one_two_host(4, 0.5, rng), alpha);
    const auto set = enumerate_nash_equilibria(game);
    const auto opt = algorithm1_one_two(game);
    ASSERT_FALSE(set.empty()) << "Theorem 9 also promises NE existence";
    const auto estimate = estimate_poa(set, opt.cost.total(), true);
    EXPECT_NEAR(estimate.poa, 1.0, 1e-9) << "alpha=" << alpha;
    EXPECT_NEAR(estimate.pos, 1.0, 1e-9);
  }
}

TEST(Enumeration, MetricPoaRespectsTheorem1Bound) {
  Rng rng(719);
  for (int trial = 0; trial < 4; ++trial) {
    const double alpha = rng.uniform_real(0.3, 3.0);
    const Game game(random_metric_host(4, rng), alpha);
    const auto set = enumerate_nash_equilibria(game);
    if (set.empty()) continue;
    const auto opt = exact_social_optimum(game);
    const auto estimate = estimate_poa(set, opt.cost.total(), true);
    EXPECT_LE(estimate.poa, paper::metric_poa(alpha) + 1e-6)
        << "Theorem 1 upper bound violated, alpha=" << alpha;
    EXPECT_LE(estimate.pos, estimate.poa + 1e-12);
    EXPECT_GE(estimate.pos, 1.0 - 1e-9);
  }
}

TEST(Sampling, SampledProfilesAreNash) {
  Rng rng(727);
  const Game game(random_metric_host(5, rng), 1.0);
  SamplingOptions options;
  options.attempts = 20;
  options.seed = 99;
  const auto set = sample_equilibria(game, options);
  for (const auto& profile : set.profiles)
    EXPECT_TRUE(is_nash_equilibrium(game, profile));
  EXPECT_FALSE(set.exhaustive);
}

TEST(Sampling, DeduplicatesConvergedProfiles) {
  const Game game(HostGraph::unit(4), 3.0);
  SamplingOptions options;
  options.attempts = 30;
  options.seed = 3;
  const auto set = sample_equilibria(game, options);
  for (std::size_t i = 0; i < set.profiles.size(); ++i)
    for (std::size_t j = i + 1; j < set.profiles.size(); ++j)
      EXPECT_FALSE(set.profiles[i] == set.profiles[j]);
}

TEST(Sampling, SubsetOfEnumeration) {
  Rng rng(733);
  const Game game(random_one_two_host(4, 0.6, rng), 2.0);
  const auto all = enumerate_nash_equilibria(game);
  SamplingOptions options;
  options.attempts = 15;
  const auto sampled = sample_equilibria(game, options);
  for (const auto& profile : sampled.profiles)
    EXPECT_NE(std::find(all.profiles.begin(), all.profiles.end(), profile),
              all.profiles.end());
}

TEST(PoaEstimate, HandlesEmptySet) {
  EquilibriumSet empty;
  const auto estimate = estimate_poa(empty, 10.0, true);
  EXPECT_EQ(estimate.equilibrium_count, 0u);
  EXPECT_EQ(estimate.poa, 0.0);
}

}  // namespace
}  // namespace gncg
