// Tests for the Conjecture 1 witness: the pinned 8-point Euclidean
// instance admits a deterministic, replay-verified best-response cycle --
// computational support for "the Rd-GNCG has no FIP under any p-norm"
// beyond the paper's 1-norm proof (Theorem 17 / Conjecture 1).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "constructions/cycle_instances.hpp"
#include "core/fip.hpp"
#include "metric/host_graph.hpp"

namespace gncg {
namespace {

TEST(Conjecture1Witness, PointsAreDistinctIntegersInThePlane) {
  const auto points = conjecture1_euclidean_points();
  ASSERT_EQ(points.size(), 8);
  ASSERT_EQ(points.dim(), 2);
  std::set<std::pair<double, double>> seen;
  for (int i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points.coord(i, 0), std::floor(points.coord(i, 0)));
    EXPECT_EQ(points.coord(i, 1), std::floor(points.coord(i, 1)));
    EXPECT_TRUE(seen.insert({points.coord(i, 0), points.coord(i, 1)}).second)
        << "duplicate point " << i;
  }
}

TEST(Conjecture1Witness, EuclideanCycleReproducesDeterministically) {
  const auto result = search_conjecture1_cycle(/*attempts=*/6);
  ASSERT_TRUE(result.found) << "pinned Conjecture 1 cycle not reproduced";
  EXPECT_GE(result.analysis.cycle.size(), 2u);
  const Game game(
      HostGraph::from_points(conjecture1_euclidean_points(), /*p=*/2.0),
      kConjecture1Alpha);
  EXPECT_TRUE(verify_improvement_cycle(game, result.analysis.cycle_start,
                                       result.analysis.cycle,
                                       /*require_best_response=*/false));
  EXPECT_TRUE(verify_improvement_cycle(game, result.analysis.cycle_start,
                                       result.analysis.cycle,
                                       /*require_best_response=*/true));
}

TEST(Conjecture1Witness, HostIsAEuclideanMetric) {
  const Game game(
      HostGraph::from_points(conjecture1_euclidean_points(), /*p=*/2.0), 1.0);
  EXPECT_TRUE(game.host().is_metric());
  EXPECT_EQ(game.host().declared_model(), ModelClass::kEuclidean);
  // All pairwise distances are positive (distinct points).
  for (int u = 0; u < 8; ++u)
    for (int v = u + 1; v < 8; ++v) EXPECT_GT(game.weight(u, v), 0.0);
}

}  // namespace
}  // namespace gncg
