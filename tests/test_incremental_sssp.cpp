// Tests for IncrementalSssp: decrease-only repair under source-incident
// edge insertions must match a fresh Dijkstra over the augmented graph
// bitwise, and rollback must restore the exact pre-insertion vector.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/incremental_sssp.hpp"
#include "graph/weighted_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

using Adjacency = std::vector<std::vector<Neighbor>>;

/// Random sparse undirected graph; with `connect_all` false some nodes stay
/// isolated so kInf -> finite transitions are exercised.
Adjacency random_graph(int n, double edge_prob, Rng& rng, bool connect_all) {
  Adjacency adj(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.uniform01() > edge_prob) continue;
      const double w = rng.uniform_real(0.5, 8.0);
      adj[static_cast<std::size_t>(a)].push_back({b, w});
      adj[static_cast<std::size_t>(b)].push_back({a, w});
    }
  }
  if (connect_all) {
    for (int v = 1; v < n; ++v) {
      const double w = rng.uniform_real(4.0, 16.0);
      adj[static_cast<std::size_t>(v - 1)].push_back({v, w});
      adj[static_cast<std::size_t>(v)].push_back({v - 1, w});
    }
  }
  return adj;
}

/// Fresh Dijkstra over (graph + the given source-incident extra edges).
std::vector<double> fresh_dist(const Adjacency& adj, int source,
                               const std::vector<std::pair<int, double>>&
                                   extra) {
  std::vector<double> dist;
  dijkstra_over(
      static_cast<int>(adj.size()), source,
      [&](int x, auto&& visit) {
        for (const auto& nb : adj[static_cast<std::size_t>(x)])
          visit(nb.to, nb.weight);
        if (x == source) {
          for (const auto& [v, w] : extra) visit(v, w);
        } else {
          for (const auto& [v, w] : extra)
            if (v == x) visit(source, w);
        }
      },
      dist);
  return dist;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want,
                          const char* where) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t t = 0; t < got.size(); ++t)
    EXPECT_EQ(got[t], want[t]) << where << " node " << t;
}

TEST(IncrementalSssp, InsertionMatchesFreshDijkstra) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 8 + static_cast<int>(rng.uniform_below(24));
    const bool connected = trial % 3 != 0;
    const Adjacency adj = random_graph(n, 0.15, rng, connected);
    const auto env_fn = [&](int x, auto&& visit) {
      for (const auto& nb : adj[static_cast<std::size_t>(x)])
        visit(nb.to, nb.weight);
    };

    IncrementalSssp sssp;
    sssp.reset(fresh_dist(adj, 0, {}));
    std::vector<std::pair<int, double>> inserted;
    for (int step = 0; step < 6; ++step) {
      const int v =
          1 + static_cast<int>(rng.uniform_below(
                  static_cast<std::uint64_t>(n - 1)));
      const double w = rng.uniform_real(0.1, 6.0);
      inserted.emplace_back(v, w);
      sssp.relax_insert(v, w, env_fn);
      expect_bitwise_equal(sssp.dist(), fresh_dist(adj, 0, inserted),
                           "after insert");
    }
  }
}

TEST(IncrementalSssp, RollbackRestoresExactVectors) {
  // DFS-shaped usage: a stack of insertions with checkpoints, unwound in
  // LIFO order; every unwind must restore the snapshot bitwise.
  Rng rng(37);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 10 + static_cast<int>(rng.uniform_below(16));
    const Adjacency adj = random_graph(n, 0.2, rng, trial % 2 == 0);
    const auto env_fn = [&](int x, auto&& visit) {
      for (const auto& nb : adj[static_cast<std::size_t>(x)])
        visit(nb.to, nb.weight);
    };

    IncrementalSssp sssp;
    sssp.reset(fresh_dist(adj, 0, {}));

    std::vector<IncrementalSssp::Checkpoint> marks;
    std::vector<std::vector<double>> snapshots;
    for (int depth = 0; depth < 8; ++depth) {
      marks.push_back(sssp.checkpoint());
      snapshots.push_back(sssp.dist());
      const int v =
          1 + static_cast<int>(rng.uniform_below(
                  static_cast<std::uint64_t>(n - 1)));
      sssp.relax_insert(v, rng.uniform_real(0.1, 4.0), env_fn);
    }
    while (!marks.empty()) {
      sssp.rollback(marks.back());
      expect_bitwise_equal(sssp.dist(), snapshots.back(), "after rollback");
      marks.pop_back();
      snapshots.pop_back();
    }
  }
}

TEST(IncrementalSssp, BoundedSlackZeroIsBitwiseExact) {
  // A policy that never fires (huge node cap, infinite radius) must take
  // exactly the unbounded code path's decisions: same dist vector bitwise,
  // no truncation reported, and still equal to a fresh Dijkstra.
  Rng rng(43);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8 + static_cast<int>(rng.uniform_below(24));
    const Adjacency adj = random_graph(n, 0.15, rng, trial % 3 != 0);
    const auto env_fn = [&](int x, auto&& visit) {
      for (const auto& nb : adj[static_cast<std::size_t>(x)])
        visit(nb.to, nb.weight);
    };

    IncrementalSssp bounded, unbounded;
    const std::vector<double> base = fresh_dist(adj, 0, {});
    bounded.reset(base);
    unbounded.reset(base);
    FrontierPolicy slack0;
    slack0.node_cap = static_cast<std::size_t>(n) * 16;

    std::vector<std::pair<int, double>> inserted;
    for (int step = 0; step < 6; ++step) {
      const int v =
          1 + static_cast<int>(rng.uniform_below(
                  static_cast<std::uint64_t>(n - 1)));
      const double w = rng.uniform_real(0.1, 6.0);
      inserted.emplace_back(v, w);
      const RepairOutcome outcome =
          bounded.relax_insert(v, w, slack0, env_fn);
      unbounded.relax_insert(v, w, env_fn);
      EXPECT_FALSE(outcome.truncated);
      expect_bitwise_equal(bounded.dist(), unbounded.dist(),
                           "bounded vs unbounded");
      expect_bitwise_equal(bounded.dist(), fresh_dist(adj, 0, inserted),
                           "bounded vs fresh");
    }
  }
}

TEST(IncrementalSssp, TruncatedEstimatesStayAdmissible) {
  // Bounded-frontier invariant under composition: across a stack of
  // (possibly truncated) repairs, let PF be the minimum frontier_min over
  // every truncated repair still live.  Every maintained label is an upper
  // bound on the true distance, and true(y) >= min(dist(y), PF) for every
  // node y -- exactly the path-frontier rule br_search composes along a DFS
  // path.  Checked under randomized insert/rollback interleavings against
  // fresh Dijkstras over the live insertion set.
  Rng rng(47);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 16 + static_cast<int>(rng.uniform_below(32));
    const Adjacency adj = random_graph(n, 0.2, rng, trial % 2 == 0);
    const auto env_fn = [&](int x, auto&& visit) {
      for (const auto& nb : adj[static_cast<std::size_t>(x)])
        visit(nb.to, nb.weight);
    };

    IncrementalSssp sssp;
    sssp.reset(fresh_dist(adj, 0, {}));

    struct Frame {
      IncrementalSssp::Checkpoint mark;
      std::vector<double> snapshot;
      std::vector<std::pair<int, double>> live;
      double pf;
    };
    std::vector<Frame> stack;
    std::vector<std::pair<int, double>> live;
    double pf = kInf;  // min frontier over live truncated repairs
    for (int step = 0; step < 24; ++step) {
      if (!stack.empty() && rng.uniform_below(3) == 0) {
        sssp.rollback(stack.back().mark);
        expect_bitwise_equal(sssp.dist(), stack.back().snapshot,
                             "after rollback");
        live = stack.back().live;
        pf = stack.back().pf;
        stack.pop_back();
        continue;
      }
      stack.push_back({sssp.checkpoint(), sssp.dist(), live, pf});
      const int v =
          1 + static_cast<int>(rng.uniform_below(
                  static_cast<std::uint64_t>(n - 1)));
      const double w = rng.uniform_real(0.1, 4.0);
      live.emplace_back(v, w);
      FrontierPolicy tight;
      // Tiny caps so truncation actually happens; occasionally a radius cut.
      tight.node_cap = 1 + rng.uniform_below(3);
      if (rng.uniform_below(4) == 0) tight.radius = rng.uniform_real(0.5, 6.0);
      const RepairOutcome outcome =
          sssp.relax_insert(v, w, tight, env_fn);
      if (outcome.truncated) pf = std::min(pf, outcome.frontier_min);

      const std::vector<double> truth = fresh_dist(adj, 0, live);
      for (std::size_t t = 0; t < truth.size(); ++t) {
        // Upper bound: the maintained label never undershoots the truth.
        EXPECT_GE(sssp.dist()[t], truth[t]) << "label below truth at " << t;
        // Admissible floor: min(dist, PF) never exceeds the truth.
        EXPECT_LE(std::min(sssp.dist()[t], pf), truth[t])
            << "floor above truth at " << t;
      }
      // With no live truncation the maintained vector is exact.
      if (pf == kInf)
        expect_bitwise_equal(sssp.dist(), truth, "untruncated stack");
    }
  }
}

TEST(IncrementalSssp, NonImprovingInsertIsNoOp) {
  Rng rng(41);
  const Adjacency adj = random_graph(12, 0.4, rng, true);
  const auto env_fn = [&](int x, auto&& visit) {
    for (const auto& nb : adj[static_cast<std::size_t>(x)])
      visit(nb.to, nb.weight);
  };
  IncrementalSssp sssp;
  const std::vector<double> base = fresh_dist(adj, 0, {});
  sssp.reset(base);
  const IncrementalSssp::Checkpoint mark = sssp.checkpoint();
  for (int v = 1; v < 12; ++v) sssp.relax_insert(v, base[v] + 1.0, env_fn);
  EXPECT_EQ(sssp.checkpoint(), mark) << "no-op inserts must not log";
  expect_bitwise_equal(sssp.dist(), base, "after no-op inserts");
}

}  // namespace
}  // namespace gncg
