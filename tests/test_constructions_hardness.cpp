// Tests for the NP-hardness gadgets run forwards: the agent's best response
// in the Theorem 13 / 16 gadgets encodes a minimum set cover, and in the
// Theorem 4 gadget an improving move exists exactly when a smaller vertex
// cover exists.
#include <gtest/gtest.h>

#include <algorithm>

#include "constructions/hardness_gadgets.hpp"
#include "core/best_response.hpp"
#include "core/equilibrium.hpp"
#include "graph/dijkstra.hpp"
#include "npc/set_cover.hpp"
#include "npc/vertex_cover.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

SetCoverInstance hand_cover_instance() {
  SetCoverInstance instance;
  instance.universe_size = 4;
  instance.sets = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};  // min cover = 2
  return instance;
}

void expect_gadget_encodes_min_cover(const SetCoverGadget& gadget) {
  const auto br = exact_best_response(gadget.game, gadget.profile, gadget.agent);
  // (1) best response buys only set nodes,
  const auto cover = gadget_strategy_to_cover(gadget, br.strategy);
  // (2) the bought sets cover the universe,
  EXPECT_TRUE(is_cover(gadget.instance, cover));
  // (3) and exactly as many sets as the exact minimum.
  const auto exact = exact_min_set_cover(gadget.instance);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(cover.size(), exact.chosen.size());
}

TEST(Theorem13Gadget, HandInstanceEncodesMinimumCover) {
  expect_gadget_encodes_min_cover(theorem13_gadget(hand_cover_instance()));
}

TEST(Theorem13Gadget, RandomInstancesEncodeMinimumCovers) {
  Rng rng(1001);
  for (int trial = 0; trial < 4; ++trial) {
    const auto instance = random_set_cover(4, 3, 0.4, rng);
    expect_gadget_encodes_min_cover(theorem13_gadget(instance));
  }
}

TEST(Theorem13Gadget, HostIsATreeMetric) {
  const auto gadget = theorem13_gadget(hand_cover_instance());
  EXPECT_EQ(gadget.game.host().declared_model(), ModelClass::kTree);
  EXPECT_TRUE(gadget.game.host().is_metric());
}

TEST(Theorem13Gadget, AgentDistancesMatchPaperValues) {
  // The proof's anchor values: w(u, a_i) = L, d_G(u, a_i) = 2L - beta and
  // d_G(u, p_j) = 3L - beta (up to the eps arc slack).
  const SetCoverGadgetParams params;
  const auto gadget = theorem13_gadget(hand_cover_instance(), params);
  const auto network = built_graph(gadget.game, gadget.profile);
  const auto from_u = sssp(network, gadget.agent);
  for (int a : gadget.set_nodes) {
    EXPECT_NEAR(gadget.game.weight(gadget.agent, a), params.L, 1e-9);
    EXPECT_NEAR(from_u.dist[static_cast<std::size_t>(a)],
                2.0 * params.L - params.beta, 1e-9);
  }
  for (int p : gadget.element_nodes)
    EXPECT_NEAR(from_u.dist[static_cast<std::size_t>(p)],
                3.0 * params.L - params.beta,
                2.0 * params.eps + 1e-9);
}

TEST(Theorem13Gadget, RejectsBadParameters) {
  SetCoverGadgetParams params;
  params.beta = params.L;  // violates beta < L/3
  EXPECT_THROW(theorem13_gadget(hand_cover_instance(), params),
               ContractViolation);
}

TEST(Theorem16Gadget, EncodesMinimumCoverUnderEuclideanNorm) {
  expect_gadget_encodes_min_cover(theorem16_gadget(hand_cover_instance(), 2.0));
}

TEST(Theorem16Gadget, EncodesMinimumCoverUnderOneNorm) {
  expect_gadget_encodes_min_cover(theorem16_gadget(hand_cover_instance(), 1.0));
}

TEST(Theorem16Gadget, RandomInstancesAcrossNorms) {
  Rng rng(1013);
  for (int trial = 0; trial < 3; ++trial) {
    const auto instance = random_set_cover(4, 3, 0.45, rng);
    const double p = trial == 0 ? 1.0 : (trial == 1 ? 2.0 : 3.0);
    expect_gadget_encodes_min_cover(theorem16_gadget(instance, p));
  }
}

TEST(Theorem16Gadget, BlockerGeometryMatchesPaper) {
  // d_G(u, a_i) = 2L - beta via the opposite-ray blocker.
  const SetCoverGadgetParams params;
  const auto gadget = theorem16_gadget(hand_cover_instance(), 2.0, params);
  const int m = static_cast<int>(gadget.instance.set_count());
  for (int i = 0; i < m; ++i) {
    const int a = gadget.set_nodes[static_cast<std::size_t>(i)];
    const int b = 1 + m + i;  // blocker layout in the builder
    EXPECT_NEAR(gadget.game.weight(gadget.agent, b),
                (params.L - params.beta) / 2.0, 1e-9);
    EXPECT_NEAR(gadget.game.weight(b, a), (params.L - params.beta) / 2.0 + params.L,
                1e-6);
  }
}

// ---------------------------------------------------------------- Thm 4

VertexCoverInstance hand_vc_instance() {
  // Path 0-1-2-3: minimum vertex cover {1, 2} of size 2.
  VertexCoverInstance instance;
  instance.n = 4;
  instance.edges = {{0, 1}, {1, 2}, {2, 3}};
  return instance;
}

TEST(Theorem4Gadget, AgentCostMatchesFormula) {
  const auto instance = hand_vc_instance();
  const auto gadget = theorem4_gadget(instance, {1, 2});
  EXPECT_NEAR(agent_cost(gadget.game, gadget.profile, gadget.agent),
              theorem4_agent_cost_formula(instance, 2), 1e-9);
  // A non-minimal cover costs one more per extra vertex.
  const auto bigger = theorem4_gadget(instance, {0, 1, 2});
  EXPECT_NEAR(agent_cost(bigger.game, bigger.profile, bigger.agent),
              theorem4_agent_cost_formula(instance, 3), 1e-9);
}

TEST(Theorem4Gadget, MinimumCoverMakesAgentBestResponse) {
  const auto instance = hand_vc_instance();
  const auto minimum = exact_min_vertex_cover(instance);
  const auto gadget = theorem4_gadget(instance, minimum);
  EXPECT_FALSE(
      has_improving_deviation(gadget.game, gadget.profile, gadget.agent));
}

TEST(Theorem4Gadget, NonMinimumCoverLeavesImprovingMove) {
  const auto instance = hand_vc_instance();
  const auto gadget = theorem4_gadget(instance, {0, 1, 2});  // size 3 > 2
  EXPECT_TRUE(
      has_improving_deviation(gadget.game, gadget.profile, gadget.agent));
}

TEST(Theorem4Gadget, EquivalenceOnRandomSubcubicGraphs) {
  Rng rng(1021);
  for (int trial = 0; trial < 3; ++trial) {
    const auto instance = random_subcubic_graph(4, rng);
    const auto minimum = exact_min_vertex_cover(instance);
    // u plays a minimum cover: no improving move.
    const auto tight = theorem4_gadget(instance, minimum);
    EXPECT_FALSE(
        has_improving_deviation(tight.game, tight.profile, tight.agent))
        << "trial " << trial;
    // u plays a strictly larger cover: improving move exists.
    if (minimum.size() < static_cast<std::size_t>(instance.n)) {
      std::vector<int> bigger = minimum;
      for (int v = 0; v < instance.n; ++v) {
        if (std::find(bigger.begin(), bigger.end(), v) == bigger.end()) {
          bigger.push_back(v);
          break;
        }
      }
      const auto loose = theorem4_gadget(instance, bigger);
      EXPECT_TRUE(
          has_improving_deviation(loose.game, loose.profile, loose.agent))
          << "trial " << trial;
    }
  }
}

TEST(Theorem4Gadget, OtherAgentsPlayBestResponses) {
  // The proof asserts every agent but u is already at a best response.
  VertexCoverInstance tiny;
  tiny.n = 3;
  tiny.edges = {{0, 1}, {1, 2}};
  const auto gadget = theorem4_gadget(tiny, {1});
  for (int agent = 0; agent < gadget.game.node_count(); ++agent) {
    if (agent == gadget.agent) continue;
    EXPECT_FALSE(has_improving_deviation(gadget.game, gadget.profile, agent))
        << "agent " << agent;
  }
}

TEST(Theorem4Gadget, RejectsNonCovers) {
  EXPECT_THROW(theorem4_gadget(hand_vc_instance(), {0}), ContractViolation);
}

TEST(Theorem4Gadget, HostIsOneTwo) {
  const auto gadget = theorem4_gadget(hand_vc_instance(), {1, 2});
  EXPECT_TRUE(gadget.game.host().is_one_two());
}

}  // namespace
}  // namespace gncg
