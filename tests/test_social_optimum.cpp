// Tests for social-optimum computation: exact enumeration, Algorithm 1
// (Theorem 6), the tree optimum (Corollary 3), heuristics and lower bounds.
#include <gtest/gtest.h>

#include "core/social_optimum.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

TEST(ExactOptimum, TinyAlphaRealizesHostDistances) {
  // With alpha ~ 0 edges are nearly free, so OPT realizes every host
  // shortest-path distance exactly (on a metric-repaired host redundant
  // edges do not shorten anything, so OPT need not be complete).
  Rng rng(401);
  const Game game(random_metric_host(5, rng), 0.01);
  const auto opt = exact_social_optimum(game);
  double closure_sum = 0.0;
  for (int u = 0; u < 5; ++u) closure_sum += game.host_distance_sum(u);
  EXPECT_NEAR(opt.cost.dist_cost, closure_sum, 1e-9);
}

TEST(ExactOptimum, MstWinsForHugeAlpha) {
  // With alpha huge, edge cost dominates; OPT must be a spanning tree
  // (and, on a metric host, it is the MST).
  Rng rng(409);
  const Game game(random_metric_host(5, rng), 1e6);
  const auto opt = exact_social_optimum(game);
  WeightedGraph g(5);
  for (const auto& e : opt.edges) g.add_edge(e.u, e.v, e.weight);
  EXPECT_TRUE(is_tree(g));
  const auto mst = mst_network(game);
  EXPECT_LE(opt.cost.total(), mst.cost.total() + 1e-9);
  // At this alpha the edge bill dominates: OPT's total edge weight cannot
  // exceed the MST's (otherwise the MST would be cheaper).
  EXPECT_LE(opt.cost.edge_cost, mst.cost.edge_cost + 1e-6);
}

TEST(ExactOptimum, NeverBeatenByCandidateNetworks) {
  Rng rng(419);
  for (int trial = 0; trial < 6; ++trial) {
    const Game game(random_metric_host(5, rng), rng.uniform_real(0.2, 5.0));
    const auto opt = exact_social_optimum(game);
    EXPECT_LE(opt.cost.total(), mst_network(game).cost.total() + 1e-9);
    EXPECT_LE(opt.cost.total(),
              local_search_optimum(game).cost.total() + 1e-9);
    EXPECT_GE(opt.cost.total(), social_optimum_lower_bound(game) - 1e-9);
  }
}

TEST(Algorithm1, RemovesExactlyTriangleTwoEdges) {
  // Host: 1-edges (0,1),(1,2); all others 2.  The 2-edge (0,2) closes a
  // 1-1-2 triangle and must go; 2-edges to node 3 stay.
  DistanceMatrix weights(4, 2.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(1, 2, 1.0);
  const Game game(
      HostGraph::from_weights(std::move(weights), ModelClass::kOneTwo), 0.8);
  const auto opt = algorithm1_one_two(game);
  WeightedGraph g(4);
  for (const auto& e : opt.edges) g.add_edge(e.u, e.v, e.weight);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Algorithm1, MatchesExactOptimumForAlphaBelowOne) {
  // Theorem 6: Algorithm 1 is optimal for alpha <= 1 on 1-2 hosts.
  Rng rng(421);
  for (int trial = 0; trial < 8; ++trial) {
    const double alpha = rng.uniform_real(0.05, 1.0);
    const Game game(random_one_two_host(5, rng.uniform01(), rng), alpha);
    const auto alg1 = algorithm1_one_two(game);
    const auto exact = exact_social_optimum(game);
    EXPECT_NEAR(alg1.cost.total(), exact.cost.total(), 1e-9)
        << "alpha=" << alpha << " trial=" << trial;
  }
}

TEST(Algorithm1, RejectsNonOneTwoHosts) {
  Rng rng(431);
  const Game game(random_metric_host(4, rng), 0.5);
  EXPECT_THROW(algorithm1_one_two(game), ContractViolation);
}

TEST(TreeOptimum, MatchesExactOptimumOnTreeMetrics) {
  // Corollary 3: the defining tree is the social optimum of the T-GNCG.
  Rng rng(433);
  for (int trial = 0; trial < 6; ++trial) {
    const auto tree = random_tree(5, rng, 1.0, 5.0);
    const Game game(HostGraph::from_tree(tree), rng.uniform_real(0.5, 4.0));
    const auto tree_opt = tree_optimum(game);
    const auto exact = exact_social_optimum(game);
    EXPECT_NEAR(tree_opt.cost.total(), exact.cost.total(), 1e-9)
        << "trial " << trial;
  }
}

TEST(TreeOptimum, RequiresTreeProvenance) {
  Rng rng(439);
  const Game game(random_metric_host(4, rng), 1.0);
  EXPECT_THROW(tree_optimum(game), ContractViolation);
}

TEST(LocalSearchOptimum, CloseToExactOnSmallInstances) {
  Rng rng(443);
  for (int trial = 0; trial < 5; ++trial) {
    const Game game(random_metric_host(5, rng), rng.uniform_real(0.3, 3.0));
    const auto heuristic = local_search_optimum(game);
    const auto exact = exact_social_optimum(game);
    EXPECT_LE(heuristic.cost.total(), 1.2 * exact.cost.total() + 1e-9)
        << "local search strayed far from optimal";
  }
}

TEST(LowerBound, IsAdmissible) {
  Rng rng(449);
  for (int trial = 0; trial < 5; ++trial) {
    const Game game(random_one_two_host(5, 0.5, rng),
                    rng.uniform_real(0.2, 4.0));
    EXPECT_LE(social_optimum_lower_bound(game),
              exact_social_optimum(game).cost.total() + 1e-9);
  }
}

TEST(ExactOptimum, HonorsSubsetCap) {
  Rng rng(457);
  const Game game(random_metric_host(8, rng), 1.0);  // 28 pairs > default cap
  EXPECT_THROW(exact_social_optimum(game), ContractViolation);
}

}  // namespace
}  // namespace gncg
