// Unit tests for spanner machinery: stretch, greedy t-spanner, and the
// exact minimum-weight 3/2-spanner on 1-2 hosts (Theorem 5 substrate).
#include <gtest/gtest.h>

#include "graph/apsp.hpp"
#include "graph/mst.hpp"
#include "graph/spanner.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

TEST(Stretch, IdentityWhenSubgraphEqualsHost) {
  DistanceMatrix host(3, 0.0);
  host.set_symmetric(0, 1, 1.0);
  host.set_symmetric(1, 2, 2.0);
  host.set_symmetric(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(max_stretch(host, host), 1.0);
  EXPECT_TRUE(is_k_spanner(host, host, 1.0));
}

TEST(Stretch, DetectsDetours) {
  DistanceMatrix host(3, 0.0);
  host.set_symmetric(0, 1, 1.0);
  host.set_symmetric(1, 2, 1.0);
  host.set_symmetric(0, 2, 1.0);
  DistanceMatrix sub(3, 0.0);  // path 0-1-2 only
  sub.set_symmetric(0, 1, 1.0);
  sub.set_symmetric(1, 2, 1.0);
  sub.set_symmetric(0, 2, 2.0);
  EXPECT_DOUBLE_EQ(max_stretch(host, sub), 2.0);
  EXPECT_TRUE(is_k_spanner(host, sub, 2.0));
  EXPECT_FALSE(is_k_spanner(host, sub, 1.5));
}

TEST(Stretch, InfiniteWhenSubgraphDisconnects) {
  DistanceMatrix host(2, 1.0);
  DistanceMatrix sub(2);  // disconnected
  EXPECT_EQ(max_stretch(host, sub), kInf);
}

TEST(Stretch, ZeroHostDistancePairs) {
  DistanceMatrix host(2, 0.0);
  host.set_symmetric(0, 1, 0.0);
  DistanceMatrix sub_zero(2, 0.0);
  sub_zero.set_symmetric(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(max_stretch(host, sub_zero), 1.0);
  DistanceMatrix sub_positive(2, 0.0);
  sub_positive.set_symmetric(0, 1, 1.0);
  EXPECT_EQ(max_stretch(host, sub_positive), kInf);
}

TEST(GreedySpanner, RespectsStretchGuarantee) {
  Rng rng(5);
  for (double t : {1.5, 2.0, 3.0}) {
    const auto host = random_metric_host(8, rng);
    const auto edges = greedy_spanner(host.weights(), t);
    WeightedGraph g(host.node_count());
    for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
    DistanceMatrix host_closure = host.weights();
    floyd_warshall(host_closure);
    EXPECT_TRUE(is_k_spanner(host_closure, apsp(g), t))
        << "greedy spanner violated t=" << t;
  }
}

TEST(GreedySpanner, StretchOneKeepsShortestPathEdges) {
  // With t = 1, the spanner must preserve all host distances exactly.
  Rng rng(11);
  const auto host = random_metric_host(7, rng);
  const auto edges = greedy_spanner(host.weights(), 1.0);
  WeightedGraph g(host.node_count());
  for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
  const auto dist = apsp(g);
  for (int u = 0; u < host.node_count(); ++u)
    for (int v = u + 1; v < host.node_count(); ++v)
      EXPECT_NEAR(dist.at(u, v), host.weight(u, v), 1e-9);
}

TEST(OneTwoSpanner, ContainsAllOneEdges) {
  Rng rng(7);
  const auto host = random_one_two_host(7, 0.4, rng);
  const auto edges = min_weight_three_halves_spanner_onetwo(host.weights());
  WeightedGraph g(host.node_count());
  for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
  for (int u = 0; u < host.node_count(); ++u)
    for (int v = u + 1; v < host.node_count(); ++v)
      if (host.weight(u, v) == 1.0) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(OneTwoSpanner, IsAThreeHalvesSpanner) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    const auto host = random_one_two_host(6, 0.35, rng);
    const auto edges = min_weight_three_halves_spanner_onetwo(host.weights());
    WeightedGraph g(host.node_count());
    for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
    EXPECT_TRUE(is_k_spanner(host.weights(), apsp(g), 1.5));
  }
}

TEST(OneTwoSpanner, MatchesBruteForceMinimumWeight) {
  // Exhaustive reference: try all subsets of 2-edges on tiny hosts.
  Rng rng(13);
  for (int trial = 0; trial < 4; ++trial) {
    const auto host = random_one_two_host(5, 0.4, rng);
    const int n = host.node_count();
    std::vector<Edge> one_edges, two_edges;
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        (host.weight(u, v) == 1.0 ? one_edges : two_edges)
            .push_back({u, v, host.weight(u, v)});
    double best_weight = kInf;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << two_edges.size());
         ++mask) {
      WeightedGraph g(n);
      for (const auto& e : one_edges) g.add_edge(e.u, e.v, 1.0);
      for (std::size_t i = 0; i < two_edges.size(); ++i)
        if ((mask >> i) & 1U)
          g.add_edge(two_edges[i].u, two_edges[i].v, 2.0);
      if (is_k_spanner(host.weights(), apsp(g), 1.5))
        best_weight = std::min(best_weight, g.total_weight());
    }
    const auto exact = min_weight_three_halves_spanner_onetwo(host.weights());
    EXPECT_DOUBLE_EQ(edge_list_weight(exact), best_weight);
  }
}

TEST(OneTwoSpanner, RejectsNonOneTwoHosts) {
  DistanceMatrix weights(3, 3.0);
  EXPECT_THROW(min_weight_three_halves_spanner_onetwo(weights),
               ContractViolation);
}

}  // namespace
}  // namespace gncg
