// Tests for the instrumentation layer (support/instrument.hpp):
//
//  * the counter registry primitives: thread-local bumps, ThreadFrame
//    deltas, cross-thread aggregation at metrics_snapshot();
//  * the br_search accounting invariant -- every DFS expansion evaluates
//    exactly once and every search evaluates the empty set once, so
//    delta(evaluations) == delta(expansions) + delta(searches), and the
//    instrument's evaluation count equals the per-result counts the search
//    already reported;
//  * the sweep metrics sink: per-job counter records are byte-identical
//    for any runner thread count (jobs are pinned while collecting), the
//    JSONL is schema-tagged and carries every counter by name;
//  * the trace exporter writes well-formed JSON.
//
// Every test is GNCG_INSTRUMENT=OFF-safe: assertions that need live
// counters are guarded on instrument::compiled_in(), and the
// thread-count-invariance / schema tests hold verbatim under OFF (all
// counters read 0 on both sides).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "metric/host_graph.hpp"
#include "support/instrument.hpp"
#include "support/rng.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"

namespace gncg {
namespace {

namespace ins = ::gncg::instrument;

std::uint64_t at(const ins::CounterArray& counters, ins::Counter counter) {
  return counters[static_cast<std::size_t>(counter)];
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "gncg_instrument_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> sorted_lines(const std::string& path) {
  auto lines = read_lines(path);
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- registry primitives --------------------------------------------------

TEST(Instrument, CounterNamesAreUniqueStableIdentifiers) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < ins::kCounterCount; ++i) {
    const std::string name = ins::counter_name(static_cast<ins::Counter>(i));
    ASSERT_FALSE(name.empty()) << i;
    for (char c : name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), ins::kCounterCount);
}

TEST(Instrument, ThreadFrameSeesOwnBumpsOnly) {
  if (!ins::compiled_in()) GTEST_SKIP() << "GNCG_INSTRUMENT=OFF";
  const ins::ThreadFrame frame;
  ins::bump(ins::Counter::kTtProbes, 3);
  ins::bump(ins::Counter::kTtProbes);
  const ins::CounterArray delta = frame.delta();
  EXPECT_EQ(at(delta, ins::Counter::kTtProbes), 4u);
  EXPECT_EQ(at(delta, ins::Counter::kTtCollisions), 0u);
}

TEST(Instrument, SnapshotAggregatesAcrossThreads) {
  if (!ins::compiled_in()) GTEST_SKIP() << "GNCG_INSTRUMENT=OFF";
  const std::uint64_t before = ins::counter_total(ins::Counter::kTtCollisions);
  std::thread other([] { ins::bump(ins::Counter::kTtCollisions, 7); });
  other.join();
  ins::bump(ins::Counter::kTtCollisions, 2);
  EXPECT_EQ(ins::counter_total(ins::Counter::kTtCollisions) - before, 9u);
  // The foreign thread's bumps are invisible to this thread's own slice.
  const ins::MetricsSnapshot snapshot = ins::metrics_snapshot();
  EXPECT_GE(at(snapshot.counters, ins::Counter::kTtCollisions), 9u);
  EXPECT_GE(snapshot.counter_blocks, 2u);
}

TEST(Instrument, CompiledOutEverythingReadsZero) {
  if (ins::compiled_in()) GTEST_SKIP() << "GNCG_INSTRUMENT=ON";
  ins::bump(ins::Counter::kTtProbes, 100);
  EXPECT_EQ(ins::counter_total(ins::Counter::kTtProbes), 0u);
  const ins::MetricsSnapshot snapshot = ins::metrics_snapshot();
  for (std::size_t i = 0; i < ins::kCounterCount; ++i)
    EXPECT_EQ(snapshot.counters[i], 0u);
  const ins::ThreadFrame frame;
  for (std::size_t i = 0; i < ins::kCounterCount; ++i)
    EXPECT_EQ(frame.delta()[i], 0u);
}

// --- br_search accounting invariant ---------------------------------------

TEST(Instrument, BrSearchExpansionAccountingIsExact) {
  if (!ins::compiled_in()) GTEST_SKIP() << "GNCG_INSTRUMENT=OFF";
  Rng rng(4242);
  const Game game(random_one_two_host(10, 0.5, rng), 1.0);
  StrategyProfile profile(10);
  for (int i = 0; i + 1 < 10; ++i) profile.add_buy(i, i + 1);
  DeviationEngine engine(game, std::move(profile));

  const ins::MetricsSnapshot before = ins::metrics_snapshot();
  std::uint64_t reported_evaluations = 0;
  constexpr int kAgents = 6;
  for (int u = 0; u < kAgents; ++u) {
    BestResponseOptions options;  // full mode: every branch fully explored
    const BestResponseResult br = exact_best_response(engine, u, options);
    reported_evaluations += br.evaluations;
  }
  const ins::CounterArray delta =
      ins::counters_delta(before, ins::metrics_snapshot());

  // One driver invocation per agent, and the exact pairing: each expansion
  // evaluates once, each search evaluates the empty set once.
  EXPECT_EQ(at(delta, ins::Counter::kBrSearches), kAgents);
  EXPECT_EQ(at(delta, ins::Counter::kBrEvaluations),
            at(delta, ins::Counter::kBrExpansions) +
                at(delta, ins::Counter::kBrSearches));
  // The instrument and the search's own result rows agree to the event.
  EXPECT_EQ(at(delta, ins::Counter::kBrEvaluations), reported_evaluations);
  EXPECT_GT(at(delta, ins::Counter::kBrExpansions), 0u);
}

// --- sweep metrics sink ---------------------------------------------------

/// br_certify + ne_sampling across two hosts: the two scenarios the
/// determinism probe pins down (both fan out internally when unpinned).
SweepPlan metrics_plan() {
  SweepPlan plan;
  plan.scenarios = {"br_certify", "ne_sampling"};
  plan.hosts = {"dense", "tree"};
  plan.ns = {6};
  plan.alphas = {1.0};
  plan.seeds = 2;
  plan.extras = {{"settle_rounds", 1.0},
                 {"restarts", 2.0},
                 {"max_moves", 60.0},
                 {"schedulers", 2.0},
                 {"rules", 2.0}};
  return plan;
}

TEST(Instrument, MetricsRecordsAreThreadCountInvariant) {
  const std::string path1 = temp_path("metrics1.jsonl");
  const std::string pathN = temp_path("metricsN.jsonl");

  SweepRunnerOptions serial;
  serial.threads = 1;
  serial.metrics_path = path1;
  const SweepReport report1 = run_sweep(metrics_plan(), serial);

  SweepRunnerOptions parallel;
  parallel.threads = 4;
  parallel.metrics_path = pathN;
  const SweepReport reportN = run_sweep(metrics_plan(), parallel);

  ASSERT_EQ(report1.executed, 8u);  // 2 scenarios x 2 hosts x 2 seeds
  ASSERT_EQ(reportN.executed, 8u);
  // The whole file -- header and every per-job record -- is byte-identical
  // after sorting, at any thread count, with instrumentation ON or OFF.
  EXPECT_EQ(sorted_lines(path1), sorted_lines(pathN));

  // Outcome counters agree job-for-job as well.
  for (std::size_t i = 0; i < report1.outcomes.size(); ++i)
    EXPECT_EQ(report1.outcomes[i].counters, reportN.outcomes[i].counters)
        << report1.outcomes[i].point.scenario << " #"
        << report1.outcomes[i].point.point_index;

  // When compiled in, the pinned jobs must have recorded real kernel work.
  if (ins::compiled_in()) {
    std::uint64_t evaluations = 0;
    for (const auto& outcome : report1.outcomes)
      evaluations += at(outcome.counters, ins::Counter::kBrEvaluations);
    EXPECT_GT(evaluations, 0u);
  }
  std::remove(path1.c_str());
  std::remove(pathN.c_str());
}

TEST(Instrument, MetricsJsonlCarriesSchemaAndEveryCounter) {
  const std::string path = temp_path("metrics_schema.jsonl");
  SweepRunnerOptions options;
  options.threads = 1;
  options.metrics_path = path;
  const SweepReport report = run_sweep(metrics_plan(), options);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u + report.executed);  // header + executed jobs

  const auto header = JsonValue::parse(lines[0]);
  ASSERT_TRUE(header.has_value()) << lines[0];
  EXPECT_EQ(header->string_at("schema"), "gncg-sweep-metrics-1");
  EXPECT_EQ(header->number_at("jobs"), static_cast<double>(report.executed));
  const JsonValue* instrumented = header->find("instrumented");
  ASSERT_NE(instrumented, nullptr);
  EXPECT_EQ(instrumented->as_bool(), ins::compiled_in());

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto record = JsonValue::parse(lines[i]);
    ASSERT_TRUE(record.has_value()) << lines[i];
    EXPECT_EQ(record->string_at("schema"), "gncg-sweep-metrics-1");
    EXPECT_TRUE(record->find("scenario") != nullptr);
    EXPECT_TRUE(record->find("stream") != nullptr);
    const JsonValue* counters = record->find("counters");
    ASSERT_NE(counters, nullptr) << lines[i];
    // Every counter appears by its stable name; counters are integer event
    // counts and the wall-clock exclusion rule holds (no *_ms keys).
    EXPECT_EQ(counters->members().size(), ins::kCounterCount);
    for (const auto& [key, value] : counters->members()) {
      EXPECT_EQ(key.find("_ms"), std::string::npos) << key;
      EXPECT_TRUE(value.is_number()) << key;
      if (!ins::compiled_in()) EXPECT_EQ(value.as_number(), 0.0) << key;
    }
  }
  std::remove(path.c_str());
}

// --- trace export ---------------------------------------------------------

TEST(Instrument, TraceExportIsWellFormedChromeJson) {
  const std::string trace = temp_path("trace.json");
  SweepPlan plan = metrics_plan();
  plan.scenarios = {"br_certify"};
  plan.extras = {{"settle_rounds", 1.0}};
  plan.seeds = 1;
  SweepRunnerOptions options;
  options.threads = 2;
  options.trace_path = trace;
  const SweepReport report = run_sweep(plan, options);
  ASSERT_EQ(report.executed, 2u);

  const auto parsed = JsonValue::parse(read_file(trace));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  if (!ins::compiled_in()) {
    EXPECT_TRUE(parsed->items().empty());
  } else {
    // At least one complete span per executed job, plus metadata rows.
    std::size_t spans = 0;
    for (const JsonValue& event : parsed->items()) {
      const auto phase = event.string_at("ph");
      ASSERT_TRUE(phase.has_value());
      ASSERT_TRUE(event.find("pid") != nullptr);
      ASSERT_TRUE(event.find("tid") != nullptr);
      if (*phase == "X") {
        ++spans;
        EXPECT_TRUE(event.find("ts") != nullptr);
        EXPECT_TRUE(event.find("dur") != nullptr);
        EXPECT_TRUE(event.find("name") != nullptr);
      }
    }
    EXPECT_GE(spans, report.executed);
  }
  std::remove(trace.c_str());
}

}  // namespace
}  // namespace gncg
