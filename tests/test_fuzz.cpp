// Randomized differential tests ("fuzzing light"): the optimized substrate
// implementations are compared against independent reference computations
// across many random instances.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/best_response.hpp"
#include "core/dynamics.hpp"
#include "graph/apsp.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "metric/instance_io.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace gncg {
namespace {

WeightedGraph random_graph(int n, double p, Rng& rng, bool zero_weights) {
  WeightedGraph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) {
        const double w = zero_weights && rng.bernoulli(0.2)
                             ? 0.0
                             : rng.uniform_real(0.1, 9.9);
        g.add_edge(u, v, w);
      }
  return g;
}

TEST(Fuzz, DijkstraAgreesWithFloydWarshall) {
  Rng rng(1401);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_below(8));
    const auto g = random_graph(n, 0.5, rng, /*zero_weights=*/true);
    DistanceMatrix reference(n);
    for (const auto& e : g.edges()) reference.set_symmetric(e.u, e.v, e.weight);
    floyd_warshall(reference);
    const auto fast = apsp(g);
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v)
        EXPECT_NEAR(fast.at(u, v) == kInf ? -1 : fast.at(u, v),
                    reference.at(u, v) == kInf ? -1 : reference.at(u, v), 1e-9)
            << "trial " << trial << " pair " << u << "," << v;
  }
}

TEST(Fuzz, NodeSetMatchesStdSetReference) {
  Rng rng(1409);
  NodeSet set(200);
  std::set<int> reference;
  for (int op = 0; op < 3000; ++op) {
    const int v = static_cast<int>(rng.uniform_below(200));
    switch (rng.uniform_below(3)) {
      case 0:
        set.insert(v);
        reference.insert(v);
        break;
      case 1:
        set.erase(v);
        reference.erase(v);
        break;
      default:
        EXPECT_EQ(set.contains(v), reference.count(v) > 0) << "op " << op;
    }
    if (op % 500 == 0) {
      EXPECT_EQ(set.size(), static_cast<int>(reference.size()));
      EXPECT_EQ(set.to_vector(),
                std::vector<int>(reference.begin(), reference.end()));
    }
  }
}

TEST(Fuzz, ExactBestResponseMatchesBruteForceWithZeroWeights) {
  // Zero-weight edges (allowed by the general model, used by the Theorem 20
  // remark) must not confuse the pruned search.
  Rng rng(1423);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4;
    DistanceMatrix weights(n, 0.0);
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        weights.set_symmetric(
            u, v, rng.bernoulli(0.3) ? 0.0 : rng.uniform_real(0.5, 5.0));
    const Game game(HostGraph::from_weights(std::move(weights)),
                    rng.uniform_real(0.3, 3.0));
    const auto profile = random_profile(game, rng);
    for (int u = 0; u < n; ++u) {
      const auto exact = exact_best_response(game, profile, u);
      const auto brute = testing::brute_force_best_response(game, profile, u);
      EXPECT_NEAR(exact.cost, brute.cost, 1e-9)
          << "trial " << trial << " agent " << u;
    }
  }
}

TEST(Fuzz, SocialCostIndependentOfThreadCount) {
  Rng rng(1427);
  const Game game(random_metric_host(40, rng), 1.0);
  const auto profile = random_profile(game, rng);
  set_default_thread_count(1);
  const double serial = social_cost(game, profile);
  set_default_thread_count(0);
  const double parallel = social_cost(game, profile);
  EXPECT_DOUBLE_EQ(serial, parallel);
}

TEST(Fuzz, HostRoundTripAcrossModels) {
  Rng rng(1429);
  for (int flavor = 0; flavor < 4; ++flavor) {
    HostGraph host = [&] {
      switch (flavor) {
        case 0: return random_metric_host(7, rng);
        case 1: return random_one_two_host(7, 0.5, rng);
        case 2: return random_general_host(7, rng);
        default: return random_one_inf_host(7, 0.5, rng);
      }
    }();
    std::stringstream buffer;
    save_host(buffer, host);
    const auto loaded = load_host(buffer);
    for (int u = 0; u < 7; ++u)
      for (int v = 0; v < 7; ++v)
        EXPECT_EQ(loaded.weight(u, v), host.weight(u, v))
            << "flavor " << flavor;
  }
}

TEST(Fuzz, BridgesMatchDeletionConnectivityCheck) {
  Rng rng(1433);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform_below(5));
    auto g = random_graph(n, 0.45, rng, /*zero_weights=*/false);
    if (!is_connected(g)) continue;
    const auto cut = bridges(g);
    std::set<std::pair<int, int>> bridge_set;
    for (const auto& e : cut) bridge_set.insert({e.u, e.v});
    for (const auto& e : g.edges()) {
      g.remove_edge(e.u, e.v);
      const bool disconnects = !is_connected(g);
      g.add_edge(e.u, e.v, e.weight);
      EXPECT_EQ(disconnects, bridge_set.count({e.u, e.v}) > 0)
          << "edge (" << e.u << "," << e.v << ") trial " << trial;
    }
  }
}

TEST(Fuzz, DynamicsAreDeterministicGivenSeed) {
  Rng rng(1439);
  const Game game(random_metric_host(6, rng), 1.0);
  Rng start_rng_a(77), start_rng_b(77);
  DynamicsOptions options;
  options.scheduler = SchedulerKind::kRandomOrder;
  options.seed = 123;
  options.max_moves = 2000;
  const auto a = run_dynamics(game, random_profile(game, start_rng_a), options);
  const auto b = run_dynamics(game, random_profile(game, start_rng_b), options);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.final_profile, b.final_profile);
}

TEST(Fuzz, ProfileHashHasNoEasyCollisions) {
  Rng rng(1447);
  const int n = 6;
  std::set<std::uint64_t> hashes;
  std::vector<StrategyProfile> profiles;
  const Game game(random_metric_host(n, rng), 1.0);
  for (int i = 0; i < 300; ++i) {
    auto profile = random_profile(game, rng, 0.3);
    bool duplicate = false;
    for (const auto& other : profiles)
      if (other == profile) duplicate = true;
    if (duplicate) continue;
    const auto [it, inserted] = hashes.insert(profile.hash());
    EXPECT_TRUE(inserted) << "hash collision between distinct profiles";
    profiles.push_back(std::move(profile));
  }
}

}  // namespace
}  // namespace gncg
