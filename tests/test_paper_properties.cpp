// Cross-cutting property tests of the paper's structural theorems on
// randomized instances: Theorem 12 (T-GNCG equilibria are trees), Theorems
// 2/3 and Corollary 2 (approximation chains), Theorem 5 (minimum-weight
// 3/2-spanners admit NE ownership) and Lemma 3 (1-edges at alpha < 1).
#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/ownership.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "graph/graph_algos.hpp"
#include "graph/spanner.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

/// Dynamics to convergence; returns nullopt-like empty optional via bool.
bool converge(const Game& game, StrategyProfile& out, Rng& rng,
              MoveRule rule = MoveRule::kBestResponse) {
  DynamicsOptions options;
  options.rule = rule;
  options.max_moves = 5000;
  options.seed = rng();
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  if (!run.converged) return false;
  out = run.final_profile;
  return true;
}

TEST(Theorem12, TreeMetricEquilibriaAreTrees) {
  Rng rng(1101);
  int verified = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto tree = random_tree(6, rng, 1.0, 8.0);
    const Game game(HostGraph::from_tree(tree), rng.uniform_real(0.4, 3.0));
    StrategyProfile ne(6);
    if (!converge(game, ne, rng)) continue;
    if (!is_nash_equilibrium(game, ne)) continue;
    ++verified;
    EXPECT_TRUE(is_tree(built_graph(game, ne)))
        << "Theorem 12 violated on trial " << trial;
  }
  EXPECT_GE(verified, 3) << "too few NE reached to be meaningful";
}

TEST(Corollary3, DefiningTreeIsNashUnderSomeOwnership) {
  // Corollary 3: the metric-defining tree is both OPT and a NE.  The
  // canonical parent-buys-child ownership (here: smaller id buys) may not
  // be stable, so search the 2^(n-1) ownership assignments.
  Rng rng(1103);
  for (int trial = 0; trial < 4; ++trial) {
    const auto tree = random_tree(5, rng, 1.0, 6.0);
    const Game game(HostGraph::from_tree(tree), rng.uniform_real(0.5, 2.5));
    const auto owned = find_nash_ownership(game, tree.edges());
    EXPECT_TRUE(owned.has_value()) << "trial " << trial;
    if (owned.has_value())
      EXPECT_TRUE(is_nash_equilibrium(game, *owned));
  }
}

TEST(Theorem2, AddOnlyEquilibriaAreAlphaPlusOneGreedy) {
  Rng rng(1109);
  for (double alpha : {0.5, 1.0, 2.0}) {
    for (int trial = 0; trial < 3; ++trial) {
      const Game game(random_metric_host(6, rng), alpha);
      DynamicsOptions options;
      options.rule = MoveRule::kBestAddition;
      options.max_moves = 5000;
      // Start connected: the empty profile is a degenerate all-infinite AE
      // outside Lemma 1 / Theorem 2's implicit domain.
      const auto run = run_dynamics(game, random_profile(game, rng), options);
      ASSERT_TRUE(run.converged);
      EXPECT_LE(greedy_approx_factor(game, run.final_profile),
                alpha + 1.0 + 1e-6)
          << "Theorem 2 violated at alpha=" << alpha;
    }
  }
}

TEST(Theorem3, GreedyEquilibriaAreThreeApproximateNash) {
  Rng rng(1117);
  for (int trial = 0; trial < 6; ++trial) {
    const Game game(random_metric_host(6, rng), rng.uniform_real(0.4, 2.5));
    StrategyProfile ge(6);
    if (!converge(game, ge, rng, MoveRule::kBestSingleMove)) continue;
    ASSERT_TRUE(is_greedy_equilibrium(game, ge));
    EXPECT_LE(nash_approx_factor(game, ge), 3.0 + 1e-6)
        << "Theorem 3 violated on trial " << trial;
  }
}

TEST(Corollary2, AddOnlyEquilibriaAreThreeAlphaPlusOneNash) {
  Rng rng(1123);
  for (double alpha : {0.5, 1.0, 2.0}) {
    const Game game(random_metric_host(6, rng), alpha);
    DynamicsOptions options;
    options.rule = MoveRule::kBestAddition;
    options.max_moves = 5000;
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    ASSERT_TRUE(run.converged);
    EXPECT_LE(nash_approx_factor(game, run.final_profile),
              3.0 * (alpha + 1.0) + 1e-6)
        << "Corollary 2 violated at alpha=" << alpha;
  }
}

TEST(Theorem5, MinimumSpannerAdmitsNashOwnership) {
  // For 1/2 <= alpha <= 1 on 1-2 hosts, the minimum-weight 3/2-spanner has
  // an ownership assignment in NE.
  Rng rng(1129);
  for (double alpha : {0.5, 0.75, 1.0}) {
    for (int trial = 0; trial < 2; ++trial) {
      const auto host = random_one_two_host(5, 0.45, rng);
      const Game game(HostGraph(host), alpha);
      const auto spanner =
          min_weight_three_halves_spanner_onetwo(host.weights());
      const auto owned = find_nash_ownership(game, spanner);
      EXPECT_TRUE(owned.has_value())
          << "Theorem 5 ownership missing at alpha=" << alpha << " trial "
          << trial;
    }
  }
}

TEST(Lemma3, OneEdgesAlwaysBoughtBelowHalfOne) {
  // For alpha < 1, any NE of the 1-2-GNCG contains every 1-edge.
  Rng rng(1151);
  for (int trial = 0; trial < 5; ++trial) {
    const Game game(random_one_two_host(5, 0.5, rng),
                    rng.uniform_real(0.1, 0.95));
    StrategyProfile ne(5);
    if (!converge(game, ne, rng)) continue;
    if (!is_nash_equilibrium(game, ne)) continue;
    for (int u = 0; u < 5; ++u)
      for (int v = u + 1; v < 5; ++v)
        if (game.weight(u, v) == 1.0)
          EXPECT_TRUE(ne.has_edge(u, v))
              << "missing 1-edge (" << u << "," << v << ") in NE";
  }
}

TEST(Theorem1, MetricEquilibriaRespectPoaBound) {
  // Any sampled NE on a metric host costs at most (alpha+2)/2 times OPT.
  Rng rng(1153);
  for (int trial = 0; trial < 5; ++trial) {
    const double alpha = rng.uniform_real(0.3, 4.0);
    const Game game(random_metric_host(5, rng), alpha);
    StrategyProfile ne(5);
    if (!converge(game, ne, rng)) continue;
    if (!is_nash_equilibrium(game, ne)) continue;
    const auto opt = exact_social_optimum(game);
    EXPECT_LE(social_cost(game, ne),
              paper::metric_poa(alpha) * opt.cost.total() + 1e-6)
        << "Theorem 1 violated, alpha=" << alpha;
  }
}

TEST(Theorem20, GeneralEquilibriaRespectSquaredBound) {
  Rng rng(1163);
  for (int trial = 0; trial < 5; ++trial) {
    const double alpha = rng.uniform_real(0.3, 3.0);
    const Game game(random_general_host(5, rng), alpha);
    StrategyProfile ne(5);
    if (!converge(game, ne, rng)) continue;
    if (!is_nash_equilibrium(game, ne)) continue;
    const auto opt = exact_social_optimum(game);
    EXPECT_LE(social_cost(game, ne),
              paper::general_poa_upper(alpha) * opt.cost.total() + 1e-6)
        << "Theorem 20 violated, alpha=" << alpha;
  }
}

}  // namespace
}  // namespace gncg
