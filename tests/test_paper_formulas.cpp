// Tests for the closed-form paper bounds collected in core/poa.hpp:
// limits, monotonicity, cross-relations and contracts.
#include <gtest/gtest.h>

#include "core/poa.hpp"

namespace gncg {
namespace {

TEST(PaperFormulas, MetricPoaIsLinearInAlpha) {
  EXPECT_DOUBLE_EQ(paper::metric_poa(0.0), 1.0);
  EXPECT_DOUBLE_EQ(paper::metric_poa(2.0), 2.0);
  EXPECT_DOUBLE_EQ(paper::metric_poa(8.0), 5.0);
}

TEST(PaperFormulas, GeneralBoundIsTheSquare) {
  for (double alpha : {0.5, 1.0, 3.0, 10.0}) {
    const double half = paper::metric_poa(alpha);
    EXPECT_DOUBLE_EQ(paper::general_poa_upper(alpha), half * half);
    EXPECT_GE(paper::general_poa_upper(alpha), half);
  }
}

TEST(PaperFormulas, OneTwoLowAlphaBranches) {
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(0.2), 1.0);
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(0.49), 1.0);
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(0.5), 3.0 / 2.5);
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(0.75), 3.0 / 2.75);
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(1.0), 1.5);
  EXPECT_THROW(paper::one_two_poa_low_alpha(1.5), ContractViolation);
}

TEST(PaperFormulas, OneTwoPoaJumpsAtItsRegimeBoundaries) {
  // The tight 1-2 PoA is genuinely discontinuous: it jumps 1 -> 1.2 at
  // alpha = 1/2 (2-edges become worth skipping) and 3/(alpha+2) decreases
  // back towards 1 as alpha -> 1-, then jumps to 3/2 AT alpha = 1, where
  // buying 1-edges turns cost-neutral and worse equilibria appear.
  EXPECT_NEAR(paper::one_two_poa_low_alpha(0.5 - 1e-9), 1.0, 1e-8);
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(0.5), 1.2);
  EXPECT_NEAR(paper::one_two_poa_low_alpha(1.0 - 1e-9), 1.0, 1e-8);
  EXPECT_DOUBLE_EQ(paper::one_two_poa_low_alpha(1.0), 1.5);
}

TEST(PaperFormulas, Theorem15RatioLimitsAndMonotonicity) {
  const double alpha = 3.0;
  double previous = 1.0;
  for (int n : {3, 4, 8, 32, 512, 65536}) {
    const double ratio = paper::theorem15_ratio(n, alpha);
    EXPECT_GT(ratio, previous);
    EXPECT_LT(ratio, paper::metric_poa(alpha));
    previous = ratio;
  }
  EXPECT_NEAR(paper::theorem15_ratio(1 << 24, alpha),
              paper::metric_poa(alpha), 1e-4);
  EXPECT_THROW(paper::theorem15_ratio(2, alpha), ContractViolation);
}

TEST(PaperFormulas, Theorem18LimitsAndRange) {
  EXPECT_NEAR(paper::theorem18_lower(0.0), 1.0, 1e-12);
  EXPECT_GT(paper::theorem18_lower(1.0), 1.0);
  EXPECT_LT(paper::theorem18_lower(1.0), 3.0);
  EXPECT_NEAR(paper::theorem18_lower(1e12), 3.0, 1e-9);
  // Strictly increasing in alpha.
  double previous = 1.0;
  for (double alpha : {0.5, 1.0, 2.0, 8.0, 64.0}) {
    const double value = paper::theorem18_lower(alpha);
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST(PaperFormulas, Theorem19ApproachesMetricPoaInDimension) {
  const double alpha = 5.0;
  double previous = 1.0;
  for (int d : {1, 2, 4, 16, 256}) {
    const double value = paper::theorem19_lower(alpha, d);
    EXPECT_GT(value, previous);
    EXPECT_LT(value, paper::metric_poa(alpha));
    previous = value;
  }
  EXPECT_NEAR(paper::theorem19_lower(alpha, 1 << 20),
              paper::metric_poa(alpha), 1e-4);
  EXPECT_THROW(paper::theorem19_lower(alpha, 0), ContractViolation);
}

TEST(PaperFormulas, Theorem19AtDimensionOneMatchesDirectEvaluation) {
  // d = 1: 1 + a/(2 + a) -- also the n=3 instance of the Theorem 15 family.
  for (double alpha : {0.5, 1.0, 2.0})
    EXPECT_NEAR(paper::theorem19_lower(alpha, 1),
                1.0 + alpha / (2.0 + alpha), 1e-12);
}

TEST(PaperFormulas, DiameterScaleIsSqrtAlpha) {
  EXPECT_DOUBLE_EQ(paper::theorem11_diameter_scale(16.0), 4.0);
  EXPECT_DOUBLE_EQ(paper::theorem11_diameter_scale(0.0), 0.0);
}

}  // namespace
}  // namespace gncg
