// Structural tests for the 1-2-GNCG section of the paper (3.1): Lemma 5
// (minimum 3/2-spanners), Lemma 6 (stable networks live inside the
// Algorithm 1 optimum), Theorem 7 (PoA upper bound for 1/2 <= alpha < 1)
// and the exhaustive version of Theorem 12.
#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/equilibrium_search.hpp"
#include "core/social_optimum.hpp"
#include "graph/apsp.hpp"
#include "graph/graph_algos.hpp"
#include "graph/spanner.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

/// Builds the WeightedGraph of an edge list over n nodes.
WeightedGraph graph_of(int n, const std::vector<Edge>& edges) {
  WeightedGraph g(n);
  for (const auto& e : edges) g.add_edge(e.u, e.v, e.weight);
  return g;
}

TEST(Lemma5, MinimumSpannerHasAllOneEdgesAndDiameterThree) {
  Rng rng(1301);
  for (int trial = 0; trial < 5; ++trial) {
    const auto host = random_one_two_host(6, 0.45, rng);
    const auto edges = min_weight_three_halves_spanner_onetwo(host.weights());
    const auto g = graph_of(6, edges);
    for (int u = 0; u < 6; ++u)
      for (int v = u + 1; v < 6; ++v)
        if (host.weight(u, v) == 1.0)
          EXPECT_TRUE(g.has_edge(u, v)) << "1-edge missing (Lemma 5)";
    EXPECT_LE(diameter(g), 3.0 + 1e-9) << "diameter exceeds 3 (Lemma 5)";
  }
}

/// Finds a NE of a 1-2 game by best-response dynamics; nullopt-style bool.
bool find_ne(const Game& game, Rng& rng, StrategyProfile& out) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    DynamicsOptions options;
    options.max_moves = 4000;
    options.seed = rng();
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    if (run.converged && is_nash_equilibrium(game, run.final_profile)) {
      out = run.final_profile;
      return true;
    }
  }
  return false;
}

TEST(Lemma6, StableNetworksLiveInsideTheAlgorithmOneOptimum) {
  // For 0 < alpha <= 1: E(G) subset of E(G*); missing 1-edges have
  // distance exactly 2; 2-edges outside G* have distance at most 3.
  Rng rng(1303);
  int verified = 0;
  for (int trial = 0; trial < 8 && verified < 4; ++trial) {
    const double alpha = rng.uniform_real(0.1, 1.0);
    const Game game(random_one_two_host(6, 0.5, rng), alpha);
    StrategyProfile ne(6);
    if (!find_ne(game, rng, ne)) continue;
    ++verified;
    const auto optimum = algorithm1_one_two(game);
    const auto g_star = graph_of(6, optimum.edges);
    const auto g = built_graph(game, ne);
    const auto dist = apsp(g);
    for (int u = 0; u < 6; ++u) {
      for (int v = u + 1; v < 6; ++v) {
        if (g.has_edge(u, v)) {
          EXPECT_TRUE(g_star.has_edge(u, v))
              << "NE edge (" << u << "," << v << ") outside OPT (Lemma 6)";
        }
        if (game.weight(u, v) == 1.0 && !g.has_edge(u, v))
          EXPECT_NEAR(dist.at(u, v), 2.0, 1e-9)
              << "missing 1-edge must sit at distance 2 (Lemma 6)";
        if (game.weight(u, v) == 2.0 && !g_star.has_edge(u, v))
          EXPECT_LE(dist.at(u, v), 3.0 + 1e-9)
              << "2-edge outside OPT must sit at distance <= 3 (Lemma 6)";
      }
    }
  }
  EXPECT_GE(verified, 2) << "too few NE found to be meaningful";
}

TEST(Theorem7, ExactPoaBoundedByThreeOverAlphaPlusTwo) {
  // 1/2 <= alpha < 1: PoA <= 3/(alpha+2) -- verified exactly on small
  // hosts via enumeration + the Algorithm 1 optimum (exact by Thm 6).
  Rng rng(1307);
  for (int trial = 0; trial < 4; ++trial) {
    const double alpha = rng.uniform_real(0.5, 0.99);
    const Game game(random_one_two_host(4, 0.5, rng), alpha);
    const auto equilibria = enumerate_nash_equilibria(game);
    if (equilibria.empty()) continue;
    const auto opt = algorithm1_one_two(game);
    const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
    EXPECT_LE(estimate.poa, 3.0 / (alpha + 2.0) + 1e-9)
        << "Theorem 7 violated at alpha=" << alpha;
  }
}

TEST(Theorem8Alpha1, ExactPoaBoundedByThreeHalves) {
  Rng rng(1319);
  for (int trial = 0; trial < 4; ++trial) {
    const Game game(random_one_two_host(4, 0.5, rng), 1.0);
    const auto equilibria = enumerate_nash_equilibria(game);
    if (equilibria.empty()) continue;
    const auto opt = algorithm1_one_two(game);
    const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
    EXPECT_LE(estimate.poa, 1.5 + 1e-9);
  }
}

TEST(Theorem12Exhaustive, EveryEnumeratedTreeMetricNeIsATree) {
  Rng rng(1321);
  for (int n : {4, 5}) {
    const auto tree = random_tree(n, rng, 1.0, 7.0);
    const Game game(HostGraph::from_tree(tree), rng.uniform_real(0.5, 2.5));
    const auto equilibria = enumerate_nash_equilibria(game);
    ASSERT_FALSE(equilibria.empty());
    for (const auto& profile : equilibria.profiles)
      EXPECT_TRUE(is_tree(built_graph(game, profile)))
          << "non-tree NE on a tree metric (Theorem 12)";
  }
}

TEST(Lemma3Exhaustive, EnumeratedLowAlphaEquilibriaContainAllOneEdges) {
  Rng rng(1327);
  for (int trial = 0; trial < 3; ++trial) {
    const double alpha = rng.uniform_real(0.1, 0.9);
    const Game game(random_one_two_host(4, 0.5, rng), alpha);
    const auto equilibria = enumerate_nash_equilibria(game);
    for (const auto& profile : equilibria.profiles)
      for (int u = 0; u < 4; ++u)
        for (int v = u + 1; v < 4; ++v)
          if (game.weight(u, v) == 1.0)
            EXPECT_TRUE(profile.has_edge(u, v))
                << "NE missing a 1-edge at alpha=" << alpha << " (Lemma 3)";
  }
}

}  // namespace
}  // namespace gncg
