// Tests for the combinatorial solvers backing the hardness gadgets.
#include <gtest/gtest.h>

#include <algorithm>

#include "npc/set_cover.hpp"
#include "npc/vertex_cover.hpp"

namespace gncg {
namespace {

TEST(SetCover, ExactSolvesHandInstance) {
  // Universe {0..4}; optimal cover is {0,1,2} with sets {0,1},{2,3},{4}...
  SetCoverInstance instance;
  instance.universe_size = 5;
  instance.sets = {{0, 1}, {2, 3}, {4}, {0, 2, 4}, {1, 3}};
  const auto solution = exact_min_set_cover(instance);
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.chosen.size(), 2u);  // {0,2,4} + {1,3}
  EXPECT_TRUE(is_cover(instance, solution.chosen));
}

TEST(SetCover, ExactMatchesBruteForceOnRandomInstances) {
  Rng rng(501);
  for (int trial = 0; trial < 12; ++trial) {
    const auto instance = random_set_cover(6, 5, 0.35, rng);
    const auto exact = exact_min_set_cover(instance);
    ASSERT_TRUE(exact.feasible);
    // Brute force over all subsets of sets.
    std::size_t best = instance.set_count() + 1;
    for (std::uint32_t mask = 0; mask < (1U << instance.set_count()); ++mask) {
      std::vector<int> chosen;
      for (std::size_t s = 0; s < instance.set_count(); ++s)
        if ((mask >> s) & 1U) chosen.push_back(static_cast<int>(s));
      if (is_cover(instance, chosen)) best = std::min(best, chosen.size());
    }
    EXPECT_EQ(exact.chosen.size(), best) << "trial " << trial;
  }
}

TEST(SetCover, GreedyIsFeasibleAndNeverBetterThanExact) {
  Rng rng(503);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_set_cover(8, 6, 0.3, rng);
    const auto greedy = greedy_set_cover(instance);
    const auto exact = exact_min_set_cover(instance);
    ASSERT_TRUE(greedy.feasible);
    EXPECT_TRUE(is_cover(instance, greedy.chosen));
    EXPECT_GE(greedy.chosen.size(), exact.chosen.size());
  }
}

TEST(SetCover, DetectsInfeasibility) {
  SetCoverInstance instance;
  instance.universe_size = 3;
  instance.sets = {{0}, {1}};  // element 2 uncoverable
  EXPECT_FALSE(exact_min_set_cover(instance).feasible);
  EXPECT_FALSE(greedy_set_cover(instance).feasible);
}

TEST(SetCover, RandomInstancesAreFeasible) {
  Rng rng(509);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_set_cover(10, 4, 0.2, rng);
    EXPECT_TRUE(exact_min_set_cover(instance).feasible);
    for (const auto& set : instance.sets) EXPECT_FALSE(set.empty());
  }
}

TEST(VertexCover, ExactSolvesHandInstance) {
  // Star: center 0 covers everything alone.
  VertexCoverInstance star;
  star.n = 5;
  star.edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  const auto cover = exact_min_vertex_cover(star);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], 0);

  // Triangle needs two vertices.
  VertexCoverInstance triangle;
  triangle.n = 3;
  triangle.edges = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(exact_min_vertex_cover(triangle).size(), 2u);
}

TEST(VertexCover, ExactMatchesBruteForce) {
  Rng rng(521);
  for (int trial = 0; trial < 12; ++trial) {
    const auto instance = random_subcubic_graph(7, rng);
    const auto exact = exact_min_vertex_cover(instance);
    EXPECT_TRUE(is_vertex_cover(instance, exact));
    std::size_t best = static_cast<std::size_t>(instance.n);
    for (std::uint32_t mask = 0; mask < (1U << instance.n); ++mask) {
      std::vector<int> cover;
      for (int v = 0; v < instance.n; ++v)
        if ((mask >> v) & 1U) cover.push_back(v);
      if (is_vertex_cover(instance, cover)) best = std::min(best, cover.size());
    }
    EXPECT_EQ(exact.size(), best) << "trial " << trial;
  }
}

TEST(VertexCover, TwoApproxIsFeasibleAndBounded) {
  Rng rng(523);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_subcubic_graph(9, rng);
    const auto approx = two_approx_vertex_cover(instance);
    const auto exact = exact_min_vertex_cover(instance);
    EXPECT_TRUE(is_vertex_cover(instance, approx));
    EXPECT_LE(approx.size(), 2 * exact.size());
  }
}

TEST(VertexCover, SubcubicGeneratorRespectsDegreeCap) {
  Rng rng(541);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_subcubic_graph(10, rng);
    std::vector<int> degree(10, 0);
    for (const auto& [u, v] : instance.edges) {
      ++degree[static_cast<std::size_t>(u)];
      ++degree[static_cast<std::size_t>(v)];
    }
    for (int d : degree) EXPECT_LE(d, 3);
    EXPECT_GE(instance.edges.size(), 9u);  // spanning tree at minimum
  }
}

}  // namespace
}  // namespace gncg
