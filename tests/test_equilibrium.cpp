// Tests for equilibrium concepts and their containments (NE => GE => AE)
// plus the approximation-factor measurements.
#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace gncg {
namespace {

/// A known NE: unit host (NCG), alpha >= 2 implies the star is a NE
/// (Fabrikant et al.; also a special case of Theorem 10's 1-2 statement).
Game unit_game(int n, double alpha) { return Game(HostGraph::unit(n), alpha); }

TEST(Equilibrium, StarOnUnitHostIsNashForLargeAlpha) {
  const Game game = unit_game(6, 3.0);
  const auto star = star_profile(game, 0);
  EXPECT_TRUE(is_nash_equilibrium(game, star));
  EXPECT_TRUE(is_greedy_equilibrium(game, star));
  EXPECT_TRUE(is_add_only_equilibrium(game, star));
  EXPECT_DOUBLE_EQ(nash_approx_factor(game, star), 1.0);
}

TEST(Equilibrium, StarOnUnitHostFailsForTinyAlpha) {
  // For alpha < 1 every missing unit edge is worth buying.
  const Game game = unit_game(6, 0.4);
  const auto star = star_profile(game, 0);
  EXPECT_FALSE(is_add_only_equilibrium(game, star));
  EXPECT_FALSE(is_nash_equilibrium(game, star));
}

TEST(Equilibrium, ExactCheckMatchesBruteForce) {
  Rng rng(211);
  int nash_count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Game game(random_one_two_host(5, 0.5, rng),
                    rng.uniform_real(0.3, 3.0));
    // Converged dynamics should produce NE; random profiles mostly not.
    StrategyProfile profile = random_profile(game, rng);
    if (trial % 2 == 0) {
      DynamicsOptions options;
      options.max_moves = 500;
      const auto run = run_dynamics(game, profile, options);
      profile = run.final_profile;
    }
    const bool fast = is_nash_equilibrium(game, profile);
    const bool brute = testing::brute_force_is_nash(game, profile);
    EXPECT_EQ(fast, brute) << "trial " << trial;
    nash_count += fast ? 1 : 0;
  }
  EXPECT_GT(nash_count, 0) << "dynamics should reach at least one NE";
}

TEST(Equilibrium, ContainmentNashImpliesGreedyImpliesAddOnly) {
  Rng rng(223);
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_metric_host(5, rng), rng.uniform_real(0.4, 2.5));
    DynamicsOptions options;
    options.max_moves = 2000;
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    if (!run.converged) continue;
    const auto& profile = run.final_profile;
    if (is_nash_equilibrium(game, profile)) {
      EXPECT_TRUE(is_greedy_equilibrium(game, profile));
      EXPECT_TRUE(is_add_only_equilibrium(game, profile));
    }
    if (is_greedy_equilibrium(game, profile))
      EXPECT_TRUE(is_add_only_equilibrium(game, profile));
  }
}

TEST(Equilibrium, ApproxFactorsAreConsistent) {
  Rng rng(227);
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_metric_host(5, rng), 1.0);
    const StrategyProfile profile = random_profile(game, rng);
    const double nash_beta = nash_approx_factor(game, profile);
    const double greedy_beta = greedy_approx_factor(game, profile);
    // The best response is at least as good as the best single move, so the
    // NE approximation factor dominates the GE one.
    EXPECT_GE(nash_beta + 1e-9, greedy_beta);
    EXPECT_GE(greedy_beta, 1.0);
  }
}

TEST(Equilibrium, NashFactorOneIffNash) {
  Rng rng(229);
  const Game game(random_one_two_host(5, 0.6, rng), 2.0);
  DynamicsOptions options;
  options.max_moves = 2000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  ASSERT_TRUE(run.converged);
  EXPECT_TRUE(is_nash_equilibrium(game, run.final_profile));
  EXPECT_NEAR(nash_approx_factor(game, run.final_profile), 1.0, 1e-6);
}

TEST(Equilibrium, AgentReportIsCoherent) {
  Rng rng(233);
  const Game game(random_metric_host(5, rng), 1.0);
  const StrategyProfile profile = random_profile(game, rng);
  for (int u = 0; u < 5; ++u) {
    const auto report = agent_equilibrium_report(game, profile, u);
    EXPECT_LE(report.best_response_cost,
              report.best_single_move_cost + 1e-9);
    EXPECT_LE(report.best_single_move_cost, report.current_cost + 1e-9);
    if (report.single_move_improves)
      EXPECT_TRUE(report.best_response_improves);
  }
}

}  // namespace
}  // namespace gncg
