// Tests for the paper's lower-bound constructions: every claimed
// equilibrium is verified exactly (for small sizes), every claimed optimum
// is cross-checked against the exact optimum, and every closed-form ratio
// is reproduced numerically.
#include <gtest/gtest.h>

#include <cmath>

#include "constructions/ratio_constructions.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

double construction_ratio(const RatioConstruction& c) {
  return social_cost(c.game, c.equilibrium) /
         network_social_cost(c.game, c.optimum);
}

// ---------------------------------------------------------------- Thm 15

class Theorem15Sweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem15Sweep, StarIsNashAndRatioMatchesFormula) {
  const auto [n, alpha] = GetParam();
  const auto c = theorem15_construction(n, alpha);
  EXPECT_TRUE(is_nash_equilibrium(c.game, c.equilibrium))
      << "n=" << n << " alpha=" << alpha;
  EXPECT_NEAR(construction_ratio(c), c.expected_ratio, 1e-9);
  EXPECT_NEAR(c.expected_ratio, paper::theorem15_ratio(n, alpha), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SmallSizes, Theorem15Sweep,
    ::testing::Combine(::testing::Values(4, 6, 8),
                       ::testing::Values(0.5, 1.0, 2.0, 4.0)));

TEST(Theorem15, TreeIsOptimumAndRatioTendsToMetricPoa) {
  const double alpha = 2.0;
  const auto small = theorem15_construction(5, alpha);
  const auto exact = exact_social_optimum(small.game);
  EXPECT_NEAR(network_social_cost(small.game, small.optimum),
              exact.cost.total(), 1e-9)
      << "the defining tree should be the social optimum (Cor 3)";
  // Ratio increases towards (alpha+2)/2 with n.
  const double r64 = construction_ratio(theorem15_construction(64, alpha));
  const double r256 = construction_ratio(theorem15_construction(256, alpha));
  EXPECT_LT(r64, r256);
  EXPECT_LT(r256, paper::metric_poa(alpha));
  EXPECT_GT(r256, 0.97 * paper::metric_poa(alpha));
}

// ---------------------------------------------------------------- Thm 8

TEST(Theorem8, EquilibriumVerifiedExactlyAtSmallN) {
  for (double alpha : {0.5, 0.75, 1.0}) {
    const auto c = theorem8_construction(2, alpha);
    EXPECT_TRUE(is_nash_equilibrium(c.game, c.equilibrium))
        << "alpha=" << alpha;
  }
}

TEST(Theorem8, GreedyStableAtMediumN) {
  const auto c = theorem8_construction(3, 1.0);
  EXPECT_TRUE(is_greedy_equilibrium(c.game, c.equilibrium));
}

TEST(Theorem8, OptimumIsAlgorithmOneAndRatioApproachesLimit) {
  // At alpha = 1 the ratio tends to 3/2; at alpha = 0.5 to 3/2.5 = 1.2.
  for (double alpha : {1.0, 0.5}) {
    const double small = [&] {
      const auto c = theorem8_construction(3, alpha);
      return construction_ratio(c);
    }();
    const double large = [&] {
      const auto c = theorem8_construction(8, alpha);
      return construction_ratio(c);
    }();
    const double limit = alpha == 1.0 ? 1.5 : 3.0 / (alpha + 2.0);
    EXPECT_GT(large, small) << "ratio should grow with N";
    EXPECT_LT(large, limit + 1e-9);
    EXPECT_GT(large, 0.85 * limit);
  }
}

TEST(Theorem8, HostIsOneTwoMetric) {
  const auto c = theorem8_construction(3, 1.0);
  EXPECT_TRUE(c.game.host().is_one_two());
  EXPECT_TRUE(c.game.host().is_metric());
}

// ---------------------------------------------------------------- Lemma 8 / Thm 18

TEST(Lemma8, StarIsNashOnGeometricPath) {
  for (double alpha : {0.5, 1.0, 2.0}) {
    const auto c = lemma8_construction(6, alpha);
    EXPECT_TRUE(is_nash_equilibrium(c.game, c.equilibrium))
        << "alpha=" << alpha;
  }
}

TEST(Lemma8, RatioExceedsOne) {
  for (int nodes : {4, 6, 8}) {
    const auto c = lemma8_construction(nodes, 1.5);
    EXPECT_GT(construction_ratio(c), 1.0) << "nodes=" << nodes;
  }
}

TEST(Lemma8, PathIsOptimalForSmallInstances) {
  const auto c = lemma8_construction(5, 1.0);
  const auto exact = exact_social_optimum(c.game);
  EXPECT_NEAR(network_social_cost(c.game, c.optimum), exact.cost.total(),
              1e-6);
}

TEST(Lemma8, StarWeightsFollowGeometricLaw) {
  const double alpha = 2.0;
  const auto c = lemma8_construction(6, alpha);
  for (int i = 1; i < 6; ++i)
    EXPECT_NEAR(c.game.weight(0, i), std::pow(1.0 + 2.0 / alpha, i - 1),
                1e-9);
}

TEST(Theorem18, FourNodeRatioMatchesClosedForm) {
  for (double alpha : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    const auto c = theorem18_construction(alpha);
    EXPECT_TRUE(is_nash_equilibrium(c.game, c.equilibrium));
    EXPECT_NEAR(construction_ratio(c), paper::theorem18_lower(alpha), 1e-9)
        << "alpha=" << alpha;
  }
}

TEST(Theorem18, LimitIsThreeForLargeAlpha) {
  EXPECT_NEAR(paper::theorem18_lower(1e9), 3.0, 1e-6);
  EXPECT_GT(paper::theorem18_lower(1.0), 1.0);
}

// ---------------------------------------------------------------- Thm 19

class Theorem19Sweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem19Sweep, StarIsNashAndRatioMatchesFormula) {
  const auto [d, alpha] = GetParam();
  const auto c = theorem19_construction(d, alpha);
  EXPECT_EQ(c.game.node_count(), 2 * d + 1);
  EXPECT_TRUE(is_nash_equilibrium(c.game, c.equilibrium))
      << "d=" << d << " alpha=" << alpha;
  EXPECT_NEAR(construction_ratio(c), paper::theorem19_lower(alpha, d), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallDims, Theorem19Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.5, 1.0, 2.0)));

TEST(Theorem19, RatioApproachesMetricPoaWithDimension) {
  const double alpha = 3.0;
  const double r2 = paper::theorem19_lower(alpha, 2);
  const double r8 = paper::theorem19_lower(alpha, 8);
  const double r64 = paper::theorem19_lower(alpha, 64);
  EXPECT_LT(r2, r8);
  EXPECT_LT(r8, r64);
  EXPECT_LT(r64, paper::metric_poa(alpha));
  EXPECT_GT(r64, 0.95 * paper::metric_poa(alpha));
  // And the measured ratio matches the formula at a moderate dimension.
  const auto c = theorem19_construction(5, alpha);
  EXPECT_NEAR(construction_ratio(c), r2 * 0 + paper::theorem19_lower(alpha, 5),
              1e-9);
}

TEST(Theorem19, OriginStarIsOptimalForSmallDims) {
  const auto c = theorem19_construction(2, 1.0);
  const auto exact = exact_social_optimum(c.game);
  EXPECT_NEAR(network_social_cost(c.game, c.optimum), exact.cost.total(),
              1e-6);
}

// ---------------------------------------------------------------- Thm 20 remark

TEST(Theorem20Remark, EquilibriumRatioAndSigma) {
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    const auto c = theorem20_remark_construction(alpha);
    EXPECT_FALSE(c.game.host().is_metric());
    EXPECT_TRUE(is_nash_equilibrium(c.game, c.equilibrium))
        << "alpha=" << alpha;
    EXPECT_NEAR(construction_ratio(c), paper::metric_poa(alpha), 1e-9);
  }
}

TEST(Theorem20Remark, OptimumPathIsExactOptimum) {
  const auto c = theorem20_remark_construction(1.5);
  const auto exact = exact_social_optimum(c.game);
  EXPECT_NEAR(network_social_cost(c.game, c.optimum), exact.cost.total(),
              1e-9);
}

// ---------------------------------------------------------------- Thm 10

TEST(Theorem10, StarsAreNashOnOneTwoHostsForAlphaAtLeastThree) {
  Rng rng(909);
  for (int trial = 0; trial < 6; ++trial) {
    const double alpha = 3.0 + rng.uniform_real(0.0, 5.0);
    const Game game(random_one_two_host(6, rng.uniform01(), rng), alpha);
    const auto star = star_profile(game, static_cast<int>(rng.uniform_below(6)));
    EXPECT_TRUE(is_nash_equilibrium(game, star))
        << "alpha=" << alpha << " trial=" << trial;
  }
}

TEST(Theorem10, StarsCanFailBelowThree) {
  // At small alpha the star is generally unstable (leaves want shortcuts).
  Rng rng(911);
  int failures = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Game game(random_one_two_host(6, 0.7, rng), 0.4);
    if (!is_nash_equilibrium(game, star_profile(game, 0))) ++failures;
  }
  EXPECT_GT(failures, 0);
}

}  // namespace
}  // namespace gncg
