// Tests for the dynamics engine: convergence, schedulers, cycle detection
// plumbing and the random-profile generator.
#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

TEST(Dynamics, ConvergesOnUnitHostHighAlpha) {
  Rng rng(301);
  const Game game(HostGraph::unit(6), 4.0);
  for (auto scheduler : {SchedulerKind::kRoundRobin, SchedulerKind::kRandomOrder,
                         SchedulerKind::kMaxGain}) {
    DynamicsOptions options;
    options.scheduler = scheduler;
    options.max_moves = 3000;
    options.seed = 7;
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    EXPECT_TRUE(run.converged) << "scheduler " << static_cast<int>(scheduler);
    EXPECT_TRUE(is_nash_equilibrium(game, run.final_profile));
  }
}

TEST(Dynamics, EveryStepStrictlyImproves) {
  Rng rng(307);
  const Game game(random_metric_host(6, rng), 1.0);
  DynamicsOptions options;
  options.max_moves = 500;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  for (const auto& step : run.steps) {
    if (step.old_cost < kInf)
      EXPECT_LT(step.new_cost, step.old_cost);
    else
      EXPECT_LT(step.new_cost, kInf);
  }
}

TEST(Dynamics, SingleMoveRuleConverges) {
  Rng rng(311);
  const Game game(random_one_two_host(7, 0.5, rng), 1.5);
  DynamicsOptions options;
  options.rule = MoveRule::kBestSingleMove;
  options.max_moves = 5000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(is_greedy_equilibrium(game, run.final_profile));
}

TEST(Dynamics, AddOnlyRuleReachesAddOnlyEquilibrium) {
  Rng rng(313);
  const Game game(random_metric_host(6, rng), 0.8);
  DynamicsOptions options;
  options.rule = MoveRule::kBestAddition;
  options.max_moves = 5000;
  // Add-only dynamics must terminate (edges only accumulate) in an
  // add-only equilibrium; start connected so costs stay finite.
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(is_add_only_equilibrium(game, run.final_profile));
}

TEST(Dynamics, UmflRuleConvergesToGreedyStableState) {
  Rng rng(317);
  const Game game(random_metric_host(8, rng), 1.0);
  DynamicsOptions options;
  options.rule = MoveRule::kUmflResponse;
  options.max_moves = 5000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  // UMFL local-search responses subsume single-edge moves, so a converged
  // state is at least greedy-stable.
  if (run.converged)
    EXPECT_TRUE(is_greedy_equilibrium(game, run.final_profile));
  else
    EXPECT_TRUE(run.cycle_found || run.moves >= options.max_moves);
}

TEST(Dynamics, CycleVerifierAcceptsGenuineCycle) {
  // Hand-built 2-step "cycle": A buys then deletes is NOT improving both
  // ways, so instead verify the verifier rejects a fake cycle and accepts a
  // degenerate empty answer as false.
  Rng rng(331);
  const Game game(random_metric_host(4, rng), 1.0);
  const StrategyProfile start = random_profile(game, rng);
  EXPECT_FALSE(verify_improvement_cycle(game, start, {}, false));
  // A single self-returning fake step cannot be strictly improving.
  DynamicsStep fake;
  fake.agent = 0;
  fake.old_strategy = start.strategy(0);
  fake.new_strategy = start.strategy(0);
  EXPECT_FALSE(verify_improvement_cycle(game, start, {fake}, false));
}

TEST(Dynamics, TrajectoryEndsAtFinalProfile) {
  Rng rng(337);
  const Game game(random_metric_host(5, rng), 1.2);
  const StrategyProfile start = random_profile(game, rng);
  DynamicsOptions options;
  options.max_moves = 1000;
  const auto run = run_dynamics(game, start, options);
  StrategyProfile replay = start;
  for (const auto& step : run.steps)
    replay.set_strategy(step.agent, step.new_strategy);
  EXPECT_EQ(replay, run.final_profile);
}

TEST(Dynamics, RandomProfileIsConnectedSpanningStructure) {
  Rng rng(347);
  for (int trial = 0; trial < 10; ++trial) {
    const Game game(random_metric_host(7, rng), 1.0);
    const auto profile = random_profile(game, rng);
    EXPECT_TRUE(is_connected(built_graph(game, profile)));
  }
}

TEST(Dynamics, RandomProfileRespectsForbiddenEdges) {
  Rng rng(349);
  const Game game(random_one_inf_host(8, 0.4, rng), 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    const auto profile = random_profile(game, rng);
    for (int u = 0; u < 8; ++u)
      profile.strategy(u).for_each(
          [&](int v) { EXPECT_LT(game.weight(u, v), kInf); });
  }
}

TEST(Dynamics, MoveBudgetIsHonored) {
  Rng rng(353);
  const Game game(random_metric_host(6, rng), 1.0);
  DynamicsOptions options;
  options.max_moves = 3;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_LE(run.moves, 3u);
}

}  // namespace
}  // namespace gncg
