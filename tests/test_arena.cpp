// Scratch-arena discipline: the zero-steady-state-allocation probe and the
// workspace shrink-policy regressions.
//
// The probe is the PR's enforcement mechanism for "hot paths draw every
// buffer from the worker arena": global operator new/delete are replaced
// with counting versions, the engine loop (mutate -> warm_distances -> warm
// single-move scans -> cost_of_strategy) is run until warm, and then
// further identical iterations must perform ZERO heap allocations.  Any
// future per-call vector, to_vector(), or std::function sneaking into the
// scan/SSSP paths turns this red.
//
// The probe runs the pool at one thread: parallel_for dispatch itself
// allocates (a std::function per region), which is out of scope -- the
// contract is about the per-item work, which is what executes on workers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/deviation_engine.hpp"
#include "core/profile_gen.hpp"
#include "graph/dijkstra.hpp"
#include "metric/host_graph.hpp"
#include "support/arena.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// Counting global allocator: every allocation in this binary bumps the
// counter.  Deliberately minimal -- malloc/free with the required
// bad_alloc/null handling.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gncg {
namespace {

TEST(ArenaProbe, SteadyStateMoveEvaluationDoesNotAllocate) {
  set_default_thread_count(1);
  Rng rng(20260808);
  const int n = 24;
  const Game game(random_one_two_host(n, 0.5, rng), /*alpha=*/1.6);
  DeviationEngine engine(game, random_profile(game, rng, 0.25));
  ASSERT_TRUE(engine.dial_enabled());  // 1-2 host: bucket-queue path

  // A toggled edge not present in the profile, so add/remove flips the
  // built topology (and therefore invalidates every distance cache) each
  // iteration.
  int flip_u = -1, flip_v = -1;
  for (int u = 0; u < n && flip_u < 0; ++u)
    for (int v = u + 1; v < n; ++v)
      if (!engine.profile().has_edge(u, v)) {
        flip_u = u;
        flip_v = v;
        break;
      }
  ASSERT_GE(flip_u, 0);

  NodeSet probe_strategy(n);
  probe_strategy.insert(flip_v);
  probe_strategy.insert((flip_v + 1) % n == flip_u ? (flip_v + 2) % n
                                                   : (flip_v + 1) % n);

  double checksum_first = 0.0;
  auto iteration = [&]() {
    double checksum = 0.0;
    engine.add_buy(flip_u, flip_v);
    engine.warm_distances();
    for (int a = 0; a < n; ++a) {
      checksum += engine.best_single_move_warm(a).cost;
      checksum += engine.cost_of_strategy(a, probe_strategy);
    }
    engine.remove_buy(flip_u, flip_v);
    engine.warm_distances();
    for (int a = 0; a < n; ++a) checksum += engine.best_swap_warm(a).cost;
    return checksum;
  };

  // Warm-up: let every arena buffer, CSR slack slot and cache vector reach
  // steady-state capacity.
  for (int i = 0; i < 3; ++i) checksum_first = iteration();

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  double checksum_probe = 0.0;
  for (int i = 0; i < 4; ++i) checksum_probe = iteration();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state engine loop performed heap allocations";
  // Same mutations, same caches -> identical results (and the compiler
  // cannot elide the probe loop).
  EXPECT_DOUBLE_EQ(checksum_probe, checksum_first);
  set_default_thread_count(0);
}

TEST(ArenaProbe, ArenaStatsReportRegisteredArenas) {
  // Touch the calling thread's arena so at least one exists.
  ScratchArena& arena = worker_arena();
  ASSERT_EQ(&arena, &worker_arena());  // stable per thread
  const ArenaStats stats = arena_stats();
  EXPECT_GE(stats.arenas, 1u);
  // Footprint tracks the registered arenas' buffers and never goes down as
  // long as the buffers keep their capacity.
  arena.sum_dist().reserve(1024);
  EXPECT_GE(arena_stats().footprint_bytes, 1024 * sizeof(double));
}

// --- shrink-policy regressions (satellite: decreasing-n engine reuse) ------

/// Star host: node 0 adjacent to 1..n-1 with weight 1 -- drives the heap /
/// pending-ring population to ~n from source 0.
template <class Fn>
void star_neighbors(int n, int u, Fn&& visit) {
  if (u == 0) {
    for (int v = 1; v < n; ++v) visit(v, 1.0);
  } else {
    visit(0, 1.0);
  }
}

TEST(ShrinkPolicy, DijkstraBuffersReleaseBigRunCapacity) {
  DijkstraBuffers buffers;
  const int big = 6000, small = 8;
  const auto& big_dist = buffers.run(
      big, 0, [&](int u, auto&& visit) { star_neighbors(big, u, visit); });
  EXPECT_DOUBLE_EQ(big_dist[1], 1.0);
  EXPECT_GE(buffers.dist_capacity(), static_cast<std::size_t>(big));
  EXPECT_GT(buffers.heap_capacity(),
            detail::kShrinkFactor * detail::kShrinkFloor);

  // dist shrinks on the first small run; the heap's shrink estimate decays
  // by halves from the big run's peak (max(last peak, estimate / 2)), so a
  // genuine downshift releases after ~log2(big / small) runs instead of
  // churning on alternating workloads.
  for (int round = 0; round < 12; ++round) {
    const auto& dist = buffers.run(small, 0, [&](int u, auto&& visit) {
      star_neighbors(small, u, visit);
    });
    ASSERT_EQ(dist.size(), static_cast<std::size_t>(small));
    for (int v = 1; v < small; ++v) EXPECT_DOUBLE_EQ(dist[v], 1.0);
  }
  EXPECT_LE(buffers.dist_capacity(),
            detail::kShrinkFactor * detail::kShrinkFloor);
  EXPECT_LE(buffers.heap_capacity(),
            detail::kShrinkFactor * detail::kShrinkFloor);
}

TEST(ShrinkPolicy, DijkstraBuffersKeepStableWorkloadCapacity) {
  DijkstraBuffers buffers;
  const int n = 300;
  for (int round = 0; round < 3; ++round)
    buffers.run(n, 0,
                [&](int u, auto&& visit) { star_neighbors(n, u, visit); });
  const std::size_t dist_cap = buffers.dist_capacity();
  const std::size_t heap_cap = buffers.heap_capacity();
  // A stable workload must not shrink-then-regrow (that would break the
  // zero-allocation probe above).
  for (int round = 0; round < 5; ++round)
    buffers.run(n, 0,
                [&](int u, auto&& visit) { star_neighbors(n, u, visit); });
  EXPECT_EQ(buffers.dist_capacity(), dist_cap);
  EXPECT_EQ(buffers.heap_capacity(), heap_cap);
}

TEST(ShrinkPolicy, DialBuffersShrinkRingArray) {
  DialBuffers buffers;
  const int n = 64;
  // Big weight bound: 501 rings.
  buffers.run(n, 0, /*max_weight=*/500, [&](int u, auto&& visit) {
    if (u == 0)
      for (int v = 1; v < n; ++v) visit(v, 500.0);
    else
      visit(0, 500.0);
  });
  EXPECT_EQ(buffers.ring_count(), 501u);
  // Small bound afterwards: the ring array releases down to what is needed.
  const auto& dist = buffers.run(n, 0, /*max_weight=*/3,
                                 [&](int u, auto&& visit) {
                                   star_neighbors(n, u, visit);
                                 });
  EXPECT_EQ(buffers.ring_count(), 4u);
  for (int v = 1; v < n; ++v) EXPECT_DOUBLE_EQ(dist[v], 1.0);
}

TEST(ShrinkPolicy, IncrementalSsspResetReleasesBigRunState) {
  IncrementalSssp sssp;
  const int big = 8000;
  std::vector<double> base(static_cast<std::size_t>(big), 1.0);
  base[0] = 0.0;
  sssp.reset(base);
  // Insert a much better edge to node 0's neighbors: every node improves,
  // so the change log and repair heap reach ~n entries.
  const auto mark = sssp.checkpoint();
  sssp.relax_insert(1, 0.25, [&](int u, auto&& visit) {
    if (u == 1)
      for (int v = 2; v < big; ++v) visit(v, 0.25);
  });
  EXPECT_DOUBLE_EQ(sssp.dist()[2], 0.5);
  sssp.rollback(mark);
  const std::size_t big_footprint = sssp.footprint_bytes();
  EXPECT_GT(big_footprint, static_cast<std::size_t>(big) * sizeof(double));

  // Re-targeting the workspace at a small engine releases the big-run
  // capacity: dist immediately, log/heap through the decaying need estimate
  // (halved per reset from the big run's peak), so the release lands within
  // ~log2(big) resets of a sustained downshift.
  std::vector<double> small_base{0.0, 1.0, 2.0, 3.0};
  for (int round = 0; round < 16; ++round) sssp.reset(small_base);
  EXPECT_LT(sssp.footprint_bytes(), big_footprint / 4);
  EXPECT_EQ(sssp.dist().size(), small_base.size());
}

TEST(ShrinkPolicy, AlternatingWorkloadsKeepCapacity) {
  // The PR 8 policy shrank from the *last* run's peak alone, so a workload
  // alternating small probes and large floods (the bounded ladder's probe /
  // commit pattern) released and re-grew its buffers every other call --
  // 923 arena_shrink_events per bench_large_geo run.  The decaying estimate
  // must keep the large capacity across interleaved small runs.
  DijkstraBuffers buffers;
  const int big = 6000, small = 8;
  buffers.run(big, 0,
              [&](int u, auto&& visit) { star_neighbors(big, u, visit); });
  const std::size_t big_heap_cap = buffers.heap_capacity();
  for (int round = 0; round < 6; ++round) {
    buffers.run(small, 0,
                [&](int u, auto&& visit) { star_neighbors(small, u, visit); });
    buffers.run(big, 0,
                [&](int u, auto&& visit) { star_neighbors(big, u, visit); });
  }
  EXPECT_EQ(buffers.heap_capacity(), big_heap_cap);

  IncrementalSssp sssp;
  std::vector<double> base(static_cast<std::size_t>(big), 1.0);
  base[0] = 0.0;
  const auto flood = [&](IncrementalSssp& s) {
    const auto mark = s.checkpoint();
    s.relax_insert(1, 0.25, [&](int u, auto&& visit) {
      if (u == 1)
        for (int v = 2; v < big; ++v) visit(v, 0.25);
    });
    s.rollback(mark);
  };
  sssp.reset(base);
  flood(sssp);
  const std::size_t big_footprint = sssp.footprint_bytes();
  for (int round = 0; round < 6; ++round) {
    sssp.reset(base);  // no flood: peak stays tiny this round
    sssp.reset(base);
    flood(sssp);
  }
  EXPECT_EQ(sssp.footprint_bytes(), big_footprint);
}

}  // namespace
}  // namespace gncg
