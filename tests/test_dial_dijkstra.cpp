// Bucket-queue ("dial") Dijkstra: capability certification and the
// bit-identity gate against the binary-heap kernel.
//
// The dial path is only ever taken when the host certifies its finite
// weights as small non-negative integers (HostGraph::dial_weight_bound).
// On such hosts every shortest-path distance is an exact integer far below
// 2^53, so the heap and bucket kernels compute the SAME doubles bit for
// bit -- which is what lets DeviationEngine switch kernels without
// perturbing any differential or determinism contract in the suite.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/profile_gen.hpp"
#include "graph/dijkstra.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

HostGraph dense_integer_host(int n, Rng& rng, int w_max) {
  DistanceMatrix weights(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      weights.set_symmetric(
          u, v, static_cast<double>(rng.uniform_int(1, w_max)));
  return HostGraph::from_weights(std::move(weights));
}

// --- capability certification ---------------------------------------------

TEST(DialCapability, OneTwoHostCertifiesBoundTwo) {
  DistanceMatrix weights(4, 0.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(0, 2, 2.0);
  weights.set_symmetric(0, 3, 1.0);
  weights.set_symmetric(1, 2, 2.0);
  weights.set_symmetric(1, 3, 2.0);
  weights.set_symmetric(2, 3, 1.0);
  const HostGraph host = HostGraph::from_weights(std::move(weights));
  EXPECT_DOUBLE_EQ(host.integer_weight_bound(), 2.0);
  EXPECT_EQ(host.dial_weight_bound(), 2);
}

TEST(DialCapability, FractionalDenseHostRefuses) {
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(0, 2, 1.5);  // one fractional weight poisons it
  weights.set_symmetric(1, 2, 2.0);
  const HostGraph host = HostGraph::from_weights(std::move(weights));
  EXPECT_DOUBLE_EQ(host.integer_weight_bound(), 0.0);
  EXPECT_EQ(host.dial_weight_bound(), 0);
}

TEST(DialCapability, LazyIntegerHostCertifies) {
  Rng rng(5);
  DistanceMatrix weights(6, 0.0);
  for (int u = 0; u < 6; ++u)
    for (int v = u + 1; v < 6; ++v)
      weights.set_symmetric(u, v,
                            static_cast<double>(rng.uniform_int(1, 7)));
  const HostGraph host =
      HostGraph::from_weights_lazy(std::move(weights), ModelClass::kGeneral);
  EXPECT_GT(host.integer_weight_bound(), 0.0);
  EXPECT_GT(host.dial_weight_bound(), 0);
}

TEST(DialCapability, EuclideanHostRefuses) {
  Rng rng(6);
  const HostGraph host =
      HostGraph::from_points(uniform_points(8, 2, 100.0, rng), /*p=*/2.0);
  EXPECT_DOUBLE_EQ(host.integer_weight_bound(), 0.0);
  EXPECT_EQ(host.dial_weight_bound(), 0);
}

TEST(DialCapability, IntegerTreeCertifiesAndFractionalTreeRefuses) {
  Rng rng(7);
  const std::vector<double> integer_weights{3, 7, 2, 5, 12, 9, 11, 2, 10};
  const HostGraph integer_tree =
      HostGraph::from_tree(random_tree_with_weights(10, integer_weights, rng));
  EXPECT_GT(integer_tree.integer_weight_bound(), 0.0);
  EXPECT_GT(integer_tree.dial_weight_bound(), 0);

  const HostGraph fractional_tree =
      HostGraph::from_tree(path_tree({1.25, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(fractional_tree.integer_weight_bound(), 0.0);
  EXPECT_EQ(fractional_tree.dial_weight_bound(), 0);
}

TEST(DialCapability, HugeIntegerWeightsExceedTheDialGate) {
  // Certified integer, but above kDialMaxWeight: the dial would need that
  // many rings, so the engine must stay on the heap.
  const HostGraph host = HostGraph::from_tree(path_tree({8192.0, 8192.0}));
  EXPECT_GT(host.integer_weight_bound(),
            HostGraph::kDialMaxWeight);
  EXPECT_EQ(host.dial_weight_bound(), 0);
}

// --- kernel bit-identity ---------------------------------------------------

/// Runs heap and dial kernels over the same implicit graph and asserts the
/// distance vectors are equal bit for bit.
template <class NeighborFn>
void expect_kernels_identical(int n, int max_weight,
                              const NeighborFn& neighbor_fn) {
  DijkstraBuffers heap;
  DialBuffers dial;
  for (int source = 0; source < n; ++source) {
    SCOPED_TRACE(::testing::Message() << "source " << source);
    const std::vector<double> from_heap =
        heap.run(n, source, neighbor_fn);  // copy: dial reuses nothing of it
    const std::vector<double>& from_dial =
        dial.run(n, source, max_weight, neighbor_fn);
    ASSERT_EQ(from_heap.size(), from_dial.size());
    for (int v = 0; v < n; ++v) {
      if (from_heap[static_cast<std::size_t>(v)] == kInf) {
        EXPECT_EQ(from_dial[static_cast<std::size_t>(v)], kInf);
      } else {
        EXPECT_EQ(from_heap[static_cast<std::size_t>(v)],
                  from_dial[static_cast<std::size_t>(v)]);  // bitwise
      }
    }
  }
}

TEST(DialBitIdentity, RandomIntegerGraphsMatchHeap) {
  Rng rng(31337);
  for (int round = 0; round < 10; ++round) {
    const int n = 6 + static_cast<int>(rng.uniform_below(20));
    // Random sparse integer graph, possibly disconnected.
    std::vector<std::vector<Neighbor>> adj(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        if (rng.uniform_below(4) == 0) {
          const double w = static_cast<double>(rng.uniform_int(1, 9));
          adj[static_cast<std::size_t>(u)].push_back({v, w});
          adj[static_cast<std::size_t>(v)].push_back({u, w});
        }
    SCOPED_TRACE(::testing::Message() << "round " << round << " n " << n);
    expect_kernels_identical(n, 9, [&](int u, auto&& visit) {
      for (const auto& nb : adj[static_cast<std::size_t>(u)])
        visit(nb.to, nb.weight);
    });
  }
}

TEST(DialBitIdentity, ZeroWeightEdgesMatchHeap) {
  // Chain with interleaved zero-weight edges plus a zero-weight shortcut:
  // exercises the mid-drain ring growth path (same-distance relaxations are
  // processed in the sweep that discovers them).
  const int n = 12;
  std::vector<std::vector<Neighbor>> adj(static_cast<std::size_t>(n));
  auto add = [&](int u, int v, double w) {
    adj[static_cast<std::size_t>(u)].push_back({v, w});
    adj[static_cast<std::size_t>(v)].push_back({u, w});
  };
  for (int v = 0; v + 1 < n; ++v) add(v, v + 1, v % 3 == 0 ? 0.0 : 2.0);
  add(0, 6, 0.0);
  add(2, 9, 3.0);
  expect_kernels_identical(n, 3, [&](int u, auto&& visit) {
    for (const auto& nb : adj[static_cast<std::size_t>(u)])
      visit(nb.to, nb.weight);
  });
}

// --- engine-level bit-identity (dial vs disable_dial) ----------------------

/// Compares an engine on the dial path against a heap-forced twin on every
/// cached distance vector and every scan family, expecting bitwise equality.
void expect_engine_paths_identical(const Game& game,
                                   const StrategyProfile& profile) {
  ASSERT_GT(game.host().dial_weight_bound(), 0);
  DeviationEngine with_dial(game, profile);
  DeviationEngine with_heap(game, profile);
  with_heap.disable_dial();
  ASSERT_TRUE(with_dial.dial_enabled());
  ASSERT_FALSE(with_heap.dial_enabled());
  const int n = game.node_count();
  for (int u = 0; u < n; ++u) {
    SCOPED_TRACE(::testing::Message() << "agent " << u);
    const std::vector<double>& dial_dist = with_dial.distances(u);
    const std::vector<double>& heap_dist = with_heap.distances(u);
    for (int v = 0; v < n; ++v)
      EXPECT_EQ(dial_dist[static_cast<std::size_t>(v)],
                heap_dist[static_cast<std::size_t>(v)]);
    EXPECT_EQ(with_dial.agent_cost(u), with_heap.agent_cost(u));

    const SingleMoveResult dial_move = with_dial.best_single_move(u);
    const SingleMoveResult heap_move = with_heap.best_single_move(u);
    EXPECT_EQ(dial_move.move.type, heap_move.move.type);
    EXPECT_EQ(dial_move.move.remove, heap_move.move.remove);
    EXPECT_EQ(dial_move.move.add, heap_move.move.add);
    EXPECT_EQ(dial_move.cost, heap_move.cost);

    const BestResponseResult dial_br = exact_best_response(with_dial, u);
    const BestResponseResult heap_br = exact_best_response(with_heap, u);
    EXPECT_EQ(dial_br.cost, heap_br.cost);
    EXPECT_TRUE(dial_br.strategy == heap_br.strategy);
  }
}

TEST(DialBitIdentity, EngineMatchesHeapOnOneTwoHosts) {
  Rng rng(91);
  for (int round = 0; round < 6; ++round) {
    const int n = 5 + static_cast<int>(rng.uniform_below(4));
    const Game game(random_one_two_host(n, 0.5, rng),
                    rng.uniform_real(0.3, 3.0));
    SCOPED_TRACE(::testing::Message() << "round " << round << " n " << n);
    expect_engine_paths_identical(game, random_profile(game, rng, 0.3));
  }
}

TEST(DialBitIdentity, EngineMatchesHeapOnIntegerHosts) {
  Rng rng(92);
  for (int round = 0; round < 6; ++round) {
    const int n = 5 + static_cast<int>(rng.uniform_below(4));
    const Game game(dense_integer_host(n, rng, 9),
                    rng.uniform_real(0.3, 3.0));
    SCOPED_TRACE(::testing::Message() << "round " << round << " n " << n);
    expect_engine_paths_identical(game, random_profile(game, rng, 0.3));
  }
}

TEST(DialBitIdentity, EngineMatchesHeapOnIntegerTrees) {
  Rng rng(93);
  const std::vector<double> weights{3, 7, 2, 5, 12, 9, 11, 2, 10};
  for (int round = 0; round < 4; ++round) {
    const Game game(
        HostGraph::from_tree(random_tree_with_weights(10, weights, rng)),
        rng.uniform_real(0.5, 4.0));
    ASSERT_GT(game.host().dial_weight_bound(), 0);
    SCOPED_TRACE(::testing::Message() << "round " << round);
    expect_engine_paths_identical(game, random_profile(game, rng, 0.2));
  }
}

}  // namespace
}  // namespace gncg
