// Unit tests for the graph substrate: WeightedGraph, UnionFind, Dijkstra,
// APSP, DistanceMatrix.
#include <gtest/gtest.h>

#include "graph/apsp.hpp"
#include "graph/dijkstra.hpp"
#include "graph/distance_matrix.hpp"
#include "graph/union_find.hpp"
#include "graph/weighted_graph.hpp"

namespace gncg {
namespace {

WeightedGraph triangle_plus_tail() {
  // 0-1 (1), 1-2 (2), 0-2 (2.5), 2-3 (4)
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 2.5);
  g.add_edge(2, 3, 4.0);
  return g;
}

TEST(WeightedGraph, AddQueryRemove) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.5);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_DOUBLE_EQ(g.total_weight(), 1.5);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
}

TEST(WeightedGraph, ZeroWeightEdgesAllowed) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 0.0);
}

TEST(WeightedGraph, RejectsSelfLoopDuplicateNegativeInfinite) {
  WeightedGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1, 1.0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 1, -0.5), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 1, kInf), ContractViolation);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.add_edge(1, 0, 2.0), ContractViolation);
  EXPECT_THROW(g.remove_edge(0, 2), ContractViolation);
}

TEST(WeightedGraph, EdgesAreNormalizedAndSorted) {
  auto g = triangle_plus_tail();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (const auto& e : edges) EXPECT_LT(e.u, e.v);
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[0].v, 1);
}

TEST(WeightedGraph, MissingEdgeWeightIsInfinite) {
  WeightedGraph g(3);
  EXPECT_EQ(g.edge_weight(0, 2), kInf);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind dsu(5);
  EXPECT_EQ(dsu.components(), 5);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_EQ(dsu.components(), 3);
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(0, 2));
  EXPECT_EQ(dsu.component_size(3), 2);
  dsu.unite(1, 2);
  EXPECT_EQ(dsu.component_size(0), 4);
}

TEST(Dijkstra, ShortestPathsOnSmallGraph) {
  const auto g = triangle_plus_tail();
  const auto result = sssp(g, 0);
  EXPECT_DOUBLE_EQ(result.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(result.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(result.dist[2], 2.5);  // direct beats 1+2 tie... 0-2 = 2.5 vs 3
  EXPECT_DOUBLE_EQ(result.dist[3], 6.5);
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  const auto g = triangle_plus_tail();
  const auto result = sssp(g, 0);
  EXPECT_EQ(result.parent[0], -1);
  EXPECT_EQ(result.parent[1], 0);
  EXPECT_EQ(result.parent[3], 2);
}

TEST(Dijkstra, DisconnectedNodesAreInfinite) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  const auto result = sssp(g, 0);
  EXPECT_EQ(result.dist[2], kInf);
  EXPECT_EQ(distance_sum(g, 0), kInf);
}

TEST(Dijkstra, HandlesZeroWeightEdges) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 2.0);
  const auto result = sssp(g, 0);
  EXPECT_DOUBLE_EQ(result.dist[1], 0.0);
  EXPECT_DOUBLE_EQ(result.dist[2], 2.0);
}

TEST(Dijkstra, DistanceSumMatchesManualTotal) {
  const auto g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(distance_sum(g, 0), 0.0 + 1.0 + 2.5 + 6.5);
}

TEST(Apsp, MatchesRepeatedDijkstra) {
  const auto g = triangle_plus_tail();
  const auto matrix = apsp(g);
  for (int u = 0; u < g.node_count(); ++u) {
    const auto single = sssp(g, u);
    for (int v = 0; v < g.node_count(); ++v)
      EXPECT_DOUBLE_EQ(matrix.at(u, v), single.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(Apsp, SymmetricOnUndirectedGraphs) {
  const auto matrix = apsp(triangle_plus_tail());
  for (int u = 0; u < matrix.size(); ++u)
    for (int v = 0; v < matrix.size(); ++v)
      EXPECT_DOUBLE_EQ(matrix.at(u, v), matrix.at(v, u));
}

TEST(FloydWarshall, ClosesAMatrixToShortestPaths) {
  DistanceMatrix m(4);
  m.set_symmetric(0, 1, 1.0);
  m.set_symmetric(1, 2, 2.0);
  m.set_symmetric(0, 2, 2.5);
  m.set_symmetric(2, 3, 4.0);
  floyd_warshall(m);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 6.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.5);
  EXPECT_DOUBLE_EQ(m.at(1, 3), 6.0);
}

TEST(FloydWarshall, AgreesWithApsp) {
  const auto g = triangle_plus_tail();
  DistanceMatrix m(g.node_count());
  for (const auto& e : g.edges()) m.set_symmetric(e.u, e.v, e.weight);
  floyd_warshall(m);
  const auto reference = apsp(g);
  for (int u = 0; u < m.size(); ++u)
    for (int v = 0; v < m.size(); ++v)
      EXPECT_DOUBLE_EQ(m.at(u, v), reference.at(u, v));
}

TEST(DistanceMatrix, DiagonalIsZeroAndFillApplies) {
  DistanceMatrix m(3, 7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 7.0);
  EXPECT_FALSE(DistanceMatrix(3).all_finite());
  EXPECT_TRUE(m.all_finite());
}

TEST(DistanceMatrix, OrderedPairSumAndDiameter) {
  DistanceMatrix m(3, 0.0);
  m.set_symmetric(0, 1, 1.0);
  m.set_symmetric(0, 2, 2.0);
  m.set_symmetric(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(m.ordered_pair_sum(), 2.0 * (1.0 + 2.0 + 3.0));
  EXPECT_DOUBLE_EQ(m.diameter(), 3.0);
  DistanceMatrix with_inf(2);
  EXPECT_EQ(with_inf.diameter(), kInf);
}

}  // namespace
}  // namespace gncg
