// Unit tests for the support substrate: RNG, NodeSet, stats, parallel
// primitives and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "support/node_set.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gncg {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_below(13);
    EXPECT_LT(x, 13u);
  }
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(Rng, RejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_below(0), ContractViolation);
}

TEST(StreamSeed, DeterministicAndComponentSensitive) {
  const auto base = stream_seed("fig3_onetwo_poa", 7, 3);
  EXPECT_EQ(base, stream_seed("fig3_onetwo_poa", 7, 3));
  EXPECT_NE(base, stream_seed("fig3_onetwo_poa", 7, 4));
  EXPECT_NE(base, stream_seed("fig3_onetwo_poa", 8, 3));
  EXPECT_NE(base, stream_seed("fig10_dimension", 7, 3));
}

TEST(StreamSeed, AdjacentSeedsDecorrelate) {
  // The raw `seed + i` convention this replaces produces streams whose
  // first outputs share long runs of bits; derived streams must not.
  Rng a(stream_seed("scenario", 0, 100));
  Rng b(stream_seed("scenario", 0, 101));
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(StreamSeed, StableAcrossRuns) {
  // Journal resume relies on this value never changing: it is a platform-
  // independent function of the job identity.  Pin one value forever.
  EXPECT_EQ(stream_seed("", 0, 0), stream_seed("", 0, 0));
  constexpr std::uint64_t pinned = stream_seed("pin", 1, 2);
  static_assert(pinned == stream_seed("pin", 1, 2));
  EXPECT_NE(stream_seed("pin", 1, 2), stream_seed("pin", 2, 1));
}

TEST(StreamRng, MatchesSeededRng) {
  Rng direct(stream_seed("s", 3, 4));
  Rng derived = stream_rng("s", 3, 4);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(direct(), derived());
}

TEST(NodeSet, InsertEraseContains) {
  NodeSet set(10);
  EXPECT_TRUE(set.empty());
  set.insert(3);
  set.insert(7);
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(4));
  EXPECT_EQ(set.size(), 2);
  set.erase(3);
  EXPECT_FALSE(set.contains(3));
  EXPECT_EQ(set.size(), 1);
}

TEST(NodeSet, WorksBeyondOneWord) {
  NodeSet set(130);
  set.insert(0);
  set.insert(64);
  set.insert(129);
  EXPECT_EQ(set.size(), 3);
  EXPECT_EQ(set.to_vector(), (std::vector<int>{0, 64, 129}));
}

TEST(NodeSet, ForEachVisitsInOrder) {
  NodeSet set(70);
  for (int v : {66, 2, 33}) set.insert(v);
  std::vector<int> visited;
  set.for_each([&](int v) { visited.push_back(v); });
  EXPECT_EQ(visited, (std::vector<int>{2, 33, 66}));
}

TEST(NodeSet, EqualityAndHash) {
  NodeSet a(20), b(20);
  a.insert(5);
  b.insert(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.insert(6);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());  // overwhelmingly likely
}

TEST(NodeSet, ClearEmptiesTheSet) {
  NodeSet set(8);
  set.insert(1);
  set.insert(2);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SampleStats, QuantilesInterpolate) {
  SampleStats stats;
  for (double x : {4.0, 1.0, 3.0, 2.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats.median(), 2.5);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0 / 3.0), 2.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.5 / 3.0), 1.5);
}

TEST(SampleStats, MomentsMatchRunningStats) {
  SampleStats sample;
  RunningStats running;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.73 * i - 11.0;
    sample.add(x);
    running.add(x);
  }
  EXPECT_EQ(sample.count(), running.count());
  EXPECT_DOUBLE_EQ(sample.mean(), running.mean());
  EXPECT_DOUBLE_EQ(sample.stddev(), running.stddev());
  EXPECT_DOUBLE_EQ(sample.min(), running.min());
  EXPECT_DOUBLE_EQ(sample.max(), running.max());
}

TEST(SampleStats, MergeMatchesSequentialAdds) {
  SampleStats all, left, right;
  for (int i = 0; i < 31; ++i) {
    const double x = std::sin(static_cast<double>(i));
    all.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.median(), all.median());
  EXPECT_DOUBLE_EQ(left.quantile(0.9), all.quantile(0.9));
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
}

TEST(SampleStats, EmptyAndSingleton) {
  SampleStats stats;
  EXPECT_TRUE(std::isnan(stats.median()));
  EXPECT_THROW(stats.quantile(1.5), ContractViolation);
  stats.add(7.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.25), 7.0);
  EXPECT_DOUBLE_EQ(stats.median(), 7.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(SampleStats, SortCacheSurvivesInterleavedAdds) {
  SampleStats stats;
  stats.add(5.0);
  stats.add(1.0);
  EXPECT_DOUBLE_EQ(stats.median(), 3.0);  // forces the lazy sort
  stats.add(0.0);                         // invalidates it
  EXPECT_DOUBLE_EQ(stats.median(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(Parallel, ForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ReduceSumsCorrectly) {
  const auto total = parallel_reduce<long long>(
      0, 10001, [] { return 0LL; },
      [](long long& acc, std::size_t i) { acc += static_cast<long long>(i); },
      [](long long& out, const long long& part) { out += part; });
  EXPECT_EQ(total, 10000LL * 10001 / 2);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ThreadCountOverride) {
  set_default_thread_count(2);
  EXPECT_EQ(default_thread_count(), 2u);
  set_default_thread_count(0);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(Table, PrintsAlignedRows) {
  ConsoleTable table({"name", "value"});
  table.begin_row().add("alpha").add(1.5);
  table.begin_row().add("n").add(42);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  ConsoleTable table({"a", "b"});
  table.begin_row().add("x,y").add("plain");
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  ConsoleTable table({"only"});
  table.begin_row().add("one");
  EXPECT_THROW(table.add("two"), ContractViolation);
}

TEST(FormatDouble, HandlesSpecials) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(format_double(inf), "inf");
  EXPECT_EQ(format_double(-inf), "-inf");
  EXPECT_EQ(format_double(1.25), "1.25");
  EXPECT_EQ(format_double(2.0), "2.0");
}

}  // namespace
}  // namespace gncg
