// Tests for the Finite Improvement Property analysis (Theorems 14 and 17:
// no GNCG variant is a potential game).
#include <gtest/gtest.h>

#include "constructions/cycle_instances.hpp"
#include "core/fip.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"

namespace gncg {
namespace {

TEST(Fip, Theorem14TreeMetricsAdmitImprovingCycles) {
  // Rigorous FIP-violation witness for the T-GNCG: exhaustive
  // improvement-graph analysis over small tree metrics certifies an
  // improving-move cycle (so the game admits no ordinal potential).
  // Calibrated: cycles appear within the first couple of random trees.
  const auto result = find_tree_fip_violation(/*n=*/4, /*max_trees=*/50,
                                              /*seed=*/12345, /*alpha=*/1.0);
  ASSERT_TRUE(result.found);
  ASSERT_TRUE(result.tree.has_value());
  const Game game(HostGraph::from_tree(*result.tree), result.alpha);
  EXPECT_TRUE(verify_improvement_cycle(game, result.analysis.cycle_start,
                                       result.analysis.cycle,
                                       /*require_best_response=*/false));
  EXPECT_GE(result.analysis.cycle.size(), 2u);
}

TEST(Fip, ImprovingCyclesAcrossAlphaOnTreeMetrics) {
  for (double alpha : {0.5, 2.0, 3.0}) {
    const auto result =
        find_tree_fip_violation(4, 50, 12345, alpha);
    EXPECT_TRUE(result.found) << "no cycle found at alpha=" << alpha;
  }
}

TEST(Fip, Theorem17PaperPointsAdmitBestResponseCycle) {
  // The paper's exact Figure 8 points under the 1-norm: best-response
  // dynamics revisit a profile, certifying a genuine best-response cycle.
  // Calibrated for the run_restarts stream derivation: a verified cycle
  // appears within 24 restarts at this seed.
  const auto result = search_theorem17_cycle({1.0}, /*attempts_per_alpha=*/24,
                                             /*seed=*/8);
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.alpha, 1.0);
  const Game game(HostGraph::from_points(theorem17_points(), 1.0),
                  result.alpha);
  EXPECT_TRUE(verify_improvement_cycle(game, result.analysis.cycle_start,
                                       result.analysis.cycle,
                                       /*require_best_response=*/true));
}

TEST(Fip, ExhaustiveAnalysisIsExhaustive) {
  // A 2-node game is trivially a potential game: the analysis must visit
  // the full 2^1 * 2^1 state space and certify acyclicity.
  DistanceMatrix weights(2, 1.0);
  const Game game(HostGraph::from_weights(std::move(weights)), 1.0);
  const auto analysis = exhaustive_fip_analysis(game);
  EXPECT_TRUE(analysis.exhaustive);
  EXPECT_FALSE(analysis.cycle_found);
  EXPECT_EQ(analysis.states_visited, 4u);
}

TEST(Fip, StateSpaceCapIsEnforced) {
  const Game game(HostGraph::unit(8), 1.0);
  ExhaustiveFipOptions options;
  options.max_states = 1024;
  EXPECT_THROW(exhaustive_fip_analysis(game, options), ContractViolation);
}

TEST(Fip, CycleStepsAlternateStrictImprovements) {
  const auto result = find_tree_fip_violation(4, 50, 12345, 1.0);
  ASSERT_TRUE(result.found);
  for (const auto& step : result.analysis.cycle) {
    EXPECT_GE(step.agent, 0);
    EXPECT_LT(step.new_cost, step.old_cost);
    EXPECT_FALSE(step.old_strategy == step.new_strategy);
  }
}

TEST(Fip, Theorem14MultisetMatchesPaper) {
  const auto weights = theorem14_weight_multiset();
  ASSERT_EQ(weights.size(), 9u);
  double total = 0.0;
  for (double w : weights) total += w;
  EXPECT_DOUBLE_EQ(total, 3 + 7 + 2 + 5 + 12 + 9 + 11 + 2 + 10);
}

TEST(Fip, Theorem17PointsMatchPaper) {
  const auto points = theorem17_points();
  ASSERT_EQ(points.size(), 10);
  ASSERT_EQ(points.dim(), 2);
  EXPECT_DOUBLE_EQ(points.coord(0, 0), 3.0);  // a0 = (3, 0)
  EXPECT_DOUBLE_EQ(points.coord(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(points.coord(8, 0), 1.0);  // a8 = (1, 4)
  EXPECT_DOUBLE_EQ(points.coord(8, 1), 4.0);
  // 1-norm sanity: d(a0, a1) = |3-0| + |0-3| = 6.
  EXPECT_DOUBLE_EQ(points.distance(0, 1, 1.0), 6.0);
}

}  // namespace
}  // namespace gncg
