// Differential fuzz tests for the incremental deviation engine.
//
// Contract proven here (the precondition for ever deleting naive paths):
//  * On hosts whose weights sum exactly in doubles (unit, {1,2}, {1,inf},
//    small-integer weights) the engine's costs and chosen moves match the
//    naive AgentEnvironment/Dijkstra-per-candidate scans BIT-FOR-BIT.
//  * On real-weighted hosts the delta formulas re-associate floating-point
//    sums, so costs agree to a 1e-12 relative tolerance (far below the
//    kImproveEps = 1e-9 decision threshold) and decisions coincide.
//
// The fuzz axes: random games (four host families) x random profiles (trees
// and trees-plus-chords, random ownership, double ownership) x random move
// sequences (add_buy / remove_buy / set_strategy / apply_move).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/best_response.hpp"
#include "core/cost.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

/// Random complete host with integer weights in [1, 9]: generally
/// non-metric, and every distance/cost sums exactly in doubles.
HostGraph random_integer_host(int n, Rng& rng) {
  DistanceMatrix weights(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      weights.set_symmetric(u, v,
                            static_cast<double>(rng.uniform_int(1, 9)));
  return HostGraph::from_weights(std::move(weights));
}

/// Expects exact equality, treating two infinities as equal.
void expect_cost_eq(double engine_cost, double naive_cost) {
  if (!(naive_cost < kInf)) {
    EXPECT_FALSE(engine_cost < kInf);
  } else {
    EXPECT_DOUBLE_EQ(engine_cost, naive_cost);
  }
}

void expect_cost_near(double engine_cost, double naive_cost) {
  if (!(naive_cost < kInf)) {
    EXPECT_FALSE(engine_cost < kInf);
  } else {
    const double scale = std::max(1.0, std::abs(naive_cost));
    EXPECT_NEAR(engine_cost, naive_cost, 1e-12 * scale);
  }
}

void expect_move_eq(const SingleMoveResult& from_engine,
                    const SingleMoveResult& from_naive, bool exact) {
  EXPECT_EQ(from_engine.improved, from_naive.improved);
  EXPECT_EQ(from_engine.move.type, from_naive.move.type);
  EXPECT_EQ(from_engine.move.remove, from_naive.move.remove);
  EXPECT_EQ(from_engine.move.add, from_naive.move.add);
  if (exact) {
    expect_cost_eq(from_engine.cost, from_naive.cost);
    expect_cost_eq(from_engine.current_cost, from_naive.current_cost);
  } else {
    expect_cost_near(from_engine.cost, from_naive.cost);
    expect_cost_near(from_engine.current_cost, from_naive.current_cost);
  }
}

/// Compares every scan family and the cached costs of every agent between
/// the engine and the naive evaluators on one fixed profile.
void compare_all_agents(const Game& game, const StrategyProfile& s,
                        bool exact) {
  DeviationEngine engine(game, s);
  ASSERT_TRUE(engine.profile() == s);
  for (int u = 0; u < game.node_count(); ++u) {
    SCOPED_TRACE(::testing::Message() << "agent " << u);
    const double naive_cost = agent_cost(game, s, u);
    if (exact) expect_cost_eq(engine.agent_cost(u), naive_cost);
    else expect_cost_near(engine.agent_cost(u), naive_cost);

    expect_move_eq(engine.best_single_move(u), naive_best_single_move(game, s, u),
                   exact);
    expect_move_eq(engine.best_addition(u), naive_best_addition(game, s, u),
                   exact);
    expect_move_eq(engine.best_swap(u), naive_best_swap(game, s, u), exact);

    EXPECT_EQ(engine.has_improving_single_move(u),
              naive_best_single_move(game, s, u).improved);
  }
}

Game random_game(int family, int n, Rng& rng) {
  const double alpha = rng.uniform_real(0.2, 4.0);
  switch (family) {
    case 0:
      return Game(random_one_two_host(n, 0.5, rng), alpha);
    case 1:
      return Game(random_one_inf_host(n, 0.6, rng), alpha);
    case 2:
      return Game(random_integer_host(n, rng), alpha);
    default:
      return Game(random_metric_host(n, rng), alpha);
  }
}

TEST(DeviationEngineDifferential, SingleMoveScansMatchNaiveOnIntegerHosts) {
  Rng rng(101);
  for (int round = 0; round < 12; ++round) {
    const int family = round % 3;  // integer-exact families only
    const int n = 4 + static_cast<int>(rng.uniform_below(5));
    const Game game = random_game(family, n, rng);
    // Trees exercise the bridge-delta path; chords the Dijkstra fallback.
    const double extra = round % 2 == 0 ? 0.0 : 0.3;
    const StrategyProfile profile = random_profile(game, rng, extra);
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " family " << family << " n " << n);
    compare_all_agents(game, profile, /*exact=*/true);
  }
}

TEST(DeviationEngineDifferential, SingleMoveScansAgreeOnRealHosts) {
  Rng rng(202);
  for (int round = 0; round < 8; ++round) {
    const int n = 4 + static_cast<int>(rng.uniform_below(5));
    const Game game = random_game(3, n, rng);
    const StrategyProfile profile =
        random_profile(game, rng, round % 2 == 0 ? 0.0 : 0.25);
    SCOPED_TRACE(::testing::Message() << "round " << round << " n " << n);
    compare_all_agents(game, profile, /*exact=*/false);
  }
}

TEST(DeviationEngineDifferential, DoubleOwnershipStatesMatchNaive) {
  Rng rng(303);
  for (int round = 0; round < 6; ++round) {
    const int n = 4 + static_cast<int>(rng.uniform_below(4));
    const Game game = random_game(round % 3, n, rng);
    StrategyProfile profile = random_profile(game, rng, 0.2);
    // Force some doubly-owned edges: dynamics must pass through such states.
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v)
        if (u != v && profile.buys(u, v) && rng.bernoulli(0.4))
          profile.add_buy(v, u);
    SCOPED_TRACE(::testing::Message() << "round " << round << " n " << n);
    compare_all_agents(game, profile, /*exact=*/true);
  }
}

TEST(DeviationEngineDifferential, RandomMoveSequencesKeepStateInSync) {
  Rng rng(404);
  for (int round = 0; round < 6; ++round) {
    const int family = round % 3;
    const int n = 4 + static_cast<int>(rng.uniform_below(4));
    const Game game = random_game(family, n, rng);
    StrategyProfile shadow = random_profile(game, rng, 0.2);
    DeviationEngine engine(game, shadow);

    for (int step = 0; step < 40; ++step) {
      const int op = static_cast<int>(rng.uniform_below(4));
      const int u = static_cast<int>(rng.uniform_below(n));
      const int v = static_cast<int>(rng.uniform_below(n));
      switch (op) {
        case 0:
          if (game.can_buy(u, v)) {
            engine.add_buy(u, v);
            shadow.add_buy(u, v);
          }
          break;
        case 1:
          if (u != v) {
            engine.remove_buy(u, v);
            shadow.remove_buy(u, v);
          }
          break;
        case 2: {
          NodeSet strategy(n);
          for (int t = 0; t < n; ++t)
            if (game.can_buy(u, t) && rng.bernoulli(0.3)) strategy.insert(t);
          engine.set_strategy(u, strategy);
          shadow.set_strategy(u, strategy);
          break;
        }
        default: {
          const auto move = naive_best_single_move(game, shadow, u);
          engine.apply_move(u, move.move);
          apply_move(shadow, u, move.move);
          break;
        }
      }
      ASSERT_TRUE(engine.profile() == shadow) << "round " << round
                                              << " step " << step;
      const int probe = static_cast<int>(rng.uniform_below(n));
      expect_cost_eq(engine.agent_cost(probe), agent_cost(game, shadow, probe));
    }
    // Full scan comparison on the final mutated state.
    compare_all_agents(game, shadow, /*exact=*/true);
  }
}

TEST(DeviationEngineDifferential, CostOfStrategyMatchesAgentEnvironment) {
  Rng rng(505);
  for (int round = 0; round < 6; ++round) {
    const int n = 4 + static_cast<int>(rng.uniform_below(4));
    const Game game = random_game(round % 3, n, rng);
    const StrategyProfile profile = random_profile(game, rng, 0.25);
    const DeviationEngine engine(game, profile);
    for (int u = 0; u < n; ++u) {
      const AgentEnvironment env(game, profile, u);
      const AgentEnvironment env_from_engine(engine, u);
      for (int trial = 0; trial < 5; ++trial) {
        NodeSet targets(n);
        for (int t = 0; t < n; ++t)
          if (game.can_buy(u, t) && rng.bernoulli(0.35)) targets.insert(t);
        const double reference = env.cost_of(targets);
        expect_cost_eq(engine.cost_of_strategy(u, targets), reference);
        expect_cost_eq(env_from_engine.cost_of(targets), reference);
      }
    }
  }
}

TEST(DeviationEngineDifferential, EquilibriumPredicatesMatchNaiveScans) {
  Rng rng(606);
  for (int round = 0; round < 6; ++round) {
    const int n = 4 + static_cast<int>(rng.uniform_below(3));
    const Game game = random_game(round % 3, n, rng);
    const StrategyProfile profile = random_profile(game, rng, 0.3);

    bool naive_ge = true, naive_ae = true, naive_se = true;
    for (int u = 0; u < n; ++u) {
      naive_ge = naive_ge && !naive_best_single_move(game, profile, u).improved;
      naive_ae = naive_ae && !naive_best_addition(game, profile, u).improved;
      naive_se = naive_se && !naive_best_swap(game, profile, u).improved;
    }
    EXPECT_EQ(is_greedy_equilibrium(game, profile), naive_ge);
    EXPECT_EQ(is_add_only_equilibrium(game, profile), naive_ae);
    EXPECT_EQ(is_swap_equilibrium(game, profile), naive_se);
  }
}

TEST(DeviationEngine, DistanceCachesSurviveOwnershipOnlyMutations) {
  // A double-ownership add/remove changes who pays, not the topology: the
  // engine must keep distances identical (and, per the invalidation
  // contract, may keep the caches warm).
  Rng rng(707);
  const Game game = random_game(0, 6, rng);
  StrategyProfile profile = random_profile(game, rng, 0.2);
  int owner = -1, target = -1;
  for (int u = 0; u < 6 && owner < 0; ++u)
    for (int v = 0; v < 6 && owner < 0; ++v)
      if (u != v && profile.buys(u, v) && !profile.buys(v, u)) {
        owner = u;
        target = v;
      }
  ASSERT_GE(owner, 0);
  DeviationEngine engine(game, profile);
  const double before = engine.distance_cost(target);
  engine.apply_move(target, {MoveType::kAdd, -1, owner});  // double-own
  EXPECT_DOUBLE_EQ(engine.distance_cost(target), before);
  EXPECT_DOUBLE_EQ(engine.agent_cost(target),
                   agent_cost(game, engine.profile(), target));
  engine.apply_move(target, {MoveType::kDelete, owner, -1});
  EXPECT_DOUBLE_EQ(engine.distance_cost(target), before);
  EXPECT_TRUE(engine.profile() == profile);
}

TEST(DeviationEngine, BatchedSetStrategiesMatchesSequentialSetStrategy) {
  // The round-commit batch apply must land on the same profile, hash,
  // adjacency and costs as a sequence of set_strategy calls -- only the
  // epoch accounting is batched (at most one bump per batch).
  Rng rng(809);
  for (int round = 0; round < 8; ++round) {
    const int n = 5 + static_cast<int>(rng.uniform_below(4));
    const Game game = random_game(round % 3, n, rng);
    const StrategyProfile profile = random_profile(game, rng, 0.3);
    DeviationEngine batched(game, profile);
    DeviationEngine sequential(game, profile);

    std::vector<std::pair<int, NodeSet>> batch;
    for (int u = 0; u < n; ++u) {
      if (!rng.bernoulli(0.5)) continue;
      NodeSet next(n);
      for (int t = 0; t < n; ++t)
        if (t != u && game.can_buy(u, t) && rng.bernoulli(0.3))
          next.insert(t);
      batch.emplace_back(u, std::move(next));
    }
    batched.set_strategies(batch);
    for (const auto& [u, next] : batch) sequential.set_strategy(u, next);

    EXPECT_TRUE(batched.profile() == sequential.profile()) << round;
    EXPECT_EQ(batched.profile_hash(), sequential.profile_hash()) << round;
    for (int u = 0; u < n; ++u)
      EXPECT_EQ(batched.distance_cost(u), sequential.distance_cost(u))
          << "round " << round << " agent " << u;
  }
}

TEST(DeviationEngine, MoveConflictSetCoversTouchedEndpoints) {
  Rng rng(811);
  const Game game = random_game(0, 7, rng);
  const StrategyProfile profile = random_profile(game, rng, 0.3);
  DeviationEngine engine(game, profile);
  const int u = 2;
  NodeSet next(7);
  next.insert(0);
  next.insert(5);
  std::vector<int> conflict;
  engine.move_conflict_set(u, next, conflict);
  // Sorted, deduplicated, and exactly {u} ∪ old ∪ new.
  EXPECT_TRUE(std::is_sorted(conflict.begin(), conflict.end()));
  EXPECT_EQ(std::adjacent_find(conflict.begin(), conflict.end()),
            conflict.end());
  std::vector<int> expected{u, 0, 5};
  profile.strategy(u).for_each([&](int v) { expected.push_back(v); });
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(conflict, expected);
}

}  // namespace
}  // namespace gncg
