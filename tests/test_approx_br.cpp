// Tests for the spatial candidate oracle and the approximate-BR ladder:
// oracle determinism and full-budget identity with the dense enumeration,
// grid k-NN against brute force, the shortlist-restricted exact search
// against the naive baseline (bitwise at full coverage), the ladder's
// certificates (upper bound, admissible lower bound, certified exactness),
// and the euclidean backend's dial opt-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/approx_br.hpp"
#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/dynamics_policy.hpp"
#include "core/profile_gen.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "metric/spatial_index.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace gncg {
namespace {

Game random_euclidean_game(int n, double alpha, double p, Rng& rng) {
  return Game(HostGraph::from_points(uniform_points(n, 2, 100.0, rng), p),
              alpha);
}

/// Brute-force (weight, id)-sorted candidate enumeration -- the base
/// HostBackend::candidate_targets semantics.
std::vector<int> brute_candidates(const Game& game, int u, int budget) {
  std::vector<std::pair<double, int>> order;
  for (int v = 0; v < game.node_count(); ++v)
    if (game.can_buy(u, v)) order.emplace_back(game.weight(u, v), v);
  std::sort(order.begin(), order.end());
  if (static_cast<int>(order.size()) > budget) order.resize(budget);
  std::vector<int> out;
  for (const auto& [w, v] : order) out.push_back(v);
  return out;
}

/// Inserts mutual (double-ownership) buys; the environment masking must keep
/// the partner's copy alive through the ladder exactly as in br_search.
void force_mutual_buys(const Game& game, StrategyProfile& profile, int pairs,
                       Rng& rng) {
  const int n = game.node_count();
  for (int j = 0; j < pairs; ++j) {
    const int a =
        static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n)));
    const int b =
        static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n)));
    if (a == b || !game.can_buy(a, b)) continue;
    profile.add_buy(a, b);
    profile.add_buy(b, a);
  }
}

// --- candidate oracle -----------------------------------------------------

TEST(CandidateOracle, FullBudgetMatchesDenseEnumerationAcrossNorms) {
  Rng rng(71);
  for (double p : {1.0, 2.0, kPNormInf}) {
    const int n = 40;
    const Game game = random_euclidean_game(n, 1.0, p, rng);
    const std::uint64_t cells_before = DistanceMatrix::allocated_cells_total();
    std::vector<int> oracle;
    for (int u = 0; u < n; ++u) {
      // budget >= n-1 must reproduce the base enumeration bit-for-bit (the
      // restricted-exact differential gates rely on this identity).
      game.host().candidate_targets(u, n - 1, oracle);
      EXPECT_EQ(oracle, brute_candidates(game, u, n - 1)) << "p=" << p;
      // And over-asking changes nothing.
      game.host().candidate_targets(u, 10 * n, oracle);
      EXPECT_EQ(oracle, brute_candidates(game, u, n - 1)) << "p=" << p;
    }
    // The oracle never materializes O(n^2) state on the euclidean path.
    EXPECT_EQ(DistanceMatrix::allocated_cells_total(), cells_before);
  }
}

TEST(CandidateOracle, SmallBudgetIsDeterministicSortedAndSized) {
  Rng rng(73);
  const int n = 120;
  const Game game = random_euclidean_game(n, 1.0, 2.0, rng);
  std::vector<int> a, b;
  for (int u = 0; u < n; u += 7) {
    for (int budget : {1, 4, 16, 40}) {
      game.host().candidate_targets(u, budget, a);
      game.host().candidate_targets(u, budget, b);
      EXPECT_EQ(a, b) << "query must be deterministic";
      EXPECT_EQ(static_cast<int>(a.size()), std::min(budget, n - 1));
      // (weight, id)-sorted, no duplicates, never u itself.
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NE(a[i], u);
        if (i > 0) {
          const double prev = game.weight(u, a[i - 1]);
          const double cur = game.weight(u, a[i]);
          EXPECT_TRUE(prev < cur || (prev == cur && a[i - 1] < a[i]))
              << "u=" << u << " budget=" << budget << " i=" << i;
        }
      }
    }
  }
}

TEST(SpatialIndex, OneDimensionalQueriesAreExactKnn) {
  // Without cone coverage (dim 1) the index is a pure k-NN structure: its
  // output must equal the brute-force k nearest under (distance, id) order.
  Rng rng(79);
  const PointSet points = uniform_points(200, 1, 1000.0, rng);
  const SpatialIndex index(points, 2.0);
  SpatialIndex::QueryScratch scratch;
  std::vector<int> out;
  for (int u = 0; u < points.size(); u += 13) {
    for (int k : {1, 3, 17, 50}) {
      index.candidates(u, k, out, scratch);
      std::vector<std::pair<double, int>> brute;
      for (int v = 0; v < points.size(); ++v)
        if (v != u) brute.emplace_back(points.distance(u, v, 2.0), v);
      std::sort(brute.begin(), brute.end());
      brute.resize(static_cast<std::size_t>(k));
      std::vector<int> expect;
      for (const auto& [d, v] : brute) expect.push_back(v);
      EXPECT_EQ(out, expect) << "u=" << u << " k=" << k;
    }
  }
}

TEST(SpatialIndex, PlaneQueriesKeepNearNeighborsUnderConePriority) {
  // In the plane, cone representatives may displace up to kCones near
  // neighbors from a truncated shortlist -- but never more: the brute-force
  // (budget - kCones) nearest must always survive.
  Rng rng(83);
  const PointSet points = uniform_points(300, 2, 1000.0, rng);
  const SpatialIndex index(points, 2.0);
  SpatialIndex::QueryScratch scratch;
  std::vector<int> out;
  for (int u = 0; u < points.size(); u += 23) {
    const int budget = 24;
    index.candidates(u, budget, out, scratch);
    EXPECT_EQ(static_cast<int>(out.size()), budget);
    std::vector<std::pair<double, int>> brute;
    for (int v = 0; v < points.size(); ++v)
      if (v != u) brute.emplace_back(points.distance(u, v, 2.0), v);
    std::sort(brute.begin(), brute.end());
    for (int i = 0; i < budget - SpatialIndex::kCones; ++i) {
      EXPECT_NE(std::find(out.begin(), out.end(), brute[i].second), out.end())
          << "u=" << u << " lost nearest-neighbor rank " << i;
    }
  }
}

// --- restricted exact search (tier 2) vs naive baseline -------------------

TEST(RestrictedBrSearch, FullCoverageMatchesNaiveBitwise) {
  Rng rng(89);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 6 + (trial % 5);  // 6..10
    const double alpha = rng.uniform_real(0.2, 4.0);
    const double p = (trial % 3 == 0) ? 1.0 : (trial % 3 == 1 ? 2.0
                                                              : kPNormInf);
    const Game game = random_euclidean_game(n, alpha, p, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    std::vector<int> full;
    for (int u = 0; u < n; ++u) {
      game.host().candidate_targets(u, n - 1, full);
      BestResponseOptions restricted;
      restricted.restrict_targets = &full;
      const auto naive = naive_exact_best_response(game, profile, u);
      const auto fast = exact_best_response(game, profile, u, restricted);
      EXPECT_TRUE(fast.strategy == naive.strategy)
          << "trial " << trial << " agent " << u;
      const AgentEnvironment env(game, profile, u);
      EXPECT_EQ(fast.cost, env.cost_of(naive.strategy))
          << "trial " << trial << " agent " << u;
    }
  }
}

TEST(RestrictedBrSearch, RestrictionIsExactOverTheShortlist) {
  // A proper-subset restriction must return the minimum over subsets of the
  // shortlist: check against a brute force over the restricted space.
  Rng rng(97);
  const int n = 9;
  const Game game = random_euclidean_game(n, 0.8, 2.0, rng);
  const StrategyProfile profile = random_profile(game, rng);
  std::vector<int> shortlist;
  for (int u = 0; u < n; ++u) {
    game.host().candidate_targets(u, 4, shortlist);
    BestResponseOptions restricted;
    restricted.restrict_targets = &shortlist;
    const auto fast = exact_best_response(game, profile, u, restricted);

    const AgentEnvironment env(game, profile, u);
    double best = kInf;
    NodeSet best_set(n);
    const std::size_t k = shortlist.size();
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << k); ++mask) {
      NodeSet set(n);
      for (std::size_t i = 0; i < k; ++i)
        if ((mask >> i) & 1U) set.insert(shortlist[i]);
      const double cost = env.cost_of(set);
      if (cost < best) {
        best = cost;
        best_set = set;
      }
    }
    EXPECT_TRUE(fast.strategy == best_set) << "agent " << u;
    EXPECT_EQ(fast.cost, env.cost_of(best_set)) << "agent " << u;
  }
}

// --- the ladder -----------------------------------------------------------

TEST(ApproxLadder, CertificatesAreSoundAgainstNaiveExact) {
  Rng rng(101);
  for (int trial = 0; trial < 18; ++trial) {
    const int n = 6 + (trial % 5);
    const double alpha = rng.uniform_real(0.2, 4.0);
    const double p = (trial % 3 == 0) ? 1.0 : (trial % 3 == 1 ? 2.0
                                                              : kPNormInf);
    const Game game = random_euclidean_game(n, alpha, p, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    for (int u = 0; u < n; ++u) {
      const auto naive = naive_exact_best_response(game, profile, u);
      const AgentEnvironment env(game, profile, u);
      const double exact_cost = env.cost_of(naive.strategy);
      ApproxBrOptions options;
      options.budget = 4;
      const auto ladder = approx_best_response_ladder(game, profile, u,
                                                      options);
      const double scale = std::max(1.0, std::abs(exact_cost));
      // Upper bound: the ladder returns a real strategy's canonical cost.
      EXPECT_EQ(ladder.cost, env.cost_of(ladder.strategy))
          << "trial " << trial << " agent " << u;
      EXPECT_GE(ladder.cost, exact_cost - 1e-12 * scale);
      // Admissible lower bound on the unrestricted best response.
      EXPECT_LE(ladder.lower_bound, exact_cost + 1e-12 * scale)
          << "trial " << trial << " agent " << u;
      EXPECT_GE(ladder.beta, 1.0);
      // Certified exactness must be truthful.
      if (ladder.exact) {
        EXPECT_NEAR(ladder.cost, exact_cost, 1e-9 * scale)
            << "trial " << trial << " agent " << u;
      }
    }
  }
}

TEST(ApproxLadder, BoundedRepairsKeepCertificatesSound) {
  // With a tiny repair cap the tier-1 probes truncate constantly; the
  // ladder must still return a real strategy's canonical cost, an
  // admissible lower bound, and truthful exactness -- and when it does
  // claim exactness, its cost must bitwise-equal the unbounded ladder's
  // (which the cap-0 differential gates tie to the naive optimum).
  Rng rng(127);
  for (int trial = 0; trial < 18; ++trial) {
    const int n = 6 + (trial % 5);
    const double alpha = rng.uniform_real(0.2, 4.0);
    const double p = (trial % 3 == 0) ? 1.0 : (trial % 3 == 1 ? 2.0
                                                              : kPNormInf);
    const Game game = random_euclidean_game(n, alpha, p, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    DeviationEngine engine(game, profile);
    engine.warm_distances();
    for (int u = 0; u < n; ++u) {
      const auto naive = naive_exact_best_response(game, profile, u);
      const AgentEnvironment env(game, profile, u);
      const double exact_cost = env.cost_of(naive.strategy);
      ApproxBrOptions bounded_options;
      bounded_options.budget = 4;
      bounded_options.repair_cap = 2;  // truncates almost every probe
      bounded_options.incumbent = engine.agent_cost(u);
      bounded_options.current_dist = &engine.distances_warm(u);
      const auto bounded = approx_best_response_ladder(engine, u,
                                                       bounded_options);
      const double scale = std::max(1.0, std::abs(exact_cost));
      // Achieved cost is a real strategy's canonical cost (never a
      // truncated estimate) and upper-bounds the exact optimum.
      EXPECT_EQ(bounded.cost, env.cost_of(bounded.strategy))
          << "trial " << trial << " agent " << u;
      EXPECT_GE(bounded.cost, exact_cost - 1e-12 * scale);
      // Lower bound stays admissible and never exceeds the achieved cost.
      EXPECT_LE(bounded.lower_bound, exact_cost + 1e-12 * scale)
          << "trial " << trial << " agent " << u;
      EXPECT_LE(bounded.lower_bound, bounded.cost + 1e-12 * scale);
      EXPECT_GE(bounded.beta, 1.0);
      if (bounded.exact) {
        ApproxBrOptions unbounded_options = bounded_options;
        unbounded_options.repair_cap = 0;
        const auto unbounded = approx_best_response_ladder(engine, u,
                                                           unbounded_options);
        EXPECT_EQ(bounded.cost, unbounded.cost)
            << "trial " << trial << " agent " << u;
        EXPECT_NEAR(bounded.cost, exact_cost, 1e-9 * scale)
            << "trial " << trial << " agent " << u;
      }
    }
  }
}

TEST(ApproxLadder, AdaptiveRadiusAloneKeepsCertificatesSound) {
  // Make the candidate-weight-derived radius the *only* live truncation
  // criterion (huge write cap): estimates may coarsen, but achieved costs
  // stay canonical, bounds stay admissible, and exactness stays truthful.
  // With the radius disabled the same huge cap never fires, which must
  // reproduce the unbounded ladder bit for bit (the never-truncates
  // identity of the bounded kernel).
  Rng rng(137);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 6 + (trial % 5);
    const double alpha = rng.uniform_real(0.2, 4.0);
    const Game game = random_euclidean_game(n, alpha, 2.0, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    DeviationEngine engine(game, profile);
    engine.warm_distances();
    for (int u = 0; u < n; ++u) {
      const auto naive = naive_exact_best_response(game, profile, u);
      const AgentEnvironment env(game, profile, u);
      const double exact_cost = env.cost_of(naive.strategy);
      const double scale = std::max(1.0, std::abs(exact_cost));

      ApproxBrOptions radius_only;
      radius_only.budget = 4;
      radius_only.repair_cap = 1u << 20;  // backstop cap that never fires
      radius_only.repair_radius_scale = 1.5;  // tight: truncates often
      radius_only.incumbent = engine.agent_cost(u);
      radius_only.current_dist = &engine.distances_warm(u);
      const auto bounded = approx_best_response_ladder(engine, u,
                                                       radius_only);
      EXPECT_EQ(bounded.cost, env.cost_of(bounded.strategy))
          << "trial " << trial << " agent " << u;
      EXPECT_GE(bounded.cost, exact_cost - 1e-12 * scale);
      EXPECT_LE(bounded.lower_bound, exact_cost + 1e-12 * scale)
          << "trial " << trial << " agent " << u;
      EXPECT_LE(bounded.lower_bound, bounded.cost + 1e-12 * scale);

      ApproxBrOptions no_radius = radius_only;
      no_radius.repair_radius_scale = 0.0;  // nothing can truncate
      ApproxBrOptions unbounded = radius_only;
      unbounded.repair_cap = 0;
      unbounded.repair_radius_scale = 0.0;
      const auto a = approx_best_response_ladder(engine, u, no_radius);
      const auto b = approx_best_response_ladder(engine, u, unbounded);
      EXPECT_TRUE(a.strategy == b.strategy)
          << "trial " << trial << " agent " << u;
      EXPECT_EQ(a.cost, b.cost);
      EXPECT_EQ(a.lower_bound, b.lower_bound);
      EXPECT_EQ(a.exact, b.exact);
    }
  }
}

TEST(ApproxLadder, RepairCapZeroIsBitwiseIdentity) {
  // repair_cap = 0 (and no current-network rows) must reproduce the
  // historical ladder bit for bit -- same strategy, cost, certificates.
  Rng rng(131);
  const int n = 14;
  const Game game = random_euclidean_game(n, 1.2, 2.0, rng);
  StrategyProfile profile = random_profile(game, rng);
  force_mutual_buys(game, profile, n / 3, rng);
  DeviationEngine engine(game, profile);
  for (int u = 0; u < n; ++u) {
    ApproxBrOptions defaults;
    defaults.budget = 5;
    defaults.incumbent = engine.agent_cost(u);
    ApproxBrOptions cap0 = defaults;
    cap0.repair_cap = 0;
    const auto a = approx_best_response_ladder(engine, u, defaults);
    const auto b = approx_best_response_ladder(engine, u, cap0);
    EXPECT_TRUE(a.strategy == b.strategy) << "agent " << u;
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.lower_bound, b.lower_bound);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.exact, b.exact);
  }
}

TEST(ApproxLadder, CertifyAgentsMatchesPerAgentWarmLadder) {
  // The batch certifier reorders work for spatial locality but must return
  // per-agent results identical to individually invoking the warm ladder
  // with the same options, in the caller's input order.
  Rng rng(137);
  const int n = 40;
  const Game game = random_euclidean_game(n, 2.0, 2.0, rng);
  const StrategyProfile profile = random_profile(game, rng);
  const std::vector<int> agents{7, 31, 2, 19, 11};

  ApproxBrOptions options;
  options.budget = 5;
  options.repair_cap = 64;
  DeviationEngine batch_engine(game, profile);
  const std::vector<CertifiedAgent> certified =
      certify_agents(batch_engine, agents, options);
  ASSERT_EQ(certified.size(), agents.size());

  DeviationEngine engine(game, profile);
  engine.warm_distances();
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const int u = agents[i];
    EXPECT_EQ(certified[i].agent, u) << "input order must be preserved";
    ApproxBrOptions per = options;
    per.incumbent = engine.agent_cost(u);
    per.current_dist = &engine.distances_warm(u);
    const auto solo = approx_best_response_ladder(engine, u, per);
    EXPECT_EQ(certified[i].current_cost, per.incumbent);
    EXPECT_TRUE(certified[i].result.strategy == solo.strategy) << "u=" << u;
    EXPECT_EQ(certified[i].result.cost, solo.cost);
    EXPECT_EQ(certified[i].result.lower_bound, solo.lower_bound);
    EXPECT_EQ(certified[i].result.exact, solo.exact);
  }
}

TEST(ApproxLadder, FullBudgetIsCertifiedExact) {
  // With budget >= n-1 the shortlist covers every target: the escape bound
  // is vacuous (+inf), so tier 2 must certify exactness and match the naive
  // search's strategy cost.
  Rng rng(103);
  const int n = 9;
  const Game game = random_euclidean_game(n, 1.5, 2.0, rng);
  const StrategyProfile profile = random_profile(game, rng);
  for (int u = 0; u < n; ++u) {
    ApproxBrOptions options;
    options.budget = n - 1;
    const auto ladder = approx_best_response_ladder(game, profile, u, options);
    EXPECT_TRUE(ladder.exact) << "agent " << u;
    EXPECT_EQ(ladder.beta, 1.0);
    const auto naive = naive_exact_best_response(game, profile, u);
    const AgentEnvironment env(game, profile, u);
    EXPECT_EQ(ladder.cost, env.cost_of(naive.strategy)) << "agent " << u;
  }
}

TEST(ApproxLadder, EngineOverloadMatchesProfileOverload) {
  Rng rng(107);
  const int n = 12;
  const Game game = random_euclidean_game(n, 1.0, 2.0, rng);
  const StrategyProfile profile = random_profile(game, rng);
  DeviationEngine engine(game, profile);
  for (int u = 0; u < n; ++u) {
    ApproxBrOptions options;
    options.budget = 6;
    const auto a = approx_best_response_ladder(game, profile, u, options);
    const auto b = approx_best_response_ladder(engine, u, options);
    EXPECT_TRUE(a.strategy == b.strategy) << "agent " << u;
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.lower_bound, b.lower_bound);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_EQ(a.exact, b.exact);
  }
}

TEST(ApproxLadder, MoveRuleIsRegisteredAndConverges) {
  const auto rules = DynamicsPolicyRegistry::instance().rule_names();
  EXPECT_NE(std::find(rules.begin(), rules.end(), "approx_ladder"),
            rules.end());

  Rng rng(109);
  const int n = 24;
  const Game game = random_euclidean_game(n, 4.0, 2.0, rng);
  DynamicsOptions options;
  options.rule = MoveRule::kApproxLadder;
  options.approx_budget = 6;
  options.max_moves = 4000;
  options.seed = 5;
  options.record_steps = false;
  const auto result = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(result.converged);
  // At the reached profile no agent has an improving ladder move (that is
  // the convergence condition the kernel certified); spot-check directly.
  DeviationEngine engine(game, result.final_profile);
  for (int u = 0; u < n; u += 5) {
    ApproxBrOptions ladder_options;
    ladder_options.budget = 6;
    ladder_options.incumbent = engine.agent_cost(u);
    const auto ladder = approx_best_response_ladder(engine, u,
                                                    ladder_options);
    EXPECT_FALSE(ladder.improved &&
                 !(ladder.strategy == engine.profile().strategy(u)))
        << "agent " << u;
  }
}

// --- euclidean dial opt-out -----------------------------------------------

TEST(EuclideanBackend, DialCapabilityStaysUncertified) {
  // p-norm distances are generally irrational: the euclidean backend must
  // never certify an integer weight bound, even when every coordinate is
  // integral (1-norm distances *could* be integers, but the backend opts
  // out wholesale -- see EuclideanHostBackend::integer_weight_bound).
  Rng rng(113);
  for (double p : {1.0, 2.0, kPNormInf}) {
    const HostGraph host =
        HostGraph::from_points(uniform_points(30, 2, 50.0, rng), p);
    EXPECT_EQ(host.integer_weight_bound(), 0.0) << "p=" << p;
    EXPECT_EQ(host.dial_weight_bound(), 0) << "p=" << p;
  }
  // Contrast: the unit host certifies bound 1 (the dial fast path).
  EXPECT_EQ(HostGraph::unit(8).dial_weight_bound(), 1);
}

}  // namespace
}  // namespace gncg
