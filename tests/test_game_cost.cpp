// Unit tests for the game model: strategy profiles, built networks and cost
// evaluation against hand-computed values.
#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/game.hpp"
#include "graph/graph_algos.hpp"

namespace gncg {
namespace {

/// Triangle host with weights w(0,1)=1, w(1,2)=2, w(0,2)=2.5 (metric).
Game triangle_game(double alpha) {
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(1, 2, 2.0);
  weights.set_symmetric(0, 2, 2.5);
  return Game(HostGraph::from_weights(std::move(weights)), alpha);
}

TEST(GameTest, RejectsNonPositiveAlpha) {
  DistanceMatrix weights(2, 1.0);
  auto host = HostGraph::from_weights(std::move(weights));
  EXPECT_THROW(Game(std::move(host), 0.0), ContractViolation);
}

TEST(GameTest, HostClosureShortcutsLongEdges) {
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(1, 2, 1.0);
  weights.set_symmetric(0, 2, 10.0);  // non-metric
  const Game game(HostGraph::from_weights(std::move(weights)), 1.0);
  EXPECT_DOUBLE_EQ(game.host_distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(game.host_distance_sum(0), 0.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(game.weight(0, 2), 10.0);  // raw weight preserved
}

TEST(StrategyProfileTest, BuyAndEdgeSemantics) {
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  EXPECT_TRUE(profile.buys(0, 1));
  EXPECT_FALSE(profile.buys(1, 0));
  EXPECT_TRUE(profile.has_edge(0, 1));
  EXPECT_TRUE(profile.has_edge(1, 0));
  EXPECT_EQ(profile.bought_count(0), 1);
  EXPECT_EQ(profile.built_edge_count(), 1);
  profile.add_buy(1, 0);  // double ownership representable
  EXPECT_EQ(profile.built_edge_count(), 1);
  profile.remove_buy(0, 1);
  EXPECT_TRUE(profile.has_edge(0, 1));  // the other owner remains
}

TEST(StrategyProfileTest, SetStrategyValidates) {
  StrategyProfile profile(3);
  NodeSet self(3);
  self.insert(1);
  EXPECT_THROW(profile.set_strategy(1, self), ContractViolation);
  NodeSet wrong_universe(4);
  EXPECT_THROW(profile.set_strategy(0, wrong_universe), ContractViolation);
}

TEST(StrategyProfileTest, HashDistinguishesOwnership) {
  StrategyProfile a(3), b(3);
  a.add_buy(0, 1);
  b.add_buy(1, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());  // overwhelmingly likely
}

TEST(BuiltGraphTest, CollapsesDoubleOwnership) {
  const Game game = triangle_game(1.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  profile.add_buy(1, 0);
  profile.add_buy(1, 2);
  const auto g = built_graph(game, profile);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  const auto adjacency = build_adjacency(game, profile);
  EXPECT_EQ(adjacency[0].size(), 1u);  // single entry despite double buy
}

TEST(CostTest, AgentCostOnTriangle) {
  const Game game = triangle_game(2.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  profile.add_buy(1, 2);
  // Agent 0: buys (0,1) of weight 1 -> edge cost 2; distances 0,1,3.
  EXPECT_DOUBLE_EQ(agent_cost(game, profile, 0), 2.0 + 4.0);
  // Agent 1: buys (1,2) of weight 2 -> edge cost 4; distances 1,0,2.
  EXPECT_DOUBLE_EQ(agent_cost(game, profile, 1), 4.0 + 3.0);
  // Agent 2: buys nothing; distances 3,2,0.
  EXPECT_DOUBLE_EQ(agent_cost(game, profile, 2), 5.0);
}

TEST(CostTest, SocialCostIsAgentSum) {
  const Game game = triangle_game(2.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  profile.add_buy(1, 2);
  double total = 0.0;
  for (int u = 0; u < 3; ++u) total += agent_cost(game, profile, u);
  EXPECT_DOUBLE_EQ(social_cost(game, profile), total);
  const auto split = social_cost_breakdown(game, profile);
  EXPECT_DOUBLE_EQ(split.edge_cost, 2.0 * (1.0 + 2.0));
  EXPECT_DOUBLE_EQ(split.dist_cost, total - split.edge_cost);
}

TEST(CostTest, DisconnectionIsInfinite) {
  const Game game = triangle_game(1.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  EXPECT_EQ(agent_cost(game, profile, 2), kInf);
  EXPECT_EQ(social_cost(game, profile), kInf);
}

TEST(CostTest, DoubleOwnershipPaysTwice) {
  const Game game = triangle_game(1.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  profile.add_buy(1, 0);
  profile.add_buy(1, 2);
  const auto split = social_cost_breakdown(game, profile);
  EXPECT_DOUBLE_EQ(split.edge_cost, 1.0 + 1.0 + 2.0);  // (0,1) paid twice
}

TEST(CostTest, NetworkCostCountsEdgesOnce) {
  const Game game = triangle_game(2.0);
  const std::vector<Edge> network{{0, 1, 1.0}, {1, 2, 2.0}};
  const auto split = network_social_cost_breakdown(game, network);
  EXPECT_DOUBLE_EQ(split.edge_cost, 2.0 * 3.0);
  // Ordered distances: (0,1)=1,(0,2)=3,(1,2)=2 each twice.
  EXPECT_DOUBLE_EQ(split.dist_cost, 2.0 * (1.0 + 3.0 + 2.0));
}

TEST(CostTest, NetworkCostMatchesProfileCostForSingleOwners) {
  const Game game = triangle_game(1.5);
  const std::vector<Edge> network{{0, 1, 1.0}, {0, 2, 2.5}};
  const auto profile = profile_from_edges(game, network);
  EXPECT_DOUBLE_EQ(network_social_cost(game, network),
                   social_cost(game, profile));
}

TEST(CostTest, ImprovesUsesRelativeEpsilon) {
  EXPECT_TRUE(improves(1.0, 2.0));
  EXPECT_FALSE(improves(2.0, 2.0));
  EXPECT_FALSE(improves(2.0 - 1e-12, 2.0));  // inside the epsilon band
  EXPECT_TRUE(improves(5.0, kInf));
  EXPECT_FALSE(improves(kInf, kInf));
  EXPECT_FALSE(improves(1e12, 1e12 - 1.0e-3 * 0.0));  // equal large values
}

TEST(ProfileFactories, StarAndEdgeProfiles) {
  const Game game = triangle_game(1.0);
  const auto star = star_profile(game, 1);
  EXPECT_TRUE(star.buys(1, 0));
  EXPECT_TRUE(star.buys(1, 2));
  EXPECT_EQ(star.bought_count(1), 2);
  const auto from_edges = profile_from_edges(game, {{0, 2, 2.5}});
  EXPECT_TRUE(from_edges.buys(0, 2));
  EXPECT_TRUE(is_tree(built_graph(game, star)));
}

}  // namespace
}  // namespace gncg
