// Unit tests for the metric substrate: trees, point sets, host graphs and
// the Figure 1 model taxonomy.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"

namespace gncg {
namespace {

TEST(WeightedTreeTest, RejectsNonTrees) {
  EXPECT_THROW(WeightedTree(3, {{0, 1, 1.0}}), ContractViolation);  // forest
  EXPECT_THROW(WeightedTree(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}}),
               ContractViolation);  // cycle
}

TEST(WeightedTreeTest, MetricClosureOfPath) {
  const auto tree = path_tree({1.0, 2.0, 4.0});
  const auto closure = tree.metric_closure();
  EXPECT_DOUBLE_EQ(closure.at(0, 3), 7.0);
  EXPECT_DOUBLE_EQ(closure.at(1, 3), 6.0);
  EXPECT_DOUBLE_EQ(closure.at(0, 1), 1.0);
}

TEST(WeightedTreeTest, StarTreeClosure) {
  const auto tree = star_tree(5, /*center=*/0, /*leaf_weight=*/3.0);
  const auto closure = tree.metric_closure();
  for (int v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(closure.at(0, v), 3.0);
  for (int u = 1; u < 5; ++u)
    for (int v = u + 1; v < 5; ++v) EXPECT_DOUBLE_EQ(closure.at(u, v), 6.0);
}

TEST(WeightedTreeTest, RandomTreesAreTreesWithWeightRange) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto tree = random_tree(8, rng, 2.0, 5.0);
    EXPECT_TRUE(is_tree(tree.graph()));
    for (const auto& e : tree.edges()) {
      EXPECT_GE(e.weight, 2.0);
      EXPECT_LE(e.weight, 5.0);
    }
  }
}

TEST(WeightedTreeTest, RandomTreeWithWeightsPermutesMultiset) {
  Rng rng(37);
  const std::vector<double> multiset{3, 7, 2, 5, 12, 9, 11, 2, 10};
  const auto tree = random_tree_with_weights(10, multiset, rng);
  EXPECT_TRUE(is_tree(tree.graph()));
  std::vector<double> got;
  for (const auto& e : tree.edges()) got.push_back(e.weight);
  auto want = multiset;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(PointSetTest, PNormDistances) {
  const PointSet points({{0.0, 0.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(points.distance(0, 1, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(points.distance(0, 1, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(points.distance(0, 1, kPNormInf), 4.0);
  EXPECT_NEAR(points.distance(0, 1, 3.0),
              std::pow(27.0 + 64.0, 1.0 / 3.0), 1e-12);
}

TEST(PointSetTest, NormsAreMonotoneInP) {
  const PointSet points({{0.0, 0.0, 0.0}, {1.0, 2.0, 2.0}});
  double previous = points.distance(0, 1, 1.0);
  for (double p : {1.5, 2.0, 4.0, 16.0}) {
    const double current = points.distance(0, 1, p);
    EXPECT_LE(current, previous + 1e-12);
    previous = current;
  }
  EXPECT_GE(previous, points.distance(0, 1, kPNormInf) - 1e-12);
}

TEST(PointSetTest, DistanceMatrixIsMetric) {
  Rng rng(41);
  const auto points = uniform_points(9, 3, 10.0, rng);
  for (double p : {1.0, 2.0, kPNormInf}) {
    const auto host = HostGraph::from_points(points, p);
    EXPECT_TRUE(host.is_metric()) << "p = " << p;
  }
}

TEST(PointSetTest, GridAndClusterGenerators) {
  const auto grid = grid_points(3, 2, 1.0);
  EXPECT_EQ(grid.size(), 9);
  EXPECT_DOUBLE_EQ(grid.distance(0, 8, kPNormInf), 2.0);
  Rng rng(43);
  const auto clustered = clustered_points(10, 2, 3, 100.0, 1.0, rng);
  EXPECT_EQ(clustered.size(), 10);
}

TEST(PointSetTest, GridSpacingAndShape) {
  // 4x4 grid, spacing 2.5: index i maps to (i % 4, i / 4) * 2.5.
  const auto grid = grid_points(4, 2, 2.5);
  ASSERT_EQ(grid.size(), 16);
  EXPECT_EQ(grid.dim(), 2);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(grid.coord(i, 0), 2.5 * (i % 4));
    EXPECT_DOUBLE_EQ(grid.coord(i, 1), 2.5 * (i / 4));
  }
  // Axis neighbors are one step apart under every norm; the main diagonal
  // separates L1, L2 and Chebyshev.
  EXPECT_DOUBLE_EQ(grid.distance(0, 1, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(grid.distance(0, 1, 2.0), 2.5);
  EXPECT_DOUBLE_EQ(grid.distance(0, 1, kPNormInf), 2.5);
  EXPECT_DOUBLE_EQ(grid.distance(0, 15, 1.0), 15.0);
  EXPECT_DOUBLE_EQ(grid.distance(0, 15, kPNormInf), 7.5);
  EXPECT_NEAR(grid.distance(0, 15, 2.0), 7.5 * std::sqrt(2.0), 1e-12);
  // Degenerate one-cell and dim-1 grids.
  EXPECT_EQ(grid_points(1, 3, 1.0).size(), 1);
  const auto line_grid = grid_points(5, 1, 0.5);
  EXPECT_EQ(line_grid.size(), 5);
  EXPECT_DOUBLE_EQ(line_grid.distance(0, 4, 2.0), 2.0);
}

TEST(PointSetTest, ChebyshevAndOneNormEdgeCases) {
  // On a 1-D line every p-norm degenerates to |x - y|.
  const auto line = line_points({-2.0, 0.0, 0.0, 5.5});
  for (const double p : {1.0, 2.0, 7.0, kPNormInf}) {
    EXPECT_DOUBLE_EQ(line.distance(0, 3, p), 7.5) << "p = " << p;
    EXPECT_DOUBLE_EQ(line.distance(1, 2, p), 0.0) << "p = " << p;  // co-located
  }
  // Chebyshev picks the dominant axis; L1 sums all of them.
  const PointSet points({{0.0, 0.0, 0.0}, {-1.0, 4.0, -2.0}});
  EXPECT_DOUBLE_EQ(points.distance(0, 1, kPNormInf), 4.0);
  EXPECT_DOUBLE_EQ(points.distance(0, 1, 1.0), 7.0);
  // p < 1 is not a norm and must be rejected.
  EXPECT_THROW(points.distance(0, 1, 0.5), ContractViolation);
  EXPECT_THROW(pnorm({1.0}, 0.0), ContractViolation);
}

TEST(PointSetTest, DistancesFromMatchesMatrixRow) {
  Rng rng(44);
  const auto points = uniform_points(11, 3, 10.0, rng);
  for (const double p : {1.0, 2.0, kPNormInf}) {
    const auto matrix = points.distance_matrix(p);
    std::vector<double> row;
    for (int a = 0; a < 11; ++a) {
      points.distances_from(a, p, row);
      ASSERT_EQ(static_cast<int>(row.size()), 11);
      for (int b = 0; b < 11; ++b)
        EXPECT_EQ(row[static_cast<std::size_t>(b)], matrix.at(a, b))
            << "p=" << p << " (" << a << "," << b << ")";
    }
  }
}

TEST(PointSetTest, ClusteredPointsStayNearTheirCenters) {
  Rng rng(45);
  const int clusters = 4;
  const double spread = 0.25;
  const auto points = clustered_points(20, 2, clusters, 100.0, spread, rng);
  // Round-robin assignment: points i and i + clusters share a center, so
  // their distance is at most the spread diameter under the max norm.
  for (int i = 0; i + clusters < 20; ++i)
    EXPECT_LE(points.distance(i, i + clusters, kPNormInf), 2.0 * spread);
}

TEST(HostGraphTest, UnitHostIsNcg) {
  const auto host = HostGraph::unit(5);
  EXPECT_TRUE(host.is_unit());
  EXPECT_TRUE(host.is_one_two());
  EXPECT_TRUE(host.is_metric());
  EXPECT_EQ(host.classify(), ModelClass::kNCG);
}

TEST(HostGraphTest, OneTwoHostsAreAlwaysMetric) {
  Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const auto host = random_one_two_host(7, rng.uniform01(), rng);
    EXPECT_TRUE(host.is_metric());
    EXPECT_TRUE(host.is_one_two());
  }
}

TEST(HostGraphTest, TreeHostClassifiesAsMetric) {
  Rng rng(53);
  const auto tree = random_tree(6, rng);
  const auto host = HostGraph::from_tree(tree);
  EXPECT_EQ(host.declared_model(), ModelClass::kTree);
  EXPECT_TRUE(host.is_metric());
  ASSERT_TRUE(host.tree_edges().has_value());
  EXPECT_EQ(host.tree_edges()->size(), 5u);
}

TEST(HostGraphTest, OneInfHost) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto host = HostGraph::one_inf_from_graph(g);
  EXPECT_TRUE(host.is_one_inf());
  EXPECT_TRUE(host.has_infinite_weight());
  EXPECT_FALSE(host.is_metric());  // forbidden edges break metricity
  EXPECT_EQ(host.classify(), ModelClass::kOneInf);
  const auto closure = host.shortest_path_closure();
  EXPECT_DOUBLE_EQ(closure.at(0, 3), 3.0);
}

TEST(HostGraphTest, RandomMetricHostSatisfiesTriangles) {
  Rng rng(59);
  const auto host = random_metric_host(8, rng);
  EXPECT_TRUE(host.is_metric());
}

TEST(HostGraphTest, RandomGeneralHostUsuallyViolatesTriangles) {
  Rng rng(61);
  int violations = 0;
  for (int trial = 0; trial < 10; ++trial)
    if (!random_general_host(8, rng, 1.0, 10.0).is_metric()) ++violations;
  EXPECT_GT(violations, 5);
}

TEST(HostGraphTest, FromWeightsValidates) {
  DistanceMatrix asym(2, 0.0);
  asym.at(0, 1) = 1.0;
  asym.at(1, 0) = 2.0;
  EXPECT_THROW(HostGraph::from_weights(std::move(asym)), ContractViolation);
}

TEST(HostGraphTest, ModelNames) {
  EXPECT_EQ(model_name(ModelClass::kNCG), "NCG");
  EXPECT_EQ(model_name(ModelClass::kTree), "T-GNCG");
  EXPECT_EQ(model_name(ModelClass::kGeneral), "GNCG");
}

TEST(HostGraphTest, RandomOneInfHostIsConnected) {
  Rng rng(67);
  const auto host = random_one_inf_host(8, 0.4, rng);
  const auto closure = host.shortest_path_closure();
  EXPECT_TRUE(closure.all_finite());
}

}  // namespace
}  // namespace gncg
