// Unit tests for the metric substrate: trees, point sets, host graphs and
// the Figure 1 model taxonomy.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_algos.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"

namespace gncg {
namespace {

TEST(WeightedTreeTest, RejectsNonTrees) {
  EXPECT_THROW(WeightedTree(3, {{0, 1, 1.0}}), ContractViolation);  // forest
  EXPECT_THROW(WeightedTree(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}}),
               ContractViolation);  // cycle
}

TEST(WeightedTreeTest, MetricClosureOfPath) {
  const auto tree = path_tree({1.0, 2.0, 4.0});
  const auto closure = tree.metric_closure();
  EXPECT_DOUBLE_EQ(closure.at(0, 3), 7.0);
  EXPECT_DOUBLE_EQ(closure.at(1, 3), 6.0);
  EXPECT_DOUBLE_EQ(closure.at(0, 1), 1.0);
}

TEST(WeightedTreeTest, StarTreeClosure) {
  const auto tree = star_tree(5, /*center=*/0, /*leaf_weight=*/3.0);
  const auto closure = tree.metric_closure();
  for (int v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(closure.at(0, v), 3.0);
  for (int u = 1; u < 5; ++u)
    for (int v = u + 1; v < 5; ++v) EXPECT_DOUBLE_EQ(closure.at(u, v), 6.0);
}

TEST(WeightedTreeTest, RandomTreesAreTreesWithWeightRange) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto tree = random_tree(8, rng, 2.0, 5.0);
    EXPECT_TRUE(is_tree(tree.graph()));
    for (const auto& e : tree.edges()) {
      EXPECT_GE(e.weight, 2.0);
      EXPECT_LE(e.weight, 5.0);
    }
  }
}

TEST(WeightedTreeTest, RandomTreeWithWeightsPermutesMultiset) {
  Rng rng(37);
  const std::vector<double> multiset{3, 7, 2, 5, 12, 9, 11, 2, 10};
  const auto tree = random_tree_with_weights(10, multiset, rng);
  EXPECT_TRUE(is_tree(tree.graph()));
  std::vector<double> got;
  for (const auto& e : tree.edges()) got.push_back(e.weight);
  auto want = multiset;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(PointSetTest, PNormDistances) {
  const PointSet points({{0.0, 0.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(points.distance(0, 1, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(points.distance(0, 1, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(points.distance(0, 1, kPNormInf), 4.0);
  EXPECT_NEAR(points.distance(0, 1, 3.0),
              std::pow(27.0 + 64.0, 1.0 / 3.0), 1e-12);
}

TEST(PointSetTest, NormsAreMonotoneInP) {
  const PointSet points({{0.0, 0.0, 0.0}, {1.0, 2.0, 2.0}});
  double previous = points.distance(0, 1, 1.0);
  for (double p : {1.5, 2.0, 4.0, 16.0}) {
    const double current = points.distance(0, 1, p);
    EXPECT_LE(current, previous + 1e-12);
    previous = current;
  }
  EXPECT_GE(previous, points.distance(0, 1, kPNormInf) - 1e-12);
}

TEST(PointSetTest, DistanceMatrixIsMetric) {
  Rng rng(41);
  const auto points = uniform_points(9, 3, 10.0, rng);
  for (double p : {1.0, 2.0, kPNormInf}) {
    const auto host = HostGraph::from_points(points, p);
    EXPECT_TRUE(host.is_metric()) << "p = " << p;
  }
}

TEST(PointSetTest, GridAndClusterGenerators) {
  const auto grid = grid_points(3, 2, 1.0);
  EXPECT_EQ(grid.size(), 9);
  EXPECT_DOUBLE_EQ(grid.distance(0, 8, kPNormInf), 2.0);
  Rng rng(43);
  const auto clustered = clustered_points(10, 2, 3, 100.0, 1.0, rng);
  EXPECT_EQ(clustered.size(), 10);
}

TEST(HostGraphTest, UnitHostIsNcg) {
  const auto host = HostGraph::unit(5);
  EXPECT_TRUE(host.is_unit());
  EXPECT_TRUE(host.is_one_two());
  EXPECT_TRUE(host.is_metric());
  EXPECT_EQ(host.classify(), ModelClass::kNCG);
}

TEST(HostGraphTest, OneTwoHostsAreAlwaysMetric) {
  Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const auto host = random_one_two_host(7, rng.uniform01(), rng);
    EXPECT_TRUE(host.is_metric());
    EXPECT_TRUE(host.is_one_two());
  }
}

TEST(HostGraphTest, TreeHostClassifiesAsMetric) {
  Rng rng(53);
  const auto tree = random_tree(6, rng);
  const auto host = HostGraph::from_tree(tree);
  EXPECT_EQ(host.declared_model(), ModelClass::kTree);
  EXPECT_TRUE(host.is_metric());
  ASSERT_TRUE(host.tree_edges().has_value());
  EXPECT_EQ(host.tree_edges()->size(), 5u);
}

TEST(HostGraphTest, OneInfHost) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto host = HostGraph::one_inf_from_graph(g);
  EXPECT_TRUE(host.is_one_inf());
  EXPECT_TRUE(host.has_infinite_weight());
  EXPECT_FALSE(host.is_metric());  // forbidden edges break metricity
  EXPECT_EQ(host.classify(), ModelClass::kOneInf);
  const auto closure = host.shortest_path_closure();
  EXPECT_DOUBLE_EQ(closure.at(0, 3), 3.0);
}

TEST(HostGraphTest, RandomMetricHostSatisfiesTriangles) {
  Rng rng(59);
  const auto host = random_metric_host(8, rng);
  EXPECT_TRUE(host.is_metric());
}

TEST(HostGraphTest, RandomGeneralHostUsuallyViolatesTriangles) {
  Rng rng(61);
  int violations = 0;
  for (int trial = 0; trial < 10; ++trial)
    if (!random_general_host(8, rng, 1.0, 10.0).is_metric()) ++violations;
  EXPECT_GT(violations, 5);
}

TEST(HostGraphTest, FromWeightsValidates) {
  DistanceMatrix asym(2, 0.0);
  asym.at(0, 1) = 1.0;
  asym.at(1, 0) = 2.0;
  EXPECT_THROW(HostGraph::from_weights(std::move(asym)), ContractViolation);
}

TEST(HostGraphTest, ModelNames) {
  EXPECT_EQ(model_name(ModelClass::kNCG), "NCG");
  EXPECT_EQ(model_name(ModelClass::kTree), "T-GNCG");
  EXPECT_EQ(model_name(ModelClass::kGeneral), "GNCG");
}

TEST(HostGraphTest, RandomOneInfHostIsConnected) {
  Rng rng(67);
  const auto host = random_one_inf_host(8, 0.4, rng);
  const auto closure = host.shortest_path_closure();
  EXPECT_TRUE(closure.all_finite());
}

}  // namespace
}  // namespace gncg
