// Shared test helpers: brute-force reference implementations that the
// library's optimized algorithms are validated against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/best_response.hpp"
#include "core/cost.hpp"
#include "core/game.hpp"

namespace gncg::testing {

/// Brute-force best response: evaluates every subset of purchasable targets
/// with no pruning.  The reference for exact_best_response.
inline BestResponseResult brute_force_best_response(const Game& game,
                                                    const StrategyProfile& s,
                                                    int u) {
  const AgentEnvironment env(game, s, u);
  std::vector<int> candidates;
  for (int v = 0; v < game.node_count(); ++v)
    if (game.can_buy(u, v)) candidates.push_back(v);
  const std::size_t k = candidates.size();
  BestResponseResult best;
  best.strategy = NodeSet(game.node_count());
  best.cost = kInf;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << k); ++mask) {
    NodeSet set(game.node_count());
    for (std::size_t i = 0; i < k; ++i)
      if ((mask >> i) & 1U) set.insert(candidates[i]);
    const double cost = env.cost_of(set);
    ++best.evaluations;
    if (cost < best.cost) {
      best.cost = cost;
      best.strategy = set;
    }
  }
  return best;
}

/// Brute-force NE check via the brute-force best response.
inline bool brute_force_is_nash(const Game& game, const StrategyProfile& s) {
  for (int u = 0; u < game.node_count(); ++u) {
    const double current = agent_cost(game, s, u);
    const auto best = brute_force_best_response(game, s, u);
    if (improves(best.cost, current)) return false;
  }
  return true;
}

}  // namespace gncg::testing
