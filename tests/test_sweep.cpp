// Tests for the sweep orchestrator: scenario registry, plan expansion,
// JSONL layer, the runner's determinism/journal/resume contract, the
// aggregation layer, and instance provenance.
//
// The two load-bearing guarantees (ISSUE 3 acceptance):
//   * a plan covering >= 3 registered scenarios x {dense, euclidean, tree}
//     backends runs to completion and its journal is byte-identical
//     (after sorting) for any thread count;
//   * a run killed mid-sweep resumes from the truncated journal without
//     re-running completed jobs and without changing any result.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metric/instance_io.hpp"
#include "support/assert.hpp"
#include "sweep/aggregate.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "sweep/scenarios_builtin.hpp"

namespace gncg {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "gncg_sweep_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> sorted_lines(const std::string& path) {
  auto lines = read_lines(path);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// The acceptance plan: three host-generic scenarios across all three
/// backend kinds, sized so the runner actually fans out across the pool.
SweepPlan acceptance_plan() {
  SweepPlan plan;
  plan.scenarios = {"br_dynamics", "poa_random", "optimum_gap"};
  plan.hosts = {"dense", "euclidean", "tree"};
  plan.ns = {4, 5};
  plan.alphas = {1.0};
  plan.seeds = 2;
  plan.extras = {{"rounds", 2.0}, {"agents", 4.0}};
  return plan;
}

// --- jsonl ----------------------------------------------------------------

TEST(Jsonl, NumberRoundTripsAtFullPrecision) {
  for (double value : {0.1, 1.0 / 3.0, 12345.6789e-7, -0.0, 2.0}) {
    const std::string text = json_number(value);
    const auto parsed = JsonValue::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->as_number(), value) << text;
  }
}

TEST(Jsonl, NonFiniteValuesUseStringEncoding) {
  EXPECT_EQ(json_number(kInf), "\"inf\"");
  EXPECT_EQ(json_number(-kInf), "\"-inf\"");
  const auto parsed = JsonValue::parse("\"inf\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(json_to_double(*parsed), kInf);
}

TEST(Jsonl, WriterParserRoundTrip) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("name").string("a \"quoted\"\nvalue");
  writer.key("n").number(42);
  writer.key("list").begin_array().number(1.5).boolean(true).end_array();
  writer.key("nested").begin_object().key("x").number(-3).end_object();
  writer.end_object();
  const auto parsed = JsonValue::parse(writer.str());
  ASSERT_TRUE(parsed.has_value()) << writer.str();
  EXPECT_EQ(parsed->string_at("name"), "a \"quoted\"\nvalue");
  EXPECT_EQ(parsed->number_at("n"), 42.0);
  ASSERT_NE(parsed->find("list"), nullptr);
  EXPECT_EQ(parsed->find("list")->items().size(), 2u);
  EXPECT_EQ(parsed->find("nested")->number_at("x"), -3.0);
}

TEST(Jsonl, TruncatedDocumentsParseToNullopt) {
  const std::string full =
      "{\"a\":1,\"rows\":[{\"metrics\":{\"x\":2.5}}]}";
  ASSERT_TRUE(JsonValue::parse(full).has_value());
  for (std::size_t cut = 1; cut < full.size(); ++cut)
    EXPECT_FALSE(JsonValue::parse(full.substr(0, cut)).has_value())
        << full.substr(0, cut);
  EXPECT_FALSE(JsonValue::parse(full + "x").has_value());
}

// --- registry and plan ----------------------------------------------------

TEST(ScenarioRegistry, BuiltinsAreRegistered) {
  const auto names = ScenarioRegistry::instance().names();
  for (const char* expected :
       {"br_dynamics", "fig10_dimension", "fig3_onetwo_poa", "optimum_gap",
        "poa_random"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(ScenarioRegistry, UnknownAndDuplicateNamesAreRejected) {
  EXPECT_THROW(ScenarioRegistry::instance().at("no_such_scenario"),
               ContractViolation);
  ScenarioRegistry isolated;
  register_builtin_scenarios(isolated);
  EXPECT_THROW(register_builtin_scenarios(isolated), ContractViolation);
}

TEST(SweepPlan, ExpansionIsDeterministicAndIndexed) {
  const auto& registry = ScenarioRegistry::instance();
  const auto points = acceptance_plan().expand(registry);
  // 3 scenarios x 3 hosts x 2 n x 1 alpha x 1 p x 2 seeds.
  EXPECT_EQ(points.size(), 36u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].point_index, i);
    EXPECT_EQ(points[i].rng_stream(),
              stream_seed(points[i].scenario, i, points[i].seed));
  }
  const auto again = acceptance_plan().expand(registry);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(point_fingerprint(points[i]), point_fingerprint(again[i]));
  EXPECT_EQ(acceptance_plan().fingerprint(registry),
            acceptance_plan().fingerprint(registry));
}

TEST(SweepPlan, HostFilteringAndNormCollapse) {
  const auto& registry = ScenarioRegistry::instance();
  SweepPlan plan;
  plan.scenarios = {"fig3_onetwo_poa", "fig10_dimension"};
  plan.hosts = {"dense", "euclidean"};
  plan.ns = {2};
  plan.alphas = {0.5};
  plan.norm_ps = {1.0, 2.0};
  // fig3 runs only under dense (1 job: the norm axis collapses off
  // euclidean); fig10 only under euclidean (2 jobs: both norms).
  const auto points = plan.expand(registry);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].scenario, "fig3_onetwo_poa");
  EXPECT_EQ(points[0].host, "dense");
  EXPECT_EQ(points[0].norm_p, 2.0);
  EXPECT_EQ(points[1].scenario, "fig10_dimension");
  EXPECT_EQ(points[1].norm_p, 1.0);
  EXPECT_EQ(points[2].norm_p, 2.0);

  SweepPlan unsupported = plan;
  unsupported.scenarios = {"fig3_onetwo_poa"};
  unsupported.hosts = {"euclidean"};
  EXPECT_THROW(unsupported.expand(registry), ContractViolation);
}

TEST(SweepPlan, UndeclaredExtrasAreRejected) {
  const auto& registry = ScenarioRegistry::instance();
  SweepPlan plan = acceptance_plan();
  plan.extras.emplace_back("round", 5.0);  // typo: br_dynamics wants "rounds"
  EXPECT_THROW(plan.expand(registry), ContractViolation);
}

TEST(SweepPlan, ExtraOrderDoesNotChangeExpansion) {
  const auto& registry = ScenarioRegistry::instance();
  SweepPlan a = acceptance_plan();
  SweepPlan b = acceptance_plan();
  std::reverse(b.extras.begin(), b.extras.end());
  EXPECT_EQ(a.fingerprint(registry), b.fingerprint(registry));
}

// --- determinism across thread counts (acceptance) ------------------------

TEST(SweepRunner, JournalBytesIdenticalAcrossThreadCounts) {
  const std::string path1 = temp_path("threads1.jsonl");
  const std::string pathN = temp_path("threadsN.jsonl");

  SweepRunnerOptions serial;
  serial.threads = 1;
  serial.journal_path = path1;
  const SweepReport report1 = run_sweep(acceptance_plan(), serial);

  SweepRunnerOptions parallel;
  parallel.threads = 4;
  parallel.journal_path = pathN;
  const SweepReport reportN = run_sweep(acceptance_plan(), parallel);

  EXPECT_EQ(report1.outcomes.size(), 36u);
  EXPECT_EQ(report1.executed, 36u);
  EXPECT_EQ(reportN.executed, 36u);
  EXPECT_EQ(sorted_lines(path1), sorted_lines(pathN));

  // In-memory outcomes agree record-for-record as well (sorted order in
  // the journal is point order in memory).
  for (std::size_t i = 0; i < report1.outcomes.size(); ++i)
    EXPECT_EQ(sweep_record_json(report1.outcomes[i].point,
                                report1.outcomes[i].result),
              sweep_record_json(reportN.outcomes[i].point,
                                reportN.outcomes[i].result));
  std::remove(path1.c_str());
  std::remove(pathN.c_str());
}

TEST(SweepRunner, DynamicsScenariosJournalIdenticallyAcrossThreadCounts) {
  // The restart-driver scenarios (PR 4): scheduler x rule rows must be
  // byte-identical for any thread count, nested pool and all.
  const std::string path1 = temp_path("dyn_threads1.jsonl");
  const std::string pathN = temp_path("dyn_threadsN.jsonl");

  SweepPlan plan;
  plan.scenarios = {"ne_sampling", "fip_probe"};
  plan.hosts = {"dense", "tree"};
  plan.ns = {7};
  plan.alphas = {1.0};
  plan.seeds = 2;
  plan.extras = {{"restarts", 5.0}, {"max_moves", 200.0},
                 {"schedulers", 3.0}, {"rules", 2.0}};

  SweepRunnerOptions serial;
  serial.threads = 1;
  serial.journal_path = path1;
  const SweepReport report1 = run_sweep(plan, serial);

  SweepRunnerOptions parallel;
  parallel.threads = 4;
  parallel.journal_path = pathN;
  const SweepReport reportN = run_sweep(plan, parallel);

  EXPECT_EQ(report1.executed, 8u);  // 2 scenarios x 2 hosts x 2 seeds
  EXPECT_EQ(reportN.executed, 8u);
  EXPECT_EQ(sorted_lines(path1), sorted_lines(pathN));
  std::remove(path1.c_str());
  std::remove(pathN.c_str());
}

TEST(SweepRunner, TimingMetricsAreStrippedFromRecords) {
  SweepPlan plan;
  plan.scenarios = {"br_dynamics"};
  plan.hosts = {"dense"};
  plan.ns = {5};
  plan.extras = {{"rounds", 1.0}, {"agents", 2.0}};
  const SweepReport report = run_sweep(plan, {});
  ASSERT_EQ(report.outcomes.size(), 1u);
  // The scenario reports wall-clock metrics...
  EXPECT_FALSE(std::isnan(
      report.outcomes[0].result.rows[0].metric_or_nan("elapsed_ms")));
  // ...but the canonical record must not contain them...
  const std::string record = sweep_record_json(report.outcomes[0].point,
                                               report.outcomes[0].result);
  EXPECT_EQ(record.find("_ms"), std::string::npos) << record;
  EXPECT_NE(record.find("social_cost"), std::string::npos);
  // ...and neither may aggregation (a resumed run's summary must equal an
  // uninterrupted run's, and restored rows carry no timing).
  for (const auto& aggregate : aggregate_outcomes(report.outcomes))
    EXPECT_FALSE(is_timing_metric(aggregate.metric)) << aggregate.metric;
}

// --- checkpoint / resume --------------------------------------------------

TEST(SweepRunner, ResumesFromTruncatedJournalWithoutRerunningOrChanging) {
  const std::string full_path = temp_path("full.jsonl");
  const std::string cut_path = temp_path("cut.jsonl");

  SweepRunnerOptions options;
  options.threads = 1;
  options.journal_path = full_path;
  const SweepReport full = run_sweep(acceptance_plan(), options);
  const auto full_lines = read_lines(full_path);
  ASSERT_EQ(full_lines.size(), 37u);  // header + 36 records

  // Simulate a kill mid-sweep: header, 11 complete records, and one record
  // truncated mid-write.
  constexpr std::size_t kCompleted = 11;
  {
    std::ofstream cut(cut_path, std::ios::trunc);
    for (std::size_t i = 0; i <= kCompleted; ++i) cut << full_lines[i] << '\n';
    cut << full_lines[kCompleted + 1].substr(
        0, full_lines[kCompleted + 1].size() / 2);
  }

  SweepRunnerOptions resume;
  resume.threads = 4;
  resume.journal_path = cut_path;
  resume.resume = true;
  const SweepReport resumed = run_sweep(acceptance_plan(), resume);

  EXPECT_EQ(resumed.resumed, kCompleted);
  EXPECT_EQ(resumed.executed, 36u - kCompleted);
  std::size_t from_journal = 0;
  for (const auto& outcome : resumed.outcomes)
    from_journal += outcome.from_journal ? 1 : 0;
  EXPECT_EQ(from_journal, kCompleted);

  // Results are unchanged and the compacted journal sorts to the same
  // bytes as the uninterrupted run's.
  for (std::size_t i = 0; i < full.outcomes.size(); ++i)
    EXPECT_EQ(
        sweep_record_json(full.outcomes[i].point, full.outcomes[i].result),
        sweep_record_json(resumed.outcomes[i].point,
                          resumed.outcomes[i].result));
  EXPECT_EQ(sorted_lines(cut_path), sorted_lines(full_path));

  // Resuming a fully written journal re-runs nothing.
  SweepRunnerOptions noop = resume;
  noop.journal_path = full_path;
  const SweepReport nothing = run_sweep(acceptance_plan(), noop);
  EXPECT_EQ(nothing.resumed, 36u);
  EXPECT_EQ(nothing.executed, 0u);

  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(SweepRunner, RefusesToResumeAForeignJournal) {
  const std::string path = temp_path("foreign.jsonl");
  SweepPlan small;
  small.scenarios = {"optimum_gap"};
  small.hosts = {"dense"};
  small.ns = {4};
  SweepRunnerOptions options;
  options.journal_path = path;
  run_sweep(small, options);

  options.resume = true;
  SweepPlan other = small;
  other.ns = {5};
  EXPECT_THROW(run_sweep(other, options), ContractViolation);
  std::remove(path.c_str());
}

// --- aggregation ----------------------------------------------------------

TEST(SweepAggregate, RollsReplicatesIntoGroups) {
  SweepPlan plan;
  plan.scenarios = {"optimum_gap"};
  plan.hosts = {"dense", "tree"};
  plan.ns = {4};
  plan.seeds = 3;
  const SweepReport report = run_sweep(plan, {});
  const auto aggregates = aggregate_outcomes(report.outcomes);

  // 2 groups (hosts) x 6 metrics, each over 3 replicate samples.
  EXPECT_EQ(aggregates.size(), 12u);
  for (const auto& aggregate : aggregates) {
    EXPECT_EQ(aggregate.stats.count(), 3u);
    EXPECT_GE(aggregate.stats.max(), aggregate.stats.median());
    EXPECT_GE(aggregate.stats.median(), aggregate.stats.min());
  }
  // On tree hosts the MST (= the defining tree) is the optimum: gap 1.
  bool saw_tree_gap = false;
  for (const auto& aggregate : aggregates)
    if (aggregate.key.host == "tree" && aggregate.metric == "mst_gap_ratio") {
      saw_tree_gap = true;
      EXPECT_DOUBLE_EQ(aggregate.stats.mean(), 1.0);
    }
  EXPECT_TRUE(saw_tree_gap);

  const ConsoleTable table = aggregate_table(aggregates);
  EXPECT_EQ(table.row_count(), aggregates.size());

  std::ostringstream summary;
  write_summary_jsonl(summary, aggregates);
  std::istringstream lines(summary.str());
  std::string line;
  std::size_t parsed_lines = 0;
  while (std::getline(lines, line)) {
    const auto parsed = JsonValue::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->string_at("schema"), "gncg-sweep-summary-1");
    EXPECT_EQ(parsed->number_at("count"), 3.0);
    ++parsed_lines;
  }
  EXPECT_EQ(parsed_lines, aggregates.size());
}

// --- provenance (instance_io) ---------------------------------------------

TEST(SweepProvenance, DumpedHostRoundTripsWithJobIdentity) {
  const auto& registry = ScenarioRegistry::instance();
  SweepPlan plan;
  plan.scenarios = {"br_dynamics"};
  plan.hosts = {"tree"};
  plan.ns = {6};
  const auto points = plan.expand(registry);
  ASSERT_EQ(points.size(), 1u);

  Rng rng(points[0].rng_stream());
  const auto host = registry.at("br_dynamics").build_host(points[0], rng);
  ASSERT_TRUE(host.has_value());

  const HostProvenance provenance{points[0].scenario, points[0].point_index,
                                  points[0].rng_stream()};
  std::stringstream file;
  save_host(file, *host, &provenance);

  HostProvenance loaded_provenance;
  const HostGraph loaded = load_host(file, &loaded_provenance);
  EXPECT_EQ(loaded_provenance.scenario, "br_dynamics");
  EXPECT_EQ(loaded_provenance.point_index, points[0].point_index);
  EXPECT_EQ(loaded_provenance.stream, points[0].rng_stream());
  ASSERT_EQ(loaded.node_count(), host->node_count());
  for (int u = 0; u < loaded.node_count(); ++u)
    for (int v = 0; v < loaded.node_count(); ++v)
      EXPECT_EQ(loaded.weight(u, v), host->weight(u, v));

  // The rng prefix contract: rebuilding from the stream gives the job's
  // exact instance.
  Rng replay(points[0].rng_stream());
  const HostGraph rebuilt = make_sweep_host(points[0], replay);
  for (int u = 0; u < loaded.node_count(); ++u)
    for (int v = 0; v < loaded.node_count(); ++v)
      EXPECT_EQ(rebuilt.weight(u, v), host->weight(u, v));
}

TEST(SweepProvenance, FilesWithoutExtensionBlockLeaveProvenanceUntouched) {
  std::stringstream file;
  save_host(file, HostGraph::unit(3));
  EXPECT_EQ(file.str().find("x-"), std::string::npos);
  HostProvenance provenance{"unset", 7, 9};
  const HostGraph loaded = load_host(file, &provenance);
  EXPECT_EQ(loaded.node_count(), 3);
  EXPECT_EQ(provenance.scenario, "unset");
  EXPECT_EQ(provenance.point_index, 7u);
}

TEST(SweepProvenance, UnknownExtensionKeysAreSkipped) {
  std::stringstream file;
  save_host(file, HostGraph::unit(3));
  std::string text = file.str();
  const auto model_end = text.find("\nn ");
  ASSERT_NE(model_end, std::string::npos);
  text.insert(model_end + 1, "x-future-key some-value\n");
  std::istringstream patched(text);
  EXPECT_EQ(load_host(patched).node_count(), 3);
}

TEST(SweepProvenance, MalformedExtensionValuesContractFail) {
  std::stringstream file;
  save_host(file, HostGraph::unit(3));
  std::string text = file.str();
  const auto model_end = text.find("\nn ");
  ASSERT_NE(model_end, std::string::npos);
  text.insert(model_end + 1, "x-point not-a-number\n");
  std::istringstream patched(text);
  HostProvenance provenance;
  EXPECT_THROW(load_host(patched, &provenance), ContractViolation);
}

// --- scenario row helpers -------------------------------------------------

TEST(ScenarioRow, LookupHelpers) {
  ScenarioRow row;
  row.metric("a", 1.5).tag("t", "v");
  EXPECT_DOUBLE_EQ(row.metric_or_nan("a"), 1.5);
  EXPECT_TRUE(std::isnan(row.metric_or_nan("missing")));
  EXPECT_EQ(row.tag_or_empty("t"), "v");
  EXPECT_EQ(row.tag_or_empty("missing"), "");
}

}  // namespace
}  // namespace gncg
