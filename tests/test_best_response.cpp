// Tests for best-response machinery: the pruned exact search against the
// unpruned brute force, the incremental br_search engine against the naive
// per-subset-Dijkstra baseline, single-move scans, and the improvement
// predicate.
#include <gtest/gtest.h>

#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace gncg {
namespace {

/// Randomized hosts across model classes for property sweeps.
Game random_game(int n, double alpha, int flavor, Rng& rng) {
  switch (flavor % 4) {
    case 0: return Game(random_metric_host(n, rng), alpha);
    case 1: return Game(random_one_two_host(n, 0.5, rng), alpha);
    case 2: return Game(random_general_host(n, rng), alpha);
    default: return Game(random_one_inf_host(n, 0.6, rng), alpha);
  }
}

/// Randomized hosts across every backend kind (dense model classes plus the
/// implicit euclidean / tree backends) for the differential fuzz.
Game random_backend_game(int n, double alpha, int flavor, Rng& rng) {
  switch (flavor % 6) {
    case 0: return Game(random_metric_host(n, rng), alpha);
    case 1: return Game(random_one_two_host(n, 0.5, rng), alpha);
    case 2: return Game(random_general_host(n, rng), alpha);
    case 3: return Game(random_one_inf_host(n, 0.6, rng), alpha);
    case 4:
      return Game(HostGraph::from_points(uniform_points(n, 2, 100.0, rng),
                                         2.0),
                  alpha);
    default:
      return Game(HostGraph::from_tree(random_tree(n, rng, 1.0, 10.0)),
                  alpha);
  }
}

/// Inserts `pairs` mutual (double-ownership) buys into the profile: both
/// endpoints pay for the same built edge, the state dynamics can pass
/// through and the environment masking must keep.
void force_mutual_buys(const Game& game, StrategyProfile& profile, int pairs,
                       Rng& rng) {
  const int n = game.node_count();
  for (int j = 0; j < pairs; ++j) {
    const int a = static_cast<int>(rng.uniform_below(
        static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.uniform_below(
        static_cast<std::uint64_t>(n)));
    if (a == b || !game.can_buy(a, b)) continue;
    profile.add_buy(a, b);
    profile.add_buy(b, a);
  }
}

TEST(ExactBestResponse, MatchesBruteForceAcrossModels) {
  Rng rng(101);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform_below(3));  // 4..6
    const double alpha = rng.uniform_real(0.2, 4.0);
    const Game game = random_game(n, alpha, trial, rng);
    const StrategyProfile profile = random_profile(game, rng);
    const int u = static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n)));
    const auto exact = exact_best_response(game, profile, u);
    const auto brute = testing::brute_force_best_response(game, profile, u);
    EXPECT_NEAR(exact.cost, brute.cost, 1e-9 * std::max(1.0, brute.cost))
        << "trial " << trial << " agent " << u;
    EXPECT_LE(exact.evaluations, brute.evaluations);
  }
}

TEST(ExactBestResponse, PrunesSubstantially) {
  // With a large alpha the best response buys few edges, so the edge-cost
  // lower bound cuts nearly the whole 2^(n-1) subset tree.
  Rng rng(103);
  const Game game(random_metric_host(8, rng), 20.0);
  const StrategyProfile profile = random_profile(game, rng);
  const auto exact = exact_best_response(game, profile, 0);
  const auto brute = testing::brute_force_best_response(game, profile, 0);
  EXPECT_NEAR(exact.cost, brute.cost, 1e-9 * std::max(1.0, brute.cost));
  EXPECT_LT(exact.evaluations, brute.evaluations / 2)
      << "pruning should cut most of the 2^(n-1) subsets";
}

TEST(ExactBestResponse, IncumbentEarlyExitFindsImprovement) {
  Rng rng(107);
  const Game game(random_metric_host(5, rng), 1.0);
  StrategyProfile profile(5);  // empty: every agent is at infinite cost
  BestResponseOptions options;
  options.incumbent = agent_cost(game, profile, 0);
  options.first_improvement = true;
  const auto result = exact_best_response(game, profile, 0, options);
  EXPECT_TRUE(result.improved);
  EXPECT_LT(result.cost, kInf);
}

TEST(ExactBestResponse, ReportsNoImprovementAtOptimum) {
  Rng rng(109);
  const Game game(random_metric_host(5, rng), 1.0);
  StrategyProfile profile = random_profile(game, rng);
  const auto full = exact_best_response(game, profile, 2);
  StrategyProfile best = profile;
  best.set_strategy(2, full.strategy);
  BestResponseOptions options;
  options.incumbent = agent_cost(game, best, 2);
  EXPECT_FALSE(exact_best_response(game, best, 2, options).improved);
  EXPECT_FALSE(has_improving_deviation(game, best, 2));
}

TEST(ExactBestResponse, EnvironmentCostMatchesAgentCost) {
  Rng rng(113);
  const Game game(random_metric_host(6, rng), 1.3);
  const StrategyProfile profile = random_profile(game, rng);
  for (int u = 0; u < 6; ++u) {
    const AgentEnvironment env(game, profile, u);
    EXPECT_NEAR(env.cost_of(profile.strategy(u)), agent_cost(game, profile, u),
                1e-9);
  }
}

TEST(ExactBestResponse, NeverBuysForbiddenEdges) {
  Rng rng(127);
  const Game game(random_one_inf_host(6, 0.5, rng), 0.7);
  const StrategyProfile profile = random_profile(game, rng);
  const auto result = exact_best_response(game, profile, 0);
  result.strategy.for_each([&](int v) {
    EXPECT_LT(game.weight(0, v), kInf);
  });
}

TEST(SingleMoves, AdditionImprovesDisconnectedAgent) {
  // Everyone but agent 0 forms a star; agent 0 is isolated, so any single
  // purchase connects it to the whole network.
  Rng rng(131);
  const Game game(random_metric_host(5, rng), 1.0);
  StrategyProfile profile(5);
  for (int v = 2; v < 5; ++v) profile.add_buy(1, v);
  const auto result = best_addition(game, profile, 0);
  EXPECT_TRUE(result.improved);
  EXPECT_EQ(result.move.type, MoveType::kAdd);
  EXPECT_EQ(result.current_cost, kInf);
  EXPECT_LT(result.cost, kInf);
}

TEST(SingleMoves, DeletionOfRedundantEdgeImproves) {
  // Complete profile on a triangle: dropping the heaviest edge helps.
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 1.0);
  weights.set_symmetric(1, 2, 1.0);
  weights.set_symmetric(0, 2, 2.0);
  const Game game(HostGraph::from_weights(std::move(weights)), 5.0);
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  profile.add_buy(1, 2);
  profile.add_buy(0, 2);
  const auto result = best_single_move(game, profile, 0);
  EXPECT_TRUE(result.improved);
  EXPECT_EQ(result.move.type, MoveType::kDelete);
  EXPECT_EQ(result.move.remove, 2);
}

TEST(SingleMoves, SwapBeatsAddAndDeleteWhenBothNeeded) {
  // Star at 0 on a path metric: the leaf buying the far edge should swap it
  // for the near one.  Host: points 0,1,10 on a line.
  const PointSet points = line_points({0.0, 1.0, 10.0});
  const Game game(HostGraph::from_points(points, 1.0), 10.0);
  StrategyProfile profile(3);
  profile.add_buy(2, 0);  // node 2 buys the long edge to 0
  profile.add_buy(0, 1);
  const auto result = best_single_move(game, profile, 2);
  EXPECT_TRUE(result.improved);
  EXPECT_EQ(result.move.type, MoveType::kSwap);
  EXPECT_EQ(result.move.remove, 0);
  EXPECT_EQ(result.move.add, 1);
}

TEST(SingleMoves, BestSingleMoveNeverWorseThanBestResponse) {
  Rng rng(137);
  for (int trial = 0; trial < 12; ++trial) {
    const Game game = random_game(5, rng.uniform_real(0.3, 3.0), trial, rng);
    const StrategyProfile profile = random_profile(game, rng);
    const int u = static_cast<int>(rng.uniform_below(5));
    const auto single = best_single_move(game, profile, u);
    const auto full = exact_best_response(game, profile, u);
    EXPECT_GE(single.cost + 1e-9, full.cost)
        << "single move cannot beat the exact best response";
    EXPECT_LE(single.cost, single.current_cost + 1e-9);
  }
}

TEST(SingleMoves, ApplyMoveMatchesReportedCost) {
  Rng rng(139);
  const Game game(random_metric_host(6, rng), 0.8);
  StrategyProfile profile = random_profile(game, rng);
  for (int u = 0; u < 6; ++u) {
    const auto result = best_single_move(game, profile, u);
    if (!result.improved) continue;
    StrategyProfile moved = profile;
    apply_move(moved, u, result.move);
    EXPECT_NEAR(agent_cost(game, moved, u), result.cost, 1e-9);
    return;  // one verified application suffices
  }
}

// --- incremental br_search vs naive baseline (differential fuzz) ----------

TEST(BrSearchDifferential, FullSearchMatchesNaiveAcrossBackends) {
  Rng rng(211);
  for (int trial = 0; trial < 36; ++trial) {
    const int n = 6 + (trial % 5);  // 6..10
    const double alpha = rng.uniform_real(0.2, 4.0);
    const Game game = random_backend_game(n, alpha, trial, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    for (int u = 0; u < n; ++u) {
      const auto naive = naive_exact_best_response(game, profile, u);
      const auto fast = exact_best_response(game, profile, u);
      EXPECT_TRUE(fast.strategy == naive.strategy)
          << "trial " << trial << " agent " << u;
      EXPECT_EQ(fast.improved, naive.improved);
      // The new engine's evaluation is canonical: its cost equals the
      // environment re-evaluation of the winning strategy bitwise.  (The
      // naive search records its running DFS accumulator instead, whose
      // low-order bits are path-dependent, so its raw cost is compared
      // through re-evaluation.)
      const AgentEnvironment env(game, profile, u);
      EXPECT_EQ(fast.cost, env.cost_of(naive.strategy))
          << "trial " << trial << " agent " << u;
      if (naive.cost < kInf) {
        EXPECT_NEAR(fast.cost, naive.cost,
                    1e-12 * std::max(1.0, std::abs(naive.cost)));
      } else {
        EXPECT_FALSE(fast.cost < kInf);
      }
    }
  }
}

TEST(BrSearchDifferential, CertificationMatchesNaiveAcrossBackends) {
  // NE-certification mode: incumbent = current cost, stop at the first
  // strict improvement.  The found improvement (the DFS-first one) must be
  // identical, not just its existence.
  Rng rng(227);
  for (int trial = 0; trial < 36; ++trial) {
    const int n = 6 + (trial % 5);
    const double alpha = rng.uniform_real(0.2, 4.0);
    const Game game = random_backend_game(n, alpha, trial, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    DeviationEngine engine(game, profile);
    for (int u = 0; u < n; ++u) {
      BestResponseOptions options;
      options.incumbent = agent_cost(game, profile, u);
      options.first_improvement = true;
      const auto naive = naive_exact_best_response(game, profile, u, options);
      const auto fast = exact_best_response(engine, u, options);
      EXPECT_EQ(fast.improved, naive.improved)
          << "trial " << trial << " agent " << u;
      if (naive.improved) {
        EXPECT_TRUE(fast.strategy == naive.strategy)
            << "trial " << trial << " agent " << u;
        const AgentEnvironment env(game, profile, u);
        EXPECT_EQ(fast.cost, env.cost_of(naive.strategy));
      }
      EXPECT_EQ(fast.improved, has_improving_deviation(engine, u));
    }
  }
}

TEST(BrSearchDifferential, ThreadCountInvariant) {
  // The parallel first-level fan-out folds branch outcomes in branch
  // order: full-search results -- including the evaluation count -- must be
  // byte-identical between 1 worker and the default pool.
  Rng rng(229);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8 + (trial % 4);
    const double alpha = rng.uniform_real(0.3, 3.0);
    const Game game = random_backend_game(n, alpha, trial, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 3, rng);
    for (int u = 0; u < n; ++u) {
      set_default_thread_count(1);
      const auto serial = exact_best_response(game, profile, u);
      set_default_thread_count(0);
      const auto parallel = exact_best_response(game, profile, u);
      EXPECT_EQ(parallel.cost, serial.cost);
      EXPECT_TRUE(parallel.strategy == serial.strategy);
      EXPECT_EQ(parallel.improved, serial.improved);
      EXPECT_EQ(parallel.evaluations, serial.evaluations)
          << "full-mode searches do the same work at any thread count";

      // Certification mode: the result (not the work counter) is invariant.
      BestResponseOptions options;
      options.incumbent = agent_cost(game, profile, u);
      options.first_improvement = true;
      set_default_thread_count(1);
      const auto serial_cert = exact_best_response(game, profile, u, options);
      set_default_thread_count(0);
      const auto parallel_cert =
          exact_best_response(game, profile, u, options);
      EXPECT_EQ(parallel_cert.improved, serial_cert.improved);
      if (serial_cert.improved) {
        EXPECT_EQ(parallel_cert.cost, serial_cert.cost);
        EXPECT_TRUE(parallel_cert.strategy == serial_cert.strategy);
      }
    }
  }
  set_default_thread_count(0);
}

// --- AgentEnvironment borrow mode (double-ownership masking) --------------

TEST(AgentEnvironmentView, BorrowMatchesOwnedBuildUnderMutualBuys) {
  // The engine-borrowing environment masks u's sole-owned edges on the fly;
  // edges both endpoints buy must survive the mask.  Differential fuzz of
  // borrowed vs owned costs on profiles with forced mutual buys.
  Rng rng(233);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 5 + (trial % 5);
    const double alpha = rng.uniform_real(0.2, 4.0);
    const Game game = random_backend_game(n, alpha, trial, rng);
    StrategyProfile profile = random_profile(game, rng);
    force_mutual_buys(game, profile, n / 2, rng);
    DeviationEngine engine(game, profile);
    for (int u = 0; u < n; ++u) {
      const AgentEnvironment owned(game, profile, u);
      const AgentEnvironment borrowed(engine, u);
      // The agent's own strategy: cost_of must reproduce agent_cost.
      EXPECT_EQ(borrowed.cost_of(profile.strategy(u)),
                owned.cost_of(profile.strategy(u)))
          << "trial " << trial << " agent " << u;
      // Random candidate sets.
      for (int draw = 0; draw < 4; ++draw) {
        NodeSet targets(n);
        for (int v = 0; v < n; ++v)
          if (v != u && game.can_buy(u, v) && rng.bernoulli(0.4))
            targets.insert(v);
        EXPECT_EQ(borrowed.cost_of(targets), owned.cost_of(targets))
            << "trial " << trial << " agent " << u << " draw " << draw;
      }
      // Full searches through both environment paths agree.
      const auto via_profile = exact_best_response(game, profile, u);
      const auto via_engine = exact_best_response(engine, u);
      EXPECT_EQ(via_engine.cost, via_profile.cost);
      EXPECT_TRUE(via_engine.strategy == via_profile.strategy);
    }
  }
}

TEST(SingleMoves, NoneMoveIsNoOp) {
  StrategyProfile profile(3);
  profile.add_buy(0, 1);
  StrategyProfile copy = profile;
  apply_move(copy, 0, SingleMove{});
  EXPECT_EQ(copy, profile);
}

}  // namespace
}  // namespace gncg
