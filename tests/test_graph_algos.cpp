// Unit tests for structural graph algorithms and MST.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/apsp.hpp"
#include "graph/graph_algos.hpp"
#include "graph/mst.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

WeightedGraph path_graph(int n, double w = 1.0) {
  WeightedGraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, w);
  return g;
}

TEST(Connectivity, DetectsConnectedAndDisconnected) {
  EXPECT_TRUE(is_connected(path_graph(5)));
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(component_count(g), 2);
  EXPECT_EQ(component_count(WeightedGraph(3)), 3);
}

TEST(TreeCheck, PathsAreTreesCyclesAreNot) {
  EXPECT_TRUE(is_tree(path_graph(6)));
  WeightedGraph cycle = path_graph(4);
  cycle.add_edge(0, 3, 1.0);
  EXPECT_FALSE(is_tree(cycle));
  WeightedGraph forest(4);
  forest.add_edge(0, 1, 1.0);
  EXPECT_FALSE(is_tree(forest));  // right edge count only if spanning
}

TEST(Diameter, WeightedPath) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 5.0);
  g.add_edge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(diameter(g), 8.0);
  const auto ecc = eccentricities(g);
  EXPECT_DOUBLE_EQ(ecc[0], 8.0);
  EXPECT_DOUBLE_EQ(ecc[1], 7.0);
  EXPECT_DOUBLE_EQ(ecc[2], 6.0);
}

TEST(Diameter, InfiniteWhenDisconnected) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(diameter(g), kInf);
}

TEST(HopDiameter, IgnoresWeights) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 100.0);
  g.add_edge(1, 2, 100.0);
  g.add_edge(2, 3, 100.0);
  EXPECT_EQ(hop_diameter(g), 3);
  g.add_edge(0, 3, 0.1);
  EXPECT_EQ(hop_diameter(g), 2);
  WeightedGraph disconnected(2);
  EXPECT_EQ(hop_diameter(disconnected), -1);
}

TEST(Bridges, AllTreeEdgesAreBridges) {
  const auto g = path_graph(5);
  EXPECT_EQ(bridges(g).size(), 4u);
}

TEST(Bridges, CycleEdgesAreNotBridges) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);  // triangle
  g.add_edge(2, 3, 1.0);  // bridge
  g.add_edge(3, 4, 1.0);  // bridge
  const auto cut = bridges(g);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[0].u, 2);
  EXPECT_EQ(cut[0].v, 3);
  EXPECT_EQ(cut[1].u, 3);
  EXPECT_EQ(cut[1].v, 4);
}

TEST(EdgeBetweenness, PathEdgeCountsOrderedPairs) {
  // On a path 0-1-2, edge (0,1) carries ordered pairs (0,1),(1,0),(0,2),(2,0).
  const auto g = path_graph(3);
  const auto centrality = edge_betweenness(g);
  ASSERT_EQ(centrality.size(), 2u);
  EXPECT_DOUBLE_EQ(centrality[0], 4.0);
  EXPECT_DOUBLE_EQ(centrality[1], 4.0);
}

TEST(EdgeBetweenness, SplitsTiesFractionally) {
  // Square 0-1-2-3-0 with unit weights: two shortest paths between opposite
  // corners; each edge carries 2 (adjacent ordered pairs) + 2 * 1/2 * 2.
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  const auto centrality = edge_betweenness(g);
  for (double c : centrality) EXPECT_DOUBLE_EQ(c, 4.0);
}

TEST(EdgeBetweenness, TotalEqualsAllPairsPathLengthsInHops) {
  // For unit weights, sum of edge betweenness = sum over ordered pairs of
  // hop distance.
  Rng rng(17);
  WeightedGraph g(7);
  do {
    g = WeightedGraph(7);
    for (int u = 0; u < 7; ++u)
      for (int v = u + 1; v < 7; ++v)
        if (rng.bernoulli(0.5)) g.add_edge(u, v, 1.0);
  } while (!is_connected(g));
  const auto centrality = edge_betweenness(g);
  const double total =
      std::accumulate(centrality.begin(), centrality.end(), 0.0);
  const auto matrix = apsp(g);
  EXPECT_NEAR(total, matrix.ordered_pair_sum(), 1e-6);
}

TEST(Mst, KruskalFindsMinimumTree) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(0, 2, 2.5);
  const auto tree = kruskal_mst(g);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(edge_list_weight(tree), 6.0);
}

TEST(Mst, PrimMatchesKruskalOnRandomCompleteGraphs) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6;
    DistanceMatrix weights(n, 0.0);
    WeightedGraph g(n);
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) {
        const double w = rng.uniform_real(0.5, 9.5);
        weights.set_symmetric(u, v, w);
        g.add_edge(u, v, w);
      }
    const auto prim = prim_mst(weights);
    const auto kruskal = kruskal_mst(g);
    EXPECT_NEAR(edge_list_weight(prim), edge_list_weight(kruskal), 1e-9);
  }
}

TEST(Mst, KruskalRejectsDisconnected) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(kruskal_mst(g), ContractViolation);
}

TEST(Mst, PrimRejectsForbiddenCuts) {
  DistanceMatrix weights(3);  // all off-diagonal infinite
  EXPECT_THROW(prim_mst(weights), ContractViolation);
}

}  // namespace
}  // namespace gncg
