// Tests for the serialization features: DOT export and the plain-text
// instance/profile round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "metric/instance_io.hpp"
#include "support/dot.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

TEST(Dot, UndirectedGraphContainsEdgesAndWeights) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.0);
  std::ostringstream os;
  write_dot(os, g);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph gncg {"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("1 -- 2"), std::string::npos);
}

TEST(Dot, ProfileArrowsPointFromOwner) {
  Rng rng(1);
  const Game game(random_metric_host(3, rng), 1.0);
  StrategyProfile profile(3);
  profile.add_buy(2, 0);
  std::ostringstream os;
  write_dot(os, game, profile);
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("2 -> 0"), std::string::npos);
  EXPECT_EQ(out.find("0 -> 2"), std::string::npos);
}

TEST(Dot, LabelsAndLayoutAreEmitted) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 1.0);
  const PointSet layout({{0.0, 0.0}, {3.0, 4.0}});
  DotOptions options;
  options.labels = {"Hamburg", "Berlin"};
  options.layout = &layout;
  options.edge_weights = false;
  std::ostringstream os;
  write_dot(os, g, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("Hamburg"), std::string::npos);
  EXPECT_NE(out.find("pos=\"3.0,4.0!\""), std::string::npos);
  EXPECT_EQ(out.find("label=\"1.0\""), std::string::npos);
}

TEST(InstanceIo, HostRoundTripPreservesWeights) {
  Rng rng(2);
  const auto host = random_metric_host(6, rng);
  std::stringstream buffer;
  save_host(buffer, host);
  const auto loaded = load_host(buffer);
  ASSERT_EQ(loaded.node_count(), host.node_count());
  for (int u = 0; u < 6; ++u)
    for (int v = 0; v < 6; ++v)
      EXPECT_DOUBLE_EQ(loaded.weight(u, v), host.weight(u, v));
}

TEST(InstanceIo, HostRoundTripPreservesInfiniteWeights) {
  Rng rng(3);
  const auto host = random_one_inf_host(5, 0.5, rng);
  std::stringstream buffer;
  save_host(buffer, host);
  const auto loaded = load_host(buffer);
  for (int u = 0; u < 5; ++u)
    for (int v = u + 1; v < 5; ++v)
      EXPECT_EQ(loaded.weight(u, v), host.weight(u, v));
}

TEST(InstanceIo, ProfileRoundTripPreservesOwnership) {
  StrategyProfile profile(4);
  profile.add_buy(0, 3);
  profile.add_buy(2, 1);
  profile.add_buy(3, 0);  // double ownership survives the trip
  std::stringstream buffer;
  save_profile(buffer, profile);
  const auto loaded = load_profile(buffer);
  EXPECT_EQ(loaded, profile);
}

TEST(InstanceIo, CommentsAndBlankLinesAreSkipped) {
  std::stringstream buffer;
  buffer << "# a comment\n\ngncg-host 1\n  # another\nn 2\nw 0 1 2.5\n";
  const auto host = load_host(buffer);
  EXPECT_EQ(host.node_count(), 2);
  EXPECT_DOUBLE_EQ(host.weight(0, 1), 2.5);
}

TEST(InstanceIo, LegacyVersionOneLoadsAsDense) {
  std::stringstream buffer;
  buffer << "gncg-host 1\nn 3\nw 0 1 1\nw 0 2 2\nw 1 2 2\n";
  const auto host = load_host(buffer);
  EXPECT_EQ(host.backend_kind(), HostBackendKind::kDense);
  EXPECT_EQ(host.declared_model(), ModelClass::kGeneral);
}

TEST(InstanceIo, LiteralVersionTwoEuclideanText) {
  std::stringstream buffer;
  buffer << "gncg-host 2\nbackend euclidean\nmodel Rd-GNCG\n"
         << "p 2\ndim 2\nn 2\npoint 0 0 0\npoint 1 3 4\n";
  const auto host = load_host(buffer);
  EXPECT_EQ(host.backend_kind(), HostBackendKind::kEuclidean);
  EXPECT_EQ(host.node_count(), 2);
  EXPECT_DOUBLE_EQ(host.weight(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(host.host_distance(0, 1), 5.0);
}

TEST(InstanceIo, RejectsUnknownBackendAndModel) {
  {
    std::stringstream buffer("gncg-host 2\nbackend warp\nmodel GNCG\nn 1\n");
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    std::stringstream buffer("gncg-host 2\nbackend dense\nmodel X\nn 1\n");
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    std::stringstream buffer("gncg-host 3\nn 1\n");
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    // Geometric backends pin their model class; a contradicting file is
    // rejected instead of silently rewritten.
    std::stringstream buffer(
        "gncg-host 2\nbackend euclidean\nmodel M-GNCG\n"
        "p 2\ndim 1\nn 1\npoint 0 0\n");
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    // Non-finite coordinates would silently poison every weight (the dense
    // path rejects NaN entries via from_weights validation).
    std::stringstream buffer(
        "gncg-host 2\nbackend euclidean\nmodel Rd-GNCG\n"
        "p 2\ndim 1\nn 2\npoint 0 0\npoint 1 nan\n");
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
}

TEST(InstanceIo, RejectsMalformedInput) {
  {
    std::stringstream buffer("not-a-host\n");
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    std::stringstream buffer("gncg-host 1\nn 3\nw 0 1 1\n");  // missing pairs
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    std::stringstream buffer("gncg-host 1\nn 2\nw 0 1 1\nw 1 0 2\n");  // dup
    EXPECT_THROW(load_host(buffer), ContractViolation);
  }
  {
    std::stringstream buffer("gncg-profile 1\nn 2\nbuy 0 0\n");  // self loop
    EXPECT_THROW(load_profile(buffer), ContractViolation);
  }
}

}  // namespace
}  // namespace gncg
