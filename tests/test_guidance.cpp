// Tests for the future-work extensions: swap equilibria, guided dynamics
// and Price-of-Stability reporting.
#include <gtest/gtest.h>

#include "core/equilibrium.hpp"
#include "core/equilibrium_search.hpp"
#include "core/guidance.hpp"
#include "core/social_optimum.hpp"
#include "metric/host_graph.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

TEST(SwapEquilibrium, GreedyImpliesSwapStable) {
  Rng rng(1201);
  for (int trial = 0; trial < 6; ++trial) {
    const Game game(random_metric_host(5, rng), rng.uniform_real(0.4, 2.5));
    DynamicsOptions options;
    options.rule = MoveRule::kBestSingleMove;
    options.max_moves = 4000;
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    if (!run.converged) continue;
    ASSERT_TRUE(is_greedy_equilibrium(game, run.final_profile));
    EXPECT_TRUE(is_swap_equilibrium(game, run.final_profile));
  }
}

TEST(SwapEquilibrium, StarIsSwapStableForAnyAlpha) {
  // The star center owns edges to everyone: no swap target remains; leaves
  // own nothing.  Swap-stability holds for every alpha, even where the
  // star is not a NE.
  for (double alpha : {0.2, 1.0, 5.0}) {
    const Game game(HostGraph::unit(6), alpha);
    EXPECT_TRUE(is_swap_equilibrium(game, star_profile(game, 0)));
  }
}

TEST(SwapEquilibrium, DetectsImprovingSwap) {
  // Line 0 - 1 - 10: node 2 buying the far edge to 0 improves by swapping
  // to node 1 (shorter edge, same connectivity).
  const PointSet points = line_points({0.0, 1.0, 10.0});
  const Game game(HostGraph::from_points(points, 1.0), 10.0);
  StrategyProfile profile(3);
  profile.add_buy(2, 0);
  profile.add_buy(0, 1);
  EXPECT_FALSE(is_swap_equilibrium(game, profile));
  const auto move = best_swap(game, profile, 2);
  EXPECT_TRUE(move.improved);
  EXPECT_EQ(move.move.type, MoveType::kSwap);
}

TEST(SwapEquilibrium, SwapOnlyScanNeverAddsOrDeletes) {
  Rng rng(1213);
  const Game game(random_metric_host(6, rng), 1.0);
  const auto profile = random_profile(game, rng);
  for (int u = 0; u < 6; ++u) {
    const auto move = best_swap(game, profile, u);
    if (move.improved) EXPECT_EQ(move.move.type, MoveType::kSwap);
  }
}

TEST(Guidance, GuidedProfileBuildsExactlyTheTargetNetwork) {
  Rng rng(1217);
  const Game game(random_metric_host(6, rng), 1.5);
  const auto target = mst_network(game);
  const auto profile = guided_profile(game, target.edges, 99);
  const auto network = built_graph(game, profile);
  EXPECT_EQ(network.edge_count(), static_cast<int>(target.edges.size()));
  for (const auto& e : target.edges) EXPECT_TRUE(network.has_edge(e.u, e.v));
}

TEST(Guidance, TreeMetricGuidanceReachesTheOptimum) {
  // Corollary 3: guiding towards the defining tree should land exactly on
  // cost(OPT) -- the guided start is already a NE under a good ownership.
  Rng rng(1223);
  for (int trial = 0; trial < 3; ++trial) {
    const auto tree = random_tree(6, rng, 1.0, 6.0);
    const Game game(HostGraph::from_tree(tree), rng.uniform_real(0.5, 2.0));
    GuidanceOptions options;
    options.random_runs = 3;
    options.seed = rng();
    const auto comparison =
        compare_guided_vs_random(game, tree_optimum(game), options);
    ASSERT_TRUE(comparison.guided.converged);
    EXPECT_TRUE(comparison.guided.nash_verified);
    EXPECT_NEAR(comparison.guided.social_cost, comparison.target_cost, 1e-9)
        << "guided dynamics should stay on the optimum tree";
  }
}

TEST(Guidance, GuidedNeverWorseThanRandomBest) {
  Rng rng(1229);
  int meaningful = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const Game game(random_metric_host(6, rng), rng.uniform_real(0.5, 3.0));
    GuidanceOptions options;
    options.random_runs = 4;
    options.seed = rng();
    const auto comparison =
        compare_guided_vs_random(game, local_search_optimum(game), options);
    if (!comparison.guided.converged) continue;
    ++meaningful;
    // Guidance targets low-cost stable states: allow slack but catch
    // regressions where guidance lands far above random outcomes.
    EXPECT_LE(comparison.guided.social_cost,
              comparison.random_mean_cost() * 1.25 + 1e-9);
  }
  EXPECT_GE(meaningful, 2);
}

TEST(PriceOfStability, TreeMetricsHavePosOne) {
  // Corollary 3 footnote: the PoS of the T-GNCG is 1.
  Rng rng(1231);
  for (int trial = 0; trial < 3; ++trial) {
    const auto tree = random_tree(4, rng, 1.0, 5.0);
    const Game game(HostGraph::from_tree(tree), rng.uniform_real(0.5, 2.0));
    const auto equilibria = enumerate_nash_equilibria(game);
    ASSERT_FALSE(equilibria.empty());
    const auto opt = exact_social_optimum(game);
    const auto estimate = estimate_poa(equilibria, opt.cost.total(), true);
    EXPECT_NEAR(estimate.pos, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace gncg
