// Property tests for the paper's structural lemmas:
//   Lemma 1: every AE is an (alpha+1)-spanner of the host.
//   Lemma 2: the social optimum is an (alpha/2+1)-spanner.
//   Theorem 1 proof engine: per-pair sigma <= (alpha+2)/2 on metric hosts.
//   Theorem 20: sigma <= ((alpha+2)/2)^2 in general.
#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"
#include "core/social_optimum.hpp"
#include "core/spanner_bounds.hpp"
#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

/// Runs add-only dynamics to an AE from a connected random profile.  (The
/// empty profile is vacuously an AE with all-infinite costs -- no single
/// addition can make any agent's cost finite -- and Lemma 1 implicitly
/// speaks about connected outcomes.)
StrategyProfile reach_add_only_equilibrium(const Game& game, Rng& rng) {
  DynamicsOptions options;
  options.rule = MoveRule::kBestAddition;
  options.max_moves = 10000;
  const auto run = run_dynamics(game, random_profile(game, rng), options);
  EXPECT_TRUE(run.converged);
  return run.final_profile;
}

class SpannerBoundsSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpannerBoundsSweep, Lemma1AddOnlyEquilibriaAreAlphaPlusOneSpanners) {
  const double alpha = GetParam();
  Rng rng(801 + static_cast<std::uint64_t>(alpha * 100));
  for (int trial = 0; trial < 4; ++trial) {
    const Game game(random_metric_host(7, rng), alpha);
    const auto ae = reach_add_only_equilibrium(game, rng);
    ASSERT_TRUE(is_add_only_equilibrium(game, ae));
    EXPECT_LE(profile_stretch(game, ae), alpha + 1.0 + 1e-6)
        << "Lemma 1 violated at alpha=" << alpha;
  }
}

TEST_P(SpannerBoundsSweep, Lemma2OptimaAreHalfAlphaPlusOneSpanners) {
  const double alpha = GetParam();
  Rng rng(853 + static_cast<std::uint64_t>(alpha * 100));
  for (int trial = 0; trial < 3; ++trial) {
    const Game game(random_metric_host(5, rng), alpha);
    const auto opt = exact_social_optimum(game);
    EXPECT_LE(network_stretch(game, opt.edges), alpha / 2.0 + 1.0 + 1e-6)
        << "Lemma 2 violated at alpha=" << alpha;
  }
}

TEST_P(SpannerBoundsSweep, Theorem1SigmaBoundOnMetricEquilibria) {
  const double alpha = GetParam();
  Rng rng(877 + static_cast<std::uint64_t>(alpha * 100));
  for (int trial = 0; trial < 3; ++trial) {
    const Game game(random_metric_host(5, rng), alpha);
    DynamicsOptions options;
    options.max_moves = 4000;
    const auto run = run_dynamics(game, random_profile(game, rng), options);
    if (!run.converged) continue;
    if (!is_nash_equilibrium(game, run.final_profile)) continue;
    const auto opt = exact_social_optimum(game);
    const double sigma = max_pair_sigma(game, run.final_profile, opt.edges);
    EXPECT_LE(sigma, paper::metric_poa(alpha) + 1e-6)
        << "per-pair sigma exceeded (alpha+2)/2 on a metric host";
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, SpannerBoundsSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

TEST(SpannerBounds, Lemma1AlsoHoldsOnOneTwoHosts) {
  Rng rng(881);
  for (double alpha : {0.5, 1.0, 3.0}) {
    const Game game(random_one_two_host(7, 0.5, rng), alpha);
    const auto ae = reach_add_only_equilibrium(game, rng);
    EXPECT_LE(profile_stretch(game, ae), alpha + 1.0 + 1e-6);
  }
}

TEST(SpannerBounds, SigmaCanExceedMetricBoundOnGeneralHosts) {
  // The Theorem 20 remark instance: sigma hits ((alpha+2)/2)^2 exactly
  // while metric hosts are capped at (alpha+2)/2.
  const double alpha = 2.0;
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 0.0);
  weights.set_symmetric(1, 2, 1.0);
  weights.set_symmetric(0, 2, (alpha + 2.0) / 2.0);
  const Game game(HostGraph::from_weights(std::move(weights)), alpha);
  StrategyProfile ne(3);
  ne.add_buy(0, 1);
  ne.add_buy(0, 2);
  ASSERT_TRUE(is_nash_equilibrium(game, ne));
  const std::vector<Edge> opt{{0, 1, 0.0}, {1, 2, 1.0}};
  const double sigma = max_pair_sigma(game, ne, opt);
  EXPECT_NEAR(sigma, paper::general_poa_upper(alpha), 1e-9);
  EXPECT_GT(sigma, paper::metric_poa(alpha));
}

TEST(SpannerBounds, StretchOfHostItselfIsOne) {
  Rng rng(883);
  const Game game(random_metric_host(5, rng), 1.0);
  std::vector<Edge> all_edges;
  for (int u = 0; u < 5; ++u)
    for (int v = u + 1; v < 5; ++v)
      all_edges.push_back({u, v, game.weight(u, v)});
  EXPECT_NEAR(network_stretch(game, all_edges), 1.0, 1e-9);
}

}  // namespace
}  // namespace gncg
