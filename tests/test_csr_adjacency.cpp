// CSR adjacency slab: unit tests for the relocation / compaction machinery
// and the differential fuzz contract behind DeviationEngine::adjacency().
//
// The load-bearing property: after ANY sequence of engine mutations
// (add_buy / remove_buy / set_strategy / apply_move / set_profile), the CSR
// slab enumerates, per node, exactly the neighbor multiset of a from-scratch
// build_adjacency on the same profile -- including the double-ownership
// collapse rule (a doubly-owned edge appears once, emitted by the
// smaller-id owner).  This is what every bitwise engine-vs-naive
// differential in test_deviation_engine.cpp silently rides on.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/deviation_engine.hpp"
#include "core/game.hpp"
#include "core/profile_gen.hpp"
#include "graph/csr_adjacency.hpp"
#include "metric/host_graph.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

using Entry = std::pair<int, double>;

std::vector<Entry> sorted_entries(std::span<const Neighbor> span) {
  std::vector<Entry> out;
  out.reserve(span.size());
  for (const auto& nb : span) out.emplace_back(nb.to, nb.weight);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Entry> sorted_entries(const std::vector<Neighbor>& list) {
  return sorted_entries(std::span<const Neighbor>(list.data(), list.size()));
}

/// Asserts that the engine's CSR adjacency matches a from-scratch
/// build_adjacency of the engine's current profile, node by node.
void expect_matches_rebuild(const DeviationEngine& engine) {
  const auto reference = build_adjacency(engine.game(), engine.profile());
  const CsrAdjacency& csr = engine.adjacency();
  ASSERT_EQ(csr.node_count(), static_cast<int>(reference.size()));
  for (int u = 0; u < csr.node_count(); ++u) {
    SCOPED_TRACE(::testing::Message() << "node " << u);
    const auto& ref = reference[static_cast<std::size_t>(u)];
    ASSERT_EQ(csr.degree(u), static_cast<int>(ref.size()));
    EXPECT_EQ(sorted_entries(csr.neighbors(u)), sorted_entries(ref));
  }
}

// --- raw slab unit tests ---------------------------------------------------

TEST(CsrAdjacency, AddBeyondSlackRelocatesAndPreservesEntries) {
  CsrAdjacency csr;
  csr.begin_rebuild(40);
  csr.finish_counts();  // every node starts with an empty slice
  // Node 0 grows far past any initial slack: forces repeated relocation.
  for (int v = 1; v < 40; ++v) csr.add_half(0, v, static_cast<double>(v));
  EXPECT_EQ(csr.degree(0), 39);
  EXPECT_GT(csr.relocations(), 0u);
  std::vector<Entry> expected;
  for (int v = 1; v < 40; ++v) expected.emplace_back(v, static_cast<double>(v));
  EXPECT_EQ(sorted_entries(csr.neighbors(0)), expected);
  // Enumeration order is append order: never permuted by relocation.
  const auto span = csr.neighbors(0);
  for (int i = 0; i < 39; ++i) EXPECT_EQ(span[static_cast<std::size_t>(i)].to, i + 1);
}

TEST(CsrAdjacency, RemoveIsSwapWithLastWithinSlice) {
  CsrAdjacency csr;
  csr.begin_rebuild(5);
  csr.finish_counts();
  for (int v = 1; v < 5; ++v) csr.add_half(0, v, 1.0);
  csr.remove_half(0, 2);  // last entry (4) takes slot of 2
  const auto span = csr.neighbors(0);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0].to, 1);
  EXPECT_EQ(span[1].to, 4);
  EXPECT_EQ(span[2].to, 3);
}

TEST(CsrAdjacency, GrowShrinkChurnTriggersCompaction) {
  CsrAdjacency csr;
  csr.begin_rebuild(8);
  csr.finish_counts();
  // Repeatedly inflate then deflate node degrees: every inflation past the
  // slack relocates a slice and strands its old slots, so dead space keeps
  // accumulating until the compaction threshold trips.
  Rng rng(7);
  for (int round = 0; round < 60; ++round) {
    const int u = static_cast<int>(rng.uniform_below(8));
    std::vector<int> added;
    for (int v = 0; v < 8; ++v) {
      if (v == u) continue;
      csr.add_half(u, v, 1.0 + v);
      added.push_back(v);
    }
    for (int v : added) csr.remove_half(u, v);
    EXPECT_EQ(csr.degree(u), 0);
  }
  EXPECT_GT(csr.compactions(), 0u);
  // After all the churn every node is empty and the invariants still hold.
  for (int u = 0; u < 8; ++u) EXPECT_EQ(csr.degree(u), 0);
  // Dead space is bounded by the compaction threshold (a third of the slab).
  EXPECT_LE(csr.dead_entries() * 3, csr.slab_entries());
}

TEST(CsrAdjacency, CompactionPreservesPerNodeOrder) {
  CsrAdjacency csr;
  csr.begin_rebuild(6);
  csr.finish_counts();
  // Node 5 keeps a fixed, ordered list while nodes 0..4 churn hard enough
  // to force compactions around it.
  for (int v = 0; v < 5; ++v) csr.add_half(5, v, 10.0 + v);
  const std::uint64_t before = csr.compactions();
  for (int round = 0; round < 40; ++round) {
    for (int u = 0; u < 5; ++u)
      for (int v = 0; v < 6; ++v) {
        if (v == u) continue;
        csr.add_half(u, v, 1.0);
      }
    for (int u = 0; u < 5; ++u)
      for (int v = 0; v < 6; ++v) {
        if (v == u) continue;
        csr.remove_half(u, v);
      }
  }
  EXPECT_GT(csr.compactions(), before);
  const auto span = csr.neighbors(5);
  ASSERT_EQ(span.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(span[static_cast<std::size_t>(i)].to, i);
    EXPECT_DOUBLE_EQ(span[static_cast<std::size_t>(i)].weight, 10.0 + i);
  }
}

TEST(CsrAdjacency, RebuildReusesSlabAndMatchesIncremental) {
  CsrAdjacency incremental;
  incremental.begin_rebuild(4);
  incremental.finish_counts();
  incremental.link(0, 1, 1.0);
  incremental.link(1, 2, 2.0);
  incremental.link(2, 3, 3.0);

  CsrAdjacency rebuilt;
  rebuilt.begin_rebuild(4);
  const int edges[3][2] = {{0, 1}, {1, 2}, {2, 3}};
  for (const auto& e : edges) {
    rebuilt.count_half(e[0]);
    rebuilt.count_half(e[1]);
  }
  rebuilt.finish_counts();
  double w = 1.0;
  for (const auto& e : edges) {
    rebuilt.fill_half(e[0], e[1], w);
    rebuilt.fill_half(e[1], e[0], w);
    w += 1.0;
  }
  for (int u = 0; u < 4; ++u)
    EXPECT_EQ(sorted_entries(incremental.neighbors(u)),
              sorted_entries(rebuilt.neighbors(u)));
}

// --- differential fuzz vs build_adjacency ----------------------------------

HostGraph random_integer_host(int n, Rng& rng) {
  DistanceMatrix weights(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      weights.set_symmetric(u, v,
                            static_cast<double>(rng.uniform_int(1, 9)));
  return HostGraph::from_weights(std::move(weights));
}

HostGraph random_host(int family, int n, Rng& rng) {
  switch (family) {
    case 0:
      return random_one_two_host(n, 0.5, rng);
    case 1: {  // lazy general integer host (LazyHostBackend path)
      DistanceMatrix weights(n, 0.0);
      for (int u = 0; u < n; ++u)
        for (int v = u + 1; v < n; ++v)
          weights.set_symmetric(u, v,
                                static_cast<double>(rng.uniform_int(1, 9)));
      return HostGraph::from_weights_lazy(std::move(weights),
                                          ModelClass::kGeneral);
    }
    case 2:
      return HostGraph::from_points(uniform_points(n, 2, 100.0, rng),
                                    /*p=*/2.0);
    default:
      return HostGraph::from_tree(random_tree(n, rng));
  }
}

TEST(CsrAdjacencyDifferential, RandomMutationSequencesMatchBuildAdjacency) {
  Rng rng(424242);
  for (int round = 0; round < 16; ++round) {
    const int family = round % 4;
    const int n = 5 + static_cast<int>(rng.uniform_below(8));
    const Game game(random_host(family, n, rng), /*alpha=*/1.0);
    DeviationEngine engine(game, random_profile(game, rng, 0.3));
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " family " << family << " n " << n);
    expect_matches_rebuild(engine);
    for (int batch = 0; batch < 6; ++batch) {
      SCOPED_TRACE(::testing::Message() << "batch " << batch);
      for (int step = 0; step < 10; ++step) {
        const int u = static_cast<int>(rng.uniform_below(n));
        int v = static_cast<int>(rng.uniform_below(n));
        if (v == u) v = (v + 1) % n;
        switch (rng.uniform_below(4)) {
          case 0:
            if (game.can_buy(u, v)) engine.add_buy(u, v);
            break;
          case 1:
            engine.remove_buy(u, v);
            break;
          case 2: {  // force double ownership, then sometimes drop one side
            if (game.can_buy(u, v) && game.can_buy(v, u)) {
              engine.add_buy(u, v);
              engine.add_buy(v, u);
              if (rng.uniform_below(2) == 0) engine.remove_buy(u, v);
            }
            break;
          }
          default: {  // whole-strategy replacement
            NodeSet strategy(n);
            for (int t = 0; t < n; ++t)
              if (t != u && game.can_buy(u, t) && rng.uniform_below(3) == 0)
                strategy.insert(t);
            engine.set_strategy(u, strategy);
            break;
          }
        }
      }
      expect_matches_rebuild(engine);
    }
    // Full-profile replacement (the two-pass rebuild path) after the churn.
    engine.set_profile(random_profile(game, rng, 0.2));
    expect_matches_rebuild(engine);
  }
}

TEST(CsrAdjacencyDifferential, DoubleOwnershipCollapsesToOneEntry) {
  Rng rng(9);
  const Game game(random_one_two_host(6, 0.5, rng), 1.0);
  StrategyProfile profile(6);
  profile.add_buy(0, 1);
  DeviationEngine engine(game, std::move(profile));
  ASSERT_EQ(engine.adjacency().degree(0), 1);
  ASSERT_EQ(engine.adjacency().degree(1), 1);
  // The reverse buy must NOT create a second undirected entry...
  engine.add_buy(1, 0);
  EXPECT_EQ(engine.adjacency().degree(0), 1);
  EXPECT_EQ(engine.adjacency().degree(1), 1);
  expect_matches_rebuild(engine);
  // ...and dropping one of the two owners must keep the edge built.
  engine.remove_buy(0, 1);
  EXPECT_EQ(engine.adjacency().degree(0), 1);
  EXPECT_EQ(engine.adjacency().degree(1), 1);
  expect_matches_rebuild(engine);
  // Dropping the last owner finally unlinks it.
  engine.remove_buy(1, 0);
  EXPECT_EQ(engine.adjacency().degree(0), 0);
  EXPECT_EQ(engine.adjacency().degree(1), 0);
  expect_matches_rebuild(engine);
}

}  // namespace
}  // namespace gncg
