// Differential tests for the host-metric backend layer: implicit
// (euclidean / tree / lazy-closure) backends against the materialized dense
// path, plus the large-n no-materialization guarantee.
#include <gtest/gtest.h>

#include <cmath>

#include "core/best_response.hpp"
#include "core/deviation_engine.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/game.hpp"
#include "graph/apsp.hpp"
#include "metric/host_backend.hpp"
#include "metric/host_graph.hpp"
#include "metric/instance_io.hpp"
#include "support/rng.hpp"

namespace gncg {
namespace {

// --- backend selection ----------------------------------------------------

TEST(HostBackend, FactoriesPickTheRightBackend) {
  Rng rng(101);
  EXPECT_EQ(random_metric_host(5, rng).backend_kind(),
            HostBackendKind::kDense);
  EXPECT_EQ(HostGraph::unit(4).backend_kind(), HostBackendKind::kDense);
  EXPECT_EQ(
      HostGraph::from_points(uniform_points(6, 2, 1.0, rng), 2.0)
          .backend_kind(),
      HostBackendKind::kEuclidean);
  EXPECT_EQ(HostGraph::from_tree(random_tree(6, rng)).backend_kind(),
            HostBackendKind::kTree);
  EXPECT_EQ(HostGraph::from_weights_lazy(DistanceMatrix(4, 1.0)).backend_kind(),
            HostBackendKind::kLazyClosure);
  EXPECT_EQ(backend_name(HostBackendKind::kEuclidean), "euclidean");
  EXPECT_EQ(backend_name(HostBackendKind::kLazyClosure), "lazy");
}

// --- euclidean backend vs materialized matrices ---------------------------

TEST(HostBackend, EuclideanWeightsBitExactVsMaterializedMatrix) {
  Rng rng(103);
  for (const double p : {1.0, 2.0, 3.0, kPNormInf}) {
    for (const int dim : {1, 2, 3}) {
      const auto points = uniform_points(64, dim, 10.0, rng);
      const auto implicit = HostGraph::from_points(points, p);
      const DistanceMatrix materialized = points.distance_matrix(p);
      for (int u = 0; u < 64; ++u)
        for (int v = 0; v < 64; ++v) {
          EXPECT_EQ(implicit.weight(u, v), materialized.at(u, v))
              << "p=" << p << " dim=" << dim << " (" << u << "," << v << ")";
          // p-norms are metrics: the closure is the weight itself.
          EXPECT_EQ(implicit.host_distance(u, v), materialized.at(u, v));
        }
    }
  }
}

TEST(HostBackend, EuclideanHostDistanceBitExactVsDenseClosure) {
  Rng rng(107);
  const auto points = uniform_points(48, 2, 10.0, rng);
  const auto implicit = HostGraph::from_points(points, 2.0);
  const auto dense = HostGraph::from_weights(points.distance_matrix(2.0),
                                             ModelClass::kEuclidean);
  for (int u = 0; u < 48; ++u) {
    for (int v = 0; v < 48; ++v)
      EXPECT_EQ(implicit.host_distance(u, v), dense.host_distance(u, v));
    EXPECT_EQ(implicit.host_distance_sum(u), dense.host_distance_sum(u));
  }
}

TEST(HostBackend, EuclideanDegenerateLinesAndGrids) {
  // Collinear dim-1 points: every p-norm degenerates to |x_i - x_j| and the
  // triangle inequality is tight -- the closure must still equal the weight.
  const auto line = line_points({0.0, 1.0, 3.0, 3.0, 10.0});
  for (const double p : {1.0, 2.0, kPNormInf}) {
    const auto host = HostGraph::from_points(line, p);
    const auto closure = host.shortest_path_closure();
    for (int u = 0; u < 5; ++u)
      for (int v = 0; v < 5; ++v) {
        EXPECT_EQ(host.weight(u, v), closure.at(u, v));
        EXPECT_EQ(host.host_distance(u, v), host.weight(u, v));
      }
  }
  // Grid under Chebyshev: integer coordinates, exact tight triangles.
  const auto grid = grid_points(4, 2, 1.0);
  const auto host = HostGraph::from_points(grid, kPNormInf);
  const DistanceMatrix materialized = grid.distance_matrix(kPNormInf);
  for (int u = 0; u < host.node_count(); ++u)
    for (int v = 0; v < host.node_count(); ++v)
      EXPECT_EQ(host.host_distance(u, v), materialized.at(u, v));
}

// --- tree backend vs materialized closure ---------------------------------

WeightedTree random_integer_tree(int n, Rng& rng) {
  auto tree = random_tree(n, rng, 1.0, 9.0);
  std::vector<Edge> edges = tree.edges();
  for (auto& e : edges) e.weight = std::floor(e.weight);
  return WeightedTree(n, std::move(edges));
}

TEST(HostBackend, TreeLcaDistancesBitExactOnIntegerWeights) {
  Rng rng(109);
  for (int trial = 0; trial < 8; ++trial) {
    const auto tree = random_integer_tree(40, rng);
    const auto host = HostGraph::from_tree(tree);
    const DistanceMatrix closure = tree.metric_closure();
    for (int u = 0; u < 40; ++u) {
      double sum = 0.0;
      for (int v = 0; v < 40; ++v) {
        EXPECT_EQ(host.host_distance(u, v), closure.at(u, v))
            << "trial " << trial << " pair (" << u << "," << v << ")";
        EXPECT_EQ(host.weight(u, v), closure.at(u, v));
        sum += closure.at(u, v);
      }
      EXPECT_EQ(host.host_distance_sum(u), sum) << "agent " << u;
    }
  }
}

TEST(HostBackend, TreeLcaDistancesMatchClosureOnRealWeights) {
  Rng rng(113);
  for (int trial = 0; trial < 5; ++trial) {
    const auto tree = random_tree(64, rng, 0.5, 12.0);
    const auto host = HostGraph::from_tree(tree);
    const DistanceMatrix closure = tree.metric_closure();
    for (int u = 0; u < 64; ++u)
      for (int v = u + 1; v < 64; ++v)
        EXPECT_NEAR(host.host_distance(u, v), closure.at(u, v),
                    1e-9 * std::max(1.0, closure.at(u, v)));
  }
}

TEST(HostBackend, TreePathAndStarShapes) {
  const auto path = path_tree({1.0, 2.0, 4.0, 8.0});
  const auto host = HostGraph::from_tree(path);
  EXPECT_DOUBLE_EQ(host.host_distance(0, 4), 15.0);
  EXPECT_DOUBLE_EQ(host.host_distance(1, 3), 6.0);
  EXPECT_DOUBLE_EQ(host.host_distance_sum(0), 1.0 + 3.0 + 7.0 + 15.0);

  const auto star = star_tree(6, /*center=*/2, /*leaf_weight=*/3.0);
  const auto star_host = HostGraph::from_tree(star);
  for (int v = 0; v < 6; ++v) {
    if (v == 2) continue;
    EXPECT_DOUBLE_EQ(star_host.host_distance(2, v), 3.0);
    for (int w = 0; w < 6; ++w)
      if (w != v && w != 2)
        EXPECT_DOUBLE_EQ(star_host.host_distance(v, w), 6.0);
  }
}

// --- lazy closure backend vs dense ----------------------------------------

TEST(HostBackend, LazyClosureBitExactOnIntegerWeightsAndRowGranular) {
  Rng rng(127);
  DistanceMatrix weights(24, 0.0);
  for (int u = 0; u < 24; ++u)
    for (int v = u + 1; v < 24; ++v)
      weights.set_symmetric(u, v,
                            std::floor(rng.uniform_real(1.0, 10.0)));
  const auto dense = HostGraph::from_weights(weights);
  const auto lazy = HostGraph::from_weights_lazy(weights);

  const auto* backend =
      dynamic_cast<const LazyClosureHostBackend*>(&lazy.backend());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->rows_computed(), 0);
  EXPECT_EQ(lazy.host_distance(3, 17), dense.host_distance(3, 17));
  EXPECT_EQ(backend->rows_computed(), 1);  // only the queried row

  for (int u = 0; u < 24; ++u) {
    EXPECT_EQ(lazy.host_distance_sum(u), dense.host_distance_sum(u));
    for (int v = 0; v < 24; ++v)
      EXPECT_EQ(lazy.host_distance(u, v), dense.host_distance(u, v));
  }
  EXPECT_EQ(backend->rows_computed(), 24);
}

TEST(HostBackend, LazyClosureMatchesDenseOnRealAndOneInfHosts) {
  Rng rng(131);
  {
    const auto host = random_general_host(20, rng);
    const auto lazy = HostGraph::from_weights_lazy(host.weights());
    for (int u = 0; u < 20; ++u)
      for (int v = 0; v < 20; ++v)
        EXPECT_NEAR(lazy.host_distance(u, v), host.host_distance(u, v),
                    1e-12 * std::max(1.0, host.host_distance(u, v)));
  }
  {
    const auto host = random_one_inf_host(16, 0.3, rng);
    const auto lazy = HostGraph::from_weights_lazy(host.weights());
    for (int u = 0; u < 16; ++u)
      for (int v = 0; v < 16; ++v)
        EXPECT_EQ(lazy.host_distance(u, v), host.host_distance(u, v));
  }
}

// --- game-level agreement: equilibrium / best response ---------------------

TEST(HostBackend, BestResponseIdenticalUnderImplicitAndDenseBackends) {
  Rng rng(137);
  const auto points = uniform_points(10, 2, 10.0, rng);
  const Game implicit(HostGraph::from_points(points, 2.0), 1.5);
  const Game dense(HostGraph::from_weights(points.distance_matrix(2.0),
                                           ModelClass::kEuclidean),
                   1.5);
  Rng profile_rng(139);
  const auto profile = random_profile(implicit, profile_rng, 0.2);
  for (int u = 0; u < 10; ++u) {
    const auto a = exact_best_response(implicit, profile, u);
    const auto b = exact_best_response(dense, profile, u);
    EXPECT_EQ(a.cost, b.cost) << "agent " << u;
    EXPECT_TRUE(a.strategy == b.strategy) << "agent " << u;
    EXPECT_EQ(a.improved, b.improved) << "agent " << u;
    EXPECT_EQ(a.evaluations, b.evaluations) << "agent " << u;

    const auto ma = best_single_move(implicit, profile, u);
    const auto mb = best_single_move(dense, profile, u);
    EXPECT_EQ(ma.cost, mb.cost) << "agent " << u;
    EXPECT_EQ(ma.current_cost, mb.current_cost) << "agent " << u;
    EXPECT_EQ(ma.move.type, mb.move.type) << "agent " << u;
    EXPECT_EQ(ma.move.remove, mb.move.remove) << "agent " << u;
    EXPECT_EQ(ma.move.add, mb.move.add) << "agent " << u;
  }
  EXPECT_EQ(is_nash_equilibrium(implicit, profile),
            is_nash_equilibrium(dense, profile));
}

TEST(HostBackend, TreeGameAgreesWithDenseOnIntegerWeights) {
  Rng rng(149);
  const auto tree = random_integer_tree(9, rng);
  const Game implicit(HostGraph::from_tree(tree), 2.0);
  const Game dense(
      HostGraph::from_weights(tree.metric_closure(), ModelClass::kTree), 2.0);
  Rng profile_rng(151);
  const auto profile = random_profile(implicit, profile_rng, 0.3);
  for (int u = 0; u < 9; ++u) {
    const auto a = exact_best_response(implicit, profile, u);
    const auto b = exact_best_response(dense, profile, u);
    EXPECT_EQ(a.cost, b.cost) << "agent " << u;
    EXPECT_TRUE(a.strategy == b.strategy) << "agent " << u;
    EXPECT_EQ(a.evaluations, b.evaluations) << "agent " << u;
  }
  EXPECT_EQ(is_nash_equilibrium(implicit, profile),
            is_nash_equilibrium(dense, profile));
  EXPECT_EQ(is_greedy_equilibrium(implicit, profile),
            is_greedy_equilibrium(dense, profile));
}

// --- large-n: no O(n^2) host matrix, ever ---------------------------------

TEST(HostBackend, LargeEuclideanGameNeverMaterializesAMatrix) {
  constexpr int kN = 4096;
  Rng rng(157);
  const std::uint64_t cells_before = DistanceMatrix::allocated_cells_total();

  const auto points = uniform_points(kN, 2, 1000.0, rng);
  const Game game(HostGraph::from_points(points, 2.0), 4.0);

  // Path profile: agent i buys the edge to i+1.
  StrategyProfile profile(kN);
  for (int i = 0; i + 1 < kN; ++i) profile.add_buy(i, i + 1);

  DeviationEngine engine(game, std::move(profile));
  engine.warm_distances();

  // Every agent is far from most of the point cloud on a path network, so
  // each has an improving single move (the scan early-exits quickly).
  int improving = 0;
  for (int u = 0; u < kN; ++u)
    if (engine.has_improving_single_move(u)) ++improving;
  EXPECT_EQ(improving, kN);

  // Exact best single move for a sample of agents exercises the full scan
  // (additions, deletes, bridge swaps) at n = 4096.
  for (int u = 0; u < kN; u += 512) {
    const auto result = engine.best_single_move_warm(u);
    EXPECT_TRUE(result.improved) << "agent " << u;
    EXPECT_LT(result.cost, result.current_cost);
  }

  // Host distances come straight from the point set.
  EXPECT_EQ(game.host_distance(17, 4095),
            points.distance(17, 4095, 2.0));

  // The whole workload -- host + game construction, engine warm-up, the
  // all-agents improving-move sweep and the sampled exact scans -- must not
  // have allocated a single DistanceMatrix cell.
  EXPECT_EQ(DistanceMatrix::allocated_cells_total() - cells_before, 0u);
}

TEST(HostBackend, LargeTreeGameNeverMaterializesAMatrix) {
  constexpr int kN = 4096;
  Rng rng(163);
  const std::uint64_t cells_before = DistanceMatrix::allocated_cells_total();

  const auto tree = random_tree(kN, rng, 1.0, 10.0);
  const Game game(HostGraph::from_tree(tree), 2.0);

  // The host's own tree is a natural profile: buy each tree edge at its
  // smaller endpoint.
  StrategyProfile profile(kN);
  for (const auto& e : tree.edges()) profile.add_buy(e.u, e.v);

  DeviationEngine engine(game, std::move(profile));
  engine.warm_distances();
  for (int u = 0; u < kN; u += 512) {
    const auto result = engine.best_single_move_warm(u);
    EXPECT_DOUBLE_EQ(result.current_cost,
                     engine.agent_cost_warm(u));
  }
  // O(1) LCA distances and O(n)-precomputed sums, no matrix.
  EXPECT_GT(game.host_distance_sum(0), 0.0);
  EXPECT_EQ(DistanceMatrix::allocated_cells_total() - cells_before, 0u);
}

// --- instance IO: backend kind round-trips --------------------------------

TEST(HostBackend, InstanceIoRoundTripsEuclideanProvenance) {
  Rng rng(167);
  const auto points = uniform_points(12, 3, 5.0, rng);
  const auto host = HostGraph::from_points(points, kPNormInf);
  std::stringstream buffer;
  save_host(buffer, host);
  const auto loaded = load_host(buffer);
  EXPECT_EQ(loaded.backend_kind(), HostBackendKind::kEuclidean);
  EXPECT_EQ(loaded.declared_model(), ModelClass::kEuclidean);
  ASSERT_NE(loaded.points(), nullptr);
  EXPECT_EQ(loaded.norm_p(), host.norm_p());
  for (int u = 0; u < 12; ++u)
    for (int v = 0; v < 12; ++v)
      EXPECT_EQ(loaded.weight(u, v), host.weight(u, v));
}

TEST(HostBackend, InstanceIoRoundTripsTreeProvenance) {
  Rng rng(173);
  const auto tree = random_tree(10, rng, 1.0, 6.0);
  const auto host = HostGraph::from_tree(tree);
  std::stringstream buffer;
  save_host(buffer, host);
  const auto loaded = load_host(buffer);
  EXPECT_EQ(loaded.backend_kind(), HostBackendKind::kTree);
  EXPECT_EQ(loaded.declared_model(), ModelClass::kTree);
  ASSERT_TRUE(loaded.tree_edges().has_value());
  EXPECT_EQ(loaded.tree_edges()->size(), tree.edges().size());
  for (int u = 0; u < 10; ++u)
    for (int v = 0; v < 10; ++v)
      EXPECT_EQ(loaded.weight(u, v), host.weight(u, v));
}

TEST(HostBackend, InstanceIoRoundTripsLazyBackendKind) {
  Rng rng(179);
  const auto host = HostGraph::from_weights_lazy(
      random_one_two_host(6, 0.5, rng).weights(), ModelClass::kOneTwo);
  std::stringstream buffer;
  save_host(buffer, host);
  const auto loaded = load_host(buffer);
  EXPECT_EQ(loaded.backend_kind(), HostBackendKind::kLazyClosure);
  EXPECT_EQ(loaded.declared_model(), ModelClass::kOneTwo);
  for (int u = 0; u < 6; ++u)
    for (int v = 0; v < 6; ++v)
      EXPECT_EQ(loaded.weight(u, v), host.weight(u, v));
}

}  // namespace
}  // namespace gncg
