// Closed-form Price-of-Anarchy bounds from the paper, collected in one
// place so benches and tests compare measured ratios against the exact
// published expressions.
#pragma once

#include <cmath>

#include "support/assert.hpp"

namespace gncg {
namespace paper {

/// Theorem 1: PoA of the M-GNCG is at most (alpha + 2) / 2 (tight with
/// Theorem 15).
inline double metric_poa(double alpha) { return (alpha + 2.0) / 2.0; }

/// Theorem 20: PoA of the general GNCG is at most ((alpha + 2) / 2)^2.
inline double general_poa_upper(double alpha) {
  const double half = (alpha + 2.0) / 2.0;
  return half * half;
}

/// Theorems 7-9: tight PoA of the 1-2-GNCG for alpha <= 1.
///   alpha <  1/2 : 1            (Theorem 9)
///   1/2 <= a < 1 : 3/(alpha+2)  (Theorems 7 + 8)
///   alpha == 1   : 3/2          (Theorems 8 + 1)
inline double one_two_poa_low_alpha(double alpha) {
  GNCG_CHECK(alpha <= 1.0, "closed form only covers alpha <= 1");
  if (alpha < 0.5) return 1.0;
  if (alpha < 1.0) return 3.0 / (alpha + 2.0);
  return 1.5;
}

/// Theorem 15 construction: finite-n cost ratio of the NE star S_n versus
/// the optimum star S*_n on the star tree metric.  The (2n + alpha - 2)
/// factor cancels, leaving
///   ratio(n, alpha) = ((n-2)(1 + 2/alpha) + 1) / ((n-2)(2/alpha) + 1),
/// which tends to (alpha + 2)/2 as n grows.
inline double theorem15_ratio(int n, double alpha) {
  GNCG_CHECK(n >= 3, "construction needs n >= 3");
  const double k = static_cast<double>(n - 2);
  return (k * (1.0 + 2.0 / alpha) + 1.0) / (k * (2.0 / alpha) + 1.0);
}

/// Theorem 18: PoA lower bound of the Rd-GNCG (any p-norm, 4 points):
///   (3 a^3 + 24 a^2 + 40 a + 24) / (a^3 + 10 a^2 + 32 a + 24).
inline double theorem18_lower(double alpha) {
  const double a = alpha;
  return (3.0 * a * a * a + 24.0 * a * a + 40.0 * a + 24.0) /
         (a * a * a + 10.0 * a * a + 32.0 * a + 24.0);
}

/// Theorem 19: PoA lower bound of the d-dimensional 1-norm Rd-GNCG:
///   1 + alpha / (2 + alpha / (2d - 1))   ->   (alpha + 2)/2 as d -> inf.
inline double theorem19_lower(double alpha, int d) {
  GNCG_CHECK(d >= 1, "dimension must be positive");
  return 1.0 + alpha / (2.0 + alpha / (2.0 * d - 1.0));
}

/// Fabrikant et al. upper bound O(sqrt(alpha)) carried to the 1-2-GNCG by
/// Theorem 11: any NE has weighted diameter O(sqrt(alpha)); exposed here as
/// the sqrt for diameter comparisons (the constant is not pinned down by
/// the paper).
inline double theorem11_diameter_scale(double alpha) {
  return alpha < 0.0 ? 0.0 : std::sqrt(alpha);
}

}  // namespace paper
}  // namespace gncg
