#include "core/game.hpp"

namespace gncg {

Game::Game(HostGraph host, double alpha)
    : host_(std::move(host)), alpha_(alpha) {
  GNCG_CHECK(alpha > 0.0, "alpha must be positive, got " << alpha);
}

StrategyProfile::StrategyProfile(int n) {
  GNCG_CHECK(n >= 1, "profile needs at least one agent");
  strategies_.reserve(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) strategies_.emplace_back(n);
}

void StrategyProfile::add_buy(int u, int v) {
  GNCG_CHECK(u != v, "agents cannot buy self-loops");
  strategies_[idx(u)].insert(v);
}

void StrategyProfile::remove_buy(int u, int v) {
  strategies_[idx(u)].erase(v);
}

void StrategyProfile::set_strategy(int u, NodeSet strategy) {
  GNCG_CHECK(strategy.universe() == node_count(),
             "strategy universe mismatch");
  GNCG_CHECK(!strategy.contains(u), "strategy may not contain the agent itself");
  strategies_[idx(u)] = std::move(strategy);
}

int StrategyProfile::built_edge_count() const {
  const int n = node_count();
  int count = 0;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (has_edge(u, v)) ++count;
  return count;
}

std::uint64_t StrategyProfile::hash() const {
  std::uint64_t h = 0x51ed270b35ae1f29ULL;
  for (const auto& s : strategies_) {
    const std::uint64_t sh = s.hash();
    h ^= sh + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<std::vector<Neighbor>> build_adjacency(const Game& game,
                                                   const StrategyProfile& s) {
  const int n = game.node_count();
  GNCG_CHECK(s.node_count() == n, "profile/game size mismatch");
  std::vector<std::vector<Neighbor>> adjacency(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    s.strategy(u).for_each([&](int v) {
      const double w = game.weight(u, v);
      GNCG_CHECK(w < kInf, "profile buys a forbidden (infinite-weight) edge");
      // Collapse double ownership into a single undirected adjacency entry.
      if (!(v < u && s.buys(v, u))) {
        adjacency[static_cast<std::size_t>(u)].push_back({v, w});
        adjacency[static_cast<std::size_t>(v)].push_back({u, w});
        return;
      }
    });
  }
  return adjacency;
}

WeightedGraph built_graph(const Game& game, const StrategyProfile& s) {
  const int n = game.node_count();
  WeightedGraph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (s.has_edge(u, v)) g.add_edge(u, v, game.weight(u, v));
  return g;
}

StrategyProfile profile_from_edges(const Game& game,
                                   const std::vector<Edge>& edges) {
  StrategyProfile profile(game.node_count());
  for (const auto& e : edges) {
    GNCG_CHECK(game.can_buy(e.u, e.v), "edge not purchasable in host");
    profile.add_buy(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  return profile;
}

StrategyProfile star_profile(const Game& game, int center) {
  StrategyProfile profile(game.node_count());
  for (int v = 0; v < game.node_count(); ++v) {
    if (v == center) continue;
    GNCG_CHECK(game.can_buy(center, v), "star edge not purchasable");
    profile.add_buy(center, v);
  }
  return profile;
}

}  // namespace gncg
