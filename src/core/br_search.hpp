// Incremental best-response search: the shared branch-and-bound driver.
//
// Computing a best response is NP-hard in every variant of the game
// (Corollary 1, Theorems 13 and 16), so the exact solver is a pruned
// exponential DFS over subsets of purchase targets.  This module is the one
// driver behind both objectives -- SUM (the paper's cost) and MAX (the
// egalitarian variant) differ only in a cost-model policy -- and it replaces
// the pay-one-Dijkstra-per-subset search:
//
//  * In-DFS distance maintenance: every DFS descent adds one edge (u, c)
//    incident to the agent, which only *decreases* distances, so the
//    agent's SSSP vector is maintained incrementally (IncrementalSssp:
//    bounded decrease-only repair seeded at c, change-log rollback on
//    backtrack).  One Dijkstra per search instead of one per subset;
//    evaluating a subset costs one O(n) aggregation pass.
//  * Two-level admissible pruning: the O(1) global floor (host_distance_sum
//    for SUM, host eccentricity for MAX) cuts first; surviving candidates
//    face the tighter O(n) per-node floor
//        sum/max over t of  max(d_H(u, t), min(d_S(t), w_next)),
//    admissible because every path in a superset graph either avoids the
//    new edges (length >= current d_S(t)) or starts with one (length >=
//    w_next, the smallest remaining candidate weight; new edges are all
//    incident to the source, so a shortest path uses at most one, first).
//  * Deterministic parallel fan-out: first-level branches (partitioned by
//    smallest chosen candidate index) run over the shared worker pool with
//    branch-local incumbents and are folded in branch order (strict
//    improvement to replace), which reproduces the sequential DFS's
//    first-found-among-ties answer -- the smaller-lexicographic strategy in
//    candidate order wins -- independent of thread count.  First-improvement
//    searches abort branch i once a branch j < i has improved (branch i's
//    result could never win the fold), so `evaluations` alone may vary with
//    timing in that mode; strategy/cost/improved never do.
//
// Bit-compatibility with the naive per-subset-Dijkstra search
// (naive_exact_best_response / naive_max_exact_best_response) is the
// contract: identical strategies on hosts whose distinct costs are
// separated by more than the improves() slack (unit, 1-2, integer weights;
// real-weight near-ties agree to ~1e-12 relative), with one deliberate
// strengthening on the cost itself -- evaluation here is *canonical* (the
// edge-weight term is re-summed per subset in increasing target order), so
// the returned cost equals AgentEnvironment::cost_of(strategy) bitwise.
// The naive search instead records its running DFS accumulator, whose
// low-order bits depend on which sibling subtrees were explored first, so
// naive costs are compared through re-evaluation.
// tests/test_best_response.cpp carries the differential fuzz gate.
#pragma once

#include "core/best_response.hpp"
#include "core/game.hpp"

namespace gncg {

/// SUM-objective search: distance term is sum_t d(t).  Used by
/// exact_best_response; `env.agent()` is the deviating agent and
/// `env.game()` the game searched (one source of truth -- a separate game
/// parameter could silently disagree with the environment's).
BestResponseResult br_search_sum(const AgentEnvironment& env,
                                 const BestResponseOptions& options);

/// MAX-objective search: distance term is max_t d(t) (eccentricity).  Used
/// by max_exact_best_response.
BestResponseResult br_search_max(const AgentEnvironment& env,
                                 const BestResponseOptions& options);

}  // namespace gncg
