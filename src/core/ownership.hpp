// Edge-ownership search.
//
// Theorem 5 proves that a minimum-weight 3/2-spanner of a 1-2 host admits
// SOME edge-ownership assignment that is a Nash equilibrium (for
// 1/2 <= alpha <= 1) -- the proof is existential.  This module searches the
// 2^|E| ownership assignments of a fixed edge set for one that is a NE,
// which is how the experiments verify the theorem on concrete instances.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/game.hpp"

namespace gncg {

/// Searches all 2^|edges| ownership assignments of `edges` for a Nash
/// equilibrium profile; returns the first found (parallel scan) or nullopt.
/// Contract-fails when |edges| exceeds `max_edges` (default 2^20 states).
std::optional<StrategyProfile> find_nash_ownership(
    const Game& game, const std::vector<Edge>& edges, int max_edges = 20);

/// Same search but only requiring a Greedy Equilibrium (cheaper check, used
/// as a pre-pass and for larger edge sets).
std::optional<StrategyProfile> find_greedy_ownership(
    const Game& game, const std::vector<Edge>& edges, int max_edges = 20);

}  // namespace gncg
