// Incremental deviation engine: cached game state + delta move evaluation.
//
// Every experiment in the paper (equilibrium checks, best-response dynamics,
// PoA sweeps) reduces to evaluating many candidate deviations against the
// *same* strategy profile.  The naive path pays a full adjacency rebuild and
// a fresh Dijkstra per candidate; this engine amortizes that work:
//
//  * It owns the materialized adjacency of the current StrategyProfile and
//    updates it incrementally under add_buy/remove_buy/apply_move/
//    set_strategy -- no build_adjacency per evaluation.  Ownership changes
//    that do not alter the built topology (double-ownership adds/removes)
//    leave the distance caches valid.
//  * It caches one SSSP distance vector per agent, invalidated lazily via a
//    topology epoch: a mutation bumps the epoch, and each agent's vector is
//    recomputed only when next queried.
//  * Single-move deviations are evaluated by *delta* where an exact closed
//    form exists, and by a buffer-reusing Dijkstra otherwise:
//      - addition (u,x):  d'(u,t) = min(d(u,t), w(u,x) + d(x,t)) over the
//        cached vectors of u and x -- O(n) per candidate, no Dijkstra;
//      - deleting a *bridge* (and swapping it for (u,x)): the graph splits
//        into the side reachable from u and the rest, and distances on each
//        side are unchanged, so the swap re-costs from cached vectors plus
//        one reachability sweep per owned edge;
//      - all remaining deletes/swaps re-run Dijkstra over a masked view of
//        the engine adjacency with per-worker arena scratch (support/
//        arena.hpp), pruned by the admissible bound "distances cannot
//        shrink when an edge is removed".
//
// All SSSP work runs over a flat CSR adjacency slab (graph/csr_adjacency.hpp)
// and draws every scratch buffer from the calling worker's ScratchArena, so
// steady-state move evaluation performs no heap allocation.  On hosts whose
// weights are small integers (unit, 1-2, integer trees) the kernels switch
// from the binary heap to the bucket-queue ("dial") Dijkstra -- distances
// are bit-identical either way.
//
// Scan order and tie-breaking replicate the naive scan_single_moves exactly,
// so on hosts whose weights sum exactly in doubles (unit, 1-2, integer
// weights) the engine returns bit-identical costs and identical moves; on
// real-weighted hosts results agree up to floating-point associativity (see
// tests/test_deviation_engine.cpp for the differential contract).
//
// Invalidation contract (for code building on the engine): `distances(u)` /
// `distance_cost(u)` / `agent_cost(u)` are valid only until the next
// topology mutation; references returned by `distances`/`adjacency` are
// invalidated by any mutation.  `*_warm` members require `warm_distances()`
// after the last mutation and are const + thread-safe, which is what the
// dynamics scheduler's parallel proposal batching runs on.
//
// The engine also maintains the Zobrist ownership hash of its profile
// (core/transposition.hpp) incrementally: every ownership mutation --
// including double-ownership changes that leave the topology and the
// distance caches untouched -- updates `profile_hash()` in O(1), so
// dynamics cycle detection reads a fingerprint per step instead of
// rehashing the profile.
//
// Host weights are queried per candidate through Game::weight, i.e. the
// host-metric backend (metric/host_backend.hpp): stable, const and
// thread-safe, O(1) on dense hosts and O(d)/O(1) on implicit geometric
// ones -- which is what lets a euclidean n=4096 sweep run without any
// O(n^2) host matrix existing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/best_response.hpp"
#include "core/cost.hpp"
#include "core/game.hpp"
#include "graph/csr_adjacency.hpp"

namespace gncg {

class DeviationEngine {
 public:
  /// Takes ownership of `profile` and materializes its adjacency once.
  DeviationEngine(const Game& game, StrategyProfile profile);

  const Game& game() const { return *game_; }
  const StrategyProfile& profile() const { return profile_; }

  /// Zobrist ownership hash of the current profile, maintained O(1) under
  /// every mutation.  Always equals zobrist_profile_hash(profile()).
  std::uint64_t profile_hash() const { return profile_hash_; }

  /// Materialized adjacency of the built network (double ownership collapsed
  /// into one undirected entry), stored as a flat CSR slab so SSSP inner
  /// loops traverse contiguous memory.  Spans/references into it are
  /// invalidated by any mutation (entries may relocate).
  const CsrAdjacency& adjacency() const { return adjacency_; }

  /// True when this engine's SSSP kernels use the bucket-queue (dial) path
  /// (integer-weight host within the dial gate; see
  /// HostGraph::dial_weight_bound).
  bool dial_enabled() const { return dial_bound_ > 0; }

  /// Forces the binary-heap Dijkstra path even on integer-weight hosts.
  /// Bench/test knob (dial-vs-heap comparisons); distances are bit-identical
  /// either way, so this never changes results.
  void disable_dial() { dial_bound_ = 0; }

  // --- mutations (incremental adjacency, lazy cache invalidation) ---

  void add_buy(int u, int v);
  void remove_buy(int u, int v);
  void set_strategy(int u, NodeSet strategy);
  void apply_move(int u, const SingleMove& move);

  /// Batched apply for round-commit dynamics (the parallel-MGM scheduler):
  /// replaces each listed agent's strategy in input order, bumping the
  /// topology epoch at most once for the whole batch instead of once per
  /// changed edge.  Agents must be distinct; the resulting profile,
  /// adjacency and Zobrist hash equal a sequence of set_strategy calls.
  void set_strategies(const std::vector<std::pair<int, NodeSet>>& moves);

  /// Conservative conflict set of "u plays `next`": u itself plus every
  /// endpoint of u's current and proposed strategies -- the nodes whose
  /// incident built edges (and hence SSSP rows) the move may touch.  Two
  /// moves with disjoint conflict sets commute: neither edits an edge the
  /// other reads or writes.  Appends ids to `out` sorted and deduplicated.
  void move_conflict_set(int u, const NodeSet& next,
                         std::vector<int>& out) const;

  /// Replaces the whole profile (full rebuild; for dynamics restarts).
  void set_profile(StrategyProfile profile);

  // --- cached state queries (compute on first use after a mutation) ---

  /// SSSP distance vector of agent u in the built network.
  const std::vector<double>& distances(int u);

  /// Sum of agent u's distances (kInf when disconnected).
  double distance_cost(int u);

  /// alpha * total weight of u's bought edges (recomputed per call in the
  /// same summation order as the naive path; cheap).
  double buying_cost(int u) const;

  /// cost(u, G(s)) = buying_cost(u) + distance_cost(u).
  double agent_cost(int u);

  /// Ensures every agent's distance cache is valid (parallel over agents).
  void warm_distances();

  // --- move evaluation ---

  /// Distance cost of agent u after buying the extra edge (u,x), from the
  /// cached vectors of u and x: sum_t min(d(u,t), w(u,x) + d(x,t)).
  double addition_distance_cost(int u, int x);

  /// Best single move / addition / swap of agent u.  Same semantics, scan
  /// order and tie-breaking as the naive free functions.
  SingleMoveResult best_single_move(int u);
  SingleMoveResult best_addition(int u);
  SingleMoveResult best_swap(int u);

  /// Early-exit existence checks (equilibrium predicates): true when some
  /// move of the family strictly improves u's cost.
  bool has_improving_single_move(int u);
  bool has_improving_addition(int u);
  bool has_improving_swap(int u);

  // --- warm (const, thread-safe) variants for parallel proposal batching.
  // Require warm_distances() after the last mutation. ---

  double distance_cost_warm(int u) const;
  double agent_cost_warm(int u) const;

  /// Warmed SSSP row of agent u in the built network (the vector behind
  /// distance_cost_warm).  The batched certifier feeds this to the ladder's
  /// current-network floor (ApproxBrOptions::current_dist) without paying a
  /// fresh Dijkstra.  Invalidated by any mutation, like distances().
  const std::vector<double>& distances_warm(int u) const {
    return warmed(u).dist;
  }
  SingleMoveResult best_single_move_warm(int u) const;
  SingleMoveResult best_addition_warm(int u) const;
  SingleMoveResult best_swap_warm(int u) const;

  /// cost(u) if u plays exactly `targets` (everyone else fixed): Dijkstra
  /// over the engine adjacency with u's sole-owned edges masked and the
  /// target edges added, using the worker arena.  Const and thread-safe.
  double cost_of_strategy(int u, const NodeSet& targets) const;

 private:
  struct AgentCache {
    std::vector<double> dist;
    double dist_sum = 0.0;
    std::uint64_t epoch = 0;  ///< topology epoch the cache was filled at
  };

  struct ScanFlags {
    bool adds = false;
    bool deletes = false;
    bool swaps = false;
  };

  std::size_t idx(int u) const { return static_cast<std::size_t>(u); }

  /// True when the built edge (u,t) exists only because u buys it (removing
  /// u's buy removes the edge).
  bool solely_owned(int u, int t) const {
    return profile_.buys(u, t) && !profile_.buys(t, u);
  }

  /// Inserts / removes the undirected adjacency entry for (a, b).
  void link(int a, int b);
  void unlink(int a, int b);

  /// set_strategy body without the per-edge epoch bumps: updates ownership,
  /// hash and adjacency, and returns whether the built topology changed
  /// (the caller decides how many epoch bumps the batch pays).
  bool replace_strategy_edges(int u, const NodeSet& next);

  /// alpha-free total weight of (S_u \ {remove}) ∪ {add} summed in
  /// increasing-target order (exactly the naive NodeSet::for_each order, so
  /// integer-weight hosts match the naive path bit-for-bit).  Pass -1 to
  /// skip either part; `add` must not already be in S_u.
  double strategy_weight(int u, int remove, int add) const;

  const AgentCache& warmed(int u) const;
  const AgentCache& ensure(int u);

  /// Warm-cache body of addition_distance_cost (shared with scan_moves).
  double addition_distance_cost_warm(int u, int x) const;

  /// Marks the nodes reachable from u in the built network minus edge (u,v)
  /// into `mark`; returns true when v is still reachable (the edge is not a
  /// bridge).
  bool mark_reachable_without(int u, int v, std::vector<char>& mark) const;

  /// Distance cost of u after swapping bridge (u,v) for (u,x): cached u-side
  /// distances plus w(u,x) + cached x-distances on the far side.
  double bridge_swap_distance_cost(int u, int x,
                                   const std::vector<char>& u_side) const;

  /// Dijkstra distance cost of u with edge (u,remove) masked out of the
  /// adjacency and, when add >= 0, edge (u,add) visited additionally.
  double masked_distance_cost(int u, int remove, int add) const;

  /// Shared single-move scan (const: caches must be warm).  With
  /// `early_exit` the scan stops at the first improving candidate.
  SingleMoveResult scan_moves(int u, const ScanFlags& flags,
                              bool early_exit) const;

  /// Refills adjacency_ from profile_ with the two-pass CSR rebuild
  /// (replicates build_adjacency's double-ownership collapse and per-node
  /// entry order exactly).
  void rebuild_adjacency();

  const Game* game_;
  StrategyProfile profile_;
  CsrAdjacency adjacency_;
  std::vector<AgentCache> caches_;
  std::uint64_t epoch_ = 1;
  std::uint64_t profile_hash_ = 0;
  int dial_bound_ = 0;  ///< bucket-queue weight bound; 0 = use the heap
};

}  // namespace gncg
