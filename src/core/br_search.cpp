#include "core/br_search.hpp"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/incremental_sssp.hpp"
#include "support/arena.hpp"
#include "support/instrument.hpp"
#include "support/parallel.hpp"

namespace gncg {

namespace {

// --- cost models ----------------------------------------------------------
//
// A model supplies the distance aggregation and the two admissible floors.
// Aggregations run in increasing node order so SUM stays bit-identical to
// the naive search's "fresh Dijkstra, sum in node order" evaluation (MAX is
// order-insensitive).

struct SumCostModel {
  static double distance_term(const std::vector<double>& dist) {
    double total = 0.0;
    for (double d : dist) total += d;
    return total;
  }

  /// Global floor: the host-closure distance sum (served by the backend's
  /// cached sums, summed in increasing v order per the host-backend query
  /// contract -- identical to the naive search's dist_lower_bound).
  static double cheap_floor(const Game& game, int u,
                            const std::vector<double>& host_row) {
    (void)host_row;
    return game.host_distance_sum(u);
  }

  /// Per-node floor for any superset reachable from the current DFS node:
  /// d(t) >= max(d_H(u,t), min(d_S(t), w_next)).  Any path either avoids
  /// the new edges (>= d_S(t)) or starts with one (all new edges are
  /// incident to the source, so a shortest path uses at most one, first;
  /// its weight alone is >= w_next, the smallest remaining candidate).
  static double tight_floor(const std::vector<double>& host_row,
                            const std::vector<double>& dist, double w_next) {
    double total = 0.0;
    for (std::size_t t = 0; t < dist.size(); ++t)
      total += std::max(host_row[t], std::min(dist[t], w_next));
    return total;
  }
};

struct MaxCostModel {
  static double distance_term(const std::vector<double>& dist) {
    double worst = 0.0;
    for (double d : dist) worst = std::max(worst, d);
    return worst;
  }

  /// Global floor: the host-closure eccentricity of the agent.
  static double cheap_floor(const Game& game, int u,
                            const std::vector<double>& host_row) {
    (void)game;
    (void)u;
    return distance_term(host_row);
  }

  static double tight_floor(const std::vector<double>& host_row,
                            const std::vector<double>& dist, double w_next) {
    double worst = 0.0;
    for (std::size_t t = 0; t < dist.size(); ++t)
      worst = std::max(worst, std::max(host_row[t],
                                       std::min(dist[t], w_next)));
    return worst;
  }
};

// --- branch-local DFS -----------------------------------------------------

/// One first-level branch of the subset DFS: all subsets whose smallest
/// chosen candidate index is `branch`.  Owns its incremental SSSP state and
/// its incumbent; shares nothing mutable, so branches run concurrently and
/// the fold over branch outcomes is independent of thread count.
template <class Model>
struct BranchSearch {
  const Game* game = nullptr;
  const AgentEnvironment* env = nullptr;
  const std::vector<int>* candidates = nullptr;
  const std::vector<double>* weights = nullptr;
  const std::vector<double>* weight_row = nullptr;  ///< weight by node id
  const std::vector<double>* host_row = nullptr;
  double cheap_floor = 0.0;
  double base_bound = kInf;  ///< min(empty-set recorded cost, incumbent)
  double incumbent = kInf;   ///< original bound (improved = beat this)
  bool first_improvement = false;
  int branch = 0;
  const std::atomic<int>* winner = nullptr;  ///< lowest improving branch

  /// The executing worker's arena-owned incremental SSSP.  Branches run to
  /// completion on one thread and reseed via reset(), so sequential branches
  /// on the same worker can share the instance.
  IncrementalSssp* sssp = nullptr;
  NodeSet current;
  double current_weight = 0.0;
  BestResponseResult result;
  bool done = false;

  /// Bounded-frontier mode (repair_cap > 0): every in-DFS repair honors the
  /// cap, and `path_frontier` is the minimum frontier key over the
  /// *truncated* insertions still on the DFS path (kInf when every repair on
  /// the path ran exact).  The repair invariant composes along the path:
  /// true(t) >= min(dist(t), path_frontier), because a node left deficient
  /// by some truncated repair has its fixing relaxation chain blocked at a
  /// key >= that repair's frontier >= path_frontier (keys along a shortest
  /// path are nondecreasing under monotone fl-addition), while a node a
  /// later repair did fix satisfies dist == true.  Saved/restored around
  /// each descend step like the distance log.
  std::size_t repair_cap = 0;
  double path_frontier = kInf;

  double bound() const { return std::min(result.cost, base_bound); }

  /// A branch whose index can no longer win the first-improvement fold (a
  /// lower branch already improved) stops; its result is discarded either
  /// way, so the fold outcome stays deterministic.
  bool aborted() const {
    return winner != nullptr &&
           winner->load(std::memory_order_relaxed) < branch;
  }

  void evaluate() {
    // Canonical evaluation: the edge-weight term is re-summed in increasing
    // target order (exactly AgentEnvironment::cost_of's order), so the
    // recorded cost is a function of the subset alone.  The DFS accumulator
    // `current_weight` is kept only for the pruning bound -- recording it
    // would carry path-dependent rounding noise (which subtrees were
    // explored before reaching this node), the pre-refactor search's
    // cost-vs-cost_of ulp mismatch.
    double edge_sum = 0.0;
    current.for_each(
        [&](int v) { edge_sum += (*weight_row)[static_cast<std::size_t>(v)]; });
    // With a live truncation on the path the maintained vector is only an
    // upper bound, so the recorded value is the admissible floor
    // sum_t max(host(t), min(dist(t), path_frontier)) -- a certified lower
    // bound on the subset's true cost.  Without one, the vector is the exact
    // fixpoint and the plain distance term keeps the cap-0 path bitwise
    // identical (max(host, dist) could differ from dist in the last ulp).
    double dist_term;
    bool lower_bound_only = false;
    if (repair_cap > 0 && path_frontier < kInf) {
      dist_term = Model::tight_floor(*host_row, sssp->dist(), path_frontier);
      lower_bound_only = true;
    } else {
      dist_term = Model::distance_term(sssp->dist());
    }
    const double cost = game->alpha() * edge_sum + dist_term;
    ++result.evaluations;
    GNCG_COUNT(kBrEvaluations);
    if (improves(cost, bound())) {
      result.cost = cost;
      result.strategy = current;
      result.improved = improves(cost, incumbent);
      result.truncated = lower_bound_only;
      if (first_improvement && result.improved) done = true;
    }
  }

  /// Two-level admissible cut for the subtree rooted at candidate i: the
  /// O(1) global floor first, then the O(n) per-node floor.  Both are
  /// nondecreasing in the candidate weight, so on the weight-sorted list a
  /// failure cuts every later sibling too (the caller breaks).
  bool pruned(std::size_t i) const {
    const double b = bound();
    const double edge_cost =
        game->alpha() * (current_weight + (*weights)[i]);
    if (!improves(edge_cost + cheap_floor, b)) {
      GNCG_COUNT(kBrPrunesGlobal);
      return true;
    }
    // Under bounded repairs the maintained dist is an upper bound, so the
    // per-node floor compensates with the path frontier: any true distance
    // is >= min(dist(t), path_frontier), and a new edge still costs at
    // least w_next.  With cap 0 the effective weight equals w_next and the
    // computation is the historical one.
    const double w_eff = repair_cap > 0
                             ? std::min((*weights)[i], path_frontier)
                             : (*weights)[i];
    if (!improves(edge_cost +
                      Model::tight_floor(*host_row, sssp->dist(), w_eff),
                  b)) {
      GNCG_COUNT(kBrPrunesPerNode);
      return true;
    }
    return false;
  }

  void insert(std::size_t i) {
    GNCG_COUNT(kBrExpansions);
    current.insert((*candidates)[i]);
    current_weight += (*weights)[i];
    // The source's distance is 0 and never changes, so the repair needs
    // only the environment edges: no path improves through the source.
    const auto environment_edges = [this](int x, auto&& visit) {
      env->for_neighbors(x, visit);
    };
    if (repair_cap > 0) {
      FrontierPolicy policy;
      policy.node_cap = repair_cap;
      const RepairOutcome outcome = sssp->relax_insert(
          (*candidates)[i], (*weights)[i], policy, environment_edges);
      if (outcome.truncated)
        path_frontier = std::min(path_frontier, outcome.frontier_min);
    } else {
      sssp->relax_insert((*candidates)[i], (*weights)[i], environment_edges);
    }
  }

  void remove(std::size_t i, IncrementalSssp::Checkpoint mark) {
    sssp->rollback(mark);
    current.erase((*candidates)[i]);
    current_weight -= (*weights)[i];
  }

  void descend(std::size_t start) {
    for (std::size_t i = start; i < candidates->size() && !done; ++i) {
      if (aborted()) {
        GNCG_COUNT(kBrBranchAborts);
        done = true;
        break;
      }
      if (pruned(i)) break;
      const IncrementalSssp::Checkpoint mark = sssp->checkpoint();
      const double pf_mark = path_frontier;
      insert(i);
      evaluate();
      if (!done) descend(i + 1);
      remove(i, mark);
      path_frontier = pf_mark;
    }
  }
};

/// Result of one first-level branch, folded in branch order by the driver.
struct BranchOutcome {
  double cost = kInf;
  NodeSet strategy;
  bool improved = false;
  std::uint64_t evaluations = 0;
  bool truncated = false;
};

/// The shared driver: empty-set evaluation, first-level fan-out over the
/// worker pool, deterministic in-order fold.
template <class Model>
BestResponseResult run_search(const AgentEnvironment& env,
                              const BestResponseOptions& options) {
  const Game& game = env.game();
  const int n = game.node_count();
  const int u = env.agent();
  GNCG_COUNT(kBrSearches);

  // Driver scratch comes from the calling worker's arena.  Branch tasks on
  // other workers read these buffers through const pointers only; branch
  // tasks on *this* thread (the caller participates in the fan-out) must
  // therefore never write them -- they use the arena's disjoint
  // incremental-SSSP member instead.
  ScratchArena::BrScratch& scratch = worker_arena().br();

  // Candidate targets sorted by edge weight so the branch-and-bound cut is
  // monotone: every node u may buy towards, or -- under restrict_targets --
  // only the oracle's shortlist (same sort key, so a full-coverage list
  // reproduces the unrestricted order bit-for-bit).
  std::vector<std::pair<double, int>>& order = scratch.order;
  order.clear();
  if (options.restrict_targets != nullptr) {
    for (int v : *options.restrict_targets)
      if (game.can_buy(u, v)) order.emplace_back(game.weight(u, v), v);
    std::sort(order.begin(), order.end());
    // A duplicated list entry would make the DFS insert one node twice;
    // collapse exact repeats (identical (weight, node) pairs).
    order.erase(std::unique(order.begin(), order.end()), order.end());
  } else {
    for (int v = 0; v < n; ++v)
      if (game.can_buy(u, v)) order.emplace_back(game.weight(u, v), v);
    std::sort(order.begin(), order.end());
  }
  std::vector<int>& candidates = scratch.candidates;
  std::vector<double>& weights = scratch.weights;
  candidates.clear();
  weights.clear();
  for (const auto& [w, v] : order) {
    candidates.push_back(v);
    weights.push_back(w);
  }

  // The one Dijkstra of the search: u's distances in the bare environment
  // (the empty-strategy network).  Every branch seeds its incremental
  // vector from this.  Integer-weight hosts take the bucket-queue kernel
  // (bit-identical distances).  A caller that already holds this exact row
  // (the batched certifier sharing one warmed base across the ladder's
  // tiers) passes it via options.base_dist and the search skips the kernel.
  std::vector<double>& base_dist = scratch.base_dist;
  if (options.base_dist != nullptr) {
    GNCG_DASSERT(options.base_dist->size() == static_cast<std::size_t>(n));
    base_dist = *options.base_dist;
  } else {
    ScratchArena& arena = worker_arena();
    const int dial_bound = game.host().dial_weight_bound();
    const auto environment_edges = [&](int x, auto&& visit) {
      env.for_neighbors(x, visit);
    };
    if (dial_bound > 0) {
      arena.dial().run_into(base_dist, n, u, dial_bound, environment_edges);
    } else {
      arena.dijkstra().run_into(base_dist, n, u, environment_edges);
    }
  }

  // Host-closure row of u: the per-node admissible floor (stable per the
  // host-backend query contract; materialized once per search so the DFS
  // bound never re-queries implicit backends).  weight_row serves the
  // canonical edge-sum evaluation the same way.
  std::vector<double>& host_row = scratch.host_row;
  std::vector<double>& weight_row = scratch.weight_row;
  host_row.assign(static_cast<std::size_t>(n), 0.0);
  weight_row.assign(static_cast<std::size_t>(n), kInf);
  for (int v = 0; v < n; ++v)
    host_row[static_cast<std::size_t>(v)] = game.host_distance(u, v);
  for (std::size_t i = 0; i < candidates.size(); ++i)
    weight_row[static_cast<std::size_t>(candidates[i])] = weights[i];
  const double cheap_floor = Model::cheap_floor(game, u, host_row);

  BestResponseResult result;
  result.strategy = NodeSet(n);
  const double empty_cost =
      game.alpha() * 0.0 + Model::distance_term(base_dist);
  result.evaluations = 1;
  GNCG_COUNT(kBrEvaluations);
  bool done = false;
  if (improves(empty_cost, options.incumbent)) {
    result.cost = empty_cost;
    result.improved = true;
    if (options.first_improvement) done = true;
  }

  const std::size_t k = candidates.size();
  if (!done && k > 0) {
    const double base_bound = std::min(result.cost, options.incumbent);
    std::vector<BranchOutcome> outcomes(k);
    std::atomic<int> winner{INT_MAX};
    // One task per first-level branch; branch subtrees are whole jobs, so
    // short candidate lists still fan out (serial_cutoff 2).
    parallel_for(
        0, k,
        [&](std::size_t i) {
          if (options.first_improvement &&
              winner.load(std::memory_order_relaxed) <
                  static_cast<int>(i)) {
            GNCG_COUNT(kBrBranchAborts);
            return;
          }
          // Entry cut against the base state (before paying the O(n)
          // seed copy).
          const double entry_edge = game.alpha() * (0.0 + weights[i]);
          if (!improves(entry_edge + cheap_floor, base_bound)) {
            GNCG_COUNT(kBrPrunesGlobal);
            return;
          }
          if (!improves(entry_edge +
                            Model::tight_floor(host_row, base_dist,
                                               weights[i]),
                        base_bound)) {
            GNCG_COUNT(kBrPrunesPerNode);
            return;
          }

          BranchSearch<Model> search;
          search.game = &game;
          search.env = &env;
          search.candidates = &candidates;
          search.weights = &weights;
          search.weight_row = &weight_row;
          search.host_row = &host_row;
          search.cheap_floor = cheap_floor;
          search.base_bound = base_bound;
          search.incumbent = options.incumbent;
          search.first_improvement = options.first_improvement;
          search.branch = static_cast<int>(i);
          search.repair_cap = options.repair_cap;
          if (options.first_improvement) search.winner = &winner;
          search.sssp = &worker_arena().incremental_sssp();
          search.sssp->reset(base_dist);
          search.current = NodeSet(n);
          search.result.strategy = NodeSet(n);

          const IncrementalSssp::Checkpoint mark = search.sssp->checkpoint();
          search.insert(i);
          search.evaluate();
          if (!search.done) search.descend(i + 1);
          search.remove(i, mark);

          if (search.result.improved && options.first_improvement) {
            int expected = winner.load(std::memory_order_relaxed);
            while (static_cast<int>(i) < expected &&
                   !winner.compare_exchange_weak(
                       expected, static_cast<int>(i),
                       std::memory_order_relaxed)) {
            }
          }
          outcomes[i] = BranchOutcome{
              search.result.cost, std::move(search.result.strategy),
              search.result.improved, search.result.evaluations,
              search.result.truncated};
        },
        /*grain=*/1, /*serial_cutoff=*/2);

    // Deterministic fold in branch order: strict improvement to replace
    // reproduces the sequential DFS's first-found-among-ties answer (the
    // smaller-lexicographic strategy in candidate order).
    for (std::size_t i = 0; i < k; ++i) {
      result.evaluations += outcomes[i].evaluations;
      if (options.first_improvement) {
        if (!result.improved && outcomes[i].improved) {
          result.cost = outcomes[i].cost;
          result.strategy = std::move(outcomes[i].strategy);
          result.improved = true;
          result.truncated = outcomes[i].truncated;
        }
      } else if (improves(outcomes[i].cost,
                          std::min(result.cost, options.incumbent))) {
        result.cost = outcomes[i].cost;
        result.strategy = std::move(outcomes[i].strategy);
        result.improved = improves(result.cost, options.incumbent);
        result.truncated = outcomes[i].truncated;
      }
    }
  }

  // A full search (infinite incumbent) always reports the argmin, even when
  // every strategy costs kInf (hosts that cannot connect u at all).
  if (!(result.cost < kInf) && !(options.incumbent < kInf)) {
    result.cost = empty_cost;
  }
  return result;
}

}  // namespace

BestResponseResult br_search_sum(const AgentEnvironment& env,
                                 const BestResponseOptions& options) {
  return run_search<SumCostModel>(env, options);
}

BestResponseResult br_search_max(const AgentEnvironment& env,
                                 const BestResponseOptions& options) {
  return run_search<MaxCostModel>(env, options);
}

}  // namespace gncg
