// Executable checks of the paper's structural lemmas.
//
//  * Lemma 1: any Add-only Equilibrium is an (alpha+1)-spanner of the host.
//  * Lemma 2: the social optimum is an (alpha/2+1)-spanner of the host.
//  * Theorem 1 / Theorem 20 proof engine: the per-pair ratio
//        sigma(u,v) = (alpha w(u,v) x + 2 d_NE(u,v))
//                   / (alpha w(u,v) x* + 2 d_OPT(u,v))
//    is bounded by (alpha+2)/2 on metric hosts and ((alpha+2)/2)^2 in
//    general; measuring max sigma shows how tight the argument is on
//    concrete instances (the Section 4 remark instance attains the square).
#pragma once

#include <vector>

#include "core/game.hpp"

namespace gncg {

/// Maximum stretch of the built network G(s) relative to the host closure:
/// max_{u<v} d_G(u,v) / d_H(u,v).  Lemma 1 bounds this by alpha+1 for AE.
double profile_stretch(const Game& game, const StrategyProfile& s);

/// Maximum stretch of a bare network.  Lemma 2 bounds this by alpha/2+1 for
/// the social optimum.
double network_stretch(const Game& game, const std::vector<Edge>& network);

/// Maximum per-pair sigma ratio between an equilibrium profile and an
/// optimum network (the quantity bounded in the Theorem 1 / 20 proofs).
double max_pair_sigma(const Game& game, const StrategyProfile& equilibrium,
                      const std::vector<Edge>& optimum);

}  // namespace gncg
