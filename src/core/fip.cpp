#include "core/fip.hpp"

#include <algorithm>
#include <memory>

#include "core/best_response.hpp"
#include "core/restarts.hpp"

namespace gncg {

namespace {

/// Improvement-graph arc: agent `u` switching to candidate-mask `mask`.
struct Arc {
  int agent = -1;
  std::uint32_t mask = 0;
  double old_cost = 0.0;
  double new_cost = 0.0;
};

/// DFS frame: a gray state plus its outgoing arcs and the step that led in.
struct Frame {
  std::uint64_t state = 0;
  StrategyProfile profile;
  std::vector<Arc> arcs;
  std::size_t next_arc = 0;
  DynamicsStep incoming;  // step from the parent frame (unset for roots)
};

/// Candidate-target lists and the mixed-radix state encoding.
///
/// The exhaustive walk deliberately does NOT use the Zobrist transposition
/// table that powers run_dynamics cycle detection: an exhaustive analysis
/// visits (up to) every state, and for a full walk a 1-byte-per-state
/// color array over the exact injective encoding is strictly better --
/// O(total) bytes instead of a stored StrategyProfile per visited state,
/// O(1) exact revisit checks with no confirmation needed, and the O(n * k)
/// encode per arc is noise next to the 2^k cost evaluations in
/// outgoing_arcs.  The transposition table serves the *sparse* visit
/// patterns (dynamics trajectories, sampling dedup), where storing only
/// what was actually visited wins.
class StateCodec {
 public:
  StateCodec(const Game& game, std::uint64_t max_states) : game_(&game) {
    const int n = game.node_count();
    candidates_.resize(static_cast<std::size_t>(n));
    strides_.resize(static_cast<std::size_t>(n));
    total_ = 1;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v)
        if (game.can_buy(u, v))
          candidates_[static_cast<std::size_t>(u)].push_back(v);
      const std::size_t k = candidates_[static_cast<std::size_t>(u)].size();
      GNCG_CHECK(k < 32, "too many candidates per agent for mask encoding");
      strides_[static_cast<std::size_t>(u)] = total_;
      const std::uint64_t options = std::uint64_t{1} << k;
      GNCG_CHECK(total_ <= max_states / options,
                 "exhaustive FIP state space exceeds max_states="
                     << max_states << "; use the heuristic search instead");
      total_ *= options;
    }
  }

  std::uint64_t total_states() const { return total_; }

  const std::vector<int>& candidates(int u) const {
    return candidates_[static_cast<std::size_t>(u)];
  }

  std::uint32_t mask_of(const StrategyProfile& profile, int u) const {
    std::uint32_t mask = 0;
    const auto& cand = candidates(u);
    for (std::size_t i = 0; i < cand.size(); ++i)
      if (profile.buys(u, cand[i])) mask |= std::uint32_t{1} << i;
    return mask;
  }

  NodeSet strategy_of(std::uint32_t mask, int u) const {
    NodeSet strategy(game_->node_count());
    const auto& cand = candidates(u);
    for (std::size_t i = 0; i < cand.size(); ++i)
      if ((mask >> i) & 1U) strategy.insert(cand[i]);
    return strategy;
  }

  std::uint64_t encode(const StrategyProfile& profile) const {
    std::uint64_t state = 0;
    for (int u = 0; u < game_->node_count(); ++u)
      state += strides_[static_cast<std::size_t>(u)] * mask_of(profile, u);
    return state;
  }

  StrategyProfile decode(std::uint64_t state) const {
    const int n = game_->node_count();
    StrategyProfile profile(n);
    for (int u = 0; u < n; ++u) {
      const std::size_t k = candidates(u).size();
      const std::uint64_t options = std::uint64_t{1} << k;
      const auto mask = static_cast<std::uint32_t>(
          (state / strides_[static_cast<std::size_t>(u)]) % options);
      profile.set_strategy(u, strategy_of(mask, u));
    }
    return profile;
  }

 private:
  const Game* game_;
  std::vector<std::vector<int>> candidates_;
  std::vector<std::uint64_t> strides_;
  std::uint64_t total_ = 1;
};

/// All improving (or best-response) arcs out of `profile`.
std::vector<Arc> outgoing_arcs(const Game& game, const StateCodec& codec,
                               const StrategyProfile& profile,
                               bool best_response_only) {
  std::vector<Arc> arcs;
  const int n = game.node_count();
  for (int u = 0; u < n; ++u) {
    const AgentEnvironment env(game, profile, u);
    const std::uint32_t current_mask = codec.mask_of(profile, u);
    const std::size_t k = codec.candidates(u).size();
    const std::uint32_t options = std::uint32_t{1} << k;
    const double current_cost = env.cost_of(codec.strategy_of(current_mask, u));

    std::vector<double> costs(options, kInf);
    double best = kInf;
    for (std::uint32_t mask = 0; mask < options; ++mask) {
      costs[mask] = env.cost_of(codec.strategy_of(mask, u));
      best = std::min(best, costs[mask]);
    }
    for (std::uint32_t mask = 0; mask < options; ++mask) {
      if (mask == current_mask) continue;
      if (!improves(costs[mask], current_cost)) continue;
      if (best_response_only) {
        // Best-response arcs: the deviation must itself be a best response.
        const double slack = kImproveEps * std::max(1.0, std::abs(best));
        if (costs[mask] > best + slack) continue;
      }
      arcs.push_back({u, mask, current_cost, costs[mask]});
    }
  }
  return arcs;
}

}  // namespace

FipAnalysis exhaustive_fip_analysis(const Game& game,
                                    const ExhaustiveFipOptions& options) {
  const StateCodec codec(game, options.max_states);
  const std::uint64_t total = codec.total_states();

  FipAnalysis analysis;
  analysis.exhaustive = true;

  enum : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<std::uint8_t> color(total, kWhite);

  for (std::uint64_t root = 0; root < total; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack;
    color[root] = kGray;
    ++analysis.states_visited;
    {
      Frame frame;
      frame.state = root;
      frame.profile = codec.decode(root);
      frame.arcs = outgoing_arcs(game, codec, frame.profile,
                                 options.best_response_arcs_only);
      stack.push_back(std::move(frame));
    }
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next_arc >= top.arcs.size()) {
        color[top.state] = kBlack;
        stack.pop_back();
        continue;
      }
      const Arc arc = top.arcs[top.next_arc++];
      StrategyProfile child_profile = top.profile;
      NodeSet new_strategy = codec.strategy_of(arc.mask, arc.agent);
      DynamicsStep step;
      step.agent = arc.agent;
      step.old_strategy = child_profile.strategy(arc.agent);
      step.new_strategy = new_strategy;
      step.old_cost = arc.old_cost;
      step.new_cost = arc.new_cost;
      child_profile.set_strategy(arc.agent, std::move(new_strategy));
      const std::uint64_t child = codec.encode(child_profile);

      if (color[child] == kGray) {
        // Cycle: the gray frame for `child` up through `top` plus this arc.
        std::size_t begin = 0;
        while (begin < stack.size() && stack[begin].state != child) ++begin;
        GNCG_CHECK(begin < stack.size(), "gray state missing from DFS stack");
        analysis.cycle_found = true;
        analysis.cycle_start = stack[begin].profile;
        analysis.cycle.clear();
        for (std::size_t i = begin + 1; i < stack.size(); ++i)
          analysis.cycle.push_back(stack[i].incoming);
        analysis.cycle.push_back(step);
        return analysis;
      }
      if (color[child] == kWhite) {
        color[child] = kGray;
        ++analysis.states_visited;
        Frame frame;
        frame.state = child;
        frame.profile = std::move(child_profile);
        frame.arcs = outgoing_arcs(game, codec, frame.profile,
                                   options.best_response_arcs_only);
        frame.incoming = std::move(step);
        stack.push_back(std::move(frame));
      }
    }
  }
  return analysis;
}

FipAnalysis search_best_response_cycle(const Game& game, int attempts,
                                       std::uint64_t seed,
                                       std::uint64_t max_moves_per_attempt) {
  RestartOptions options;
  options.restarts = attempts;
  options.seed = seed;
  options.label = "fip_search";
  options.dynamics.rule = MoveRule::kBestResponse;
  options.dynamics.max_moves = max_moves_per_attempt;
  options.dynamics.detect_cycles = true;
  options.scheduler_cycle = {SchedulerKind::kRoundRobin,
                             SchedulerKind::kRandomOrder,
                             SchedulerKind::kMaxGain};
  options.verify_cycles = true;
  // Cycle-hunting early exit: restarts above the first verified hit are
  // skipped.  The reported witness -- the first verified cycle in restart
  // order -- is identical to an exhaustive fan-out's for any thread count.
  options.stop_after_verified_cycle = true;
  const RestartReport report = run_restarts(game, options);

  FipAnalysis analysis;
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const RestartRun& run = report.runs[i];
    if (!run.result.cycle_found || !run.cycle_verified) continue;
    analysis.cycle_found = true;
    analysis.cycle_start = run.result.final_profile;
    analysis.cycle = run.result.cycle_steps();
    // Attempts made until the witness, the old serial loop's count -- a
    // pure function of the streams (restarts past the winner may or may
    // not have executed depending on pool timing; never count those).
    analysis.states_visited = i + 1;
    break;
  }
  if (!analysis.cycle_found)
    analysis.states_visited = static_cast<std::uint64_t>(attempts);
  return analysis;
}

}  // namespace gncg
