#include "core/best_response.hpp"

#include <algorithm>

#include "core/br_search.hpp"
#include "core/deviation_engine.hpp"
#include "graph/dijkstra.hpp"

namespace gncg {

AgentEnvironment::AgentEnvironment(const Game& game, const StrategyProfile& s,
                                   int u)
    : game_(&game), agent_(u) {
  const int n = game.node_count();
  GNCG_CHECK(u >= 0 && u < n, "agent out of range");
  owned_.resize(static_cast<std::size_t>(n));
  for (int owner = 0; owner < n; ++owner) {
    if (owner == u) continue;
    s.strategy(owner).for_each([&](int target) {
      const double w = game.weight(owner, target);
      owned_[static_cast<std::size_t>(owner)].push_back({target, w});
      owned_[static_cast<std::size_t>(target)].push_back({owner, w});
    });
  }
}

AgentEnvironment::AgentEnvironment(const DeviationEngine& engine, int u)
    : game_(&engine.game()), agent_(u) {
  const int n = game_->node_count();
  GNCG_CHECK(u >= 0 && u < n, "agent out of range");
  borrowed_ = &engine.adjacency();
  // Mask the edges that exist only because u buys them; edges u and a
  // neighbor both buy stay (the neighbor keeps paying in the environment).
  const StrategyProfile& s = engine.profile();
  sole_owned_ = NodeSet(n);
  s.strategy(u).for_each([&](int target) {
    if (!s.buys(target, u)) sole_owned_.insert(target);
  });
}

double AgentEnvironment::distance_cost_of(const NodeSet& targets) const {
  const int n = game_->node_count();
  return distance_sum_over(n, agent_, [&](int x, auto&& visit) {
    for_neighbors(x, visit);
    if (x == agent_) {
      targets.for_each([&](int v) { visit(v, game_->weight(agent_, v)); });
    } else if (targets.contains(x)) {
      visit(agent_, game_->weight(agent_, x));
    }
  });
}

double AgentEnvironment::cost_of(const NodeSet& targets) const {
  double edge_weight = 0.0;
  targets.for_each([&](int v) { edge_weight += game_->weight(agent_, v); });
  return game_->alpha() * edge_weight + distance_cost_of(targets);
}

namespace {

/// DFS state of the pre-refactor exact search (one fresh Dijkstra per
/// visited subset, sequential, global host-sum floor): kept verbatim as the
/// differential-testing and benchmarking baseline for the incremental
/// br_search engine.
struct NaiveBrSearch {
  const Game* game = nullptr;
  const AgentEnvironment* env = nullptr;
  int agent = 0;
  std::vector<int> candidates;       // targets sorted by ascending weight
  std::vector<double> weights;       // parallel edge weights
  double dist_lower_bound = 0.0;     // sum_v d_H(agent, v)
  double incumbent = kInf;           // original bound (improved = beat this)
  bool first_improvement = false;
  bool done = false;

  NodeSet current;
  double current_weight = 0.0;

  BestResponseResult result;

  void run() {
    evaluate();
    if (!done) descend(0);
  }

  void evaluate() {
    const double cost =
        game->alpha() * current_weight + env->distance_cost_of(current);
    ++result.evaluations;
    if (improves(cost, bound())) {
      result.cost = cost;
      result.strategy = current;
      result.improved = improves(cost, incumbent);
      if (first_improvement && result.improved) done = true;
    }
  }

  double bound() const { return std::min(result.cost, incumbent); }

  void descend(std::size_t start) {
    for (std::size_t i = start; i < candidates.size() && !done; ++i) {
      // Admissible lower bound for any superset containing candidate i:
      // its edge cost alone plus the host-closure distance floor.  The
      // candidate list is weight-sorted, so the first failure cuts the rest.
      const double lb = game->alpha() * (current_weight + weights[i]) +
                        dist_lower_bound;
      if (!improves(lb, bound())) break;
      current.insert(candidates[i]);
      current_weight += weights[i];
      evaluate();
      if (!done) descend(i + 1);
      current.erase(candidates[i]);
      current_weight -= weights[i];
    }
  }
};

}  // namespace

BestResponseResult naive_exact_best_response(const Game& game,
                                             const StrategyProfile& s, int u,
                                             const BestResponseOptions& options) {
  const AgentEnvironment env(game, s, u);
  NaiveBrSearch search;
  search.game = &game;
  search.env = &env;
  search.agent = u;
  search.incumbent = options.incumbent;
  search.first_improvement = options.first_improvement;
  // Admissible pruning floor, served by the host backend's cached sums
  // (eager-once closure on dense hosts, O(n)/O(n^2)-once geometric sums on
  // implicit ones; see the host-backend query contract in ROADMAP.md).
  search.dist_lower_bound = game.host_distance_sum(u);
  search.current = NodeSet(game.node_count());
  search.result.strategy = NodeSet(game.node_count());

  // Candidate targets: every node u may buy towards, sorted by edge weight
  // so the branch-and-bound cut is monotone.
  std::vector<std::pair<double, int>> order;
  for (int v = 0; v < game.node_count(); ++v)
    if (game.can_buy(u, v)) order.emplace_back(game.weight(u, v), v);
  std::sort(order.begin(), order.end());
  for (const auto& [w, v] : order) {
    search.candidates.push_back(v);
    search.weights.push_back(w);
  }

  search.run();

  // A full search (infinite incumbent) always reports the argmin, even when
  // every strategy costs kInf (hosts that cannot connect u at all).
  if (!(search.result.cost < kInf) && !(options.incumbent < kInf)) {
    search.result.cost = env.cost_of(search.result.strategy);
  }
  return search.result;
}

BestResponseResult exact_best_response(const Game& game,
                                       const StrategyProfile& s, int u,
                                       const BestResponseOptions& options) {
  const AgentEnvironment env(game, s, u);
  return br_search_sum(env, options);
}

BestResponseResult exact_best_response(const DeviationEngine& engine, int u,
                                       const BestResponseOptions& options) {
  const AgentEnvironment env(engine, u);
  return br_search_sum(env, options);
}

bool has_improving_deviation(const Game& game, const StrategyProfile& s,
                             int u) {
  DeviationEngine engine(game, s);
  return has_improving_deviation(engine, u);
}

bool has_improving_deviation(DeviationEngine& engine, int u) {
  BestResponseOptions options;
  options.incumbent = engine.agent_cost(u);
  options.first_improvement = true;
  return exact_best_response(engine, u, options).improved;
}

namespace {

/// Which single-move families a scan considers.
struct MoveScanFlags {
  bool adds = false;
  bool deletes = false;
  bool swaps = false;
};

/// Shared implementation of the single-move scans.
SingleMoveResult scan_single_moves(const Game& game, const StrategyProfile& s,
                                   int u, const MoveScanFlags& flags) {
  const AgentEnvironment env(game, s, u);
  const int n = game.node_count();

  NodeSet current(n);
  s.strategy(u).for_each([&](int v) { current.insert(v); });

  SingleMoveResult result;
  result.current_cost = env.cost_of(current);
  result.cost = result.current_cost;

  auto consider = [&](const SingleMove& move, const NodeSet& candidate) {
    const double cost = env.cost_of(candidate);
    if (improves(cost, result.cost)) {
      result.cost = cost;
      result.move = move;
      result.improved = true;
    }
  };

  NodeSet working = current;
  if (flags.adds) {
    // Additions: buy towards a node with no incident built edge to u yet
    // (buying an edge that already exists is never strictly improving).
    for (int v = 0; v < n; ++v) {
      if (v == u || !game.can_buy(u, v) || s.has_edge(u, v)) continue;
      working.insert(v);
      consider({MoveType::kAdd, -1, v}, working);
      working.erase(v);
    }
  }

  if (flags.deletes || flags.swaps) {
    const auto owned = s.strategy(u).to_vector();
    for (int v : owned) {
      working.erase(v);
      if (flags.deletes) consider({MoveType::kDelete, v, -1}, working);
      if (flags.swaps) {
        // Swaps (u, v) -> (u, x).  Swapping to an already-present edge is
        // dominated by the plain deletion, so such x are skipped when
        // deletions are in the move set; for swap-only scans they must be
        // considered (they are the only way to shed a redundant edge).
        for (int x = 0; x < n; ++x) {
          if (x == u || x == v || !game.can_buy(u, x)) continue;
          if (flags.deletes && s.has_edge(u, x)) continue;
          if (!flags.deletes && s.strategy(u).contains(x)) continue;
          working.insert(x);
          consider({MoveType::kSwap, v, x}, working);
          working.erase(x);
        }
      }
      working.insert(v);
    }
  }
  return result;
}

}  // namespace

SingleMoveResult best_single_move(const Game& game, const StrategyProfile& s,
                                  int u) {
  DeviationEngine engine(game, s);
  return engine.best_single_move(u);
}

SingleMoveResult best_addition(const Game& game, const StrategyProfile& s,
                               int u) {
  DeviationEngine engine(game, s);
  return engine.best_addition(u);
}

SingleMoveResult best_swap(const Game& game, const StrategyProfile& s, int u) {
  DeviationEngine engine(game, s);
  return engine.best_swap(u);
}

SingleMoveResult naive_best_single_move(const Game& game,
                                        const StrategyProfile& s, int u) {
  return scan_single_moves(game, s, u, {true, true, true});
}

SingleMoveResult naive_best_addition(const Game& game,
                                     const StrategyProfile& s, int u) {
  return scan_single_moves(game, s, u, {true, false, false});
}

SingleMoveResult naive_best_swap(const Game& game, const StrategyProfile& s,
                                 int u) {
  return scan_single_moves(game, s, u, {false, false, true});
}

void apply_move(StrategyProfile& s, int u, const SingleMove& move) {
  switch (move.type) {
    case MoveType::kNone:
      return;
    case MoveType::kAdd:
      s.add_buy(u, move.add);
      return;
    case MoveType::kDelete:
      s.remove_buy(u, move.remove);
      return;
    case MoveType::kSwap:
      s.remove_buy(u, move.remove);
      s.add_buy(u, move.add);
      return;
  }
}

}  // namespace gncg
