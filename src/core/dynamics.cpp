#include "core/dynamics.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/facility_location.hpp"
#include "graph/union_find.hpp"

namespace gncg {

namespace {

/// A proposed deviation for one agent: the strategy and the resulting cost.
struct Proposal {
  bool improving = false;
  NodeSet strategy;
  double old_cost = kInf;
  double new_cost = kInf;
};

Proposal propose(const Game& game, const StrategyProfile& s, int u,
                 MoveRule rule) {
  Proposal proposal;
  switch (rule) {
    case MoveRule::kBestResponse: {
      const double current = agent_cost(game, s, u);
      BestResponseOptions options;
      options.incumbent = current;
      const auto br = exact_best_response(game, s, u, options);
      proposal.old_cost = current;
      if (br.improved) {
        proposal.improving = true;
        proposal.strategy = br.strategy;
        proposal.new_cost = br.cost;
      }
      return proposal;
    }
    case MoveRule::kBestSingleMove:
    case MoveRule::kBestAddition: {
      const auto move = rule == MoveRule::kBestSingleMove
                            ? best_single_move(game, s, u)
                            : best_addition(game, s, u);
      proposal.old_cost = move.current_cost;
      if (move.improved) {
        proposal.improving = true;
        NodeSet next = s.strategy(u);
        if (move.move.remove >= 0) next.erase(move.move.remove);
        if (move.move.add >= 0) next.insert(move.move.add);
        proposal.strategy = std::move(next);
        proposal.new_cost = move.cost;
      }
      return proposal;
    }
    case MoveRule::kUmflResponse: {
      const double current = agent_cost(game, s, u);
      NodeSet candidate = approx_best_response_umfl(game, s, u);
      const AgentEnvironment env(game, s, u);
      const double cost = env.cost_of(candidate);
      proposal.old_cost = current;
      if (improves(cost, current) && !(candidate == s.strategy(u))) {
        proposal.improving = true;
        proposal.strategy = std::move(candidate);
        proposal.new_cost = cost;
      }
      return proposal;
    }
  }
  return proposal;
}

/// Tracks visited profiles for cycle detection (hash index + full-profile
/// confirmation to rule out collisions).
class ProfileHistory {
 public:
  /// Records `profile` at trajectory position `index`; returns the previous
  /// position of an identical profile, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t record(const StrategyProfile& profile, std::size_t index) {
    const std::uint64_t h = profile.hash();
    auto [it, inserted] = index_.try_emplace(h);
    for (std::size_t at : it->second)
      if (profiles_[at] == profile) return at;
    it->second.push_back(index);
    if (profiles_.size() <= index) profiles_.resize(index + 1, profile);
    profiles_[index] = profile;
    return npos;
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
  std::vector<StrategyProfile> profiles_;
};

}  // namespace

DynamicsResult run_dynamics(const Game& game, StrategyProfile start,
                            const DynamicsOptions& options) {
  const int n = game.node_count();
  GNCG_CHECK(start.node_count() == n, "profile/game size mismatch");
  Rng rng(options.seed);

  DynamicsResult result;
  StrategyProfile profile = std::move(start);
  ProfileHistory history;
  if (options.detect_cycles) history.record(profile, 0);

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto take_step = [&](int agent, Proposal&& proposal) -> bool {
    DynamicsStep step;
    step.agent = agent;
    step.old_strategy = profile.strategy(agent);
    step.new_strategy = proposal.strategy;
    step.old_cost = proposal.old_cost;
    step.new_cost = proposal.new_cost;
    profile.set_strategy(agent, std::move(proposal.strategy));
    result.steps.push_back(std::move(step));
    ++result.moves;
    if (options.detect_cycles) {
      const std::size_t prev = history.record(profile, result.moves);
      if (prev != ProfileHistory::npos) {
        result.cycle_found = true;
        result.cycle_start = prev;
        result.cycle_length = result.moves - prev;
        return true;  // stop
      }
    }
    return result.moves >= options.max_moves;
  };

  bool stop = false;
  while (!stop) {
    ++result.rounds;
    bool any_move = false;
    if (options.scheduler == SchedulerKind::kMaxGain) {
      // Activate the agent with the single largest improvement.
      int best_agent = -1;
      Proposal best;
      double best_gain = 0.0;
      for (int u = 0; u < n && !stop; ++u) {
        Proposal p = propose(game, profile, u, options.rule);
        if (!p.improving) continue;
        const double gain = (p.old_cost < kInf && p.new_cost < kInf)
                                ? p.old_cost - p.new_cost
                                : kInf;
        if (best_agent < 0 || gain > best_gain) {
          best_agent = u;
          best = std::move(p);
          best_gain = gain;
        }
      }
      if (best_agent >= 0) {
        any_move = true;
        stop = take_step(best_agent, std::move(best));
      }
    } else {
      if (options.scheduler == SchedulerKind::kRandomOrder) rng.shuffle(order);
      for (int u : order) {
        if (stop) break;
        Proposal p = propose(game, profile, u, options.rule);
        if (!p.improving) continue;
        any_move = true;
        stop = take_step(u, std::move(p));
      }
    }
    if (!any_move && !stop) {
      result.converged = true;
      break;
    }
  }
  result.final_profile = std::move(profile);
  return result;
}

bool verify_improvement_cycle(const Game& game, const StrategyProfile& start,
                              const std::vector<DynamicsStep>& cycle,
                              bool require_best_response) {
  if (cycle.empty()) return false;
  StrategyProfile profile = start;
  for (const auto& step : cycle) {
    const double before = agent_cost(game, profile, step.agent);
    if (profile.strategy(step.agent) != step.old_strategy) return false;
    StrategyProfile next = profile;
    next.set_strategy(step.agent, step.new_strategy);
    const double after = agent_cost(game, next, step.agent);
    if (!improves(after, before)) return false;
    if (require_best_response) {
      const auto br = exact_best_response(game, profile, step.agent);
      // The landing cost must match the exact best-response cost.
      const double slack = kImproveEps * std::max(1.0, std::abs(br.cost));
      if (after > br.cost + slack) return false;
    }
    profile = std::move(next);
  }
  return profile == start;
}

StrategyProfile random_profile(const Game& game, Rng& rng,
                               double extra_edge_prob) {
  const int n = game.node_count();
  StrategyProfile profile(n);

  // Random spanning structure over purchasable pairs (random edge order +
  // union-find), each edge bought by a uniformly random endpoint.
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (game.can_buy(u, v)) pairs.emplace_back(u, v);
  rng.shuffle(pairs);
  UnionFind dsu(n);
  for (const auto& [u, v] : pairs) {
    if (dsu.unite(u, v)) {
      if (rng.bernoulli(0.5)) profile.add_buy(u, v);
      else profile.add_buy(v, u);
    } else if (rng.bernoulli(extra_edge_prob)) {
      if (rng.bernoulli(0.5)) profile.add_buy(u, v);
      else profile.add_buy(v, u);
    }
  }
  return profile;
}

}  // namespace gncg
