#include "core/dynamics.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/deviation_engine.hpp"
#include "core/facility_location.hpp"
#include "graph/union_find.hpp"
#include "support/parallel.hpp"

namespace gncg {

namespace {

/// A proposed deviation for one agent: the strategy and the resulting cost.
struct Proposal {
  bool improving = false;
  NodeSet strategy;
  double old_cost = kInf;
  double new_cost = kInf;
};

/// Proposal for one agent against warm engine state.  Const on the engine,
/// so the kMaxGain scheduler can fan all agents out over the worker pool.
Proposal propose_warm(const DeviationEngine& engine, int u, MoveRule rule) {
  const Game& game = engine.game();
  Proposal proposal;
  switch (rule) {
    case MoveRule::kBestResponse: {
      const double current = engine.agent_cost_warm(u);
      BestResponseOptions options;
      options.incumbent = current;
      const auto br = exact_best_response(engine, u, options);
      proposal.old_cost = current;
      if (br.improved) {
        proposal.improving = true;
        proposal.strategy = br.strategy;
        proposal.new_cost = br.cost;
      }
      return proposal;
    }
    case MoveRule::kBestSingleMove:
    case MoveRule::kBestAddition: {
      const auto move = rule == MoveRule::kBestSingleMove
                            ? engine.best_single_move_warm(u)
                            : engine.best_addition_warm(u);
      proposal.old_cost = move.current_cost;
      if (move.improved) {
        proposal.improving = true;
        NodeSet next = engine.profile().strategy(u);
        if (move.move.remove >= 0) next.erase(move.move.remove);
        if (move.move.add >= 0) next.insert(move.move.add);
        proposal.strategy = std::move(next);
        proposal.new_cost = move.cost;
      }
      return proposal;
    }
    case MoveRule::kUmflResponse: {
      const double current = engine.agent_cost_warm(u);
      NodeSet candidate = approx_best_response_umfl(game, engine.profile(), u);
      const double cost = engine.cost_of_strategy(u, candidate);
      proposal.old_cost = current;
      if (improves(cost, current) &&
          !(candidate == engine.profile().strategy(u))) {
        proposal.improving = true;
        proposal.strategy = std::move(candidate);
        proposal.new_cost = cost;
      }
      return proposal;
    }
  }
  return proposal;
}

Proposal propose(DeviationEngine& engine, int u, MoveRule rule) {
  // Single-move scans read every agent's cached vector; the other rules
  // only read u's (the BR/UMFL searches run their own Dijkstras), so a
  // full warm-up would waste n-1 SSSP per proposal.
  if (rule == MoveRule::kBestSingleMove || rule == MoveRule::kBestAddition) {
    engine.warm_distances();
  } else {
    engine.distance_cost(u);
  }
  return propose_warm(engine, u, rule);
}

/// One agent's entry in the kMaxGain tournament.
struct BestProposal {
  int agent = -1;
  double gain = 0.0;
  Proposal proposal;
};

/// Folds agent u's proposal into the accumulator: largest gain wins, ties go
/// to the smallest agent id (the order the sequential scan would keep).
void fold_proposal(BestProposal& best, const DeviationEngine& engine, int u,
                   MoveRule rule) {
  Proposal p = propose_warm(engine, u, rule);
  if (!p.improving) return;
  const double gain = (p.old_cost < kInf && p.new_cost < kInf)
                          ? p.old_cost - p.new_cost
                          : kInf;
  if (best.agent < 0 || gain > best.gain ||
      (gain == best.gain && u < best.agent)) {
    best.agent = u;
    best.gain = gain;
    best.proposal = std::move(p);
  }
}

/// Tracks visited profiles for cycle detection (hash index + full-profile
/// confirmation to rule out collisions).
class ProfileHistory {
 public:
  /// Records `profile` at trajectory position `index`; returns the previous
  /// position of an identical profile, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t record(const StrategyProfile& profile, std::size_t index) {
    const std::uint64_t h = profile.hash();
    auto [it, inserted] = index_.try_emplace(h);
    for (std::size_t at : it->second)
      if (profiles_[at] == profile) return at;
    it->second.push_back(index);
    if (profiles_.size() <= index) profiles_.resize(index + 1, profile);
    profiles_[index] = profile;
    return npos;
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
  std::vector<StrategyProfile> profiles_;
};

}  // namespace

DynamicsResult run_dynamics(const Game& game, StrategyProfile start,
                            const DynamicsOptions& options) {
  const int n = game.node_count();
  GNCG_CHECK(start.node_count() == n, "profile/game size mismatch");
  Rng rng(options.seed);

  DynamicsResult result;
  DeviationEngine engine(game, std::move(start));
  ProfileHistory history;
  if (options.detect_cycles) history.record(engine.profile(), 0);

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  auto take_step = [&](int agent, Proposal&& proposal) -> bool {
    DynamicsStep step;
    step.agent = agent;
    step.old_strategy = engine.profile().strategy(agent);
    step.new_strategy = proposal.strategy;
    step.old_cost = proposal.old_cost;
    step.new_cost = proposal.new_cost;
    engine.set_strategy(agent, std::move(proposal.strategy));
    result.steps.push_back(std::move(step));
    ++result.moves;
    if (options.detect_cycles) {
      const std::size_t prev = history.record(engine.profile(), result.moves);
      if (prev != ProfileHistory::npos) {
        result.cycle_found = true;
        result.cycle_start = prev;
        result.cycle_length = result.moves - prev;
        return true;  // stop
      }
    }
    return result.moves >= options.max_moves;
  };

  bool stop = false;
  while (!stop) {
    ++result.rounds;
    bool any_move = false;
    if (options.scheduler == SchedulerKind::kMaxGain) {
      // Activate the agent with the single largest improvement.  All agents
      // are proposed against the same warm engine state, fanned out over
      // the worker pool.
      engine.warm_distances();
      BestProposal best = parallel_reduce<BestProposal>(
          0, static_cast<std::size_t>(n), [] { return BestProposal{}; },
          [&](BestProposal& acc, std::size_t u) {
            fold_proposal(acc, engine, static_cast<int>(u), options.rule);
          },
          [](BestProposal& total, BestProposal& acc) {
            if (acc.agent < 0) return;
            if (total.agent < 0 || acc.gain > total.gain ||
                (acc.gain == total.gain && acc.agent < total.agent)) {
              total = std::move(acc);
            }
          },
          /*grain=*/1);
      if (best.agent >= 0) {
        any_move = true;
        stop = take_step(best.agent, std::move(best.proposal));
      }
    } else {
      if (options.scheduler == SchedulerKind::kRandomOrder) rng.shuffle(order);
      for (int u : order) {
        if (stop) break;
        Proposal p = propose(engine, u, options.rule);
        if (!p.improving) continue;
        any_move = true;
        stop = take_step(u, std::move(p));
      }
    }
    if (!any_move && !stop) {
      result.converged = true;
      break;
    }
  }
  result.final_profile = engine.profile();
  return result;
}

bool verify_improvement_cycle(const Game& game, const StrategyProfile& start,
                              const std::vector<DynamicsStep>& cycle,
                              bool require_best_response) {
  if (cycle.empty()) return false;
  StrategyProfile profile = start;
  for (const auto& step : cycle) {
    const double before = agent_cost(game, profile, step.agent);
    if (profile.strategy(step.agent) != step.old_strategy) return false;
    StrategyProfile next = profile;
    next.set_strategy(step.agent, step.new_strategy);
    const double after = agent_cost(game, next, step.agent);
    if (!improves(after, before)) return false;
    if (require_best_response) {
      const auto br = exact_best_response(game, profile, step.agent);
      // The landing cost must match the exact best-response cost.
      const double slack = kImproveEps * std::max(1.0, std::abs(br.cost));
      if (after > br.cost + slack) return false;
    }
    profile = std::move(next);
  }
  return profile == start;
}

StrategyProfile random_profile(const Game& game, Rng& rng,
                               double extra_edge_prob) {
  const int n = game.node_count();
  StrategyProfile profile(n);

  // Random spanning structure over purchasable pairs (random edge order +
  // union-find), each edge bought by a uniformly random endpoint.
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (game.can_buy(u, v)) pairs.emplace_back(u, v);
  rng.shuffle(pairs);
  UnionFind dsu(n);
  for (const auto& [u, v] : pairs) {
    if (dsu.unite(u, v)) {
      if (rng.bernoulli(0.5)) profile.add_buy(u, v);
      else profile.add_buy(v, u);
    } else if (rng.bernoulli(extra_edge_prob)) {
      if (rng.bernoulli(0.5)) profile.add_buy(u, v);
      else profile.add_buy(v, u);
    }
  }
  return profile;
}

}  // namespace gncg
