#include "core/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/transposition.hpp"

namespace gncg {

namespace {

std::unique_ptr<MoveRulePolicy> resolve_rule(const DynamicsOptions& options,
                                             const PolicyConfig& config) {
  if (!options.rule_name.empty())
    return DynamicsPolicyRegistry::instance().make_rule(options.rule_name,
                                                        config);
  return make_move_rule(options.rule, config);
}

std::unique_ptr<SchedulerPolicy> resolve_scheduler(
    const DynamicsOptions& options, const PolicyConfig& config) {
  if (!options.scheduler_name.empty())
    return DynamicsPolicyRegistry::instance().make_scheduler(
        options.scheduler_name, config);
  return make_scheduler(options.scheduler, config);
}

}  // namespace

DynamicsResult run_dynamics(const Game& game, StrategyProfile start,
                            const DynamicsOptions& options) {
  GNCG_CHECK(start.node_count() == game.node_count(),
             "profile/game size mismatch");
  DeviationEngine engine(game, std::move(start));
  return run_dynamics(engine, options);
}

DynamicsResult run_dynamics(DeviationEngine& engine,
                            const DynamicsOptions& options) {
  const int n = engine.game().node_count();
  Rng rng(options.seed);
  PolicyConfig config;
  config.node_count = n;
  config.fairness_bound = options.fairness_bound;
  config.softmax_tau = options.softmax_tau;
  config.approx_budget = options.approx_budget;
  config.approx_repair_cap = options.approx_repair_cap;
  config.mgm_shards = options.mgm_shards;
  const auto rule = resolve_rule(options, config);
  const auto scheduler = resolve_scheduler(options, config);

  DynamicsResult result;
  TranspositionTable visited;
  if (options.detect_cycles)
    visited.insert(engine.profile_hash(), engine.profile(), 0);
  if (options.observer != nullptr) options.observer->on_run_start(engine);

  // Round-commit loop: the scheduler returns a batch of activations (one
  // per round for sequential schedulers, a non-conflicting set under
  // parallel_mgm) that commits atomically -- a single engine epoch bump for
  // multi-move batches -- with revisit detection at round granularity.  For
  // single-activation rounds this is the historical per-move loop, move for
  // move and epoch bump for epoch bump.
  std::uint64_t round_index = 0;
  std::vector<std::pair<int, NodeSet>> batch;
  for (bool done = false; !done;) {
    std::vector<Activation> round = scheduler->next_round(engine, *rule, rng);
    if (round.empty()) {
      result.converged = true;
      break;
    }
    ++round_index;

    // Record the steps against the round's start profile, then commit.
    std::vector<DynamicsStep> steps;
    steps.reserve(round.size());
    for (Activation& activation : round) {
      DynamicsStep step;
      step.agent = activation.agent;
      step.old_strategy = engine.profile().strategy(activation.agent);
      step.new_strategy = activation.proposal.strategy;
      step.old_cost = activation.proposal.old_cost;
      step.new_cost = activation.proposal.new_cost;
      step.round = round_index;
      steps.push_back(std::move(step));
    }
    if (round.size() == 1) {
      engine.set_strategy(round[0].agent,
                          std::move(round[0].proposal.strategy));
    } else {
      batch.clear();
      for (Activation& activation : round)
        batch.emplace_back(activation.agent,
                           std::move(activation.proposal.strategy));
      engine.set_strategies(batch);
    }

    result.max_round_commits = std::max(result.max_round_commits,
                                        steps.size());
    for (DynamicsStep& step : steps) {
      ++result.moves;
      if (step.old_cost < kInf)
        result.step_gains.add(step.old_cost - step.new_cost);
      if (options.observer != nullptr)
        options.observer->on_step(step, result.moves);
      if (options.record_steps) result.steps.push_back(std::move(step));
    }
    if (options.observer != nullptr)
      options.observer->on_round_end(round_index, steps.size());

    if (options.detect_cycles) {
      // O(1) incremental fingerprint; a hit is confirmed by exact profile
      // comparison inside the table, so collisions never fake a cycle.
      const std::uint64_t hash = engine.profile_hash();
      const std::size_t prev = visited.find(hash, engine.profile());
      if (prev != TranspositionTable::npos) {
        result.cycle_found = true;
        result.cycle_start = static_cast<std::size_t>(visited.value(prev));
        result.cycle_length =
            static_cast<std::size_t>(result.moves) - result.cycle_start;
        break;
      }
      visited.insert(hash, engine.profile(), result.moves);
    }
    done = result.moves >= options.max_moves;
  }

  result.rounds = scheduler->rounds();
  result.hash_collisions = visited.collisions();
  result.final_profile = engine.profile();
  if (options.observer != nullptr) options.observer->on_run_end(result);
  return result;
}

bool verify_improvement_cycle(const Game& game, const StrategyProfile& start,
                              const std::vector<DynamicsStep>& cycle,
                              bool require_best_response) {
  if (cycle.empty()) return false;
  // Replay on one engine: set_strategy updates the materialized adjacency
  // incrementally instead of copying the whole profile and rebuilding a
  // fresh environment per step, and the best-response check borrows the
  // engine's adjacency (near-linear per step instead of quadratic).
  DeviationEngine engine(game, start);
  for (const auto& step : cycle) {
    if (engine.profile().strategy(step.agent) != step.old_strategy)
      return false;
    const double before = engine.agent_cost(step.agent);
    engine.set_strategy(step.agent, step.new_strategy);
    const double after = engine.agent_cost(step.agent);
    if (!improves(after, before)) return false;
    if (require_best_response) {
      // The landing cost must match the exact best-response cost against
      // the *pre-step* profile; the cheap strict-improvement rejection
      // above runs first so invalid cycles never pay the NP-hard search.
      engine.set_strategy(step.agent, step.old_strategy);
      const double br_cost = exact_best_response(engine, step.agent).cost;
      engine.set_strategy(step.agent, step.new_strategy);
      const double slack = kImproveEps * std::max(1.0, std::abs(br_cost));
      if (after > br_cost + slack) return false;
    }
  }
  return engine.profile() == start;
}

}  // namespace gncg
