// Dynamics policies: pluggable move rules and activation schedulers.
//
// The dynamics kernel (core/dynamics.hpp) is a loop of "the scheduler picks
// an improving activation, the engine applies it".  Both decisions are
// policies:
//
//  * A MoveRulePolicy maps an activated agent to its proposed deviation
//    (exact best response, best single move, best addition, UMFL
//    3-approximation).  Proposals are evaluated against *warm* engine state
//    and must be const + thread-safe, so gain-based schedulers can fan all
//    agents out over the worker pool.
//  * A SchedulerPolicy decides which agent moves next: round-robin and
//    random-order probe agents in an activation order (one full silent
//    round certifies convergence); max-gain, softmax-gain and
//    fairness-bounded batch-propose every agent in parallel and select by
//    gain (deterministically -- any randomness comes from the run's Rng,
//    never from thread scheduling).
//
// Policies are stateful per run (cursors, fairness counters) and are
// created fresh by factories.  The DynamicsPolicyRegistry maps stable
// names ("round_robin", "softmax_gain", ...) to factories so sweep
// scenarios, CLIs and tests can select policies by string; the MoveRule /
// SchedulerKind enums remain the convenient spelling for the builtins and
// resolve through the same registry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/deviation_engine.hpp"
#include "support/rng.hpp"

namespace gncg {

/// What an activated agent plays.
enum class MoveRule {
  kBestResponse,    ///< exact best response (exponential per activation)
  kBestSingleMove,  ///< best add/delete/swap (the GE move set)
  kBestAddition,    ///< best single addition (the AE move set)
  kUmflResponse,    ///< 3-approximate BR via facility-location local search
  kApproxLadder,    ///< spatial-shortlist approximate-BR ladder
};

/// Order in which agents are activated.
enum class SchedulerKind {
  kRoundRobin,       ///< fixed order 0..n-1, repeated
  kRandomOrder,      ///< fresh uniform permutation every round
  kMaxGain,          ///< activate the agent with the largest cost improvement
  kFairnessBounded,  ///< max-gain, but no improving agent waits > bound steps
  kSoftmaxGain,      ///< sample an improving agent ~ softmax of its gain
  kParallelMgm,      ///< sharded MGM rounds: non-conflicting winners commit
};

/// A proposed deviation for one agent: the strategy and the resulting cost.
struct Proposal {
  bool improving = false;
  NodeSet strategy;
  double old_cost = kInf;
  double new_cost = kInf;

  /// Cost improvement; kInf when the move reconnects a disconnected agent.
  double gain() const {
    return (old_cost < kInf && new_cost < kInf) ? old_cost - new_cost : kInf;
  }
};

/// One scheduler decision: the chosen agent and its (improving) proposal.
struct Activation {
  int agent = -1;
  Proposal proposal;
};

/// Shared knobs a policy factory may read.
struct PolicyConfig {
  int node_count = 0;
  /// Fairness-bounded scheduler: the longest an agent with an improving
  /// move may be passed over, in scheduler steps.  0 = 2 * node_count.
  std::uint64_t fairness_bound = 0;
  /// Softmax-gain scheduler: selection temperature relative to the largest
  /// current gain (higher = closer to uniform over improving agents).
  double softmax_tau = 0.25;
  /// Approx-ladder move rule: candidate-shortlist size handed to the
  /// spatial oracle.  <= 0 picks the ladder's default.
  int approx_budget = 0;
  /// Approx-ladder bounded-frontier repair cap; 0 = exact repairs.
  std::size_t approx_repair_cap = 0;
  /// Parallel-MGM scheduler: number of agent shards per round (each shard
  /// nominates its max-gain improving agent; non-conflicting nominees
  /// commit together).  <= 0 picks the default max(1, node_count / 16);
  /// 1 degenerates to the sequential max_gain step.
  int mgm_shards = 0;
};

/// Maps an activated agent to its proposal.  Stateless; const-callable from
/// multiple threads against warm engine state.
class MoveRulePolicy {
 public:
  virtual ~MoveRulePolicy() = default;

  virtual std::string_view name() const = 0;

  /// Proposal for agent u against warm engine state (const, thread-safe).
  virtual Proposal propose_warm(const DeviationEngine& engine,
                                int u) const = 0;

  /// True when propose_warm reads every agent's distance cache (the
  /// single-move scans); false when it only reads u's (the BR / UMFL
  /// searches run their own Dijkstras, and a full warm-up would waste
  /// n-1 SSSP per serial proposal).
  virtual bool wants_full_warm() const = 0;
};

/// Warms exactly the caches `rule` needs for agent u, then proposes (the
/// serial activation path; gain-based schedulers warm everything once and
/// call propose_warm directly).
Proposal propose(DeviationEngine& engine, const MoveRulePolicy& rule, int u);

/// Decides which agent moves next.  Stateful per run.  The kernel drives
/// schedulers through `next_round`: the batch of activations to commit
/// together (an empty batch certifies convergence), applied by the kernel
/// in the returned order before the following call.  Sequential schedulers
/// override `next` (one activation per round, via the default adapter);
/// round-based ones (parallel_mgm) override `next_round` directly.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string_view name() const = 0;

  /// The next improving activation, or nullopt when no agent can improve
  /// (convergence).  All randomness must come from `rng`.  Round-based
  /// schedulers that only implement next_round contract-fail here.
  virtual std::optional<Activation> next(DeviationEngine& engine,
                                         const MoveRulePolicy& rule, Rng& rng);

  /// The activations committed this round, in commit order; empty means no
  /// agent can improve (convergence).  Agents are distinct within a round
  /// and every proposal was improving against the round's start profile.
  /// Default: adapts `next` into single-activation rounds, so sequential
  /// scheduler behavior under the round kernel is unchanged move for move.
  virtual std::vector<Activation> next_round(DeviationEngine& engine,
                                             const MoveRulePolicy& rule,
                                             Rng& rng);

  /// Completed activation rounds (order-based schedulers), selection steps
  /// (gain-based ones) or MGM rounds -- the DynamicsResult::rounds value.
  virtual std::uint64_t rounds() const = 0;
};

using MoveRuleFactory =
    std::function<std::unique_ptr<MoveRulePolicy>(const PolicyConfig&)>;
using SchedulerFactory =
    std::function<std::unique_ptr<SchedulerPolicy>(const PolicyConfig&)>;

/// Name -> factory registry for schedulers and move rules.  `instance()`
/// registers the builtins on first use (explicitly, not via static
/// initializers -- same linker rationale as ScenarioRegistry).
class DynamicsPolicyRegistry {
 public:
  static DynamicsPolicyRegistry& instance();

  /// Registers a factory; contract-fails on duplicate names.
  void add_scheduler(std::string name, SchedulerFactory factory);
  void add_rule(std::string name, MoveRuleFactory factory);

  /// Builds a fresh policy; contract-fails on unknown names (with the
  /// known-name list in the message).
  std::unique_ptr<SchedulerPolicy> make_scheduler(
      std::string_view name, const PolicyConfig& config) const;
  std::unique_ptr<MoveRulePolicy> make_rule(std::string_view name,
                                            const PolicyConfig& config) const;

  /// All registered names, sorted.
  std::vector<std::string> scheduler_names() const;
  std::vector<std::string> rule_names() const;

 private:
  std::vector<std::pair<std::string, SchedulerFactory>> schedulers_;
  std::vector<std::pair<std::string, MoveRuleFactory>> rules_;
};

/// Canonical registry names of the builtin enums.
std::string_view scheduler_name(SchedulerKind kind);
std::string_view move_rule_name(MoveRule rule);

/// Builds a builtin policy (enum convenience over the registry).
std::unique_ptr<SchedulerPolicy> make_scheduler(SchedulerKind kind,
                                                const PolicyConfig& config);
std::unique_ptr<MoveRulePolicy> make_move_rule(MoveRule rule,
                                               const PolicyConfig& config);

}  // namespace gncg
