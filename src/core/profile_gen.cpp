#include "core/profile_gen.hpp"

#include <utility>
#include <vector>

#include "graph/union_find.hpp"

namespace gncg {

StrategyProfile random_profile(const Game& game, Rng& rng,
                               double extra_edge_prob) {
  const int n = game.node_count();
  StrategyProfile profile(n);

  // Random spanning structure over purchasable pairs (random edge order +
  // union-find), each edge bought by a uniformly random endpoint.
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (game.can_buy(u, v)) pairs.emplace_back(u, v);
  rng.shuffle(pairs);
  UnionFind dsu(n);
  for (const auto& [u, v] : pairs) {
    if (dsu.unite(u, v)) {
      if (rng.bernoulli(0.5)) profile.add_buy(u, v);
      else profile.add_buy(v, u);
    } else if (rng.bernoulli(extra_edge_prob)) {
      if (rng.bernoulli(0.5)) profile.add_buy(u, v);
      else profile.add_buy(v, u);
    }
  }
  return profile;
}

StrategyProfile recursive_tree_profile(const Game& game, Rng& rng) {
  StrategyProfile profile(game.node_count());
  for (int v = 1; v < game.node_count(); ++v) {
    const int u =
        static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(v)));
    GNCG_CHECK(game.can_buy(v, u),
               "recursive_tree_profile needs purchasable pairs; edge ("
                   << v << "," << u << ") is forbidden");
    profile.add_buy(v, u);
  }
  return profile;
}

StrategyProfile make_start_profile(const Game& game, Rng& rng,
                                   StartProfileKind kind,
                                   double extra_edge_prob) {
  switch (kind) {
    case StartProfileKind::kSpanningRandom:
      return random_profile(game, rng, extra_edge_prob);
    case StartProfileKind::kRecursiveTree:
      return recursive_tree_profile(game, rng);
  }
  GNCG_CHECK(false, "unknown StartProfileKind");
}

}  // namespace gncg
