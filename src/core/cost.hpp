// Agent and social cost evaluation.
//
// cost(u, G(s)) = alpha * w(u, S_u) + sum_v d_{G(s)}(u, v)
// cost(G(s))    = sum_u cost(u, G(s))
//
// Disconnection yields +infinity, exactly as in the paper (d = +inf when no
// path exists).  Social cost is computed by one Dijkstra per agent fanned
// out over the worker pool.
#pragma once

#include <vector>

#include "core/game.hpp"

namespace gncg {

/// Strict-improvement test with a scale-aware epsilon: `candidate` improves
/// on `incumbent` iff it is smaller by more than kImproveEps (relative).
/// Infinite incumbents are improved by any finite candidate.
bool improves(double candidate, double incumbent);

/// The epsilon scale used by `improves` (exposed for tests).
inline constexpr double kImproveEps = 1e-9;

/// alpha * total weight of the edges agent u buys.
double buying_cost(const Game& game, const StrategyProfile& s, int u);

/// Sum of agent u's distances in the built network (kInf if disconnected).
double distance_cost(const Game& game,
                     const std::vector<std::vector<Neighbor>>& adjacency,
                     int u);

/// cost(u, G(s)): buying cost plus distance cost.
double agent_cost(const Game& game, const StrategyProfile& s, int u);

/// Per-agent cost split used in reports.
struct AgentCostBreakdown {
  double edge_cost = 0.0;
  double dist_cost = 0.0;
  double total() const { return edge_cost + dist_cost; }
};

AgentCostBreakdown agent_cost_breakdown(const Game& game,
                                        const StrategyProfile& s, int u);

/// Social cost split: total edge expenditure and total distance cost.
struct SocialCostBreakdown {
  double edge_cost = 0.0;
  double dist_cost = 0.0;
  double total() const { return edge_cost + dist_cost; }
};

/// cost(G(s)) decomposed; parallel over agents.
SocialCostBreakdown social_cost_breakdown(const Game& game,
                                          const StrategyProfile& s);

/// cost(G(s)).
double social_cost(const Game& game, const StrategyProfile& s);

/// Social cost of a bare network (ownership-free edge set): each edge is
/// paid once, alpha * sum(w) + sum of all ordered-pair distances.  This is
/// the objective of the social-optimum problem.
SocialCostBreakdown network_social_cost_breakdown(
    const Game& game, const std::vector<Edge>& network);

double network_social_cost(const Game& game, const std::vector<Edge>& network);

}  // namespace gncg
