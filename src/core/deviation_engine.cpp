#include "core/deviation_engine.hpp"

#include <algorithm>
#include <utility>

#include "core/transposition.hpp"
#include "graph/dijkstra.hpp"
#include "support/arena.hpp"
#include "support/instrument.hpp"
#include "support/parallel.hpp"

namespace gncg {

namespace {

/// SSSP from `source` into `dist` with the calling worker's arena, selecting
/// the bucket-queue kernel when the engine certified an integer bound.
template <class NeighborFn>
void arena_sssp(std::vector<double>& dist, int n, int source, int dial_bound,
                NeighborFn&& neighbor_fn) {
  ScratchArena& arena = worker_arena();
  if (dial_bound > 0) {
    arena.dial().run_into(dist, n, source, dial_bound,
                          std::forward<NeighborFn>(neighbor_fn));
  } else {
    arena.dijkstra().run_into(dist, n, source,
                              std::forward<NeighborFn>(neighbor_fn));
  }
}

/// Distance sum from `source` via the arena's sum-scratch vector (increasing
/// index order, same as summing a run_into result).
template <class NeighborFn>
double arena_sssp_sum(int n, int source, int dial_bound,
                      NeighborFn&& neighbor_fn) {
  std::vector<double>& dist = worker_arena().sum_dist();
  arena_sssp(dist, n, source, dial_bound,
             std::forward<NeighborFn>(neighbor_fn));
  double total = 0.0;
  for (double d : dist) total += d;
  return total;
}

}  // namespace

DeviationEngine::DeviationEngine(const Game& game, StrategyProfile profile)
    : game_(&game), profile_(std::move(profile)) {
  GNCG_CHECK(profile_.node_count() == game.node_count(),
             "profile/game size mismatch");
  rebuild_adjacency();
  caches_.resize(static_cast<std::size_t>(game.node_count()));
  profile_hash_ = zobrist_profile_hash(profile_);
  dial_bound_ = game.host().dial_weight_bound();
}

void DeviationEngine::rebuild_adjacency() {
  // Two passes over the profile in the exact traversal order of
  // build_adjacency: a doubly-owned edge is emitted once, by the
  // smaller-index owner, so per-node entry order matches the vector-of-
  // vectors reference builder entry for entry.
  const int n = game_->node_count();
  adjacency_.begin_rebuild(n);
  for (int u = 0; u < n; ++u) {
    profile_.strategy(u).for_each([&](int v) {
      if (v < u && profile_.buys(v, u)) return;
      adjacency_.count_half(u);
      adjacency_.count_half(v);
    });
  }
  adjacency_.finish_counts();
  for (int u = 0; u < n; ++u) {
    profile_.strategy(u).for_each([&](int v) {
      if (v < u && profile_.buys(v, u)) return;
      const double w = game_->weight(u, v);
      adjacency_.fill_half(u, v, w);
      adjacency_.fill_half(v, u, w);
    });
  }
}

void DeviationEngine::link(int a, int b) {
  adjacency_.link(a, b, game_->weight(a, b));
}

void DeviationEngine::unlink(int a, int b) { adjacency_.unlink(a, b); }

void DeviationEngine::add_buy(int u, int v) {
  GNCG_CHECK(game_->can_buy(u, v), "engine add_buy of a forbidden edge");
  if (profile_.buys(u, v)) return;
  const bool existed = profile_.has_edge(u, v);
  profile_.add_buy(u, v);
  profile_hash_ ^= zobrist_buy_key(u, v);
  // Double-ownership adds do not change the built topology: the adjacency
  // entry already exists and every distance cache stays valid.
  if (!existed) {
    link(u, v);
    ++epoch_;
    GNCG_COUNT(kEngineEpochBumps);
  }
}

void DeviationEngine::remove_buy(int u, int v) {
  if (!profile_.buys(u, v)) return;
  profile_.remove_buy(u, v);
  profile_hash_ ^= zobrist_buy_key(u, v);
  if (!profile_.has_edge(u, v)) {
    unlink(u, v);
    ++epoch_;
    GNCG_COUNT(kEngineEpochBumps);
  }
}

void DeviationEngine::set_strategy(int u, NodeSet strategy) {
  GNCG_CHECK(strategy.universe() == game_->node_count(),
             "strategy universe mismatch");
  GNCG_CHECK(!strategy.contains(u), "strategy may not contain the agent");
  const NodeSet old = profile_.strategy(u);
  old.for_each([&](int v) {
    if (!strategy.contains(v)) remove_buy(u, v);
  });
  strategy.for_each([&](int v) {
    if (!old.contains(v)) add_buy(u, v);
  });
}

bool DeviationEngine::replace_strategy_edges(int u, const NodeSet& next) {
  GNCG_CHECK(next.universe() == game_->node_count(),
             "strategy universe mismatch");
  GNCG_CHECK(!next.contains(u), "strategy may not contain the agent");
  bool changed = false;
  const NodeSet old = profile_.strategy(u);
  old.for_each([&](int v) {
    if (next.contains(v)) return;
    profile_.remove_buy(u, v);
    profile_hash_ ^= zobrist_buy_key(u, v);
    if (!profile_.has_edge(u, v)) {
      unlink(u, v);
      changed = true;
    }
  });
  next.for_each([&](int v) {
    if (old.contains(v)) return;
    GNCG_CHECK(game_->can_buy(u, v), "engine add_buy of a forbidden edge");
    const bool existed = profile_.has_edge(u, v);
    profile_.add_buy(u, v);
    profile_hash_ ^= zobrist_buy_key(u, v);
    if (!existed) {
      link(u, v);
      changed = true;
    }
  });
  return changed;
}

void DeviationEngine::set_strategies(
    const std::vector<std::pair<int, NodeSet>>& moves) {
  for (std::size_t i = 0; i < moves.size(); ++i)
    for (std::size_t j = i + 1; j < moves.size(); ++j)
      GNCG_CHECK(moves[i].first != moves[j].first,
                 "set_strategies batch repeats agent " << moves[i].first);
  bool changed = false;
  for (const auto& [u, next] : moves)
    changed = replace_strategy_edges(u, next) || changed;
  if (changed) {
    ++epoch_;
    GNCG_COUNT(kEngineEpochBumps);
  }
}

void DeviationEngine::move_conflict_set(int u, const NodeSet& next,
                                        std::vector<int>& out) const {
  out.clear();
  out.push_back(u);
  profile_.strategy(u).for_each([&](int v) { out.push_back(v); });
  next.for_each([&](int v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void DeviationEngine::apply_move(int u, const SingleMove& move) {
  switch (move.type) {
    case MoveType::kNone:
      return;
    case MoveType::kAdd:
      add_buy(u, move.add);
      return;
    case MoveType::kDelete:
      remove_buy(u, move.remove);
      return;
    case MoveType::kSwap:
      remove_buy(u, move.remove);
      add_buy(u, move.add);
      return;
  }
}

void DeviationEngine::set_profile(StrategyProfile profile) {
  GNCG_CHECK(profile.node_count() == game_->node_count(),
             "profile/game size mismatch");
  profile_ = std::move(profile);
  rebuild_adjacency();
  profile_hash_ = zobrist_profile_hash(profile_);
  ++epoch_;
  GNCG_COUNT(kEngineEpochBumps);
}

const DeviationEngine::AgentCache& DeviationEngine::ensure(int u) {
  AgentCache& cache = caches_[idx(u)];
  if (cache.epoch != epoch_) {
    GNCG_COUNT(kEngineCacheMisses);
    arena_sssp(cache.dist, game_->node_count(), u, dial_bound_,
               [&](int y, auto&& visit) {
                 for (const auto& nb : adjacency_.neighbors(y))
                   visit(nb.to, nb.weight);
               });
    double total = 0.0;
    for (double d : cache.dist) total += d;
    cache.dist_sum = total;
    cache.epoch = epoch_;
  } else {
    GNCG_COUNT(kEngineCacheHits);
  }
  return cache;
}

const DeviationEngine::AgentCache& DeviationEngine::warmed(int u) const {
  const AgentCache& cache = caches_[idx(u)];
  GNCG_CHECK(cache.epoch == epoch_,
             "distance cache of agent " << u
                                        << " is stale; call warm_distances()");
  return cache;
}

void DeviationEngine::warm_distances() {
  const int n = game_->node_count();
  parallel_for(0, static_cast<std::size_t>(n),
               [&](std::size_t u) { ensure(static_cast<int>(u)); });
}

const std::vector<double>& DeviationEngine::distances(int u) {
  return ensure(u).dist;
}

double DeviationEngine::distance_cost(int u) { return ensure(u).dist_sum; }

double DeviationEngine::distance_cost_warm(int u) const {
  return warmed(u).dist_sum;
}

double DeviationEngine::strategy_weight(int u, int remove, int add) const {
  double total = 0.0;
  bool added = add < 0;
  const double add_weight = add >= 0 ? game_->weight(u, add) : 0.0;
  profile_.strategy(u).for_each([&](int v) {
    if (v == remove) return;
    if (!added && add < v) {
      total += add_weight;
      added = true;
    }
    total += game_->weight(u, v);
  });
  if (!added) total += add_weight;
  return total;
}

double DeviationEngine::buying_cost(int u) const {
  return game_->alpha() * strategy_weight(u, -1, -1);
}

double DeviationEngine::agent_cost(int u) {
  return buying_cost(u) + distance_cost(u);
}

double DeviationEngine::agent_cost_warm(int u) const {
  return buying_cost(u) + distance_cost_warm(u);
}

double DeviationEngine::addition_distance_cost(int u, int x) {
  ensure(u);
  ensure(x);
  return addition_distance_cost_warm(u, x);
}

double DeviationEngine::addition_distance_cost_warm(int u, int x) const {
  const auto& du = warmed(u).dist;
  const auto& dx = warmed(x).dist;
  const double w = game_->weight(u, x);
  double total = 0.0;
  for (std::size_t t = 0; t < du.size(); ++t)
    total += std::min(du[t], w + dx[t]);
  return total;
}

bool DeviationEngine::mark_reachable_without(int u, int v,
                                             std::vector<char>& mark) const {
  const int n = game_->node_count();
  mark.assign(static_cast<std::size_t>(n), 0);
  std::vector<int>& stack = worker_arena().dfs_stack();
  stack.clear();
  mark[idx(u)] = 1;
  stack.push_back(u);
  while (!stack.empty()) {
    const int y = stack.back();
    stack.pop_back();
    for (const auto& nb : adjacency_.neighbors(y)) {
      if ((y == u && nb.to == v) || (y == v && nb.to == u)) continue;
      if (!mark[idx(nb.to)]) {
        mark[idx(nb.to)] = 1;
        stack.push_back(nb.to);
      }
    }
  }
  return mark[idx(v)] != 0;
}

double DeviationEngine::bridge_swap_distance_cost(
    int u, int x, const std::vector<char>& u_side) const {
  // Deleting bridge (u,v) splits the network into the side reachable from u
  // (u_side) and the rest; distances within each side are untouched, and
  // after adding (u,x) every far-side node t is reached as u -> x ~> t.
  const auto& du = warmed(u).dist;
  const auto& dx = warmed(x).dist;
  const double w = game_->weight(u, x);
  double total = 0.0;
  for (std::size_t t = 0; t < du.size(); ++t)
    total += u_side[t] != 0 ? du[t] : w + dx[t];
  return total;
}

double DeviationEngine::masked_distance_cost(int u, int remove,
                                             int add) const {
  const double add_weight = add >= 0 ? game_->weight(u, add) : 0.0;
  return arena_sssp_sum(
      game_->node_count(), u, dial_bound_, [&](int y, auto&& visit) {
        for (const auto& nb : adjacency_.neighbors(y)) {
          if ((y == u && nb.to == remove) || (y == remove && nb.to == u))
            continue;
          visit(nb.to, nb.weight);
        }
        if (add >= 0) {
          if (y == u) visit(add, add_weight);
          else if (y == add) visit(u, add_weight);
        }
      });
}

double DeviationEngine::cost_of_strategy(int u, const NodeSet& targets) const {
  double edge_weight = 0.0;
  targets.for_each([&](int v) { edge_weight += game_->weight(u, v); });
  const double dist = arena_sssp_sum(
      game_->node_count(), u, dial_bound_, [&](int y, auto&& visit) {
        for (const auto& nb : adjacency_.neighbors(y)) {
          // Mask u's sole-owned edges: the environment is everyone else's.
          if (y == u && solely_owned(u, nb.to)) continue;
          if (nb.to == u && solely_owned(u, y)) continue;
          visit(nb.to, nb.weight);
        }
        if (y == u) {
          targets.for_each([&](int v) { visit(v, game_->weight(u, v)); });
        } else if (targets.contains(y)) {
          visit(u, game_->weight(u, y));
        }
      });
  return game_->alpha() * edge_weight + dist;
}

SingleMoveResult DeviationEngine::scan_moves(int u, const ScanFlags& flags,
                                             bool early_exit) const {
  const int n = game_->node_count();
  const double alpha = game_->alpha();
  const AgentCache& cu = warmed(u);

  SingleMoveResult result;
  result.current_cost = alpha * strategy_weight(u, -1, -1) + cu.dist_sum;
  result.cost = result.current_cost;

  const auto consider = [&](MoveType type, int remove, int add, double cost) {
    if (improves(cost, result.cost)) {
      result.cost = cost;
      result.move = {type, remove, add};
      result.improved = true;
    }
  };
  // Delta evaluation of an addition from cached vectors; the u-and-x loop
  // below never passes an x whose built edge already exists, so the warmed
  // caches of u and x fully determine the new distances.
  const auto addition_cost = [&](int x) {
    return addition_distance_cost_warm(u, x);
  };

  if (flags.adds) {
    for (int x = 0; x < n; ++x) {
      if (x == u || !game_->can_buy(u, x) || profile_.has_edge(u, x)) continue;
      consider(MoveType::kAdd, -1, x,
               alpha * strategy_weight(u, -1, x) + addition_cost(x));
      if (early_exit && result.improved) return result;
    }
  }

  if (flags.deletes || flags.swaps) {
    // Arena-backed scratch: the owned-target list replaces a per-scan
    // to_vector() allocation, the side-mark buffer a per-scan vector.  Both
    // belong to the calling worker, so parallel warm scans never collide.
    ScratchArena& arena = worker_arena();
    std::vector<int>& owned = arena.owned_targets();
    owned.clear();
    profile_.strategy(u).for_each([&](int v) { owned.push_back(v); });
    std::vector<char>& u_side = arena.side_mark();
    for (int v : owned) {
      // If v buys the edge too, dropping u's payment keeps the topology.
      const bool doubly = profile_.buys(v, u);
      const bool bridge = !doubly && !mark_reachable_without(u, v, u_side);

      if (flags.deletes) {
        if (doubly) {
          consider(MoveType::kDelete, v, -1,
                   alpha * strategy_weight(u, v, -1) + cu.dist_sum);
        } else if (!bridge) {
          // Removing an edge cannot shrink any distance, so the current
          // distance sum is an admissible bound: run Dijkstra only when the
          // alpha saving alone could beat the incumbent.
          const double edge_cost = alpha * strategy_weight(u, v, -1);
          if (improves(edge_cost + cu.dist_sum, result.cost)) {
            consider(MoveType::kDelete, v, -1,
                     edge_cost + masked_distance_cost(u, v, -1));
          }
        }
        // Deleting a bridge disconnects u: cost kInf, never improving.
        if (early_exit && result.improved) return result;
      }

      if (flags.swaps) {
        for (int x = 0; x < n; ++x) {
          if (x == u || x == v || !game_->can_buy(u, x)) continue;
          // Swapping to an already-present edge is dominated by the plain
          // deletion, so such x are skipped when deletions are in the move
          // set; swap-only scans must consider them (see scan semantics in
          // best_response.cpp).
          if (flags.deletes && profile_.has_edge(u, x)) continue;
          if (!flags.deletes && profile_.strategy(u).contains(x)) continue;
          const bool duplicate = profile_.has_edge(u, x);
          const double edge_cost = alpha * strategy_weight(u, v, x);
          double cost;
          if (doubly) {
            // The deleted edge stays built; the swap is a pure addition.
            cost = edge_cost + (duplicate ? cu.dist_sum : addition_cost(x));
          } else if (bridge) {
            if (u_side[idx(x)] != 0) continue;  // still disconnected: kInf
            cost = edge_cost + bridge_swap_distance_cost(u, x, u_side);
          } else {
            // Distances in G - (u,v) + (u,x) are bounded below by distances
            // in G + (u,x) (deleting only hurts), which the cached vectors
            // evaluate in O(n); Dijkstra runs only past that bound.
            const double dist_bound =
                duplicate ? cu.dist_sum : addition_cost(x);
            if (!improves(edge_cost + dist_bound, result.cost)) continue;
            cost = edge_cost + masked_distance_cost(u, v, x);
          }
          consider(MoveType::kSwap, v, x, cost);
          if (early_exit && result.improved) return result;
        }
      }
    }
  }
  return result;
}

SingleMoveResult DeviationEngine::best_single_move(int u) {
  warm_distances();
  return scan_moves(u, {true, true, true}, false);
}

SingleMoveResult DeviationEngine::best_addition(int u) {
  warm_distances();
  return scan_moves(u, {true, false, false}, false);
}

SingleMoveResult DeviationEngine::best_swap(int u) {
  warm_distances();
  return scan_moves(u, {false, false, true}, false);
}

bool DeviationEngine::has_improving_single_move(int u) {
  warm_distances();
  return scan_moves(u, {true, true, true}, true).improved;
}

bool DeviationEngine::has_improving_addition(int u) {
  warm_distances();
  return scan_moves(u, {true, false, false}, true).improved;
}

bool DeviationEngine::has_improving_swap(int u) {
  warm_distances();
  return scan_moves(u, {false, false, true}, true).improved;
}

SingleMoveResult DeviationEngine::best_single_move_warm(int u) const {
  return scan_moves(u, {true, true, true}, false);
}

SingleMoveResult DeviationEngine::best_addition_warm(int u) const {
  return scan_moves(u, {true, false, false}, false);
}

SingleMoveResult DeviationEngine::best_swap_warm(int u) const {
  return scan_moves(u, {false, false, true}, false);
}

}  // namespace gncg
