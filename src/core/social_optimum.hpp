// Social optimum computation.
//
// The social optimum OPT minimizes alpha * sum(w(E)) + sum_u d_G(u, V) over
// all subgraphs of the host -- the game-theoretic analogue of the classical
// Network Design Problem, which the paper strongly suspects is NP-hard for
// all variants except two tractable islands:
//   * Theorem 6 / Algorithm 1: for the 1-2-GNCG with alpha <= 1, OPT is the
//     complete graph minus every 2-edge that closes a 1-1-2 triangle.
//   * Corollary 3: for the T-GNCG, OPT is the metric-defining tree itself.
// Accordingly this module offers: the two polynomial special cases, an exact
// exponential enumerator for small n (parallel branch-pruned subset scan),
// a greedy/local-search heuristic for larger n, and an admissible lower
// bound (alpha * MST + host-closure distance floor) used when exactness is
// out of reach.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "core/game.hpp"

namespace gncg {

/// An ownership-free candidate network with its social cost.
struct NetworkDesign {
  std::vector<Edge> edges;
  SocialCostBreakdown cost;
};

/// Options for the exact optimum enumeration.
struct ExactOptimumOptions {
  /// Hard cap on 2^(#purchasable pairs); contract-fails beyond it.
  std::uint64_t max_subsets = std::uint64_t{1} << 24;
};

/// Exact social optimum by parallel enumeration of all edge subsets with
/// admissible pruning.  Practical to ~24 purchasable pairs (n = 7 complete).
NetworkDesign exact_social_optimum(const Game& game,
                                   const ExactOptimumOptions& options = {});

/// Algorithm 1 of the paper: start from the complete graph and delete every
/// 2-edge participating in a 1-1-2 triangle.  Contract-checks a 1-2 host.
/// Optimal for alpha <= 1 (Theorem 6).
NetworkDesign algorithm1_one_two(const Game& game);

/// The metric-defining tree as a network (requires tree provenance).
/// Both OPT and an NE of the T-GNCG (Corollary 3).
NetworkDesign tree_optimum(const Game& game);

/// Minimum spanning tree of the host weights as a network design.
NetworkDesign mst_network(const Game& game);

/// Heuristic optimum: MST seed, then best-improvement single-edge toggles
/// (add or remove) until a local optimum or the iteration budget.
NetworkDesign local_search_optimum(const Game& game,
                                   std::uint64_t max_iterations = 10000);

/// Admissible lower bound on the optimum social cost:
/// alpha * weight(MST) + sum of all ordered host-closure distances.
double social_optimum_lower_bound(const Game& game);

}  // namespace gncg
