#include "core/equilibrium.hpp"

#include <algorithm>

#include "core/deviation_engine.hpp"

namespace gncg {

namespace {

/// Ratio current/best with the 0/0 -> 1 and x/0 -> inf conventions.
///
/// Infinite best: the best-response search ranges over every strategy
/// including the current one, so best <= current always holds and an
/// infinite best implies an infinite current cost (the host cannot connect
/// the agent at all).  inf/inf is taken as 1: the agent is at its optimum
/// among all-infinite options and cannot improve, so it contributes no
/// approximation slack.  A finite current with infinite best would indicate
/// a solver bug; the convention still reports 1 (no improvement possible).
double cost_ratio(double current, double best) {
  if (!(best < kInf)) return 1.0;
  if (best == 0.0) return current == 0.0 ? 1.0 : kInf;
  if (!(current < kInf)) return kInf;
  return current / best;
}

}  // namespace

bool is_add_only_equilibrium(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  for (int u = 0; u < game.node_count(); ++u)
    if (engine.has_improving_addition(u)) return false;
  return true;
}

bool is_greedy_equilibrium(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  for (int u = 0; u < game.node_count(); ++u)
    if (engine.has_improving_single_move(u)) return false;
  return true;
}

bool is_swap_equilibrium(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  for (int u = 0; u < game.node_count(); ++u)
    if (engine.has_improving_swap(u)) return false;
  return true;
}

bool is_nash_equilibrium(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  return is_nash_equilibrium(engine);
}

bool is_nash_equilibrium(DeviationEngine& engine) {
  for (int u = 0; u < engine.game().node_count(); ++u) {
    BestResponseOptions options;
    options.incumbent = engine.agent_cost(u);
    options.first_improvement = true;
    if (exact_best_response(engine, u, options).improved) return false;
  }
  return true;
}

double nash_approx_factor(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  double beta = 1.0;
  for (int u = 0; u < game.node_count(); ++u) {
    const double current = engine.agent_cost(u);
    const auto br = exact_best_response(engine, u);
    beta = std::max(beta, cost_ratio(current, br.cost));
  }
  return beta;
}

double greedy_approx_factor(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  double beta = 1.0;
  for (int u = 0; u < game.node_count(); ++u) {
    const auto move = engine.best_single_move(u);
    beta = std::max(beta, cost_ratio(move.current_cost, move.cost));
  }
  return beta;
}

AgentEquilibriumReport agent_equilibrium_report(const Game& game,
                                                const StrategyProfile& s,
                                                int u) {
  DeviationEngine engine(game, s);
  AgentEquilibriumReport report;
  report.current_cost = engine.agent_cost(u);
  const auto br = exact_best_response(engine, u);
  report.best_response_cost = br.cost;
  report.best_response_improves = improves(br.cost, report.current_cost);
  const auto move = engine.best_single_move(u);
  report.best_single_move_cost = move.cost;
  report.single_move_improves = move.improved;
  return report;
}

}  // namespace gncg
