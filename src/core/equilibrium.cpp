#include "core/equilibrium.hpp"

#include <algorithm>

namespace gncg {

namespace {

/// Ratio current/best with the 0/0 -> 1 and x/0 -> inf conventions.
double cost_ratio(double current, double best) {
  if (!(best < kInf)) return current < kInf ? 1.0 : 1.0;  // both stuck at inf
  if (best == 0.0) return current == 0.0 ? 1.0 : kInf;
  if (!(current < kInf)) return kInf;
  return current / best;
}

}  // namespace

bool is_add_only_equilibrium(const Game& game, const StrategyProfile& s) {
  for (int u = 0; u < game.node_count(); ++u)
    if (best_addition(game, s, u).improved) return false;
  return true;
}

bool is_greedy_equilibrium(const Game& game, const StrategyProfile& s) {
  for (int u = 0; u < game.node_count(); ++u)
    if (best_single_move(game, s, u).improved) return false;
  return true;
}

bool is_swap_equilibrium(const Game& game, const StrategyProfile& s) {
  for (int u = 0; u < game.node_count(); ++u)
    if (best_swap(game, s, u).improved) return false;
  return true;
}

bool is_nash_equilibrium(const Game& game, const StrategyProfile& s) {
  for (int u = 0; u < game.node_count(); ++u)
    if (has_improving_deviation(game, s, u)) return false;
  return true;
}

double nash_approx_factor(const Game& game, const StrategyProfile& s) {
  double beta = 1.0;
  for (int u = 0; u < game.node_count(); ++u) {
    const double current = agent_cost(game, s, u);
    const auto br = exact_best_response(game, s, u);
    beta = std::max(beta, cost_ratio(current, br.cost));
  }
  return beta;
}

double greedy_approx_factor(const Game& game, const StrategyProfile& s) {
  double beta = 1.0;
  for (int u = 0; u < game.node_count(); ++u) {
    const auto move = best_single_move(game, s, u);
    beta = std::max(beta, cost_ratio(move.current_cost, move.cost));
  }
  return beta;
}

AgentEquilibriumReport agent_equilibrium_report(const Game& game,
                                                const StrategyProfile& s,
                                                int u) {
  AgentEquilibriumReport report;
  report.current_cost = agent_cost(game, s, u);
  const auto br = exact_best_response(game, s, u);
  report.best_response_cost = br.cost;
  report.best_response_improves = improves(br.cost, report.current_cost);
  const auto move = best_single_move(game, s, u);
  report.best_single_move_cost = move.cost;
  report.single_move_improves = move.improved;
  return report;
}

}  // namespace gncg
