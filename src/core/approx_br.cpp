#include "core/approx_br.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/br_search.hpp"
#include "core/cost.hpp"
#include "core/deviation_engine.hpp"
#include "support/arena.hpp"
#include "support/instrument.hpp"

namespace gncg {

namespace {

constexpr int kDefaultLadderBudget = 16;

double dist_sum(const std::vector<double>& dist) {
  double total = 0.0;
  for (double d : dist) total += d;
  return total;
}

/// The PR 5 per-node admissible floor (SumCostModel::tight_floor in
/// core/br_search.cpp), re-stated here as the escape bound's distance term:
/// in any strategy whose new edges all weigh >= w_next, node t sits at
/// distance >= max(d_H(u,t), min(d_base(t), w_next)).
double tight_floor_sum(const std::vector<double>& host_row,
                       const std::vector<double>& dist, double w_next) {
  double total = 0.0;
  for (std::size_t t = 0; t < dist.size(); ++t)
    total += std::max(host_row[t], std::min(dist[t], w_next));
  return total;
}

double beta_of(double cost, double lb) {
  if (!(cost < kInf)) return lb < kInf ? kInf : 1.0;
  if (cost <= 0.0) return 1.0;  // cost is 0: nothing can be cheaper
  if (lb <= 0.0) return kInf;   // vacuous bound, nothing certified
  return cost / lb;
}

ApproxBrResult ladder_over(const AgentEnvironment& env,
                           const ApproxBrOptions& options) {
  const Game& game = env.game();
  const int n = game.node_count();
  const int u = env.agent();

  ScratchArena& arena = worker_arena();
  ScratchArena::LadderScratch& scratch = arena.ladder();

  int budget = options.budget > 0 ? options.budget : kDefaultLadderBudget;
  budget = std::min(budget, n - 1);
  budget = std::max(budget, 0);

  // Candidate shortlist from the spatial oracle, (weight, id)-sorted.
  std::vector<int>& cand = scratch.cand;
  game.host().candidate_targets(u, budget, cand);
  GNCG_COUNT(kLadderCalls);
  GNCG_COUNT_N(kLadderCandidateBudget, static_cast<std::uint64_t>(budget));
  GNCG_COUNT_N(kLadderCandidates, cand.size());

  // One Dijkstra for the whole ladder: u's distances in the bare
  // environment.  Same kernel selection as br_search so distances match
  // bitwise.
  std::vector<double>& base_dist = scratch.base_dist;
  {
    const int dial_bound = game.host().dial_weight_bound();
    const auto environment_edges = [&](int x, auto&& visit) {
      env.for_neighbors(x, visit);
    };
    if (dial_bound > 0) {
      arena.dial().run_into(base_dist, n, u, dial_bound, environment_edges);
    } else {
      arena.dijkstra().run_into(base_dist, n, u, environment_edges);
    }
  }

  // Host-closure row (per-node floor) and per-node buy weights (canonical
  // edge-sum evaluation), as in br_search.
  std::vector<double>& host_row = scratch.host_row;
  std::vector<double>& weight_row = scratch.weight_row;
  host_row.assign(static_cast<std::size_t>(n), 0.0);
  weight_row.assign(static_cast<std::size_t>(n), kInf);
  for (int v = 0; v < n; ++v)
    host_row[static_cast<std::size_t>(v)] = game.host_distance(u, v);

  std::vector<double>& cand_w = scratch.cand_w;
  std::vector<char>& in_cand = scratch.in_cand;
  in_cand.assign(static_cast<std::size_t>(n), 0);
  cand_w.clear();
  cand_w.reserve(cand.size());
  for (int v : cand) {
    const double w = game.weight(u, v);
    cand_w.push_back(w);
    weight_row[static_cast<std::size_t>(v)] = w;
    in_cand[static_cast<std::size_t>(v)] = 1;
  }

  // One O(n) scan for the certification weights: the cheapest purchasable
  // edge overall (w_min_all, floor for *any* non-empty strategy) and the
  // cheapest purchasable edge outside the shortlist (w_out_min, entry fee
  // of every escaping strategy).
  double w_min_all = kInf;
  double w_out_min = kInf;
  for (int v = 0; v < n; ++v) {
    if (v == u) continue;
    const double w = game.weight(u, v);
    if (!(w < kInf)) continue;
    w_min_all = std::min(w_min_all, w);
    if (!in_cand[static_cast<std::size_t>(v)])
      w_out_min = std::min(w_out_min, w);
  }

  ApproxBrResult result;
  result.candidates = static_cast<int>(cand.size());
  result.strategy = NodeSet(n);
  const double empty_cost = dist_sum(base_dist);
  result.cost = empty_cost;
  result.evaluations = 1;

  // --- tier 1: greedy edge additions over the shortlist ------------------
  //
  // Probe each unused candidate with a checkpointed decrease-only repair,
  // commit the best strictly-improving addition, repeat until none.  At
  // most |C| rounds of |C| probes; each probe is one bounded repair plus an
  // O(n) aggregation.
  IncrementalSssp& sssp = scratch.sssp;
  sssp.reset(base_dist);
  NodeSet current(n);
  double current_cost = empty_cost;
  const auto environment_edges = [&](int x, auto&& visit) {
    env.for_neighbors(x, visit);
  };
  for (;;) {
    int best_i = -1;
    double best_cost = current_cost;
    for (std::size_t i = 0; i < cand.size(); ++i) {
      const int v = cand[i];
      if (current.contains(v)) continue;
      const IncrementalSssp::Checkpoint mark = sssp.checkpoint();
      sssp.relax_insert(v, cand_w[i], environment_edges);
      // Canonical evaluation: re-sum the edge term in increasing target
      // order (br_search's contract), then the maintained distance vector.
      current.insert(v);
      double edge_sum = 0.0;
      current.for_each(
          [&](int t) { edge_sum += weight_row[static_cast<std::size_t>(t)]; });
      current.erase(v);
      const double cost = game.alpha() * edge_sum + dist_sum(sssp.dist());
      ++result.evaluations;
      if (improves(cost, best_cost)) {
        best_cost = cost;
        best_i = static_cast<int>(i);
      }
      sssp.rollback(mark);
    }
    if (best_i < 0) break;
    const int v = cand[static_cast<std::size_t>(best_i)];
    current.insert(v);
    sssp.relax_insert(v, cand_w[static_cast<std::size_t>(best_i)],
                      environment_edges);
    current_cost = best_cost;
  }
  if (improves(current_cost, result.cost)) {
    result.cost = current_cost;
    result.strategy = current;
  }
  result.tier = 1;

  // Tier-1 certificate: any non-empty strategy pays at least the cheapest
  // edge plus the w_min_all floor; the empty strategy costs empty_cost.
  const double floor_any =
      w_min_all < kInf
          ? game.alpha() * w_min_all +
                tight_floor_sum(host_row, base_dist, w_min_all)
          : kInf;
  result.lower_bound = std::min(empty_cost, floor_any);
  result.beta = beta_of(result.cost, result.lower_bound);
  result.exact = !improves(result.lower_bound, result.cost);
  if (result.exact) result.beta = 1.0;

  const bool tier1_suffices =
      result.exact ||
      (options.beta_target > 0.0 && result.beta <= options.beta_target);
  if (!tier1_suffices) {
    // --- tier 2: exact search restricted to the shortlist ----------------
    BestResponseOptions restricted;
    restricted.incumbent = result.cost;
    restricted.restrict_targets = &cand;
    const BestResponseResult br = br_search_sum(env, restricted);
    result.evaluations += br.evaluations;
    if (br.improved) {
      result.cost = br.cost;
      result.strategy = br.strategy;
    }
    result.tier = 2;

    // Escape bound: every strategy buying outside the shortlist pays at
    // least alpha * w_out_min in edges and the w_min_all distance floor.
    // Inside the shortlist, result.cost is already the exact minimum.
    const double escape_lb =
        w_out_min < kInf
            ? game.alpha() * w_out_min +
                  tight_floor_sum(host_row, base_dist, w_min_all)
            : kInf;
    result.exact = !improves(escape_lb, result.cost);
    result.lower_bound = std::min(result.cost, escape_lb);
    result.beta = result.exact ? 1.0 : beta_of(result.cost, result.lower_bound);
    GNCG_IF_INSTRUMENT(if (result.exact) GNCG_COUNT(kLadderEscapeExact);)
  }

  // --- tier 3: unrestricted exact search, on demand ---------------------
  const bool want_exact =
      options.allow_exact && !result.exact &&
      (options.beta_target <= 0.0 || result.beta > options.beta_target);
  if (want_exact) {
    BestResponseOptions full;
    full.incumbent = result.cost;
    const BestResponseResult br = br_search_sum(env, full);
    result.evaluations += br.evaluations;
    if (br.improved) {
      result.cost = br.cost;
      result.strategy = br.strategy;
    }
    result.tier = 3;
    result.exact = true;
    result.lower_bound = result.cost;
    result.beta = 1.0;
  }

  result.improved = improves(result.cost, options.incumbent);
  GNCG_IF_INSTRUMENT(switch (result.tier) {
    case 1: GNCG_COUNT(kLadderTier1Final); break;
    case 2: GNCG_COUNT(kLadderTier2Final); break;
    default: GNCG_COUNT(kLadderTier3Final); break;
  })
  return result;
}

}  // namespace

ApproxBrResult approx_best_response_ladder(const Game& game,
                                           const StrategyProfile& s, int u,
                                           const ApproxBrOptions& options) {
  const AgentEnvironment env(game, s, u);
  return ladder_over(env, options);
}

ApproxBrResult approx_best_response_ladder(const DeviationEngine& engine,
                                           int u,
                                           const ApproxBrOptions& options) {
  const AgentEnvironment env(engine, u);
  return ladder_over(env, options);
}

}  // namespace gncg
