#include "core/approx_br.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/br_search.hpp"
#include "core/cost.hpp"
#include "core/deviation_engine.hpp"
#include "metric/host_backend.hpp"
#include "metric/spatial_index.hpp"
#include "support/arena.hpp"
#include "support/instrument.hpp"

namespace gncg {

namespace {

constexpr int kDefaultLadderBudget = 16;

double dist_sum(const std::vector<double>& dist) {
  double total = 0.0;
  for (double d : dist) total += d;
  return total;
}

/// The PR 5 per-node admissible floor (SumCostModel::tight_floor in
/// core/br_search.cpp), re-stated here as the escape bound's distance term:
/// in any strategy whose new edges all weigh >= w_next, node t sits at
/// distance >= max(d_H(u,t), min(d_base(t), w_next)).
double tight_floor_sum(const std::vector<double>& host_row,
                       const std::vector<double>& dist, double w_next) {
  double total = 0.0;
  for (std::size_t t = 0; t < dist.size(); ++t)
    total += std::max(host_row[t], std::min(dist[t], w_next));
  return total;
}

/// Current-network-aware distance floor (satellite of PR 9).  `cur` is u's
/// SSSP row in the *current built network* and G = max_x (d_cur(x) - w(u,x))
/// over purchasable x.  In any deviation, a path to t either
///  * avoids new edges entirely: length >= d_base(t) (first min arm), or
///  * enters through some new edge (u,x): length >= w(u,x) >= w_min, and
///    also >= (d_cur(x) - G) + d_env(x,t) >= d_cur(x) + d_cur(x,t) - G
///    >= d_cur(t) - G (environment edges all exist in the current network,
///    then the triangle inequality of its shortest-path metric).
/// Hence d_S(t) >= max(host(t), min(d_base(t), max(w_min, d_cur(t) - G))),
/// valid for every strategy and every sign of G.  On near-equilibrium
/// profiles d_cur(t) - G is usually far above w_min, which is what tightens
/// the per-agent eps certificates.
double current_floor_sum(const std::vector<double>& host_row,
                         const std::vector<double>& base,
                         const std::vector<double>& cur, double w_min,
                         double g_bound) {
  double total = 0.0;
  for (std::size_t t = 0; t < base.size(); ++t) {
    const double through_new =
        cur[t] < kInf ? std::max(w_min, cur[t] - g_bound) : w_min;
    total += std::max(host_row[t], std::min(base[t], through_new));
  }
  return total;
}

double beta_of(double cost, double lb) {
  if (!(cost < kInf)) return lb < kInf ? kInf : 1.0;
  if (cost <= 0.0) return 1.0;  // cost is 0: nothing can be cheaper
  if (lb <= 0.0) return kInf;   // vacuous bound, nothing certified
  return cost / lb;
}

ApproxBrResult ladder_over(const AgentEnvironment& env,
                           const ApproxBrOptions& options) {
  const Game& game = env.game();
  const int n = game.node_count();
  const int u = env.agent();

  ScratchArena& arena = worker_arena();
  ScratchArena::LadderScratch& scratch = arena.ladder();

  int budget = options.budget > 0 ? options.budget : kDefaultLadderBudget;
  budget = std::min(budget, n - 1);
  budget = std::max(budget, 0);

  // Candidate shortlist from the spatial oracle, (weight, id)-sorted.
  std::vector<int>& cand = scratch.cand;
  game.host().candidate_targets(u, budget, cand);
  GNCG_COUNT(kLadderCalls);
  GNCG_COUNT_N(kLadderCandidateBudget, static_cast<std::uint64_t>(budget));
  GNCG_COUNT_N(kLadderCandidates, cand.size());

  // One Dijkstra for the whole ladder: u's distances in the bare
  // environment.  Same kernel selection as br_search so distances match
  // bitwise.
  std::vector<double>& base_dist = scratch.base_dist;
  {
    const int dial_bound = game.host().dial_weight_bound();
    const auto environment_edges = [&](int x, auto&& visit) {
      env.for_neighbors(x, visit);
    };
    if (dial_bound > 0) {
      arena.dial().run_into(base_dist, n, u, dial_bound, environment_edges);
    } else {
      arena.dijkstra().run_into(base_dist, n, u, environment_edges);
    }
  }

  // Host-closure row (per-node floor) and per-node buy weights (canonical
  // edge-sum evaluation), as in br_search.
  std::vector<double>& host_row = scratch.host_row;
  std::vector<double>& weight_row = scratch.weight_row;
  host_row.assign(static_cast<std::size_t>(n), 0.0);
  weight_row.assign(static_cast<std::size_t>(n), kInf);
  for (int v = 0; v < n; ++v)
    host_row[static_cast<std::size_t>(v)] = game.host_distance(u, v);

  std::vector<double>& cand_w = scratch.cand_w;
  std::vector<char>& in_cand = scratch.in_cand;
  in_cand.assign(static_cast<std::size_t>(n), 0);
  cand_w.clear();
  cand_w.reserve(cand.size());
  for (int v : cand) {
    const double w = game.weight(u, v);
    cand_w.push_back(w);
    weight_row[static_cast<std::size_t>(v)] = w;
    in_cand[static_cast<std::size_t>(v)] = 1;
  }

  // One O(n) scan for the certification weights: the cheapest purchasable
  // edge overall (w_min_all, floor for *any* non-empty strategy), the
  // cheapest purchasable edge outside the shortlist (w_out_min, entry fee
  // of every escaping strategy), and -- when the caller supplied the
  // current-network row -- the G bound of the current-floor certificate.
  // A purchasable node unreachable in the current network forces G = kInf
  // (w(u,x) >= d_cur(x) - G would otherwise be vacuously violated), which
  // disables the current floor below.
  const std::vector<double>* cur = options.current_dist;
  GNCG_DASSERT(cur == nullptr || cur->size() == static_cast<std::size_t>(n));
  double w_min_all = kInf;
  double w_out_min = kInf;
  double g_bound = -kInf;
  for (int v = 0; v < n; ++v) {
    if (v == u) continue;
    const double w = game.weight(u, v);
    if (!(w < kInf)) continue;
    w_min_all = std::min(w_min_all, w);
    if (!in_cand[static_cast<std::size_t>(v)])
      w_out_min = std::min(w_out_min, w);
    if (cur != nullptr) {
      const double d = (*cur)[static_cast<std::size_t>(v)];
      g_bound = std::max(g_bound, d < kInf ? d - w : kInf);
    }
  }
  const bool use_cur = cur != nullptr && g_bound < kInf;

  ApproxBrResult result;
  result.candidates = static_cast<int>(cand.size());
  result.strategy = NodeSet(n);
  const double empty_cost = dist_sum(base_dist);
  result.cost = empty_cost;
  result.evaluations = 1;

  // --- tier 1: greedy edge additions over the shortlist ------------------
  //
  // Probe each unused candidate with a checkpointed decrease-only repair,
  // commit the best strictly-improving addition, repeat until none.  At
  // most |C| rounds of |C| probes; each probe is one bounded repair plus an
  // O(n) aggregation.
  IncrementalSssp& sssp = scratch.sssp;
  sssp.reset(base_dist);
  NodeSet current(n);
  double current_cost = empty_cost;
  const auto environment_edges = [&](int x, auto&& visit) {
    env.for_neighbors(x, visit);
  };
  // Canonical evaluation of `current` + candidate v: re-sum the edge term
  // in increasing target order (br_search's contract), then the maintained
  // distance aggregation supplied by the caller.
  const auto edge_sum_with = [&](int v) {
    current.insert(v);
    double edge_sum = 0.0;
    current.for_each(
        [&](int t) { edge_sum += weight_row[static_cast<std::size_t>(t)]; });
    current.erase(v);
    return edge_sum;
  };
  if (options.repair_cap == 0) {
    for (;;) {
      int best_i = -1;
      double best_cost = current_cost;
      for (std::size_t i = 0; i < cand.size(); ++i) {
        const int v = cand[i];
        if (current.contains(v)) continue;
        const IncrementalSssp::Checkpoint mark = sssp.checkpoint();
        sssp.relax_insert(v, cand_w[i], environment_edges);
        const double cost =
            game.alpha() * edge_sum_with(v) + dist_sum(sssp.dist());
        ++result.evaluations;
        if (improves(cost, best_cost)) {
          best_cost = cost;
          best_i = static_cast<int>(i);
        }
        sssp.rollback(mark);
      }
      if (best_i < 0) break;
      const int v = cand[static_cast<std::size_t>(best_i)];
      current.insert(v);
      sssp.relax_insert(v, cand_w[static_cast<std::size_t>(best_i)],
                        environment_edges);
      current_cost = best_cost;
    }
  } else {
    // Bounded-frontier greedy: probe every unused candidate under the
    // repair cap, score it by its exact cost when the repair ran to the
    // fixpoint and by the admissible floor
    //     alpha * edges + sum_t max(host(t), min(dist(t), F))
    // when it truncated at frontier key F (a certified lower bound, so a
    // probe scoring >= current_cost genuinely cannot improve and is
    // dropped).  Surviving probes are retried cheapest-estimate-first with
    // *full* repairs; the first exact strict improvement commits.  Only
    // winning candidates ever pay an uncapped flood -- the 49x
    // repair-to-base relaxation ratio of the PR 8 certify phase was
    // losing probes flooding a 10^5-node network.
    FrontierPolicy policy;
    policy.node_cap = options.repair_cap;
    std::vector<std::pair<double, int>>& rank = scratch.probe_rank;
    for (;;) {
      rank.clear();
      for (std::size_t i = 0; i < cand.size(); ++i) {
        const int v = cand[i];
        if (current.contains(v)) continue;
        // Adaptive radius: truncate in the candidate's own scale (frontier
        // keys start at the inserted edge's weight, so any scale >= 1
        // leaves room to propagate) with the write cap as backstop.
        policy.radius = options.repair_radius_scale > 0.0
                            ? options.repair_radius_scale * cand_w[i]
                            : kInf;
        const IncrementalSssp::Checkpoint mark = sssp.checkpoint();
        const RepairOutcome probe =
            sssp.relax_insert(v, cand_w[i], policy, environment_edges);
        double estimate;
        if (probe.truncated) {
          estimate = game.alpha() * edge_sum_with(v) +
                     tight_floor_sum(host_row, sssp.dist(),
                                     probe.frontier_min);
          GNCG_COUNT(kLadderBoundedProbes);
        } else {
          estimate =
              game.alpha() * edge_sum_with(v) + dist_sum(sssp.dist());
        }
        ++result.evaluations;
        if (improves(estimate, current_cost))
          rank.emplace_back(estimate, static_cast<int>(i));
        sssp.rollback(mark);
      }
      std::sort(rank.begin(), rank.end());
      bool committed = false;
      for (const auto& [estimate, ri] : rank) {
        const std::size_t i = static_cast<std::size_t>(ri);
        const int v = cand[i];
        const IncrementalSssp::Checkpoint mark = sssp.checkpoint();
        sssp.relax_insert(v, cand_w[i], environment_edges);
        const double cost =
            game.alpha() * edge_sum_with(v) + dist_sum(sssp.dist());
        ++result.evaluations;
        if (improves(cost, current_cost)) {
          current.insert(v);
          current_cost = cost;
          committed = true;
          break;
        }
        sssp.rollback(mark);
      }
      if (!committed) break;
    }
  }
  if (improves(current_cost, result.cost)) {
    result.cost = current_cost;
    result.strategy = current;
  }
  result.tier = 1;

  // Tier-1 certificate: any non-empty strategy pays at least the cheapest
  // edge plus the per-node distance floor; the empty strategy costs
  // empty_cost.  With the caller's current-network row the floor folds in
  // d_cur(t) - G (current_floor_sum); without it this is the PR 7 bound.
  const double dist_floor =
      use_cur ? current_floor_sum(host_row, base_dist, *cur, w_min_all,
                                  g_bound)
              : tight_floor_sum(host_row, base_dist, w_min_all);
  const double floor_any =
      w_min_all < kInf ? game.alpha() * w_min_all + dist_floor : kInf;
  const double any_lb = std::min(empty_cost, floor_any);
  result.lower_bound = any_lb;
  result.beta = beta_of(result.cost, result.lower_bound);
  result.exact = !improves(result.lower_bound, result.cost);
  if (result.exact) result.beta = 1.0;

  const bool tier1_suffices =
      result.exact ||
      (options.beta_target > 0.0 && result.beta <= options.beta_target);
  if (!tier1_suffices) {
    // --- tier 2: exact search restricted to the shortlist ----------------
    //
    // Shares the ladder's base vector (no second base Dijkstra) and, under
    // a repair cap, runs the bounded branch-and-bound: br.cost is then a
    // certified lower bound on the restricted optimum whenever
    // br.truncated, and the adopted strategy is re-costed by full repairs
    // below, so result.cost stays an achieved cost.
    BestResponseOptions restricted;
    restricted.incumbent = result.cost;
    restricted.restrict_targets = &cand;
    restricted.base_dist = &base_dist;
    restricted.repair_cap = options.repair_cap;
    const BestResponseResult br = br_search_sum(env, restricted);
    result.evaluations += br.evaluations;
    if (br.improved) {
      if (br.truncated) {
        // Re-cost the winning strategy exactly: full repairs from the base
        // vector converge to the least fixpoint regardless of insertion
        // order, so this matches the unbounded search's evaluation of the
        // same subset bitwise.
        sssp.reset(base_dist);
        double edge_sum = 0.0;
        br.strategy.for_each([&](int v) {
          const double w = weight_row[static_cast<std::size_t>(v)];
          edge_sum += w;
          sssp.relax_insert(v, w, environment_edges);
        });
        const double achieved =
            game.alpha() * edge_sum + dist_sum(sssp.dist());
        ++result.evaluations;
        if (improves(achieved, result.cost)) {
          result.cost = achieved;
          result.strategy = br.strategy;
        }
      } else {
        result.cost = br.cost;
        result.strategy = br.strategy;
      }
    }
    result.tier = 2;

    // Certificate composition.  Inside the shortlist every strategy costs
    // at least restricted_lb = min(br.cost, tier-1 cost): br.cost is the
    // restricted optimum when exact, an admissible bound on it when the
    // search was bounded, and a no-improvement outcome certifies the
    // incumbent (the tier-1 cost) as the restricted floor.  Every escaping
    // strategy pays alpha * w_out_min plus the distance floor.  The
    // any-strategy tier-1 bound still applies, and the final bound is
    // clamped to the achieved cost (a lower bound above it is vacuous).
    const double restricted_lb = std::min(br.cost, restricted.incumbent);
    const double escape_lb =
        w_out_min < kInf ? game.alpha() * w_out_min + dist_floor : kInf;
    double lb = std::min(restricted_lb, escape_lb);
    lb = std::max(lb, any_lb);
    lb = std::min(lb, result.cost);
    result.exact = !improves(lb, result.cost);
    result.lower_bound = lb;
    result.beta = result.exact ? 1.0 : beta_of(result.cost, result.lower_bound);
    GNCG_IF_INSTRUMENT(if (result.exact) GNCG_COUNT(kLadderEscapeExact);)
  }

  // --- tier 3: unrestricted exact search, on demand ---------------------
  const bool want_exact =
      options.allow_exact && !result.exact &&
      (options.beta_target <= 0.0 || result.beta > options.beta_target);
  if (want_exact) {
    BestResponseOptions full;
    full.incumbent = result.cost;
    full.base_dist = &base_dist;
    const BestResponseResult br = br_search_sum(env, full);
    result.evaluations += br.evaluations;
    if (br.improved) {
      result.cost = br.cost;
      result.strategy = br.strategy;
    }
    result.tier = 3;
    result.exact = true;
    result.lower_bound = result.cost;
    result.beta = 1.0;
  }

  result.improved = improves(result.cost, options.incumbent);
  GNCG_IF_INSTRUMENT(switch (result.tier) {
    case 1: GNCG_COUNT(kLadderTier1Final); break;
    case 2: GNCG_COUNT(kLadderTier2Final); break;
    default: GNCG_COUNT(kLadderTier3Final); break;
  })
  return result;
}

}  // namespace

ApproxBrResult approx_best_response_ladder(const Game& game,
                                           const StrategyProfile& s, int u,
                                           const ApproxBrOptions& options) {
  const AgentEnvironment env(game, s, u);
  return ladder_over(env, options);
}

ApproxBrResult approx_best_response_ladder(const DeviationEngine& engine,
                                           int u,
                                           const ApproxBrOptions& options) {
  const AgentEnvironment env(engine, u);
  return ladder_over(env, options);
}

std::vector<CertifiedAgent> certify_agents(DeviationEngine& engine,
                                           const std::vector<int>& agents,
                                           const ApproxBrOptions& options) {
  GNCG_COUNT(kLadderBatchCalls);
  GNCG_COUNT_N(kLadderBatchAgents, agents.size());
  std::vector<CertifiedAgent> out(agents.size());
  if (agents.empty()) return out;

  // Spatial-locality processing order: grid cell on euclidean hosts (the
  // oracle's index, built on first candidate query), host distance to the
  // first agent otherwise.  Consecutive ladders then touch overlapping
  // adjacency/neighborhood data.  Results return in input order.
  const Game& game = engine.game();
  std::vector<std::pair<double, std::size_t>> schedule;
  schedule.reserve(agents.size());
  const SpatialIndex* index = nullptr;
  if (game.host().backend().kind() == HostBackendKind::kEuclidean) {
    const auto& euclid =
        static_cast<const EuclideanHostBackend&>(game.host().backend());
    index = euclid.spatial_index();
    if (index == nullptr) {
      // Build the grid with a throwaway query so the schedule can use it.
      std::vector<int> warmup;
      euclid.candidate_targets(agents.front(), 1, warmup);
      index = euclid.spatial_index();
    }
  }
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const double key =
        index != nullptr
            ? static_cast<double>(index->cell_of(agents[i]))
            : game.host_distance(agents.front(), agents[i]);
    schedule.emplace_back(key, i);
  }
  std::sort(schedule.begin(), schedule.end());

  for (const auto& [key, i] : schedule) {
    const int u = agents[i];
    ApproxBrOptions per = options;
    // Lazy per-agent warm: agent_cost materializes exactly u's row (a full
    // warm pass would be O(n^2) memory at large n -- only the sampled
    // agents' current-network rows may ever exist).  The reference stays
    // valid through the ladder call: nothing below mutates the profile.
    per.incumbent = engine.agent_cost(u);
    per.current_dist = &engine.distances(u);
    out[i].agent = u;
    out[i].current_cost = per.incumbent;
    out[i].result = approx_best_response_ladder(engine, u, per);
  }
  return out;
}

}  // namespace gncg
