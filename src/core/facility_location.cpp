#include "core/facility_location.hpp"

#include <algorithm>

#include "core/best_response.hpp"
#include "graph/dijkstra.hpp"
#include "support/assert.hpp"

namespace gncg {

double umfl_cost(const UmflInstance& instance, const std::vector<char>& open) {
  GNCG_CHECK(open.size() == instance.facility_count(),
             "open vector size mismatch");
  double total = 0.0;
  for (std::size_t f = 0; f < open.size(); ++f) {
    if (!open[f]) continue;
    if (!(instance.open_cost[f] < kInf)) return kInf;  // forbidden facility
    total += instance.open_cost[f];
  }
  const std::size_t clients = instance.client_count();
  for (std::size_t c = 0; c < clients; ++c) {
    double best = kInf;
    for (std::size_t f = 0; f < open.size(); ++f)
      if (open[f]) best = std::min(best, instance.service[f][c]);
    if (!(best < kInf)) return kInf;  // client unserved
    total += best;
  }
  return total;
}

UmflSolution umfl_exact(const UmflInstance& instance) {
  const std::size_t facilities = instance.facility_count();
  GNCG_CHECK(facilities <= 24, "umfl_exact: too many facilities ("
                                   << facilities << ") for enumeration");
  UmflSolution best;
  best.open.assign(facilities, 0);
  std::vector<char> open(facilities, 0);
  const std::uint64_t limit = std::uint64_t{1} << facilities;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    bool forced_ok = true;
    for (std::size_t f = 0; f < facilities; ++f) {
      open[f] = static_cast<char>((mask >> f) & 1U);
      if (instance.forced_open.size() == facilities &&
          instance.forced_open[f] && !open[f])
        forced_ok = false;
    }
    if (!forced_ok) continue;
    const double cost = umfl_cost(instance, open);
    if (cost < best.cost) {
      best.cost = cost;
      best.open = open;
    }
  }
  return best;
}

namespace {

constexpr double kLocalSearchEps = 1e-9;

bool strictly_better(double candidate, double incumbent) {
  if (!(incumbent < kInf)) return candidate < kInf;
  return candidate <
         incumbent - kLocalSearchEps * std::max(1.0, std::abs(incumbent));
}

bool may_close(const UmflInstance& instance, std::size_t f) {
  return instance.forced_open.size() != instance.facility_count() ||
         !instance.forced_open[f];
}

bool may_open(const UmflInstance& instance, std::size_t f) {
  return instance.open_cost[f] < kInf;
}

}  // namespace

UmflSolution umfl_local_search(const UmflInstance& instance,
                               std::vector<char> start,
                               std::uint64_t max_iterations) {
  const std::size_t facilities = instance.facility_count();
  GNCG_CHECK(start.size() == facilities, "start size mismatch");
  UmflSolution current;
  current.open = std::move(start);
  current.cost = umfl_cost(instance, current.open);

  for (std::uint64_t iter = 0; iter < max_iterations; ++iter) {
    UmflSolution best_neighbor = current;
    bool found = false;
    auto consider = [&](std::vector<char>& open) {
      const double cost = umfl_cost(instance, open);
      if (strictly_better(cost, best_neighbor.cost)) {
        best_neighbor.cost = cost;
        best_neighbor.open = open;
        found = true;
      }
    };

    std::vector<char> candidate = current.open;
    for (std::size_t f = 0; f < facilities; ++f) {
      if (!current.open[f] && may_open(instance, f)) {
        candidate[f] = 1;  // open f
        consider(candidate);
        candidate[f] = 0;
      } else if (current.open[f] && may_close(instance, f)) {
        candidate[f] = 0;  // close f
        consider(candidate);
        // swap f -> g
        for (std::size_t g = 0; g < facilities; ++g) {
          if (g == f || current.open[g] || !may_open(instance, g)) continue;
          candidate[g] = 1;
          consider(candidate);
          candidate[g] = 0;
        }
        candidate[f] = 1;
      }
    }
    if (!found) break;
    current = std::move(best_neighbor);
  }
  return current;
}

UmflSolution umfl_local_search(const UmflInstance& instance,
                               std::uint64_t max_iterations) {
  std::vector<char> start(instance.facility_count(), 0);
  for (std::size_t f = 0; f < start.size(); ++f)
    start[f] = static_cast<char>(may_open(instance, f) ? 1 : 0);
  return umfl_local_search(instance, std::move(start), max_iterations);
}

BestResponseUmfl umfl_from_best_response(const Game& game,
                                         const StrategyProfile& s, int u) {
  const int n = game.node_count();
  GNCG_CHECK(u >= 0 && u < n, "agent out of range");
  BestResponseUmfl reduction;
  reduction.owners_towards_agent = NodeSet(n);
  for (int v = 0; v < n; ++v) {
    if (v == u) continue;
    reduction.facility_node.push_back(v);
    if (s.buys(v, u)) reduction.owners_towards_agent.insert(v);
  }

  // Distances in G' = the built network minus u's own edges, with one
  // Dijkstra per facility node.
  std::vector<std::vector<Neighbor>> g_prime(static_cast<std::size_t>(n));
  for (int owner = 0; owner < n; ++owner) {
    if (owner == u) continue;
    s.strategy(owner).for_each([&](int target) {
      const double w = game.weight(owner, target);
      g_prime[static_cast<std::size_t>(owner)].push_back({target, w});
      g_prime[static_cast<std::size_t>(target)].push_back({owner, w});
    });
  }

  const std::size_t count = reduction.facility_node.size();
  auto& instance = reduction.instance;
  instance.open_cost.resize(count);
  instance.forced_open.assign(count, 0);
  instance.service.assign(count, std::vector<double>(count, kInf));

  std::vector<double> dist;
  for (std::size_t fi = 0; fi < count; ++fi) {
    const int f = reduction.facility_node[fi];
    const double w_uf = game.weight(u, f);
    if (reduction.owners_towards_agent.contains(f)) {
      instance.open_cost[fi] = 0.0;
      instance.forced_open[fi] = 1;
    } else {
      instance.open_cost[fi] = w_uf < kInf ? game.alpha() * w_uf : kInf;
    }
    dijkstra_over(
        n, f,
        [&](int x, auto&& visit) {
          for (const auto& nb : g_prime[static_cast<std::size_t>(x)])
            visit(nb.to, nb.weight);
        },
        dist);
    for (std::size_t ci = 0; ci < count; ++ci) {
      const int c = reduction.facility_node[ci];
      const double through = dist[static_cast<std::size_t>(c)];
      instance.service[fi][ci] =
          (w_uf < kInf && through < kInf) ? w_uf + through : kInf;
    }
  }
  return reduction;
}

NodeSet umfl_solution_to_strategy(const BestResponseUmfl& reduction,
                                  const UmflSolution& solution, int n) {
  NodeSet strategy(n);
  for (std::size_t f = 0; f < solution.open.size(); ++f) {
    if (!solution.open[f]) continue;
    const int node = reduction.facility_node[f];
    if (!reduction.owners_towards_agent.contains(node)) strategy.insert(node);
  }
  return strategy;
}

std::vector<char> strategy_to_umfl_open(const BestResponseUmfl& reduction,
                                        const NodeSet& strategy) {
  std::vector<char> open(reduction.facility_node.size(), 0);
  for (std::size_t f = 0; f < open.size(); ++f) {
    const int node = reduction.facility_node[f];
    if (strategy.contains(node) ||
        reduction.owners_towards_agent.contains(node))
      open[f] = 1;
  }
  return open;
}

NodeSet approx_best_response_umfl(const Game& game, const StrategyProfile& s,
                                  int u) {
  const auto reduction = umfl_from_best_response(game, s, u);
  // Start from the facility set corresponding to u's current strategy.
  std::vector<char> start = strategy_to_umfl_open(reduction, s.strategy(u));
  UmflSolution seed;
  seed.open = start;
  seed.cost = umfl_cost(reduction.instance, start);
  if (!(seed.cost < kInf)) {
    // Current strategy is infeasible (u disconnected); restart from the
    // all-open solution instead.
    return umfl_solution_to_strategy(
        reduction, umfl_local_search(reduction.instance), game.node_count());
  }
  const auto local = umfl_local_search(reduction.instance, std::move(start));
  return umfl_solution_to_strategy(reduction, local, game.node_count());
}

}  // namespace gncg
