// Game dynamics: sequential improving-move processes and their convergence.
//
// The paper shows none of its models has the Finite Improvement Property
// (Corollary 1, Theorems 14 and 17): improving-move sequences can cycle, so
// best-response dynamics carry no convergence guarantee.  This engine runs
// the dynamics anyway -- with several move rules and activation schedulers
// -- detects revisited strategy profiles (which certifies a best-response /
// improving-move cycle in the paper's sense), and can replay and re-verify a
// found cycle step by step.
#pragma once

#include <cstdint>
#include <vector>

#include "core/best_response.hpp"
#include "core/game.hpp"
#include "support/rng.hpp"

namespace gncg {

/// What an activated agent plays.
enum class MoveRule {
  kBestResponse,    ///< exact best response (exponential per activation)
  kBestSingleMove,  ///< best add/delete/swap (the GE move set)
  kBestAddition,    ///< best single addition (the AE move set)
  kUmflResponse,    ///< 3-approximate BR via facility-location local search
};

/// Order in which agents are activated.
enum class SchedulerKind {
  kRoundRobin,   ///< fixed order 0..n-1, repeated
  kRandomOrder,  ///< fresh uniform permutation every round
  kMaxGain,      ///< activate the agent with the largest cost improvement
};

struct DynamicsOptions {
  MoveRule rule = MoveRule::kBestResponse;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  std::uint64_t max_moves = 10000;
  bool detect_cycles = true;
  std::uint64_t seed = 1;
};

/// One improving move taken during the run.
struct DynamicsStep {
  int agent = -1;
  NodeSet old_strategy;
  NodeSet new_strategy;
  double old_cost = 0.0;
  double new_cost = 0.0;
};

struct DynamicsResult {
  bool converged = false;     ///< a full activation round produced no move
  bool cycle_found = false;   ///< a strategy profile repeated
  std::size_t cycle_start = 0;   ///< step index where the cycle begins
  std::size_t cycle_length = 0;  ///< number of moves in the cycle
  std::uint64_t moves = 0;
  std::uint64_t rounds = 0;
  StrategyProfile final_profile;
  std::vector<DynamicsStep> steps;  ///< full move trajectory

  /// The moves forming the detected cycle (empty when none).  The cycle's
  /// start profile equals `final_profile` (the repeated state), so
  /// `verify_improvement_cycle(game, final_profile, cycle_steps(), ...)`
  /// certifies it.
  std::vector<DynamicsStep> cycle_steps() const {
    if (!cycle_found) return {};
    return {steps.begin() + static_cast<std::ptrdiff_t>(cycle_start),
            steps.end()};
  }
};

/// Runs sequential dynamics from `start` until convergence, a detected
/// cycle, or the move budget runs out.
DynamicsResult run_dynamics(const Game& game, StrategyProfile start,
                            const DynamicsOptions& options);

/// Replays `cycle` from `start` and verifies that (a) every step strictly
/// improves the moving agent's cost, (b) when `require_best_response` each
/// step lands on an exact best response, and (c) the final profile equals
/// `start`.  This is how found Theorem 14 / 17 cycles are certified.
bool verify_improvement_cycle(const Game& game, const StrategyProfile& start,
                              const std::vector<DynamicsStep>& cycle,
                              bool require_best_response);

/// Random profile generator for dynamics restarts: a uniform random spanning
/// tree of the purchasable pairs with random edge ownership, plus each
/// remaining purchasable pair bought with probability `extra_edge_prob`.
StrategyProfile random_profile(const Game& game, Rng& rng,
                               double extra_edge_prob = 0.15);

}  // namespace gncg
