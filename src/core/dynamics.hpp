// The dynamics kernel: improving-move processes and their convergence, over
// pluggable policies.
//
// The paper shows none of its models has the Finite Improvement Property
// (Corollary 1, Theorems 14 and 17): improving-move sequences can cycle, so
// best-response dynamics carry no convergence guarantee.  This kernel runs
// the dynamics anyway: a SchedulerPolicy picks improving activations under
// a MoveRulePolicy (core/dynamics_policy.hpp), every applied step streams
// through the StepObserver API, and revisited strategy profiles -- which
// certify a best-response / improving-move cycle in the paper's sense --
// are detected via the engine's incremental Zobrist hash against a
// transposition table (core/transposition.hpp), with exact profile
// comparison confirming every hash hit so a collision can never report a
// false cycle.
//
// The kernel commits in *rounds*: sequential schedulers yield one
// activation per round (the historical per-move loop, unchanged move for
// move), while the parallel_mgm scheduler yields a batch of non-conflicting
// moves that commits atomically, with revisit detection at round
// granularity.
//
// Restart orchestration (parallel multi-start sweeps over this kernel)
// lives in core/restarts.hpp; start-profile generators in
// core/profile_gen.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deviation_engine.hpp"
#include "core/dynamics_policy.hpp"
#include "core/game.hpp"
#include "core/profile_gen.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace gncg {

/// One improving move taken during a run.
struct DynamicsStep {
  int agent = -1;
  NodeSet old_strategy;
  NodeSet new_strategy;
  double old_cost = 0.0;
  double new_cost = 0.0;
  /// 1-based commit round the move belonged to.  Sequential schedulers
  /// commit one move per round (round == move index); the parallel-MGM
  /// scheduler commits whole batches of non-conflicting moves, all tagged
  /// with the same round and all improving against the round's start
  /// profile (costs are round-start costs, not sequential-replay costs).
  std::uint64_t round = 0;
};

struct DynamicsResult;

/// Streaming observer over a dynamics run.  The kernel's own trace and
/// gain-statistics recording go through the same callbacks, so sinks
/// (labs, benches, sweep scenarios) subscribe instead of re-deriving state
/// from raw step vectors.
///
/// Lifetime contract: the observer must outlive the run_dynamics call it is
/// passed to; the kernel never retains it afterwards.  Callbacks arrive on
/// the calling thread, strictly ordered (on_run_start, then one on_step per
/// applied move with on_round_end closing each commit round, then
/// on_run_end).  The engine reference passed to on_run_start is only valid
/// during the callback.
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  /// Called once before the first activation, against the start state.
  virtual void on_run_start(const DeviationEngine& engine) { (void)engine; }

  /// Called after step `move_index` (1-based) was applied to the engine.
  virtual void on_step(const DynamicsStep& step, std::uint64_t move_index) = 0;

  /// Called after a commit round's moves were all applied (and their
  /// on_step callbacks delivered).  `committed` is the batch size: always 1
  /// for sequential schedulers, >= 1 under parallel_mgm.
  virtual void on_round_end(std::uint64_t round_index,
                            std::size_t committed) {
    (void)round_index;
    (void)committed;
  }

  /// Called once with the finished result (cycle/convergence flags set).
  virtual void on_run_end(const DynamicsResult& result) { (void)result; }
};

struct DynamicsOptions {
  MoveRule rule = MoveRule::kBestResponse;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;

  /// When non-empty, resolved through DynamicsPolicyRegistry and overriding
  /// the enum -- the hook for registered non-builtin policies.
  std::string rule_name;
  std::string scheduler_name;

  std::uint64_t max_moves = 10000;
  bool detect_cycles = true;
  std::uint64_t seed = 1;

  /// Policy knobs (see PolicyConfig).
  std::uint64_t fairness_bound = 0;
  double softmax_tau = 0.25;
  int approx_budget = 0;
  /// Approx-ladder bounded-frontier repair cap (ApproxBrOptions::repair_cap);
  /// 0 = exact repairs.  Applied moves stay strict better-responses either
  /// way (the ladder re-costs truncated winners exactly).
  std::size_t approx_repair_cap = 0;
  /// Parallel-MGM scheduler: agent shards per round (PolicyConfig); <= 0
  /// picks the default, 1 degenerates to the sequential max_gain step.
  int mgm_shards = 0;

  /// Record the full move trajectory into DynamicsResult::steps.  Disable
  /// for bulk restart sweeps that only consume aggregate statistics; note
  /// cycle *replay* (cycle_steps / verify_improvement_cycle) needs the
  /// trace.
  bool record_steps = true;

  /// Optional observer streamed every applied step (non-owning; must
  /// outlive the run).
  StepObserver* observer = nullptr;
};

struct DynamicsResult {
  bool converged = false;     ///< the scheduler found no improving agent
  bool cycle_found = false;   ///< a strategy profile repeated
  std::size_t cycle_start = 0;   ///< step index where the cycle begins
  std::size_t cycle_length = 0;  ///< number of moves in the cycle
  std::uint64_t moves = 0;
  std::uint64_t rounds = 0;
  /// Largest number of moves committed in one round: 1 for sequential
  /// schedulers, the achieved round parallelism under parallel_mgm.
  std::size_t max_round_commits = 0;
  /// Confirmed transposition-hash collisions during cycle detection
  /// (distinct profiles sharing a hash -- resolved exactly, never trusted).
  std::uint64_t hash_collisions = 0;
  StrategyProfile final_profile;
  /// Full move trajectory (empty when record_steps was off).
  std::vector<DynamicsStep> steps;
  /// Streaming statistics over per-step cost improvements (finite gains
  /// only), so aggregation sinks stop recomputing them from raw traces.
  SampleStats step_gains;

  /// The moves forming the detected cycle (empty when none).  The cycle's
  /// start profile equals `final_profile` (the repeated state), so
  /// `verify_improvement_cycle(game, final_profile, cycle_steps(), ...)`
  /// certifies it.  Requires record_steps.  Note the replay verifier is a
  /// *sequential* strict-improvement check: under parallel_mgm (where a
  /// step's costs are round-start costs and revisits are detected at round
  /// granularity) a detected cycle is a round-cycle and need not certify.
  std::vector<DynamicsStep> cycle_steps() const {
    if (!cycle_found || steps.size() < cycle_start) return {};
    return {steps.begin() + static_cast<std::ptrdiff_t>(cycle_start),
            steps.end()};
  }
};

/// Runs sequential dynamics from `start` until convergence, a detected
/// cycle, or the move budget runs out.
DynamicsResult run_dynamics(const Game& game, StrategyProfile start,
                            const DynamicsOptions& options);

/// Same, from the engine's current profile.  The restart driver reuses one
/// engine per worker this way (set_profile + run) instead of paying an
/// engine construction per restart.
DynamicsResult run_dynamics(DeviationEngine& engine,
                            const DynamicsOptions& options);

/// Replays `cycle` from `start` and verifies that (a) every step strictly
/// improves the moving agent's cost, (b) when `require_best_response` each
/// step lands on an exact best response, and (c) the final profile equals
/// `start`.  This is how found Theorem 14 / 17 cycles are certified.
bool verify_improvement_cycle(const Game& game, const StrategyProfile& start,
                              const std::vector<DynamicsStep>& cycle,
                              bool require_best_response);

}  // namespace gncg
