#include "core/spanner_bounds.hpp"

#include <algorithm>

#include "graph/apsp.hpp"
#include "graph/spanner.hpp"

namespace gncg {

namespace {

DistanceMatrix network_distances(const Game& game,
                                 const std::vector<Edge>& network) {
  WeightedGraph g(game.node_count());
  for (const auto& e : network) g.add_edge(e.u, e.v, game.weight(e.u, e.v));
  return apsp(g);
}

/// Stretch of `sub_dist` against the host closure, queried pairwise from
/// the host backend instead of a materialized closure matrix.
double stretch_vs_host(const Game& game, const DistanceMatrix& sub_dist) {
  return max_stretch_over(
      game.node_count(),
      [&game](int u, int v) { return game.host_distance(u, v); }, sub_dist);
}

}  // namespace

double profile_stretch(const Game& game, const StrategyProfile& s) {
  const WeightedGraph g = built_graph(game, s);
  return stretch_vs_host(game, apsp(g));
}

double network_stretch(const Game& game, const std::vector<Edge>& network) {
  return stretch_vs_host(game, network_distances(game, network));
}

double max_pair_sigma(const Game& game, const StrategyProfile& equilibrium,
                      const std::vector<Edge>& optimum) {
  const int n = game.node_count();
  const DistanceMatrix ne_dist = network_distances(
      game, built_graph(game, equilibrium).edges());
  const DistanceMatrix opt_dist = network_distances(game, optimum);

  std::vector<std::vector<char>> in_opt(
      static_cast<std::size_t>(n), std::vector<char>(static_cast<std::size_t>(n), 0));
  for (const auto& e : optimum) {
    in_opt[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] = 1;
    in_opt[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] = 1;
  }

  const double alpha = game.alpha();
  double worst = 0.0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double w = game.weight(u, v);
      const double x = equilibrium.has_edge(u, v) && w < kInf ? 1.0 : 0.0;
      const double x_star =
          in_opt[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] ? 1.0
                                                                           : 0.0;
      const double numerator =
          alpha * (w < kInf ? w : 0.0) * x + 2.0 * ne_dist.at(u, v);
      const double denominator =
          alpha * (w < kInf ? w : 0.0) * x_star + 2.0 * opt_dist.at(u, v);
      if (denominator == 0.0) {
        if (numerator > 0.0) return kInf;
        continue;
      }
      if (!(denominator < kInf)) continue;
      worst = std::max(worst, numerator / denominator);
    }
  }
  return worst;
}

}  // namespace gncg
