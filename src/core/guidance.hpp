// Guided dynamics -- the paper's "future work" direction, implemented.
//
// The conclusion asks for (a) the Price of Stability (cheapest NE / OPT)
// and (b) "a way to guide the agents to stable states with preferably low
// social cost".  This module provides both: PoS comes from the equilibrium
// enumeration/sampling machinery (estimate_poa reports it), and guidance is
// realized by *seeding* best-response dynamics from a low-cost network
// (Algorithm 1 output, the defining tree, or a local-search optimum) with a
// stability-searched edge ownership, then comparing the equilibria reached
// from the guided start against random-start dynamics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dynamics.hpp"
#include "core/game.hpp"
#include "core/social_optimum.hpp"

namespace gncg {

/// Builds a starting profile over a target network: tries a Greedy
/// Equilibrium ownership first (searching all 2^|E| assignments when |E| <=
/// max_search_edges), and falls back to randomized ownership otherwise.
StrategyProfile guided_profile(const Game& game,
                               const std::vector<Edge>& network,
                               std::uint64_t seed,
                               int max_search_edges = 16);

/// Outcome of one dynamics run in a guidance experiment.
struct GuidanceOutcome {
  bool converged = false;
  bool nash_verified = false;   ///< exact NE check (skipped for large n)
  double social_cost = 0.0;
  std::uint64_t moves = 0;
  StrategyProfile profile;
};

/// Comparison of guided vs random starts on one game.
struct GuidanceComparison {
  GuidanceOutcome guided;
  std::vector<GuidanceOutcome> random_runs;
  double target_cost = 0.0;  ///< social cost of the guiding network

  /// Mean social cost of converged random runs (kInf if none converged).
  double random_mean_cost() const;
  /// Best (lowest) converged random-run cost (kInf if none).
  double random_best_cost() const;
};

struct GuidanceOptions {
  int random_runs = 5;
  std::uint64_t seed = 1;
  MoveRule rule = MoveRule::kBestResponse;
  std::uint64_t max_moves = 5000;
  bool verify_nash = true;
};

/// Runs dynamics once from the guided profile over `target` and
/// `random_runs` times from random profiles; reports the reached costs.
GuidanceComparison compare_guided_vs_random(const Game& game,
                                            const NetworkDesign& target,
                                            const GuidanceOptions& options = {});

}  // namespace gncg
