#include "core/transposition.hpp"

#include "support/instrument.hpp"
#include "support/rng.hpp"

namespace gncg {

namespace {

/// Domain separator so profile hashes do not collide with the stream/hash
/// machinery in support/rng.hpp, which uses the same mixing primitive.
constexpr std::uint64_t kZobristSalt = 0xc3a5c85c97cb3127ULL;

}  // namespace

std::uint64_t zobrist_buy_key(int u, int v) {
  return hash_combine(hash_combine(kZobristSalt,
                                   static_cast<std::uint64_t>(u)),
                      static_cast<std::uint64_t>(v));
}

std::uint64_t zobrist_strategy_hash(int u, const NodeSet& strategy) {
  std::uint64_t h = 0;
  strategy.for_each([&](int v) { h ^= zobrist_buy_key(u, v); });
  return h;
}

std::uint64_t zobrist_profile_hash(const StrategyProfile& profile) {
  std::uint64_t h = 0;
  for (int u = 0; u < profile.node_count(); ++u)
    h ^= zobrist_strategy_hash(u, profile.strategy(u));
  return h;
}

std::size_t TranspositionTable::find(std::uint64_t hash,
                                     const StrategyProfile& profile) const {
  GNCG_COUNT(kTtProbes);
  const auto it = buckets_.find(hash);
  if (it == buckets_.end()) return npos;
  for (std::size_t slot : it->second) {
    GNCG_COUNT(kTtConfirms);
    if (entries_[slot].profile == profile) return slot;
    ++collisions_;
    GNCG_COUNT(kTtCollisions);
  }
  return npos;
}

std::size_t TranspositionTable::insert(std::uint64_t hash,
                                       StrategyProfile profile,
                                       std::uint64_t value) {
  const std::size_t slot = entries_.size();
  entries_.push_back({std::move(profile), value});
  buckets_[hash].push_back(slot);
  return slot;
}

}  // namespace gncg
