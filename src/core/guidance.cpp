#include "core/guidance.hpp"

#include <algorithm>

#include "core/equilibrium.hpp"
#include "core/ownership.hpp"

namespace gncg {

StrategyProfile guided_profile(const Game& game,
                               const std::vector<Edge>& network,
                               std::uint64_t seed, int max_search_edges) {
  if (static_cast<int>(network.size()) <= max_search_edges) {
    // A stability-searched ownership makes the guided start itself as
    // stable as possible; if it is already a GE the dynamics only have to
    // fix multi-edge deviations.
    if (auto owned = find_greedy_ownership(game, network, max_search_edges))
      return std::move(*owned);
  }
  Rng rng(seed);
  StrategyProfile profile(game.node_count());
  for (const auto& e : network) {
    if (rng.bernoulli(0.5)) profile.add_buy(e.u, e.v);
    else profile.add_buy(e.v, e.u);
  }
  return profile;
}

double GuidanceComparison::random_mean_cost() const {
  double total = 0.0;
  int converged = 0;
  for (const auto& run : random_runs) {
    if (!run.converged) continue;
    total += run.social_cost;
    ++converged;
  }
  return converged == 0 ? kInf : total / converged;
}

double GuidanceComparison::random_best_cost() const {
  double best = kInf;
  for (const auto& run : random_runs)
    if (run.converged) best = std::min(best, run.social_cost);
  return best;
}

namespace {

GuidanceOutcome run_once(const Game& game, StrategyProfile start,
                         const GuidanceOptions& options, std::uint64_t seed) {
  DynamicsOptions dyn;
  dyn.rule = options.rule;
  dyn.max_moves = options.max_moves;
  dyn.seed = seed;
  auto run = run_dynamics(game, std::move(start), dyn);
  GuidanceOutcome outcome;
  outcome.converged = run.converged;
  outcome.moves = run.moves;
  outcome.social_cost = social_cost(game, run.final_profile);
  if (run.converged && options.verify_nash)
    outcome.nash_verified = is_nash_equilibrium(game, run.final_profile);
  outcome.profile = std::move(run.final_profile);
  return outcome;
}

}  // namespace

GuidanceComparison compare_guided_vs_random(const Game& game,
                                            const NetworkDesign& target,
                                            const GuidanceOptions& options) {
  Rng rng(options.seed);
  GuidanceComparison comparison;
  comparison.target_cost = target.cost.total();
  comparison.guided = run_once(
      game, guided_profile(game, target.edges, rng()), options, rng());
  comparison.random_runs.reserve(static_cast<std::size_t>(options.random_runs));
  for (int i = 0; i < options.random_runs; ++i)
    comparison.random_runs.push_back(
        run_once(game, random_profile(game, rng), options, rng()));
  return comparison;
}

}  // namespace gncg
