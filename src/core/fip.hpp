// Finite Improvement Property (FIP) analysis.
//
// A game has the FIP iff every sequence of improving strategy changes is
// finite, which is equivalent to being a (generalized ordinal) potential
// game [Monderer & Shapley'96].  Equivalently: the *improvement graph* --
// nodes are strategy profiles, arcs are single-agent strictly-improving
// deviations -- is acyclic.  The paper proves all GNCG variants violate the
// FIP (Corollary 1, Theorems 14 and 17).
//
// This module decides the FIP *exactly* for small instances by DFS cycle
// detection over the full improvement graph (exponential state space,
// contract-limited), and searches heuristically for best-response cycles on
// larger instances by running scheduler/seed grids of best-response dynamics
// with profile-revisit detection.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dynamics.hpp"
#include "core/game.hpp"

namespace gncg {

/// Outcome of a FIP analysis.
struct FipAnalysis {
  bool cycle_found = false;
  /// When found: the cyclic move sequence, starting from `cycle_start`.
  StrategyProfile cycle_start;
  std::vector<DynamicsStep> cycle;
  /// Exhaustive search only: true when the entire state space was examined
  /// (so `!cycle_found` proves the instance HAS the FIP).
  bool exhaustive = false;
  std::uint64_t states_visited = 0;
};

/// Options for the exhaustive improvement-graph search.
struct ExhaustiveFipOptions {
  /// Hard cap on the state-space size prod_u 2^(#candidates of u);
  /// the call contract-fails when the instance exceeds it.
  std::uint64_t max_states = 1u << 20;
  /// Restrict arcs to *best-response* deviations (a found cycle is then a
  /// best-response cycle in the paper's sense, the stronger witness).
  bool best_response_arcs_only = false;
};

/// Exhaustive DFS over the improvement graph of a tiny instance.  Decides
/// the FIP for the instance: cycle_found == false and exhaustive == true
/// proves every improving sequence terminates.
FipAnalysis exhaustive_fip_analysis(const Game& game,
                                    const ExhaustiveFipOptions& options = {});

/// Heuristic best-response-cycle search: best-response dynamics with cycle
/// detection from `attempts` random starts across schedulers, fanned out
/// over the worker pool via run_restarts (attempt i's randomness is the
/// stream stream_seed("fip_search", i, seed), so the answer is
/// bit-identical for any thread count).  A found cycle is verified
/// move-by-move before being reported; the first verified cycle in attempt
/// order wins.
FipAnalysis search_best_response_cycle(const Game& game, int attempts,
                                       std::uint64_t seed,
                                       std::uint64_t max_moves_per_attempt = 2000);

}  // namespace gncg
