// Equilibrium enumeration and sampling, and exact Price of Anarchy for
// small instances.
//
// Exhaustive enumeration walks every ownership-labelled subgraph: each
// purchasable pair is absent, bought by its smaller endpoint, or bought by
// its larger endpoint (3^P states).  Profiles where both endpoints buy the
// same edge are never equilibria for positively weighted edges (one buyer
// could drop a redundant payment), and the paper notes every equilibrium
// edge has exactly one owner, so the trit space covers all candidate NE.
// Disconnected profiles are skipped: with a connected host every agent
// facing infinite cost is treated as able to deviate, and the PoA literature
// measures connected outcomes.
//
// For instances beyond enumeration, `sample_equilibria` collects converged
// profiles of randomized best-response dynamics restarts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dynamics.hpp"
#include "core/game.hpp"

namespace gncg {

struct RestartReport;  // core/restarts.hpp

/// A set of equilibria with their social costs.
struct EquilibriumSet {
  std::vector<StrategyProfile> profiles;
  std::vector<double> social_costs;
  bool exhaustive = false;  ///< true when produced by full enumeration

  bool empty() const { return profiles.empty(); }

  double min_cost() const;
  double max_cost() const;
};

struct EnumerationOptions {
  /// Hard cap on 3^(#purchasable pairs); contract-fails beyond it.
  std::uint64_t max_states = 60'000'000;
};

/// Exhaustively enumerates all (connected, single-owner) Nash equilibria.
/// Practical to n = 5 complete hosts by default; n = 6 with a raised cap.
EquilibriumSet enumerate_nash_equilibria(const Game& game,
                                         const EnumerationOptions& options = {});

struct SamplingOptions {
  int attempts = 50;
  std::uint64_t seed = 1;
  MoveRule rule = MoveRule::kBestResponse;
  std::uint64_t max_moves = 5000;
  /// Re-verify converged profiles with the exact NE check (exponential per
  /// agent; disable for large n where the move rule itself is the evidence).
  bool verify_exact_ne = true;
};

/// Runs dynamics restarts from random profiles over the worker pool
/// (core/restarts.hpp; attempt i draws from the derived stream
/// stream_seed("sample_equilibria", i, seed), so the set is bit-identical
/// for any thread count) and collects the distinct equilibria reached.
/// With verify_exact_ne the result contains only certified NE.
EquilibriumSet sample_equilibria(const Game& game,
                                 const SamplingOptions& options = {});

/// The distinct converged final profiles of a restart report, in restart
/// order, deduped via the Zobrist transposition table (exact comparison
/// confirms every hash hit) and, when `verify_exact_ne`, filtered to
/// certified NE.  The collection step shared by sample_equilibria and the
/// ne_sampling sweep scenario.
EquilibriumSet collect_distinct_equilibria(const Game& game,
                                           const RestartReport& report,
                                           bool verify_exact_ne);

/// PoA / PoS estimate of a game given an equilibrium set and the optimum
/// social cost.
struct PoaEstimate {
  double poa = 0.0;           ///< worst equilibrium / OPT
  double pos = 0.0;           ///< best equilibrium / OPT
  double optimum_cost = 0.0;
  std::size_t equilibrium_count = 0;
  bool exact = false;  ///< equilibria exhaustive AND optimum exact
};

PoaEstimate estimate_poa(const EquilibriumSet& equilibria, double optimum_cost,
                         bool optimum_exact);

}  // namespace gncg
