// Best-response computation.
//
// Computing a best response is NP-hard in every variant of the game
// (Corollary 1, Theorems 13 and 16), so the exact solver is a pruned
// exponential search over subsets of purchase targets:
//   * candidates are sorted by edge weight;
//   * a subtree is pruned when its admissible lower bound
//     cannot beat the incumbent (any built network's distances are bounded
//     below by the host's shortest-path closure);
//   * for equilibrium *checks* the incumbent is the agent's current cost and
//     the search stops at the first strict improvement.
// The production search is the incremental branch-and-bound engine in
// core/br_search.hpp (in-DFS distance maintenance, per-node floors,
// deterministic parallel fan-out); the pre-refactor per-subset-Dijkstra
// search survives as naive_exact_best_response, the differential baseline.
//
// Alongside the exact solver live the single-move evaluators (add / delete /
// swap) that define Greedy and Add-only Equilibria (Lenzner'12 as cited by
// the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "core/game.hpp"
#include "graph/csr_adjacency.hpp"

namespace gncg {

class DeviationEngine;

/// The network seen by agent u when re-deciding its strategy: every edge
/// bought by the *other* agents.  Evaluating a candidate S means one
/// Dijkstra over (environment + edges from u to S).
///
/// Two storage modes:
///  * built from (game, profile): owns its adjacency lists;
///  * built from a DeviationEngine: *borrows* the engine's materialized
///    adjacency and masks u's sole-owned edges on the fly (edges u and a
///    neighbor both buy stay: the neighbor keeps paying in the environment).
///    No per-call adjacency copy -- the borrow is valid until the engine's
///    next mutation, exactly like engine.adjacency() itself.
class AgentEnvironment {
 public:
  AgentEnvironment(const Game& game, const StrategyProfile& s, int u);

  /// Borrows the engine's materialized adjacency (no copy); valid until the
  /// engine's next mutation.
  AgentEnvironment(const DeviationEngine& engine, int u);

  int agent() const { return agent_; }
  const Game& game() const { return *game_; }

  /// Enumerates the environment edges incident to x: `visit(y, w)` for every
  /// environment edge (x, y).  The hot loop of every search over the
  /// environment (Dijkstra evaluation, incremental repair).
  template <class Visit>
  void for_neighbors(int x, Visit&& visit) const {
    if (borrowed_ != nullptr) {
      for (const auto& nb : borrowed_->neighbors(x)) {
        if (x == agent_) {
          if (sole_owned_.contains(nb.to)) continue;
        } else if (nb.to == agent_ && sole_owned_.contains(x)) {
          continue;
        }
        visit(nb.to, nb.weight);
      }
    } else {
      for (const auto& nb : owned_[static_cast<std::size_t>(x)])
        visit(nb.to, nb.weight);
    }
  }

  /// cost(u) if u plays exactly `targets`: alpha * w(u, targets) + distance
  /// cost in (environment + candidate edges).
  double cost_of(const NodeSet& targets) const;

  /// Distance-cost only variant (shared by cost_of and the searches).
  double distance_cost_of(const NodeSet& targets) const;

 private:
  const Game* game_;
  int agent_;
  /// Borrow mode: the engine's CSR adjacency plus the mask of u's sole-owned
  /// targets (the edges that vanish when u rethinks its strategy).
  const CsrAdjacency* borrowed_ = nullptr;
  NodeSet sole_owned_;
  /// Owned mode: environment adjacency built from the profile.
  std::vector<std::vector<Neighbor>> owned_;
};

/// Result of an exact best-response search.
struct BestResponseResult {
  NodeSet strategy;               ///< best deviation found
  double cost = kInf;             ///< agent cost of that deviation
  bool improved = false;          ///< beat the incumbent bound strictly
  std::uint64_t evaluations = 0;  ///< number of candidate evaluations
  /// True when the bounded-frontier mode (repair_cap > 0) truncated at
  /// least one repair on the path to the returned optimum: `cost` is then a
  /// certified *lower bound* on the true cost of `strategy` (and of the
  /// restricted optimum), not an achieved cost.  Callers must re-cost the
  /// strategy exactly before adopting it.  Always false when repair_cap
  /// is 0, where `cost` is the exact (restricted) optimum.
  bool truncated = false;
};

/// Options for the exact search.
struct BestResponseOptions {
  /// Pruning bound: subtrees that cannot strictly beat it are cut.  Pass the
  /// agent's current cost for equilibrium checks; kInf for a full argmin.
  double incumbent = kInf;
  /// Stop at the first strategy that strictly beats the incumbent (used by
  /// is_nash_equilibrium; the returned strategy is then *an* improvement,
  /// not necessarily the best one).
  bool first_improvement = false;

  /// When non-null, the search only considers strategies over this target
  /// list (the spatial candidate oracle's shortlist; entries that are not
  /// purchasable are skipped, duplicates collapse).  The search is then
  /// exact *over the restricted space*: the returned cost is the true
  /// minimum among subsets of the list, an upper bound on the unrestricted
  /// best response.  With a list covering every purchasable target the
  /// result is bit-identical to the unrestricted search (the differential
  /// gate in tests/test_approx_br.cpp).  The pointee must outlive the call.
  const std::vector<int>* restrict_targets = nullptr;

  /// Bounded-frontier mode: cap on distance overwrites per incremental
  /// repair inside the DFS (graph/incremental_sssp.hpp FrontierPolicy).
  /// 0 = exact search (the historical behavior, bit-for-bit).  With a
  /// positive cap, truncated branches are costed by the admissible floor
  /// sum_t max(host(t), min(dist(t), F)) instead of the distance sum, so
  /// the returned cost is a certified lower bound whenever
  /// BestResponseResult::truncated is set (and still the exact optimum when
  /// no repair on the winning path truncated).
  std::size_t repair_cap = 0;

  /// When non-null, seeds the search's base distance vector from this
  /// precomputed SSSP row (the agent's distances in the *environment*,
  /// i.e. without any of u's sole-owned edges) instead of running the base
  /// Dijkstra.  The batched certifier shares one warmed row across the
  /// ladder's tiers this way.  The pointee must match the environment
  /// exactly (bitwise: it becomes the branch seed) and outlive the call.
  const std::vector<double>* base_dist = nullptr;
};

/// Exact best response of agent u against the rest of profile `s`.
/// Runs the incremental branch-and-bound engine (core/br_search.hpp): one
/// Dijkstra per call, in-DFS incremental distance maintenance per subset.
BestResponseResult exact_best_response(const Game& game,
                                       const StrategyProfile& s, int u,
                                       const BestResponseOptions& options = {});

/// Exact best response against an engine's current profile, borrowing the
/// engine's materialized adjacency for the environment (no copy).
BestResponseResult exact_best_response(const DeviationEngine& engine, int u,
                                       const BestResponseOptions& options = {});

/// Pre-refactor reference search: one fresh Dijkstra per visited candidate
/// subset over the AgentEnvironment, sequential, global host-sum floor
/// only.  The differential-testing and benchmarking baseline for the
/// incremental br_search engine (same contract as the naive_* single-move
/// scans below); production callers use exact_best_response.
BestResponseResult naive_exact_best_response(
    const Game& game, const StrategyProfile& s, int u,
    const BestResponseOptions& options = {});

/// True when agent u has *any* strategy strictly cheaper than its current
/// one (early-exit exact search).
bool has_improving_deviation(const Game& game, const StrategyProfile& s, int u);

/// Engine-backed variant: no environment rebuild, no adjacency copy.  Batch
/// callers (NE certification loops) reuse one engine across agents.
bool has_improving_deviation(DeviationEngine& engine, int u);

/// Single-move deviations (the Greedy Equilibrium move set).
enum class MoveType { kNone, kAdd, kDelete, kSwap };

struct SingleMove {
  MoveType type = MoveType::kNone;
  int remove = -1;  ///< target whose edge is deleted (kDelete / kSwap)
  int add = -1;     ///< target whose edge is bought (kAdd / kSwap)
};

struct SingleMoveResult {
  SingleMove move;               ///< best single move (kNone if nothing improves)
  double cost = kInf;            ///< agent cost after the best single move
  double current_cost = kInf;    ///< agent cost before moving
  bool improved = false;
};

/// Best single move (add, delete or swap) of agent u; `current_cost` is
/// always filled.  Thin wrapper over a one-shot DeviationEngine; batch
/// callers should build an engine once and reuse it across agents.
SingleMoveResult best_single_move(const Game& game, const StrategyProfile& s,
                                  int u);

/// Best edge *addition* only (the Add-only Equilibrium move set).
SingleMoveResult best_addition(const Game& game, const StrategyProfile& s,
                               int u);

/// Best edge *swap* only (the move set of swap/asymmetric-swap equilibria
/// from the basic network creation games the paper builds on).
SingleMoveResult best_swap(const Game& game, const StrategyProfile& s, int u);

/// Naive reference scans: one fresh Dijkstra per candidate move over the
/// AgentEnvironment, no caching and no delta evaluation.  These are the
/// differential-testing and benchmarking baselines for the DeviationEngine;
/// production callers should use the engine-backed functions above.
SingleMoveResult naive_best_single_move(const Game& game,
                                        const StrategyProfile& s, int u);
SingleMoveResult naive_best_addition(const Game& game,
                                     const StrategyProfile& s, int u);
SingleMoveResult naive_best_swap(const Game& game, const StrategyProfile& s,
                                 int u);

/// Applies `move` to agent u's strategy in place.
void apply_move(StrategyProfile& s, int u, const SingleMove& move);

}  // namespace gncg
