// Best-response computation.
//
// Computing a best response is NP-hard in every variant of the game
// (Corollary 1, Theorems 13 and 16), so the exact solver is a pruned
// exponential search over subsets of purchase targets:
//   * candidates are sorted by edge weight;
//   * a subtree is pruned when its admissible lower bound
//       alpha * w(partial set) + sum_v d_H(u, v)
//     cannot beat the incumbent (any built network's distances are bounded
//     below by the host's shortest-path closure);
//   * for equilibrium *checks* the incumbent is the agent's current cost and
//     the search stops at the first strict improvement.
//
// Alongside the exact solver live the single-move evaluators (add / delete /
// swap) that define Greedy and Add-only Equilibria (Lenzner'12 as cited by
// the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost.hpp"
#include "core/game.hpp"

namespace gncg {

class DeviationEngine;

/// The network seen by agent u when re-deciding its strategy: every edge
/// bought by the *other* agents.  Evaluating a candidate S means one
/// Dijkstra over (environment + edges from u to S).
class AgentEnvironment {
 public:
  AgentEnvironment(const Game& game, const StrategyProfile& s, int u);

  /// Derives the environment from an engine's materialized adjacency (drops
  /// u's sole-owned edges) instead of rebuilding it from the profile.
  AgentEnvironment(const DeviationEngine& engine, int u);

  int agent() const { return agent_; }

  /// cost(u) if u plays exactly `targets`: alpha * w(u, targets) + distance
  /// cost in (environment + candidate edges).
  double cost_of(const NodeSet& targets) const;

  /// Distance-cost only variant (shared by cost_of and the searches).
  double distance_cost_of(const NodeSet& targets) const;

 private:
  const Game* game_;
  int agent_;
  std::vector<std::vector<Neighbor>> environment_;
};

/// Result of an exact best-response search.
struct BestResponseResult {
  NodeSet strategy;               ///< best deviation found
  double cost = kInf;             ///< agent cost of that deviation
  bool improved = false;          ///< beat the incumbent bound strictly
  std::uint64_t evaluations = 0;  ///< number of candidate evaluations
};

/// Options for the exact search.
struct BestResponseOptions {
  /// Pruning bound: subtrees that cannot strictly beat it are cut.  Pass the
  /// agent's current cost for equilibrium checks; kInf for a full argmin.
  double incumbent = kInf;
  /// Stop at the first strategy that strictly beats the incumbent (used by
  /// is_nash_equilibrium; the returned strategy is then *an* improvement,
  /// not necessarily the best one).
  bool first_improvement = false;
};

/// Exact best response of agent u against the rest of profile `s`.
BestResponseResult exact_best_response(const Game& game,
                                       const StrategyProfile& s, int u,
                                       const BestResponseOptions& options = {});

/// Exact best response against an engine's current profile, reusing the
/// engine's materialized adjacency for the environment.
BestResponseResult exact_best_response(const DeviationEngine& engine, int u,
                                       const BestResponseOptions& options = {});

/// True when agent u has *any* strategy strictly cheaper than its current
/// one (early-exit exact search).
bool has_improving_deviation(const Game& game, const StrategyProfile& s, int u);

/// Single-move deviations (the Greedy Equilibrium move set).
enum class MoveType { kNone, kAdd, kDelete, kSwap };

struct SingleMove {
  MoveType type = MoveType::kNone;
  int remove = -1;  ///< target whose edge is deleted (kDelete / kSwap)
  int add = -1;     ///< target whose edge is bought (kAdd / kSwap)
};

struct SingleMoveResult {
  SingleMove move;               ///< best single move (kNone if nothing improves)
  double cost = kInf;            ///< agent cost after the best single move
  double current_cost = kInf;    ///< agent cost before moving
  bool improved = false;
};

/// Best single move (add, delete or swap) of agent u; `current_cost` is
/// always filled.  Thin wrapper over a one-shot DeviationEngine; batch
/// callers should build an engine once and reuse it across agents.
SingleMoveResult best_single_move(const Game& game, const StrategyProfile& s,
                                  int u);

/// Best edge *addition* only (the Add-only Equilibrium move set).
SingleMoveResult best_addition(const Game& game, const StrategyProfile& s,
                               int u);

/// Best edge *swap* only (the move set of swap/asymmetric-swap equilibria
/// from the basic network creation games the paper builds on).
SingleMoveResult best_swap(const Game& game, const StrategyProfile& s, int u);

/// Naive reference scans: one fresh Dijkstra per candidate move over the
/// AgentEnvironment, no caching and no delta evaluation.  These are the
/// differential-testing and benchmarking baselines for the DeviationEngine;
/// production callers should use the engine-backed functions above.
SingleMoveResult naive_best_single_move(const Game& game,
                                        const StrategyProfile& s, int u);
SingleMoveResult naive_best_addition(const Game& game,
                                     const StrategyProfile& s, int u);
SingleMoveResult naive_best_swap(const Game& game, const StrategyProfile& s,
                                 int u);

/// Applies `move` to agent u's strategy in place.
void apply_move(StrategyProfile& s, int u, const SingleMove& move);

}  // namespace gncg
