// Incremental profile hashing and the shared transposition table.
//
// Dynamics cycle detection and exhaustive FIP analysis both answer the same
// question many times per run: "have we seen this strategy profile before?"
// Answering it by full-profile comparison costs O(n^2/64) per step; this
// module makes the common case O(1):
//
//  * Zobrist-style ownership hashing: every directed ownership fact
//    "u buys (u,v)" has a fixed 64-bit key derived from (u, v) alone (two
//    SplitMix64 rounds -- no O(n^2) key table is ever materialized, which
//    matters on implicit geometric hosts), and a profile's hash is the XOR
//    of the keys of its ownership facts.  XOR makes the hash incrementally
//    maintainable: toggling one ownership fact updates the hash in O(1),
//    which is what DeviationEngine::profile_hash() does under mutations.
//  * TranspositionTable: an exact-confirmation hash index over visited
//    profiles.  A hash hit is only reported as a revisit after a full
//    profile comparison, so a hash collision can never certify a false
//    cycle -- collisions are counted (collisions()) and resolved, never
//    trusted.
//
// The table stores one StrategyProfile copy per *distinct* visited state
// (the confirmation material); callers that only need a running fingerprint
// use the zobrist_* free functions directly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/game.hpp"

namespace gncg {

/// Zobrist key of the directed ownership fact "u buys the edge (u, v)".
/// Pure function of (u, v): two full SplitMix64 avalanche rounds, so keys of
/// neighbouring pairs are uncorrelated and no key table is stored.
std::uint64_t zobrist_buy_key(int u, int v);

/// XOR of the buy keys of agent u's strategy.
std::uint64_t zobrist_strategy_hash(int u, const NodeSet& strategy);

/// From-scratch Zobrist hash of a whole profile: XOR over every ownership
/// fact.  The reference implementation the incremental maintenance in
/// DeviationEngine is differentially tested against.
std::uint64_t zobrist_profile_hash(const StrategyProfile& profile);

/// Exact-confirmation transposition table over strategy profiles.
///
/// Each recorded profile occupies one slot carrying a caller-defined
/// uint64 payload (a move index for cycle detection, a DFS color for the
/// exhaustive improvement-graph walk).  `find` reports a slot only after
/// confirming profile equality, so the table is collision-proof; the number
/// of confirmed collisions (distinct profiles sharing a hash) is exposed
/// for diagnostics.
class TranspositionTable {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Slot of a previously inserted profile equal to `profile`, or npos.
  /// `hash` must be zobrist_profile_hash(profile) (callers maintain it
  /// incrementally; confirmed here, never trusted alone).
  std::size_t find(std::uint64_t hash, const StrategyProfile& profile) const;

  /// Records `profile` under `hash` with payload `value`; returns its slot.
  /// Precondition: no equal profile is present (call find first).
  std::size_t insert(std::uint64_t hash, StrategyProfile profile,
                     std::uint64_t value);

  std::uint64_t value(std::size_t slot) const { return entries_[slot].value; }
  void set_value(std::size_t slot, std::uint64_t value) {
    entries_[slot].value = value;
  }
  const StrategyProfile& profile(std::size_t slot) const {
    return entries_[slot].profile;
  }

  /// Number of distinct profiles recorded.
  std::size_t size() const { return entries_.size(); }

  /// Confirmed hash collisions observed so far: comparisons where two
  /// *distinct* profiles shared a bucket hash.
  std::uint64_t collisions() const { return collisions_; }

 private:
  struct Entry {
    StrategyProfile profile;
    std::uint64_t value = 0;
  };

  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
  std::vector<Entry> entries_;
  mutable std::uint64_t collisions_ = 0;
};

}  // namespace gncg
