// The Generalized Network Creation Game (GNCG) of Bilò, Friedrich, Lenzner
// and Melnichenko (SPAA'19): game instances and strategy profiles.
//
// A game is a complete weighted host graph H plus the trade-off parameter
// alpha > 0.  Agent u's strategy S_u is a set of nodes it buys edges to; a
// strategy profile induces the built network
//   G(s) = (V, {(u,v) : v in S_u for some u}).
// Agent u pays alpha * w(u, S_u) plus the sum of its distances in G(s).
//
// StrategyProfile keeps one NodeSet per agent (ownership is directional:
// buys(u, v) says *u pays* for the undirected edge (u, v)).  Both endpoints
// buying the same edge is representable -- the paper notes it is always
// dominated, and our equilibrium enumeration skips it, but dynamics must be
// able to pass through such states.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "metric/host_graph.hpp"
#include "support/node_set.hpp"

namespace gncg {

/// An immutable game instance: host graph + alpha.  Host shortest-path
/// distances -- which lower-bound any built network's distances and power
/// the branch-and-bound in best response and optimum search -- are served by
/// the host's metric backend (dense closure computed once on first use;
/// implicit geometric backends answer in O(d)/O(1) with no O(n^2) state).
class Game {
 public:
  Game(HostGraph host, double alpha);

  int node_count() const { return host_.node_count(); }
  double alpha() const { return alpha_; }
  const HostGraph& host() const { return host_; }
  double weight(int u, int v) const { return host_.weight(u, v); }

  /// Shortest-path distance in the host graph (closure of the weights).
  double host_distance(int u, int v) const {
    return host_.host_distance(u, v);
  }

  /// Sum over v of host_distance(u, v): an admissible lower bound on any
  /// strategy's distance cost for agent u (cached by the backend).
  double host_distance_sum(int u) const {
    return host_.host_distance_sum(u);
  }

  /// True when agent u may buy the edge towards v (finite host weight).
  bool can_buy(int u, int v) const {
    return u != v && weight(u, v) < kInf;
  }

 private:
  HostGraph host_;
  double alpha_;
};

/// A strategy profile: one bought-set per agent.
class StrategyProfile {
 public:
  StrategyProfile() = default;

  /// All-empty profile for n agents.
  explicit StrategyProfile(int n);

  int node_count() const { return static_cast<int>(strategies_.size()); }

  /// True when v is in S_u (u pays for edge (u, v)).
  bool buys(int u, int v) const { return strategies_[idx(u)].contains(v); }

  /// True when the undirected edge (u, v) is present in the built network.
  bool has_edge(int u, int v) const { return buys(u, v) || buys(v, u); }

  void add_buy(int u, int v);
  void remove_buy(int u, int v);

  const NodeSet& strategy(int u) const { return strategies_[idx(u)]; }
  void set_strategy(int u, NodeSet strategy);

  /// Number of edges agent u buys.
  int bought_count(int u) const { return strategies_[idx(u)].size(); }

  /// Number of distinct built (undirected) edges.
  int built_edge_count() const;

  /// 64-bit fingerprint of the profile (cycle detection).
  std::uint64_t hash() const;

  bool operator==(const StrategyProfile& other) const {
    return strategies_ == other.strategies_;
  }
  bool operator!=(const StrategyProfile& other) const {
    return !(*this == other);
  }

 private:
  std::size_t idx(int u) const {
    GNCG_DASSERT(u >= 0 && u < node_count());
    return static_cast<std::size_t>(u);
  }

  std::vector<NodeSet> strategies_;
};

/// Adjacency lists of the built network G(s) with host weights.
std::vector<std::vector<Neighbor>> build_adjacency(const Game& game,
                                                   const StrategyProfile& s);

/// The built network as a WeightedGraph (duplicate-ownership edges collapse
/// into one undirected edge).
WeightedGraph built_graph(const Game& game, const StrategyProfile& s);

/// Profile in which every edge of `edges` is bought by its smaller-id
/// endpoint (the canonical ownership used when ownership is irrelevant).
StrategyProfile profile_from_edges(const Game& game,
                                   const std::vector<Edge>& edges);

/// Star profile: `center` buys an edge to every other node.
StrategyProfile star_profile(const Game& game, int center);

}  // namespace gncg
