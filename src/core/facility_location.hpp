// Uncapacitated Metric Facility Location (UMFL) and the Theorem 3 reduction.
//
// Theorem 3 proves that every Greedy Equilibrium of the M-GNCG is a 3-NE via
// a locality-gap-preserving reduction to UMFL: for agent u, facilities and
// clients are the other nodes, opening facility f means buying edge (u, f)
// (free when f already owns an edge to u), and the service distance from f
// to client c is w(u, f) + d_{G'}(f, c) where G' is the built network minus
// u's own edges.  Arya et al. showed UMFL local search (open/close/swap) has
// locality gap 3, which transfers to the game.
//
// This module implements: the UMFL instance type, its exact solver (subset
// enumeration, for tests), the open/close/swap local search, the reduction
// from a game position to UMFL, and the induced 3-approximate best response
// used by large-instance dynamics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/game.hpp"

namespace gncg {

/// An uncapacitated facility-location instance.
struct UmflInstance {
  /// Opening cost per facility; kInf marks facilities that may never open.
  std::vector<double> open_cost;
  /// service[f][c]: cost of serving client c from facility f (kInf allowed).
  std::vector<std::vector<double>> service;
  /// Facilities that every solution must keep open (the reduction's Z set).
  std::vector<char> forced_open;

  std::size_t facility_count() const { return open_cost.size(); }
  std::size_t client_count() const {
    return service.empty() ? 0 : service.front().size();
  }
};

/// A facility subset and its total cost.
struct UmflSolution {
  std::vector<char> open;
  double cost = kInf;
};

/// Total cost of a facility subset: opening costs plus every client's
/// distance to its nearest open facility (kInf if some client is unserved).
double umfl_cost(const UmflInstance& instance, const std::vector<char>& open);

/// Exact optimum by enumerating all facility subsets (<= ~20 facilities).
UmflSolution umfl_exact(const UmflInstance& instance);

/// Local search with single-facility moves (open one / close one / swap
/// one-for-one), iterating best-improvement until a local optimum.
/// By Arya et al. the result is a 3-approximation on metric instances.
UmflSolution umfl_local_search(const UmflInstance& instance,
                               std::vector<char> start,
                               std::uint64_t max_iterations = 100000);

/// Convenience: local search started from "all facilities with finite
/// opening cost open" (always feasible when the instance is feasible).
UmflSolution umfl_local_search(const UmflInstance& instance,
                               std::uint64_t max_iterations = 100000);

/// The Theorem 3 reduction from agent u's best-response problem.
struct BestResponseUmfl {
  UmflInstance instance;
  std::vector<int> facility_node;  ///< facility index -> game node id
  NodeSet owners_towards_agent;    ///< Z: nodes already buying an edge to u
};

/// Builds the UMFL instance encoding agent u's best-response problem in
/// profile `s` (u's own edges removed from the network first).
BestResponseUmfl umfl_from_best_response(const Game& game,
                                         const StrategyProfile& s, int u);

/// Maps a UMFL solution back to a strategy for agent u: buy towards every
/// open facility that is not already connected by its owner (S = F \ Z).
NodeSet umfl_solution_to_strategy(const BestResponseUmfl& reduction,
                                  const UmflSolution& solution, int n);

/// Maps agent u's candidate strategy to the corresponding facility set
/// (F_S = S union Z); the paper's bijection pi.
std::vector<char> strategy_to_umfl_open(const BestResponseUmfl& reduction,
                                        const NodeSet& strategy);

/// 3-approximate best response via the reduction + local search, started
/// from u's current strategy.  Used by dynamics on instances too large for
/// the exact search.
NodeSet approx_best_response_umfl(const Game& game, const StrategyProfile& s,
                                  int u);

}  // namespace gncg
