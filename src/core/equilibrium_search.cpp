#include "core/equilibrium_search.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "core/deviation_engine.hpp"
#include "core/equilibrium.hpp"
#include "core/restarts.hpp"
#include "core/transposition.hpp"
#include "graph/union_find.hpp"
#include "support/parallel.hpp"

namespace gncg {

double EquilibriumSet::min_cost() const {
  double best = kInf;
  for (double c : social_costs) best = std::min(best, c);
  return best;
}

double EquilibriumSet::max_cost() const {
  double worst = -kInf;
  for (double c : social_costs) worst = std::max(worst, c);
  return social_costs.empty() ? kInf : worst;
}

EquilibriumSet enumerate_nash_equilibria(const Game& game,
                                         const EnumerationOptions& options) {
  const int n = game.node_count();
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (game.can_buy(u, v)) pairs.emplace_back(u, v);

  std::uint64_t states = 1;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    GNCG_CHECK(states <= options.max_states / 3,
               "NE enumeration would visit more than "
                   << options.max_states
                   << " states; reduce n or raise max_states");
    states *= 3;
  }

  EquilibriumSet result;
  result.exhaustive = true;
  std::mutex result_mutex;

  parallel_for(
      0, states,
      [&](std::size_t state) {
        // Decode trits: 0 absent, 1 smaller endpoint buys, 2 larger buys.
        StrategyProfile profile(n);
        UnionFind dsu(n);
        std::uint64_t rest = state;
        for (const auto& [u, v] : pairs) {
          const int trit = static_cast<int>(rest % 3);
          rest /= 3;
          if (trit == 1) profile.add_buy(u, v);
          else if (trit == 2) profile.add_buy(v, u);
          if (trit != 0) dsu.unite(u, v);
        }
        if (dsu.components() != 1) return;  // only connected equilibria

        // Cheap rejection: most profiles admit an improving single move.
        // One engine per candidate profile shares the adjacency and SSSP
        // caches across all agents' early-exit scans.
        DeviationEngine engine(game, profile);
        for (int u = 0; u < n; ++u)
          if (engine.has_improving_single_move(u)) return;
        // Full exact check over the same engine state.
        if (!is_nash_equilibrium(engine)) return;

        const double cost = social_cost(game, profile);
        const std::lock_guard<std::mutex> lock(result_mutex);
        result.profiles.push_back(std::move(profile));
        result.social_costs.push_back(cost);
      },
      /*grain=*/64);
  return result;
}

EquilibriumSet sample_equilibria(const Game& game,
                                 const SamplingOptions& options) {
  // The restart driver fans the attempts over the worker pool; attempt i's
  // randomness is the stream stream_seed("sample_equilibria", i, seed), so
  // the collected equilibrium set is bit-identical for any thread count.
  RestartOptions restarts;
  restarts.restarts = options.attempts;
  restarts.seed = options.seed;
  restarts.label = "sample_equilibria";
  restarts.dynamics.rule = options.rule;
  restarts.dynamics.max_moves = options.max_moves;
  restarts.dynamics.detect_cycles = true;
  restarts.dynamics.record_steps = false;  // only final profiles are consumed
  restarts.scheduler_cycle = {SchedulerKind::kRoundRobin,
                              SchedulerKind::kRandomOrder};
  return collect_distinct_equilibria(game, run_restarts(game, restarts),
                                     options.verify_exact_ne);
}

EquilibriumSet collect_distinct_equilibria(const Game& game,
                                           const RestartReport& report,
                                           bool verify_exact_ne) {
  // Deterministic collection in restart order.  Dedup uses the Zobrist
  // hash as a bucket key with exact profile comparison confirming every
  // hit (a collision can never merge two profiles); the index maps into
  // result.profiles / the rejected store directly, so each distinct
  // profile -- accepted or rejected -- is held exactly once.  Rejected
  // non-NE profiles are remembered so their duplicates skip the
  // (exponential) re-verification.
  EquilibriumSet result;
  std::vector<StrategyProfile> rejected;
  struct Slot {
    bool accepted = false;
    std::size_t index = 0;
  };
  std::unordered_map<std::uint64_t, std::vector<Slot>> buckets;
  for (const RestartRun& run : report.runs) {
    if (run.skipped || !run.result.converged) continue;
    const StrategyProfile& profile = run.result.final_profile;
    const std::uint64_t hash = zobrist_profile_hash(profile);
    auto& bucket = buckets[hash];
    bool duplicate = false;
    for (const Slot& slot : bucket) {
      const StrategyProfile& stored =
          slot.accepted ? result.profiles[slot.index] : rejected[slot.index];
      if (stored == profile) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (verify_exact_ne && !is_nash_equilibrium(game, profile)) {
      bucket.push_back({false, rejected.size()});
      rejected.push_back(profile);
      continue;
    }
    bucket.push_back({true, result.profiles.size()});
    result.social_costs.push_back(social_cost(game, profile));
    result.profiles.push_back(profile);
  }
  return result;
}

PoaEstimate estimate_poa(const EquilibriumSet& equilibria, double optimum_cost,
                         bool optimum_exact) {
  PoaEstimate estimate;
  estimate.optimum_cost = optimum_cost;
  estimate.equilibrium_count = equilibria.profiles.size();
  estimate.exact = equilibria.exhaustive && optimum_exact;
  if (equilibria.empty() || !(optimum_cost > 0.0)) return estimate;
  estimate.poa = equilibria.max_cost() / optimum_cost;
  estimate.pos = equilibria.min_cost() / optimum_cost;
  return estimate;
}

}  // namespace gncg
