#include "core/equilibrium_search.hpp"

#include <algorithm>
#include <mutex>

#include "core/deviation_engine.hpp"
#include "core/equilibrium.hpp"
#include "graph/union_find.hpp"
#include "support/parallel.hpp"

namespace gncg {

double EquilibriumSet::min_cost() const {
  double best = kInf;
  for (double c : social_costs) best = std::min(best, c);
  return best;
}

double EquilibriumSet::max_cost() const {
  double worst = -kInf;
  for (double c : social_costs) worst = std::max(worst, c);
  return social_costs.empty() ? kInf : worst;
}

EquilibriumSet enumerate_nash_equilibria(const Game& game,
                                         const EnumerationOptions& options) {
  const int n = game.node_count();
  std::vector<std::pair<int, int>> pairs;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (game.can_buy(u, v)) pairs.emplace_back(u, v);

  std::uint64_t states = 1;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    GNCG_CHECK(states <= options.max_states / 3,
               "NE enumeration would visit more than "
                   << options.max_states
                   << " states; reduce n or raise max_states");
    states *= 3;
  }

  EquilibriumSet result;
  result.exhaustive = true;
  std::mutex result_mutex;

  parallel_for(
      0, states,
      [&](std::size_t state) {
        // Decode trits: 0 absent, 1 smaller endpoint buys, 2 larger buys.
        StrategyProfile profile(n);
        UnionFind dsu(n);
        std::uint64_t rest = state;
        for (const auto& [u, v] : pairs) {
          const int trit = static_cast<int>(rest % 3);
          rest /= 3;
          if (trit == 1) profile.add_buy(u, v);
          else if (trit == 2) profile.add_buy(v, u);
          if (trit != 0) dsu.unite(u, v);
        }
        if (dsu.components() != 1) return;  // only connected equilibria

        // Cheap rejection: most profiles admit an improving single move.
        // One engine per candidate profile shares the adjacency and SSSP
        // caches across all agents' early-exit scans.
        DeviationEngine engine(game, profile);
        for (int u = 0; u < n; ++u)
          if (engine.has_improving_single_move(u)) return;
        // Full exact check over the same engine state.
        if (!is_nash_equilibrium(engine)) return;

        const double cost = social_cost(game, profile);
        const std::lock_guard<std::mutex> lock(result_mutex);
        result.profiles.push_back(std::move(profile));
        result.social_costs.push_back(cost);
      },
      /*grain=*/64);
  return result;
}

EquilibriumSet sample_equilibria(const Game& game,
                                 const SamplingOptions& options) {
  EquilibriumSet result;
  Rng rng(options.seed);
  std::vector<std::uint64_t> seen_hashes;
  for (int attempt = 0; attempt < options.attempts; ++attempt) {
    DynamicsOptions dyn;
    dyn.rule = options.rule;
    dyn.scheduler = attempt % 2 == 0 ? SchedulerKind::kRoundRobin
                                     : SchedulerKind::kRandomOrder;
    dyn.max_moves = options.max_moves;
    dyn.detect_cycles = true;
    dyn.seed = rng();
    auto run = run_dynamics(game, random_profile(game, rng), dyn);
    if (!run.converged) continue;
    const std::uint64_t h = run.final_profile.hash();
    bool duplicate = false;
    for (std::size_t i = 0; i < seen_hashes.size(); ++i) {
      if (seen_hashes[i] == h && result.profiles[i] == run.final_profile) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (options.verify_exact_ne && !is_nash_equilibrium(game, run.final_profile))
      continue;
    seen_hashes.push_back(h);
    result.social_costs.push_back(social_cost(game, run.final_profile));
    result.profiles.push_back(std::move(run.final_profile));
  }
  return result;
}

PoaEstimate estimate_poa(const EquilibriumSet& equilibria, double optimum_cost,
                         bool optimum_exact) {
  PoaEstimate estimate;
  estimate.optimum_cost = optimum_cost;
  estimate.equilibrium_count = equilibria.profiles.size();
  estimate.exact = equilibria.exhaustive && optimum_exact;
  if (equilibria.empty() || !(optimum_cost > 0.0)) return estimate;
  estimate.poa = equilibria.max_cost() / optimum_cost;
  estimate.pos = equilibria.min_cost() / optimum_cost;
  return estimate;
}

}  // namespace gncg
