// Equilibrium concepts: Nash (NE), Greedy (GE), Add-only (AE) and their
// beta-approximate variants.
//
// Containments (paper, Section 1.1):  NE  =>  GE  =>  AE.
// The approximation factors connect them quantitatively:
//   * Theorem 2:   any AE in the M-GNCG is an (alpha+1)-GE,
//   * Theorem 3:   any GE in the M-GNCG is a 3-NE,
//   * Corollary 2: any AE in the M-GNCG is a 3(alpha+1)-NE.
// `nash_approx_factor` / `greedy_approx_factor` measure the realized beta of
// a profile so the experiments can compare measured beta against these
// guarantees.
#pragma once

#include "core/best_response.hpp"
#include "core/game.hpp"

namespace gncg {

class DeviationEngine;

/// True when no agent can strictly improve by buying one extra edge.
bool is_add_only_equilibrium(const Game& game, const StrategyProfile& s);

/// True when no agent can strictly improve by one add, delete or swap.
bool is_greedy_equilibrium(const Game& game, const StrategyProfile& s);

/// True when no agent can strictly improve by swapping one owned edge for
/// another (the swap-only move set of the "basic"/asymmetric-swap network
/// creation games the paper builds on [Alon et al.'10, Mihalak &
/// Schlegel'12]).  Weaker than GE: GE => swap equilibrium.
bool is_swap_equilibrium(const Game& game, const StrategyProfile& s);

/// True when every agent plays an exact best response (pure NE).
/// Exponential in n per agent; intended for the small instances where the
/// experiments verify constructions exactly.
bool is_nash_equilibrium(const Game& game, const StrategyProfile& s);

/// Engine-state variant of the exact NE check: shares the engine's cached
/// adjacency and costs (used by enumeration, one engine per profile).
bool is_nash_equilibrium(DeviationEngine& engine);

/// The realized beta of the profile as an approximate NE:
///   beta = max_u cost(u) / cost(u's exact best response).
/// 1 means exact NE.  Returns kInf when some agent could move from infinite
/// to finite cost.
double nash_approx_factor(const Game& game, const StrategyProfile& s);

/// The realized beta of the profile as an approximate GE:
///   beta = max_u cost(u) / cost(u's best single move).
double greedy_approx_factor(const Game& game, const StrategyProfile& s);

/// Per-agent equilibrium diagnostics (used by reports and tests).
struct AgentEquilibriumReport {
  double current_cost = 0.0;
  double best_response_cost = 0.0;
  double best_single_move_cost = 0.0;
  bool best_response_improves = false;
  bool single_move_improves = false;
};

AgentEquilibriumReport agent_equilibrium_report(const Game& game,
                                                const StrategyProfile& s,
                                                int u);

}  // namespace gncg
