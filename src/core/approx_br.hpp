// Approximate best response: the three-tier ladder for large geometric
// games.
//
// Exact best response is NP-hard (Corollary 1), and even the pruned
// branch-and-bound of core/br_search.hpp enumerates subsets of *all* n-1
// purchase targets.  On geometric hosts most of those targets are useless:
// a far-away node is reached more cheaply through a near neighbor than by a
// direct edge.  The ladder exploits this through the spatial candidate
// oracle (HostBackend::candidate_targets -- grid-accelerated on euclidean
// backends) and climbs three tiers, each with a certified quality bound:
//
//  * Tier 1 -- greedy over the shortlist.  Starting from the empty
//    strategy, repeatedly add the candidate edge with the largest cost
//    decrease (incremental decrease-only SSSP repair per probe, rollback
//    between probes; canonical cost evaluation as in br_search).  Cost:
//    O(budget^2) bounded-Dijkstra repairs, no subset enumeration.
//  * Tier 2 -- exact search restricted to the shortlist.  br_search with
//    BestResponseOptions::restrict_targets: the true minimum c_C over
//    strategies inside the candidate set C.
//  * Tier 3 (on demand) -- the full unrestricted exact search, seeded with
//    c_C as the incumbent.
//
// Certification.  Every tier reports an admissible lower bound LB on the
// *unrestricted* best-response cost and beta = cost / LB.  The bound is the
// PR 5 floor contract re-used as an escape bound: any strategy buying at
// least one edge outside C pays at least
//     escape_lb = alpha * w_out_min + tight_floor(host_row, base_dist,
//                                                 w_min_all)
// where w_out_min is the cheapest purchasable non-candidate edge, and
// tight_floor is the per-node admissible floor
//     sum_t max(d_H(u,t), min(d_base(t), w_min_all))
// (any path either avoids new edges, length >= the empty-strategy distance,
// or starts with one, whose weight alone is >= w_min_all -- new edges are
// all incident to the source).  Hence after tier 2,
//     LB = min(c_C, escape_lb)
// and when escape_lb cannot strictly beat c_C the restricted optimum *is*
// the unrestricted one: the result is certified exact (beta = 1) without
// ever enumerating outside the shortlist.  tests/test_approx_br.cpp holds
// the differential gates (full-coverage shortlist == naive exact search,
// bitwise).
#pragma once

#include <cstdint>

#include "core/best_response.hpp"
#include "core/game.hpp"

namespace gncg {

/// Options for the approximate-BR ladder.
struct ApproxBrOptions {
  /// Candidate-shortlist size handed to the spatial oracle; <= 0 picks the
  /// default (min(n-1, 16)).  budget >= n-1 makes tier 2 the unrestricted
  /// exact search.
  int budget = 0;
  /// The agent's current cost; `improved` reports a strict win over it.
  double incumbent = kInf;
  /// Permit the tier-3 unrestricted exact search when tier 2 fails to
  /// certify beta <= beta_target (or fails to certify exactness when
  /// beta_target == 0).
  bool allow_exact = false;
  /// Certification goal: stop climbing once beta <= beta_target.  0 means
  /// "certify exactness or climb as far as allowed".
  double beta_target = 0.0;

  /// Bounded-frontier repair cap (graph/incremental_sssp.hpp): with a
  /// positive cap, tier-1 probes and the tier-2 restricted search truncate
  /// their decrease-only repairs after `repair_cap` distance overwrites.
  /// Truncated probes settle on a certified *underestimate* used only for
  /// pruning/ranking; every adopted strategy is re-costed by full repairs,
  /// so `cost` stays an achieved (canonical) cost and the certificates stay
  /// admissible.  0 = exact repairs everywhere (the historical ladder,
  /// bit-for-bit).
  std::size_t repair_cap = 0;

  /// Adaptive repair radius for bounded tier-1 probes: probing candidate
  /// edge (u, v) of weight w truncates its repair once the cheapest
  /// unexplored frontier key exceeds `repair_radius_scale * w` -- a
  /// locality bound in the candidate's own scale (a weight-w edge mostly
  /// improves nodes within O(w) of its endpoint), where the write cap alone
  /// is blind to geometry.  The cap stays on as the worst-case backstop.
  /// Only consulted in bounded mode (repair_cap > 0), so the cap-0 exact
  /// ladder is untouched; truncated estimates still only rank probes and
  /// every adopted strategy is re-costed by full repairs.  0 disables the
  /// radius (write-cap-only truncation).
  double repair_radius_scale = 4.0;

  /// Agent u's SSSP row in the *current built network* (including u's own
  /// edges), e.g. DeviationEngine::distances_warm(u).  When set, the ladder
  /// folds the current-network floor into its certificates: every new edge
  /// (u,x) costs at least d_cur(x) - G where G = max_x (d_cur(x) - w(u,x)),
  /// so node t sits at distance >= min(d_base(t), max(w_min, d_cur(t) - G))
  /// in any deviation -- usually far tighter than the bare w_min floor on
  /// near-equilibrium profiles.  nullptr = the PR 7 certificates unchanged.
  /// The pointee must outlive the call.
  const std::vector<double>* current_dist = nullptr;
};

/// Result of an approximate-BR ladder run.
struct ApproxBrResult {
  NodeSet strategy;               ///< best strategy found
  double cost = kInf;             ///< canonical agent cost of `strategy`
  double lower_bound = 0.0;       ///< admissible LB on the unrestricted BR
  double beta = 1.0;              ///< cost / lower_bound (kInf when LB == 0)
  int tier = 1;                   ///< highest tier that ran
  bool exact = false;             ///< certified equal to the unrestricted BR
  bool improved = false;          ///< beat options.incumbent strictly
  int candidates = 0;             ///< shortlist size actually used
  std::uint64_t evaluations = 0;  ///< candidate evaluations across tiers
};

class DeviationEngine;

/// Approximate best response of agent u against the rest of profile `s`.
ApproxBrResult approx_best_response_ladder(const Game& game,
                                           const StrategyProfile& s, int u,
                                           const ApproxBrOptions& options = {});

/// Engine-backed variant: borrows the engine's materialized adjacency for
/// the environment (no copy), like exact_best_response.
ApproxBrResult approx_best_response_ladder(const DeviationEngine& engine,
                                           int u,
                                           const ApproxBrOptions& options = {});

/// One agent's entry in a batched certification pass.
struct CertifiedAgent {
  int agent = -1;
  /// The agent's cost in the profile being certified (the incumbent the
  /// ladder ran against); eps_u = max(0, current_cost - result.lower_bound)
  /// bounds the agent's achievable regret.
  double current_cost = kInf;
  ApproxBrResult result;
};

/// Batched near-equilibrium certification: runs the ladder for every agent
/// in `agents` against the engine's current profile and returns one
/// CertifiedAgent per entry, in input order.
///
/// Compared to a loop of cold approx_best_response_ladder calls this
///  * shares one engine across the batch and lazily materializes exactly the
///    sampled agents' current-network rows (a full warm pass would be O(n^2)
///    memory at large n), seeding each agent's incumbent and current-network
///    floor (ApproxBrOptions::current_dist) from its cached row;
///  * processes agents in spatial-locality order (grid cell on euclidean
///    hosts, host-distance-to-anchor otherwise) so consecutive ladders
///    touch overlapping neighborhoods while the adjacency slab is hot.
/// Per-agent options (budget, repair_cap, beta_target, allow_exact) come
/// from `options`; incumbent and current_dist are overwritten per agent.
std::vector<CertifiedAgent> certify_agents(DeviationEngine& engine,
                                           const std::vector<int>& agents,
                                           const ApproxBrOptions& options = {});

}  // namespace gncg
