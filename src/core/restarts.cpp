#include "core/restarts.hpp"

#include <atomic>
#include <memory>
#include <utility>

#include "support/parallel.hpp"

namespace gncg {

namespace {

/// Per-pool-worker scratch: one engine reused across this worker's
/// restarts (set_profile instead of reconstruction).
struct Worker {
  std::unique_ptr<DeviationEngine> engine;
};

}  // namespace

RestartReport run_restarts(const Game& game, const RestartOptions& options) {
  GNCG_CHECK(options.restarts >= 0, "run_restarts needs restarts >= 0");
  GNCG_CHECK(options.dynamics.observer == nullptr,
             "run_restarts cannot share a StepObserver across pool workers; "
             "observe single runs via run_dynamics");
  GNCG_CHECK(!options.verify_cycles || options.dynamics.record_steps,
             "verify_cycles needs dynamics.record_steps (cycle replay reads "
             "the trace)");
  GNCG_CHECK(!options.stop_after_verified_cycle || options.verify_cycles,
             "stop_after_verified_cycle needs verify_cycles (it stops on "
             "*verified* witnesses only)");

  RestartReport report;
  report.runs.resize(static_cast<std::size_t>(options.restarts));
  const std::size_t total = report.runs.size();

  // Smallest restart index with a verified cycle so far (cycle-hunting
  // early exit): restarts above it are skipped.  Monotonically decreasing,
  // so the minimal verified index itself can never be skipped.
  std::atomic<std::size_t> first_verified{total};

  parallel_reduce<Worker>(
      0, total, [] { return Worker{}; },
      [&](Worker& worker, std::size_t i) {
        if (options.stop_after_verified_cycle &&
            i > first_verified.load(std::memory_order_relaxed)) {
          report.runs[i].skipped = true;
          return;
        }
        const std::uint64_t stream =
            stream_seed(options.label, i, options.seed);
        Rng rng(stream);
        StrategyProfile start = make_start_profile(
            game, rng, options.start, options.extra_edge_prob);

        DynamicsOptions dynamics = options.dynamics;
        if (!options.scheduler_cycle.empty()) {
          dynamics.scheduler =
              options.scheduler_cycle[i % options.scheduler_cycle.size()];
          dynamics.scheduler_name.clear();
        }
        // The run's internal randomness continues the restart stream.
        dynamics.seed = rng();

        if (worker.engine == nullptr)
          worker.engine =
              std::make_unique<DeviationEngine>(game, std::move(start));
        else
          worker.engine->set_profile(std::move(start));

        RestartRun run;
        run.stream = stream;
        run.scheduler = dynamics.scheduler_name.empty()
                            ? std::string(scheduler_name(dynamics.scheduler))
                            : dynamics.scheduler_name;
        run.result = run_dynamics(*worker.engine, dynamics);
        if (options.verify_cycles) {
          if (run.result.cycle_found) {
            const bool require_br =
                dynamics.rule_name.empty()
                    ? dynamics.rule == MoveRule::kBestResponse
                    : dynamics.rule_name == "best_response";
            run.cycle_verified = verify_improvement_cycle(
                game, run.result.final_profile, run.result.cycle_steps(),
                require_br);
            if (run.cycle_verified && options.stop_after_verified_cycle) {
              std::size_t expected = first_verified.load();
              while (i < expected &&
                     !first_verified.compare_exchange_weak(expected, i)) {
              }
            }
          }
          // Only a verified witness's trace is ever consumed; dropping the
          // rest keeps the report O(winner) instead of O(attempts * moves).
          if (!run.cycle_verified) {
            run.result.steps.clear();
            run.result.steps.shrink_to_fit();
          }
        }
        report.runs[i] = std::move(run);
      },
      [](Worker&, Worker&) {}, /*grain=*/1, /*serial_cutoff=*/2);

  // Deterministic aggregation: fold in restart order, never pool order
  // (under stop_after_verified_cycle the skipped tail makes the counters
  // timing-dependent; the first verified cycle itself stays deterministic).
  for (const RestartRun& run : report.runs) {
    if (run.skipped) continue;
    if (run.result.converged) {
      ++report.converged;
      report.moves_to_convergence.add(static_cast<double>(run.result.moves));
    }
    if (run.result.cycle_found) ++report.cycles_found;
    if (run.cycle_verified) ++report.cycles_verified;
    report.hash_collisions += run.result.hash_collisions;
  }
  return report;
}

}  // namespace gncg
