#include "core/dynamics_policy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/approx_br.hpp"
#include "core/best_response.hpp"
#include "core/facility_location.hpp"
#include "support/instrument.hpp"
#include "support/parallel.hpp"

namespace gncg {

namespace {

// --- move rules -----------------------------------------------------------

class BestResponseRule final : public MoveRulePolicy {
 public:
  std::string_view name() const override { return "best_response"; }
  bool wants_full_warm() const override { return false; }

  Proposal propose_warm(const DeviationEngine& engine, int u) const override {
    Proposal proposal;
    const double current = engine.agent_cost_warm(u);
    BestResponseOptions options;
    options.incumbent = current;
    const auto br = exact_best_response(engine, u, options);
    proposal.old_cost = current;
    if (br.improved) {
      proposal.improving = true;
      proposal.strategy = br.strategy;
      proposal.new_cost = br.cost;
    }
    return proposal;
  }
};

/// Shared body of the GE (add/delete/swap) and AE (add-only) scan rules.
class SingleMoveRule final : public MoveRulePolicy {
 public:
  explicit SingleMoveRule(bool additions_only)
      : additions_only_(additions_only) {}

  std::string_view name() const override {
    return additions_only_ ? "best_addition" : "best_single_move";
  }
  bool wants_full_warm() const override { return true; }

  Proposal propose_warm(const DeviationEngine& engine, int u) const override {
    Proposal proposal;
    const auto move = additions_only_ ? engine.best_addition_warm(u)
                                      : engine.best_single_move_warm(u);
    proposal.old_cost = move.current_cost;
    if (move.improved) {
      proposal.improving = true;
      NodeSet next = engine.profile().strategy(u);
      if (move.move.remove >= 0) next.erase(move.move.remove);
      if (move.move.add >= 0) next.insert(move.move.add);
      proposal.strategy = std::move(next);
      proposal.new_cost = move.cost;
    }
    return proposal;
  }

 private:
  bool additions_only_;
};

class UmflRule final : public MoveRulePolicy {
 public:
  std::string_view name() const override { return "umfl_response"; }
  bool wants_full_warm() const override { return false; }

  Proposal propose_warm(const DeviationEngine& engine, int u) const override {
    Proposal proposal;
    const double current = engine.agent_cost_warm(u);
    NodeSet candidate =
        approx_best_response_umfl(engine.game(), engine.profile(), u);
    const double cost = engine.cost_of_strategy(u, candidate);
    proposal.old_cost = current;
    if (improves(cost, current) &&
        !(candidate == engine.profile().strategy(u))) {
      proposal.improving = true;
      proposal.strategy = std::move(candidate);
      proposal.new_cost = cost;
    }
    return proposal;
  }
};

/// Approximate-BR ladder rule: tier-1 greedy over the spatial shortlist,
/// escalating to the shortlist-restricted exact search (core/approx_br.hpp).
/// The ladder's result is re-checked against the agent's warm current cost,
/// so an applied move is always a strict improvement -- the dynamics then
/// follow approximate better-response, and a converged profile is a
/// (beta, eps)-equilibrium certified by the ladder's escape bound.
class ApproxLadderRule final : public MoveRulePolicy {
 public:
  ApproxLadderRule(int budget, std::size_t repair_cap)
      : budget_(budget), repair_cap_(repair_cap) {}

  std::string_view name() const override { return "approx_ladder"; }
  bool wants_full_warm() const override { return false; }

  Proposal propose_warm(const DeviationEngine& engine, int u) const override {
    Proposal proposal;
    const double current = engine.agent_cost_warm(u);
    ApproxBrOptions options;
    options.budget = budget_;
    options.incumbent = current;
    options.repair_cap = repair_cap_;
    // The warm row tightens the ladder's tier-1 certificate; a tier-1 exact
    // claim (sound: lower_bound >= cost means nothing improves on it) then
    // skips the restricted search without changing the proposal.
    options.current_dist = &engine.distances_warm(u);
    const ApproxBrResult ladder = approx_best_response_ladder(engine, u,
                                                              options);
    proposal.old_cost = current;
    if (ladder.improved &&
        !(ladder.strategy == engine.profile().strategy(u))) {
      proposal.improving = true;
      proposal.strategy = ladder.strategy;
      proposal.new_cost = ladder.cost;
    }
    return proposal;
  }

 private:
  int budget_;
  std::size_t repair_cap_;
};

// --- schedulers -----------------------------------------------------------

/// Round-robin / random-order: probe agents along an activation order; a
/// step continues the current round, a full round without a move certifies
/// convergence (the profile only changes on applied steps, so nothing can
/// start improving between silent probes).
class OrderScheduler final : public SchedulerPolicy {
 public:
  OrderScheduler(int n, bool reshuffle) : reshuffle_(reshuffle) {
    order_.resize(static_cast<std::size_t>(n));
    std::iota(order_.begin(), order_.end(), 0);
    cursor_ = order_.size();  // first next() opens round 1
  }

  std::string_view name() const override {
    return reshuffle_ ? "random_order" : "round_robin";
  }

  std::optional<Activation> next(DeviationEngine& engine,
                                 const MoveRulePolicy& rule,
                                 Rng& rng) override {
    for (;;) {
      if (cursor_ >= order_.size()) {
        if (!moved_this_round_ && rounds_ > 0) return std::nullopt;
        cursor_ = 0;
        moved_this_round_ = false;
        ++rounds_;
        if (reshuffle_) rng.shuffle(order_);
      }
      const int u = order_[cursor_++];
      Proposal proposal = propose(engine, rule, u);
      if (proposal.improving) {
        moved_this_round_ = true;
        return Activation{u, std::move(proposal)};
      }
    }
  }

  std::uint64_t rounds() const override { return rounds_; }

 private:
  bool reshuffle_;
  std::vector<int> order_;
  std::size_t cursor_ = 0;
  bool moved_this_round_ = false;
  std::uint64_t rounds_ = 0;
};

/// One agent's entry in the max-gain tournament.
struct BestProposal {
  int agent = -1;
  double gain = 0.0;
  Proposal proposal;
};

/// Folds agent u's proposal into the accumulator: largest gain wins, ties
/// go to the smallest agent id (the order a sequential scan would keep).
void fold_proposal(BestProposal& best, const DeviationEngine& engine, int u,
                   const MoveRulePolicy& rule) {
  Proposal p = rule.propose_warm(engine, u);
  if (!p.improving) return;
  const double gain = p.gain();
  if (best.agent < 0 || gain > best.gain ||
      (gain == best.gain && u < best.agent)) {
    best.agent = u;
    best.gain = gain;
    best.proposal = std::move(p);
  }
}

class MaxGainScheduler final : public SchedulerPolicy {
 public:
  explicit MaxGainScheduler(int n) : n_(n) {}

  std::string_view name() const override { return "max_gain"; }

  std::optional<Activation> next(DeviationEngine& engine,
                                 const MoveRulePolicy& rule, Rng&) override {
    // All agents are proposed against the same warm engine state, fanned
    // out over the worker pool.
    engine.warm_distances();
    BestProposal best = parallel_reduce<BestProposal>(
        0, static_cast<std::size_t>(n_), [] { return BestProposal{}; },
        [&](BestProposal& acc, std::size_t u) {
          fold_proposal(acc, engine, static_cast<int>(u), rule);
        },
        [](BestProposal& total, BestProposal& acc) {
          if (acc.agent < 0) return;
          if (total.agent < 0 || acc.gain > total.gain ||
              (acc.gain == total.gain && acc.agent < total.agent)) {
            total = std::move(acc);
          }
        },
        /*grain=*/1);
    if (best.agent < 0) return std::nullopt;
    ++steps_;
    return Activation{best.agent, std::move(best.proposal)};
  }

  std::uint64_t rounds() const override { return steps_; }

 private:
  int n_;
  std::uint64_t steps_ = 0;
};

/// Proposes every agent against warm state into a pre-sized vector (one
/// writer per slot, so the result is independent of thread count).
std::vector<Proposal> propose_all(DeviationEngine& engine,
                                  const MoveRulePolicy& rule, int n) {
  engine.warm_distances();
  std::vector<Proposal> proposals(static_cast<std::size_t>(n));
  const DeviationEngine& warm = engine;
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t u) {
    proposals[u] = rule.propose_warm(warm, static_cast<int>(u));
  });
  return proposals;
}

/// Max-gain with a starvation bound: an agent whose improving move has been
/// passed over for `bound` consecutive selections is prioritized (most
/// overdue first).  Bounded unfairness matters for dynamics experiments:
/// pure max-gain can starve an agent indefinitely, which the convergence
/// literature's fairness assumptions (and the paper's round-based
/// schedules) exclude.
class FairnessBoundedScheduler final : public SchedulerPolicy {
 public:
  FairnessBoundedScheduler(int n, std::uint64_t bound)
      : n_(n),
        bound_(bound == 0 ? 2 * static_cast<std::uint64_t>(n) : bound),
        waiting_(static_cast<std::size_t>(n), 0) {}

  std::string_view name() const override { return "fairness_bounded"; }

  std::optional<Activation> next(DeviationEngine& engine,
                                 const MoveRulePolicy& rule, Rng&) override {
    std::vector<Proposal> proposals = propose_all(engine, rule, n_);
    int chosen = -1;
    bool overdue = false;
    for (int u = 0; u < n_; ++u) {
      if (!proposals[static_cast<std::size_t>(u)].improving) continue;
      const std::uint64_t wait = waiting_[static_cast<std::size_t>(u)];
      if (wait >= bound_) {
        // Overdue agents win outright; among them the most overdue first
        // (ties to the smallest id via strict >).
        if (!overdue || wait > waiting_[static_cast<std::size_t>(chosen)]) {
          chosen = u;
          overdue = true;
        }
      } else if (!overdue) {
        if (chosen < 0 ||
            proposals[static_cast<std::size_t>(u)].gain() >
                proposals[static_cast<std::size_t>(chosen)].gain()) {
          chosen = u;
        }
      }
    }
    if (chosen < 0) return std::nullopt;
    for (int u = 0; u < n_; ++u) {
      auto& wait = waiting_[static_cast<std::size_t>(u)];
      if (u == chosen || !proposals[static_cast<std::size_t>(u)].improving)
        wait = 0;
      else
        ++wait;
    }
    ++steps_;
    return Activation{chosen,
                      std::move(proposals[static_cast<std::size_t>(chosen)])};
  }

  std::uint64_t rounds() const override { return steps_; }

 private:
  int n_;
  std::uint64_t bound_;
  std::vector<std::uint64_t> waiting_;
  std::uint64_t steps_ = 0;
};

/// Samples an improving agent with probability proportional to
/// exp(gain / T), T scaled relative to the current largest gain.  A
/// randomized middle ground between max-gain (tau -> 0) and uniform random
/// activation of improving agents (tau -> inf); selection randomness comes
/// from the run's Rng, so runs stay reproducible.
class SoftmaxGainScheduler final : public SchedulerPolicy {
 public:
  SoftmaxGainScheduler(int n, double tau) : n_(n), tau_(tau) {}

  std::string_view name() const override { return "softmax_gain"; }

  std::optional<Activation> next(DeviationEngine& engine,
                                 const MoveRulePolicy& rule,
                                 Rng& rng) override {
    std::vector<Proposal> proposals = propose_all(engine, rule, n_);
    std::vector<int> improving;
    bool any_inf = false;
    for (int u = 0; u < n_; ++u) {
      if (!proposals[static_cast<std::size_t>(u)].improving) continue;
      improving.push_back(u);
      any_inf = any_inf ||
                proposals[static_cast<std::size_t>(u)].gain() == kInf;
    }
    if (improving.empty()) return std::nullopt;

    int chosen;
    if (any_inf) {
      // Reconnecting moves (infinite gain) dominate every finite one:
      // sample uniformly among them.
      std::vector<int> urgent;
      for (int u : improving)
        if (proposals[static_cast<std::size_t>(u)].gain() == kInf)
          urgent.push_back(u);
      chosen = urgent[rng.uniform_below(urgent.size())];
    } else {
      double max_gain = 0.0;
      for (int u : improving)
        max_gain =
            std::max(max_gain, proposals[static_cast<std::size_t>(u)].gain());
      const double temperature = tau_ * max_gain;
      if (!(temperature > 0.0)) {
        // Degenerate gains: fall back to uniform among improving agents.
        chosen = improving[rng.uniform_below(improving.size())];
      } else {
        double total = 0.0;
        std::vector<double> weights;
        weights.reserve(improving.size());
        for (int u : improving) {
          const double w = std::exp(
              (proposals[static_cast<std::size_t>(u)].gain() - max_gain) /
              temperature);
          weights.push_back(w);
          total += w;
        }
        double r = rng.uniform01() * total;
        chosen = improving.back();
        for (std::size_t i = 0; i < improving.size(); ++i) {
          r -= weights[i];
          if (r <= 0.0) {
            chosen = improving[i];
            break;
          }
        }
      }
    }
    ++steps_;
    return Activation{chosen,
                      std::move(proposals[static_cast<std::size_t>(chosen)])};
  }

  std::uint64_t rounds() const override { return steps_; }

 private:
  int n_;
  double tau_;
  std::uint64_t steps_ = 0;
};

/// Sharded parallel MGM (maximum-gain messaging): one round proposes every
/// agent concurrently against the same warm profile (per-index slots, so
/// the batch is independent of thread count), each contiguous agent shard
/// nominates its max-gain improving agent (ties to the smallest id, the
/// gain-scheduler contract), and a deterministic greedy maximal independent
/// set of the nominees -- processed by (gain desc, id asc), conflict =
/// overlapping conservative touch sets {u} ∪ old(u) ∪ new(u) -- commits
/// together.  The top-ranked nominee always commits, so every round with an
/// improving agent makes progress; with 1 shard the round is exactly the
/// sequential max_gain step.  All selection logic is serial over the
/// proposal slots: thread count changes throughput, never results.
class ParallelMgmScheduler final : public SchedulerPolicy {
 public:
  ParallelMgmScheduler(int n, int shards)
      : n_(n),
        shards_(shards > 0 ? std::min(shards, std::max(n, 1))
                           : std::max(1, n / 16)) {}

  std::string_view name() const override { return "parallel_mgm"; }

  std::vector<Activation> next_round(DeviationEngine& engine,
                                     const MoveRulePolicy& rule,
                                     Rng&) override {
    std::vector<Proposal> proposals = propose_all(engine, rule, n_);
    GNCG_COUNT_N(kMgmProposals, static_cast<std::uint64_t>(n_));

    // Shard nomination over the slots (serial; deterministic).
    std::vector<BestProposal> nominees;
    for (int s = 0; s < shards_; ++s) {
      const int lo = static_cast<int>(
          static_cast<std::int64_t>(n_) * s / shards_);
      const int hi = static_cast<int>(
          static_cast<std::int64_t>(n_) * (s + 1) / shards_);
      BestProposal best;
      for (int u = lo; u < hi; ++u) {
        Proposal& p = proposals[static_cast<std::size_t>(u)];
        if (!p.improving) continue;
        const double gain = p.gain();
        if (best.agent < 0 || gain > best.gain ||
            (gain == best.gain && u < best.agent)) {
          best.agent = u;
          best.gain = gain;
          best.proposal = std::move(p);
        }
      }
      if (best.agent >= 0) nominees.push_back(std::move(best));
    }
    if (nominees.empty()) return {};  // no improving agent anywhere
    ++rounds_;
    GNCG_COUNT(kMgmRounds);

    // Greedy maximal independent set by (gain desc, id asc): the first
    // nominee always survives, later ones only when their touch set is
    // disjoint from everything already claimed.
    std::sort(nominees.begin(), nominees.end(),
              [](const BestProposal& a, const BestProposal& b) {
                if (a.gain != b.gain) return a.gain > b.gain;
                return a.agent < b.agent;
              });
    NodeSet claimed(n_);
    std::vector<int> touch;
    std::vector<Activation> committed;
    for (auto& nominee : nominees) {
      engine.move_conflict_set(nominee.agent, nominee.proposal.strategy,
                               touch);
      bool conflict = false;
      for (int t : touch) conflict = conflict || claimed.contains(t);
      if (conflict) {
        GNCG_COUNT(kMgmConflictDrops);
        continue;
      }
      for (int t : touch) claimed.insert(t);
      committed.push_back(
          Activation{nominee.agent, std::move(nominee.proposal)});
    }
    GNCG_COUNT_N(kMgmCommits,
                 static_cast<std::uint64_t>(committed.size()));

    // Commit in ascending agent id: the order is deterministic and -- the
    // committed moves being pairwise non-conflicting -- equivalent to any
    // other order of the same batch.
    std::sort(committed.begin(), committed.end(),
              [](const Activation& a, const Activation& b) {
                return a.agent < b.agent;
              });
    return committed;
  }

  std::uint64_t rounds() const override { return rounds_; }

 private:
  int n_;
  int shards_;
  std::uint64_t rounds_ = 0;
};

void register_builtin_policies(DynamicsPolicyRegistry& registry) {
  registry.add_rule("best_response", [](const PolicyConfig&) {
    return std::make_unique<BestResponseRule>();
  });
  registry.add_rule("best_single_move", [](const PolicyConfig&) {
    return std::make_unique<SingleMoveRule>(/*additions_only=*/false);
  });
  registry.add_rule("best_addition", [](const PolicyConfig&) {
    return std::make_unique<SingleMoveRule>(/*additions_only=*/true);
  });
  registry.add_rule("umfl_response", [](const PolicyConfig&) {
    return std::make_unique<UmflRule>();
  });
  registry.add_rule("approx_ladder", [](const PolicyConfig& config) {
    return std::make_unique<ApproxLadderRule>(config.approx_budget,
                                              config.approx_repair_cap);
  });
  registry.add_scheduler("round_robin", [](const PolicyConfig& config) {
    return std::make_unique<OrderScheduler>(config.node_count,
                                            /*reshuffle=*/false);
  });
  registry.add_scheduler("random_order", [](const PolicyConfig& config) {
    return std::make_unique<OrderScheduler>(config.node_count,
                                            /*reshuffle=*/true);
  });
  registry.add_scheduler("max_gain", [](const PolicyConfig& config) {
    return std::make_unique<MaxGainScheduler>(config.node_count);
  });
  registry.add_scheduler("fairness_bounded", [](const PolicyConfig& config) {
    return std::make_unique<FairnessBoundedScheduler>(config.node_count,
                                                      config.fairness_bound);
  });
  registry.add_scheduler("softmax_gain", [](const PolicyConfig& config) {
    return std::make_unique<SoftmaxGainScheduler>(config.node_count,
                                                  config.softmax_tau);
  });
  registry.add_scheduler("parallel_mgm", [](const PolicyConfig& config) {
    return std::make_unique<ParallelMgmScheduler>(config.node_count,
                                                  config.mgm_shards);
  });
}

}  // namespace

std::optional<Activation> SchedulerPolicy::next(DeviationEngine&,
                                                const MoveRulePolicy&, Rng&) {
  GNCG_CHECK(false, "scheduler '" << name()
                                  << "' is round-based; drive it through "
                                     "next_round (the dynamics kernel does)");
}

std::vector<Activation> SchedulerPolicy::next_round(DeviationEngine& engine,
                                                    const MoveRulePolicy& rule,
                                                    Rng& rng) {
  std::vector<Activation> round;
  if (auto activation = next(engine, rule, rng))
    round.push_back(std::move(*activation));
  return round;
}

Proposal propose(DeviationEngine& engine, const MoveRulePolicy& rule, int u) {
  // Single-move scans read every agent's cached vector; the other rules
  // only read u's (the BR/UMFL searches run their own Dijkstras), so a
  // full warm-up would waste n-1 SSSP per proposal.
  if (rule.wants_full_warm()) {
    engine.warm_distances();
  } else {
    engine.distance_cost(u);
  }
  return rule.propose_warm(engine, u);
}

DynamicsPolicyRegistry& DynamicsPolicyRegistry::instance() {
  static DynamicsPolicyRegistry* registry = [] {
    auto* r = new DynamicsPolicyRegistry;
    register_builtin_policies(*r);
    return r;
  }();
  return *registry;
}

void DynamicsPolicyRegistry::add_scheduler(std::string name,
                                           SchedulerFactory factory) {
  for (const auto& [existing, unused] : schedulers_)
    GNCG_CHECK(existing != name, "duplicate scheduler policy " << name);
  schedulers_.emplace_back(std::move(name), std::move(factory));
}

void DynamicsPolicyRegistry::add_rule(std::string name,
                                      MoveRuleFactory factory) {
  for (const auto& [existing, unused] : rules_)
    GNCG_CHECK(existing != name, "duplicate move-rule policy " << name);
  rules_.emplace_back(std::move(name), std::move(factory));
}

namespace {

template <class Factories, class Made>
Made make_from(const Factories& factories, std::string_view name,
               const PolicyConfig& config, const char* what) {
  for (const auto& [existing, factory] : factories)
    if (existing == name) return factory(config);
  std::string known;
  for (const auto& [existing, unused] : factories)
    known += (known.empty() ? "" : ", ") + existing;
  GNCG_CHECK(false,
             "unknown " << what << " policy '" << name << "'; known: " << known);
}

}  // namespace

std::unique_ptr<SchedulerPolicy> DynamicsPolicyRegistry::make_scheduler(
    std::string_view name, const PolicyConfig& config) const {
  return make_from<decltype(schedulers_), std::unique_ptr<SchedulerPolicy>>(
      schedulers_, name, config, "scheduler");
}

std::unique_ptr<MoveRulePolicy> DynamicsPolicyRegistry::make_rule(
    std::string_view name, const PolicyConfig& config) const {
  return make_from<decltype(rules_), std::unique_ptr<MoveRulePolicy>>(
      rules_, name, config, "move-rule");
}

namespace {

std::vector<std::string> sorted_names(
    const std::vector<std::string>& names_in) {
  std::vector<std::string> names = names_in;
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::vector<std::string> DynamicsPolicyRegistry::scheduler_names() const {
  std::vector<std::string> names;
  for (const auto& [name, unused] : schedulers_) names.push_back(name);
  return sorted_names(names);
}

std::vector<std::string> DynamicsPolicyRegistry::rule_names() const {
  std::vector<std::string> names;
  for (const auto& [name, unused] : rules_) names.push_back(name);
  return sorted_names(names);
}

std::string_view scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin: return "round_robin";
    case SchedulerKind::kRandomOrder: return "random_order";
    case SchedulerKind::kMaxGain: return "max_gain";
    case SchedulerKind::kFairnessBounded: return "fairness_bounded";
    case SchedulerKind::kSoftmaxGain: return "softmax_gain";
    case SchedulerKind::kParallelMgm: return "parallel_mgm";
  }
  GNCG_CHECK(false, "unknown SchedulerKind");
}

std::string_view move_rule_name(MoveRule rule) {
  switch (rule) {
    case MoveRule::kBestResponse: return "best_response";
    case MoveRule::kBestSingleMove: return "best_single_move";
    case MoveRule::kBestAddition: return "best_addition";
    case MoveRule::kUmflResponse: return "umfl_response";
    case MoveRule::kApproxLadder: return "approx_ladder";
  }
  GNCG_CHECK(false, "unknown MoveRule");
}

std::unique_ptr<SchedulerPolicy> make_scheduler(SchedulerKind kind,
                                                const PolicyConfig& config) {
  return DynamicsPolicyRegistry::instance().make_scheduler(
      scheduler_name(kind), config);
}

std::unique_ptr<MoveRulePolicy> make_move_rule(MoveRule rule,
                                               const PolicyConfig& config) {
  return DynamicsPolicyRegistry::instance().make_rule(move_rule_name(rule),
                                                      config);
}

}  // namespace gncg
