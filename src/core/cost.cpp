#include "core/cost.hpp"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.hpp"
#include "support/parallel.hpp"

namespace gncg {

bool improves(double candidate, double incumbent) {
  if (!(incumbent < kInf)) return candidate < kInf;
  const double slack = kImproveEps * std::max(1.0, std::abs(incumbent));
  return candidate < incumbent - slack;
}

double buying_cost(const Game& game, const StrategyProfile& s, int u) {
  double total = 0.0;
  s.strategy(u).for_each([&](int v) { total += game.weight(u, v); });
  return game.alpha() * total;
}

double distance_cost(const Game& game,
                     const std::vector<std::vector<Neighbor>>& adjacency,
                     int u) {
  return distance_sum_over(game.node_count(), u, [&](int x, auto&& visit) {
    for (const auto& nb : adjacency[static_cast<std::size_t>(x)])
      visit(nb.to, nb.weight);
  });
}

double agent_cost(const Game& game, const StrategyProfile& s, int u) {
  const auto adjacency = build_adjacency(game, s);
  return buying_cost(game, s, u) + distance_cost(game, adjacency, u);
}

AgentCostBreakdown agent_cost_breakdown(const Game& game,
                                        const StrategyProfile& s, int u) {
  const auto adjacency = build_adjacency(game, s);
  return {buying_cost(game, s, u), distance_cost(game, adjacency, u)};
}

SocialCostBreakdown social_cost_breakdown(const Game& game,
                                          const StrategyProfile& s) {
  const int n = game.node_count();
  const auto adjacency = build_adjacency(game, s);
  std::vector<double> dist_costs(static_cast<std::size_t>(n), 0.0);
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t u) {
    dist_costs[u] = distance_cost(game, adjacency, static_cast<int>(u));
  });
  SocialCostBreakdown result;
  for (int u = 0; u < n; ++u) {
    result.edge_cost += buying_cost(game, s, u);
    result.dist_cost += dist_costs[static_cast<std::size_t>(u)];
  }
  return result;
}

double social_cost(const Game& game, const StrategyProfile& s) {
  return social_cost_breakdown(game, s).total();
}

SocialCostBreakdown network_social_cost_breakdown(
    const Game& game, const std::vector<Edge>& network) {
  const int n = game.node_count();
  WeightedGraph g(n);
  double edge_weight_total = 0.0;
  for (const auto& e : network) {
    GNCG_CHECK(game.can_buy(e.u, e.v), "network contains a forbidden edge");
    g.add_edge(e.u, e.v, game.weight(e.u, e.v));
    edge_weight_total += game.weight(e.u, e.v);
  }
  std::vector<double> dist_costs(static_cast<std::size_t>(n), 0.0);
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t u) {
    dist_costs[u] = distance_sum(g, static_cast<int>(u));
  });
  SocialCostBreakdown result;
  result.edge_cost = game.alpha() * edge_weight_total;
  for (double d : dist_costs) result.dist_cost += d;
  return result;
}

double network_social_cost(const Game& game, const std::vector<Edge>& network) {
  return network_social_cost_breakdown(game, network).total();
}

}  // namespace gncg
