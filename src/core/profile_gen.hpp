// Start-profile generators for dynamics restarts and sweep scenarios.
//
// Every randomized dynamics workload needs connected start profiles drawn
// from an explicit Rng (the determinism contract: no generator may touch
// global state, so a restart's start profile is a pure function of its
// derived stream).  The two generators previously lived privately in the
// dynamics engine and the builtin sweep scenarios; they are shared here so
// the restart driver, the sampling search and the scenarios draw from one
// implementation.
#pragma once

#include "core/game.hpp"
#include "support/rng.hpp"

namespace gncg {

/// Random profile for dynamics restarts: a uniform random spanning
/// structure of the purchasable pairs with random edge ownership, plus each
/// remaining purchasable pair bought with probability `extra_edge_prob`.
/// O(n^2) candidate pairs -- the thorough generator for small/medium n.
StrategyProfile random_profile(const Game& game, Rng& rng,
                               double extra_edge_prob = 0.15);

/// Connected start profile with O(n) memory and O(n) random draws: a random
/// recursive tree (node i buys an edge to a uniform earlier node).  The
/// large-n generator; requires every pair (i, j < i) to be purchasable.
StrategyProfile recursive_tree_profile(const Game& game, Rng& rng);

/// The start-profile family a restart driver draws from.
enum class StartProfileKind {
  kSpanningRandom,   ///< random_profile (spanning structure + extra edges)
  kRecursiveTree,    ///< recursive_tree_profile (O(n), complete hosts only)
};

/// Draws a start profile of the given kind from `rng`.
StrategyProfile make_start_profile(const Game& game, Rng& rng,
                                   StartProfileKind kind,
                                   double extra_edge_prob = 0.15);

}  // namespace gncg
