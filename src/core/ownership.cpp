#include "core/ownership.hpp"

#include <atomic>
#include <mutex>

#include "core/equilibrium.hpp"
#include "support/parallel.hpp"

namespace gncg {

namespace {

std::optional<StrategyProfile> search_ownership(
    const Game& game, const std::vector<Edge>& edges, int max_edges,
    bool require_nash) {
  const int e = static_cast<int>(edges.size());
  GNCG_CHECK(e <= max_edges, "ownership search over " << e
                                                      << " edges exceeds limit "
                                                      << max_edges);
  const std::uint64_t assignments = std::uint64_t{1} << e;

  std::atomic<bool> found{false};
  std::optional<StrategyProfile> result;
  std::mutex result_mutex;

  parallel_for(
      0, assignments,
      [&](std::size_t mask) {
        if (found.load(std::memory_order_relaxed)) return;
        StrategyProfile profile(game.node_count());
        for (int i = 0; i < e; ++i) {
          const auto& edge = edges[static_cast<std::size_t>(i)];
          if ((mask >> i) & 1U) profile.add_buy(edge.u, edge.v);
          else profile.add_buy(edge.v, edge.u);
        }
        const bool ok = require_nash ? is_nash_equilibrium(game, profile)
                                     : is_greedy_equilibrium(game, profile);
        if (ok) {
          const std::lock_guard<std::mutex> lock(result_mutex);
          if (!result.has_value()) {
            result = std::move(profile);
            found.store(true, std::memory_order_relaxed);
          }
        }
      },
      /*grain=*/8);
  return result;
}

}  // namespace

std::optional<StrategyProfile> find_nash_ownership(
    const Game& game, const std::vector<Edge>& edges, int max_edges) {
  return search_ownership(game, edges, max_edges, /*require_nash=*/true);
}

std::optional<StrategyProfile> find_greedy_ownership(
    const Game& game, const std::vector<Edge>& edges, int max_edges) {
  return search_ownership(game, edges, max_edges, /*require_nash=*/false);
}

}  // namespace gncg
