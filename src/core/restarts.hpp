// Deterministic parallel multi-restart dynamics driver.
//
// Equilibrium sampling, heuristic FIP/cycle hunting and scheduler ablations
// all run the same outer loop: many independent dynamics runs from random
// start profiles.  `run_restarts` is that loop, industrialized:
//
//  * Restart i's randomness is the stream `stream_seed(label, i, seed)`
//    (the PR 3 sweep contract): the start profile and the run's scheduler
//    randomness are a pure function of (label, i, seed), so the report is
//    bit-identical for any thread count and any execution order.
//  * Restarts fan out over the shared worker pool; each pool worker reuses
//    one DeviationEngine via set_profile instead of constructing one per
//    restart.  Nested use (from inside a sweep scenario already running on
//    the pool) degrades to serial, by design -- results are unchanged.
//  * Found cycles can be replay-verified in place (the heuristic FIP
//    searches want only certified witnesses).
//
// Aggregate statistics (moves-to-convergence quantiles, convergence and
// cycle counts) are folded in restart order after the parallel phase, so
// they are deterministic too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dynamics.hpp"
#include "core/game.hpp"
#include "core/profile_gen.hpp"
#include "support/stats.hpp"

namespace gncg {

struct RestartOptions {
  int restarts = 16;
  std::uint64_t seed = 1;
  /// Stream namespace: restart i draws from stream_seed(label, i, seed).
  /// Two drivers with the same label, seed and start kind face identical
  /// start profiles (how ablations compare policies on equal footing).
  std::string label = "restarts";

  /// Per-run template.  `seed` is ignored (derived per restart) and
  /// `observer` must be null: observers are per-run, the pool would
  /// interleave their callbacks.
  DynamicsOptions dynamics;

  /// Start-profile family and its parameter (core/profile_gen.hpp).
  StartProfileKind start = StartProfileKind::kSpanningRandom;
  double extra_edge_prob = 0.15;

  /// When non-empty, restart i runs under scheduler_cycle[i % size()],
  /// overriding dynamics.scheduler -- the classic cycle-hunting grid.
  std::vector<SchedulerKind> scheduler_cycle;

  /// Replay-verify every found cycle (requires dynamics.record_steps).
  /// Verification demands exact best responses when the move rule is
  /// kBestResponse, strict improvement otherwise.  To bound memory, the
  /// step traces of runs WITHOUT a verified cycle are dropped after
  /// verification (cycle hunters read only the witness's trace; aggregate
  /// step_gains stay).
  bool verify_cycles = false;

  /// Skip restarts whose index exceeds the smallest verified-cycle index
  /// found so far (requires verify_cycles) -- the cycle-hunting early
  /// exit.  The *first verified cycle in restart order* stays exactly the
  /// one an exhaustive fan-out would report (a restart at index i is only
  /// skipped when some verified cycle exists at index < i, so the minimal
  /// verified index always executes, as does everything below it), but
  /// which later restarts run depends on pool timing: the report's
  /// aggregate counters are NOT thread-count-invariant under this flag.
  /// Skipped runs are marked RestartRun::skipped.
  bool stop_after_verified_cycle = false;
};

/// One restart's outcome.
struct RestartRun {
  std::uint64_t stream = 0;  ///< the restart's derived stream seed
  /// Effective scheduler policy name (registry name; resolves the
  /// scheduler_cycle and any dynamics.scheduler_name override).
  std::string scheduler;
  DynamicsResult result;
  bool cycle_verified = false;  ///< set only under verify_cycles
  bool skipped = false;  ///< cancelled by stop_after_verified_cycle
};

struct RestartReport {
  std::vector<RestartRun> runs;  ///< indexed by restart id
  std::size_t converged = 0;
  std::size_t cycles_found = 0;
  std::size_t cycles_verified = 0;
  /// Moves of converged runs, folded in restart order.
  SampleStats moves_to_convergence;
  /// Sum over runs of confirmed transposition-hash collisions.
  std::uint64_t hash_collisions = 0;
};

/// Runs `options.restarts` independent dynamics runs over the worker pool.
RestartReport run_restarts(const Game& game, const RestartOptions& options);

}  // namespace gncg
