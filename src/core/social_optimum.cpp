#include "core/social_optimum.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"
#include "support/parallel.hpp"

namespace gncg {

namespace {

/// Host MST via the implicit-weight Prim: identical to running prim_mst on
/// the materialized matrix, but backend-served hosts never materialize one.
std::vector<Edge> host_mst(const Game& game) {
  return prim_mst_over(game.node_count(), [&game](int u, int v) {
    return game.weight(u, v);
  });
}

/// Purchasable pairs of the host, sorted for stable enumeration.
std::vector<Edge> purchasable_pairs(const Game& game) {
  std::vector<Edge> pairs;
  const int n = game.node_count();
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (game.can_buy(u, v)) pairs.push_back({u, v, game.weight(u, v)});
  return pairs;
}

/// Social cost of the edge subset selected by `mask` over `pairs`;
/// kInf when disconnected.  `adjacency` and `dist` are caller scratch.
double mask_cost(const Game& game, const std::vector<Edge>& pairs,
                 std::uint64_t mask,
                 std::vector<std::vector<Neighbor>>& adjacency,
                 std::vector<double>& dist) {
  const int n = game.node_count();
  for (auto& list : adjacency) list.clear();
  double edge_weight = 0.0;
  UnionFind dsu(n);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!((mask >> i) & 1U)) continue;
    const auto& e = pairs[i];
    adjacency[static_cast<std::size_t>(e.u)].push_back({e.v, e.weight});
    adjacency[static_cast<std::size_t>(e.v)].push_back({e.u, e.weight});
    edge_weight += e.weight;
    dsu.unite(e.u, e.v);
  }
  if (dsu.components() != 1) return kInf;
  double dist_total = 0.0;
  for (int src = 0; src < n; ++src) {
    dijkstra_over(
        n, src,
        [&](int x, auto&& visit) {
          for (const auto& nb : adjacency[static_cast<std::size_t>(x)])
            visit(nb.to, nb.weight);
        },
        dist);
    for (double d : dist) dist_total += d;
  }
  return game.alpha() * edge_weight + dist_total;
}

NetworkDesign design_from_edges(const Game& game, std::vector<Edge> edges) {
  NetworkDesign design;
  design.cost = network_social_cost_breakdown(game, edges);
  design.edges = std::move(edges);
  return design;
}

}  // namespace

NetworkDesign exact_social_optimum(const Game& game,
                                   const ExactOptimumOptions& options) {
  const auto pairs = purchasable_pairs(game);
  const std::size_t p = pairs.size();
  GNCG_CHECK(p < 63, "too many purchasable pairs for subset enumeration");
  const std::uint64_t subsets = std::uint64_t{1} << p;
  GNCG_CHECK(subsets <= options.max_subsets,
             "exact optimum would enumerate " << subsets
                                              << " subsets; raise max_subsets "
                                                 "or use the heuristic");

  // Admissible distance floor: any network's distance cost is at least the
  // host-closure ordered-pair sum.
  double dist_floor = 0.0;
  for (int u = 0; u < game.node_count(); ++u)
    dist_floor += game.host_distance_sum(u);

  // Initial incumbent: the better of the MST and the full candidate set.
  std::uint64_t best_mask = subsets - 1;
  double best_cost;
  {
    std::vector<std::vector<Neighbor>> adjacency(
        static_cast<std::size_t>(game.node_count()));
    std::vector<double> dist;
    best_cost = mask_cost(game, pairs, best_mask, adjacency, dist);
    const auto mst = host_mst(game);
    std::uint64_t mst_mask = 0;
    for (const auto& e : mst)
      for (std::size_t i = 0; i < p; ++i)
        if (pairs[i].u == e.u && pairs[i].v == e.v)
          mst_mask |= std::uint64_t{1} << i;
    const double mst_cost = mask_cost(game, pairs, mst_mask, adjacency, dist);
    if (mst_cost < best_cost) {
      best_cost = mst_cost;
      best_mask = mst_mask;
    }
  }

  struct Acc {
    double cost = kInf;
    std::uint64_t mask = 0;
    std::vector<std::vector<Neighbor>> adjacency;
    std::vector<double> dist;
  };
  const double alpha = game.alpha();
  Acc best = parallel_reduce<Acc>(
      0, subsets,
      [&] {
        Acc acc;
        acc.cost = best_cost;
        acc.mask = best_mask;
        acc.adjacency.resize(static_cast<std::size_t>(game.node_count()));
        return acc;
      },
      [&](Acc& acc, std::size_t index) {
        const auto mask = static_cast<std::uint64_t>(index);
        // Edge-cost pruning against the thread-local incumbent.
        double edge_weight = 0.0;
        for (std::size_t i = 0; i < p; ++i)
          if ((mask >> i) & 1U) edge_weight += pairs[i].weight;
        if (alpha * edge_weight + dist_floor >= acc.cost) return;
        const double cost = mask_cost(game, pairs, mask, acc.adjacency, acc.dist);
        if (cost < acc.cost) {
          acc.cost = cost;
          acc.mask = mask;
        }
      },
      [](Acc& total, const Acc& part) {
        if (part.cost < total.cost) {
          total.cost = part.cost;
          total.mask = part.mask;
        }
      },
      /*grain=*/512);

  std::vector<Edge> edges;
  for (std::size_t i = 0; i < p; ++i)
    if ((best.mask >> i) & 1U) edges.push_back(pairs[i]);
  return design_from_edges(game, std::move(edges));
}

NetworkDesign algorithm1_one_two(const Game& game) {
  GNCG_CHECK(game.host().is_one_two(),
             "Algorithm 1 requires a 1-2 host graph");
  const int n = game.node_count();
  std::vector<Edge> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double w = game.weight(u, v);
      if (w == 2.0) {
        // Drop the 2-edge when some x closes a 1-1-2 triangle.
        bool in_triangle = false;
        for (int x = 0; x < n && !in_triangle; ++x)
          if (x != u && x != v && game.weight(u, x) == 1.0 &&
              game.weight(x, v) == 1.0)
            in_triangle = true;
        if (in_triangle) continue;
      }
      edges.push_back({u, v, w});
    }
  }
  return design_from_edges(game, std::move(edges));
}

NetworkDesign tree_optimum(const Game& game) {
  const auto& tree_edges = game.host().tree_edges();
  GNCG_CHECK(tree_edges.has_value(),
             "tree_optimum requires a host built from a tree");
  return design_from_edges(game, *tree_edges);
}

NetworkDesign mst_network(const Game& game) {
  return design_from_edges(game, host_mst(game));
}

NetworkDesign local_search_optimum(const Game& game,
                                   std::uint64_t max_iterations) {
  const auto pairs = purchasable_pairs(game);
  std::vector<char> selected(pairs.size(), 0);
  {
    const auto mst = host_mst(game);
    for (const auto& e : mst)
      for (std::size_t i = 0; i < pairs.size(); ++i)
        if (pairs[i].u == e.u && pairs[i].v == e.v) selected[i] = 1;
  }
  auto cost_of = [&](const std::vector<char>& sel) {
    std::vector<Edge> edges;
    for (std::size_t i = 0; i < sel.size(); ++i)
      if (sel[i]) edges.push_back(pairs[i]);
    return network_social_cost(game, edges);
  };
  double current = cost_of(selected);
  for (std::uint64_t iter = 0; iter < max_iterations; ++iter) {
    double best = current;
    std::size_t best_toggle = pairs.size();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      selected[i] = static_cast<char>(!selected[i]);
      const double cost = cost_of(selected);
      selected[i] = static_cast<char>(!selected[i]);
      if (improves(cost, best)) {
        best = cost;
        best_toggle = i;
      }
    }
    if (best_toggle == pairs.size()) break;
    selected[best_toggle] = static_cast<char>(!selected[best_toggle]);
    current = best;
  }
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < pairs.size(); ++i)
    if (selected[i]) edges.push_back(pairs[i]);
  return design_from_edges(game, std::move(edges));
}

double social_optimum_lower_bound(const Game& game) {
  const auto mst = host_mst(game);
  double dist_floor = 0.0;
  for (int u = 0; u < game.node_count(); ++u)
    dist_floor += game.host_distance_sum(u);
  return game.alpha() * edge_list_weight(mst) + dist_floor;
}

}  // namespace gncg
