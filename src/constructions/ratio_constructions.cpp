#include "constructions/ratio_constructions.hpp"

#include <cmath>
#include <limits>

#include "core/poa.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/assert.hpp"

namespace gncg {

RatioConstruction theorem8_construction(int N, double alpha) {
  GNCG_CHECK(N >= 2, "construction needs N >= 2");
  GNCG_CHECK(alpha >= 0.5 && alpha <= 1.0,
             "Theorem 8 covers 1/2 <= alpha <= 1");
  const bool u_joins_leaves = alpha == 1.0;

  // Layout: centers 0..N-1, leaf (i, j) = N + i*N + j, u last.
  const int centers = N;
  const int leaves = N * N;
  const int node_u = centers + leaves;
  const int n = node_u + 1;
  auto leaf_id = [&](int center, int j) { return N + center * N + j; };

  DistanceMatrix weights(n, 2.0);
  for (int i = 0; i < N; ++i) {
    for (int j = i + 1; j < N; ++j) weights.set_symmetric(i, j, 1.0);  // clique
    for (int j = 0; j < N; ++j) weights.set_symmetric(i, leaf_id(i, j), 1.0);
    weights.set_symmetric(node_u, i, 1.0);
  }
  if (u_joins_leaves)
    for (int i = 0; i < N; ++i)
      for (int j = 0; j < N; ++j)
        weights.set_symmetric(node_u, leaf_id(i, j), 1.0);

  Game game(HostGraph::from_weights(std::move(weights), ModelClass::kOneTwo),
            alpha);

  // Equilibrium: every 1-edge except u-to-leaf ones.
  std::vector<Edge> ne_edges;
  for (int i = 0; i < N; ++i) {
    for (int j = i + 1; j < N; ++j) ne_edges.push_back({i, j, 1.0});
    for (int j = 0; j < N; ++j)
      ne_edges.push_back({i, leaf_id(i, j), 1.0});
    ne_edges.push_back({i, node_u, 1.0});
  }
  StrategyProfile equilibrium = profile_from_edges(game, ne_edges);

  NetworkDesign opt = algorithm1_one_two(game);
  RatioConstruction result{std::move(game), std::move(equilibrium),
                           std::move(opt.edges),
                           std::numeric_limits<double>::quiet_NaN(),
                           alpha == 1.0 ? 1.5 : 3.0 / (alpha + 2.0)};
  return result;
}

RatioConstruction theorem15_construction(int n, double alpha) {
  GNCG_CHECK(n >= 3, "construction needs n >= 3");
  // Tree: center 0, special leaf 1 at weight 1, leaves 2..n-1 at 2/alpha.
  std::vector<Edge> tree_edges;
  tree_edges.push_back({0, 1, 1.0});
  for (int v = 2; v < n; ++v) tree_edges.push_back({0, v, 2.0 / alpha});
  const WeightedTree tree(n, std::move(tree_edges));
  Game game(HostGraph::from_tree(tree), alpha);

  StrategyProfile equilibrium = star_profile(game, /*center=*/1);
  std::vector<Edge> optimum = tree.edges();

  RatioConstruction result{std::move(game), std::move(equilibrium),
                           std::move(optimum),
                           paper::theorem15_ratio(n, alpha),
                           paper::metric_poa(alpha)};
  return result;
}

RatioConstruction lemma8_construction(int nodes, double alpha) {
  GNCG_CHECK(nodes >= 3, "construction needs at least 3 nodes");
  // Positions: prefix sums of the geometric gaps; w(v0, vi) = (1+2/a)^(i-1).
  std::vector<double> positions(static_cast<std::size_t>(nodes), 0.0);
  positions[1] = 1.0;
  for (int i = 2; i < nodes; ++i)
    positions[static_cast<std::size_t>(i)] =
        positions[static_cast<std::size_t>(i - 1)] +
        (2.0 / alpha) * std::pow(1.0 + 2.0 / alpha, i - 2);
  const PointSet points = line_points(positions);
  Game game(HostGraph::from_points(points, /*p=*/1.0), alpha);

  StrategyProfile equilibrium = star_profile(game, /*center=*/0);
  std::vector<Edge> path;
  for (int i = 0; i + 1 < nodes; ++i)
    path.push_back({i, i + 1, game.weight(i, i + 1)});

  RatioConstruction result{std::move(game), std::move(equilibrium),
                           std::move(path),
                           std::numeric_limits<double>::quiet_NaN(),
                           paper::metric_poa(alpha)};
  return result;
}

RatioConstruction theorem18_construction(double alpha) {
  RatioConstruction result = lemma8_construction(4, alpha);
  result.expected_ratio = paper::theorem18_lower(alpha);
  result.limit_ratio = paper::theorem18_lower(alpha);
  return result;
}

RatioConstruction theorem19_construction(int d, double alpha) {
  GNCG_CHECK(d >= 1, "dimension must be positive");
  const int n = 2 * d + 1;
  PointSet points(n, d);
  // v_0 = origin; v_1 = e_1; v_2 = -(2/a) e_1; then +-(2/a) e_j, j >= 2.
  points.set_coord(1, 0, 1.0);
  points.set_coord(2, 0, -2.0 / alpha);
  int next = 3;
  for (int axis = 1; axis < d; ++axis) {
    points.set_coord(next++, axis, 2.0 / alpha);
    points.set_coord(next++, axis, -2.0 / alpha);
  }
  GNCG_CHECK(next == n, "cross-polytope layout mismatch");
  Game game(HostGraph::from_points(points, /*p=*/1.0), alpha);

  StrategyProfile equilibrium = star_profile(game, /*center=*/1);
  std::vector<Edge> optimum;
  for (int v = 1; v < n; ++v) optimum.push_back({0, v, game.weight(0, v)});

  RatioConstruction result{std::move(game), std::move(equilibrium),
                           std::move(optimum),
                           paper::theorem19_lower(alpha, d),
                           paper::metric_poa(alpha)};
  return result;
}

RatioConstruction theorem20_remark_construction(double alpha) {
  // Nodes: a = 0, b = 1, c = 2; the heavy edge (a, c) has weight (a+2)/2,
  // which violates the triangle inequality through b for every alpha > 0.
  const double heavy = (alpha + 2.0) / 2.0;
  DistanceMatrix weights(3, 0.0);
  weights.set_symmetric(0, 1, 0.0);
  weights.set_symmetric(1, 2, 1.0);
  weights.set_symmetric(0, 2, heavy);
  Game game(HostGraph::from_weights(std::move(weights), ModelClass::kGeneral),
            alpha);

  StrategyProfile equilibrium(3);
  equilibrium.add_buy(0, 1);  // a buys the 0-edge to b
  equilibrium.add_buy(0, 2);  // a buys the heavy edge to c

  std::vector<Edge> optimum{{0, 1, 0.0}, {1, 2, 1.0}};
  RatioConstruction result{std::move(game), std::move(equilibrium),
                           std::move(optimum), paper::metric_poa(alpha),
                           paper::metric_poa(alpha)};
  return result;
}

}  // namespace gncg
