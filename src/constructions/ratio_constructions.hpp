// Executable lower-bound constructions from the paper: each builder returns
// a concrete game instance, the equilibrium profile the paper claims, the
// optimum (or the paper's optimum baseline) and the closed-form ratio the
// construction is supposed to realize.  Tests verify the equilibrium claims
// exactly on small sizes; benches sweep the parameters and compare measured
// ratios against the formulas.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "core/social_optimum.hpp"

namespace gncg {

/// A construction consisting of a game, a claimed equilibrium, a reference
/// optimum network and the paper's predicted cost ratio.
struct RatioConstruction {
  Game game;
  StrategyProfile equilibrium;
  std::vector<Edge> optimum;
  double expected_ratio = 0.0;  ///< exact finite-size prediction (NaN if none)
  double limit_ratio = 0.0;     ///< asymptotic claim the sweep approaches
};

/// Theorem 8 / Figure 3 (1-2-GNCG, 1/2 <= alpha <= 1).
/// Host: an N-clique of star centers (1-edges), N leaves per center
/// (1-edges), and an extra node u joined by 1-edges to every node when
/// alpha == 1 and only to the centers when alpha < 1; all other weights 2.
/// Equilibrium: all 1-edges except those between u and leaves.
/// Optimum: Algorithm 1 (exact for alpha <= 1, Theorem 6).
/// Ratio -> 3/2 for alpha = 1 and 3/(alpha+2) for 1/2 <= alpha < 1.
RatioConstruction theorem8_construction(int N, double alpha);

/// Theorem 15 / Figure 6 (T-GNCG).  Star tree: center u = node 0, one leaf
/// v = node 1 at weight 1 and n-2 leaves at weight 2/alpha.  Equilibrium:
/// the spanning star centered at v, all edges owned by v.  Optimum: the
/// tree itself.  Exact ratio ((n-2)(1+2/a)+1)/((n-2)(2/a)+1) -> (a+2)/2.
RatioConstruction theorem15_construction(int n, double alpha);

/// Lemma 8 / Figure 9 (Rd-GNCG, 1-D points, any p-norm).  Geometric path
/// v_0..v_{nodes-1} with gaps w(v0,v1)=1 and w(v_{i-1},v_i) =
/// (2/a)(1+2/a)^(i-2); positions are the prefix sums, so w(v0,vi) =
/// (1+2/a)^(i-1).  Equilibrium: spanning star centered at v_0 owned by v_0.
/// Optimum baseline: the path.  Ratio > 1 for every n >= 2 intermediate
/// node count (the lemma's statement).
RatioConstruction lemma8_construction(int nodes, double alpha);

/// Theorem 18: the 4-node restriction of the Lemma 8 construction; its
/// exact ratio is (3a^3+24a^2+40a+24)/(a^3+10a^2+32a+24) under any p-norm.
RatioConstruction theorem18_construction(double alpha);

/// Theorem 19 / Figure 10 (Rd-GNCG, 1-norm, d dimensions, n = 2d+1 points):
/// origin v_0, unit point v_1 = e_1, and points at +-(2/alpha) along the
/// axes (the +e_1 slot replaced by v_1).  Equilibrium: star at v_1 owned by
/// v_1; optimum: star at the origin.  Ratio = 1 + a/(2 + a/(2d-1)).
RatioConstruction theorem19_construction(int d, double alpha);

/// Section 4 remark after Theorem 20: the 3-cycle host with weights
/// {0, 1, (alpha+2)/2}.  Equilibrium: node a buys the 0-edge to b and the
/// heavy edge to c; optimum: the 0- and 1-edge path.  The social-cost ratio
/// is (alpha+2)/2 while the per-pair sigma attains ((alpha+2)/2)^2 -- the
/// instance showing the Theorem 20 proof technique cannot be improved.
RatioConstruction theorem20_remark_construction(double alpha);

}  // namespace gncg
