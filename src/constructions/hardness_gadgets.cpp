#include "constructions/hardness_gadgets.hpp"

#include <cmath>
#include <numbers>

#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/assert.hpp"

namespace gncg {

namespace {

void check_params(const SetCoverInstance& instance,
                  const SetCoverGadgetParams& params) {
  GNCG_CHECK(instance.universe_size >= 1 && instance.set_count() >= 1,
             "degenerate set-cover instance");
  GNCG_CHECK(params.L / 3.0 > params.beta,
             "gadget requires beta < L/3");
  GNCG_CHECK(params.beta > 2.0 * instance.universe_size * params.eps,
             "gadget requires beta > 2 k eps (got beta="
                 << params.beta << ", k=" << instance.universe_size
                 << ", eps=" << params.eps << ")");
  for (const auto& set : instance.sets)
    GNCG_CHECK(!set.empty(), "gadget requires non-empty sets");
}

/// First set covering element e (the tree attachment point of p_e).
int first_covering_set(const SetCoverInstance& instance, int element) {
  for (std::size_t s = 0; s < instance.set_count(); ++s)
    for (int e : instance.sets[s])
      if (e == element) return static_cast<int>(s);
  GNCG_CHECK(false, "element " << element << " is uncovered");
  return -1;
}

/// Shared: install the fixed (non-u) strategies of both gadgets.
///   b_i buys (b_i, u) and (b_i, a_i); a_i buys (a_i, p_j) for p_j in X_i.
void buy_gadget_edges(StrategyProfile& profile, const SetCoverInstance& sc,
                      int node_u, const std::vector<int>& b_nodes,
                      const std::vector<int>& a_nodes,
                      const std::vector<int>& p_nodes) {
  for (std::size_t i = 0; i < sc.set_count(); ++i) {
    profile.add_buy(b_nodes[i], node_u);
    profile.add_buy(b_nodes[i], a_nodes[i]);
    for (int e : sc.sets[i]) {
      profile.add_buy(a_nodes[i], p_nodes[static_cast<std::size_t>(e)]);
    }
  }
}

}  // namespace

SetCoverGadget theorem13_gadget(const SetCoverInstance& instance,
                                const SetCoverGadgetParams& params) {
  check_params(instance, params);
  const int m = static_cast<int>(instance.set_count());
  const int k = instance.universe_size;
  // Layout: u = 0, c = 1, a_i = 2 + i, b_i = 2 + m + i, p_j = 2 + 2m + j.
  const int node_u = 0;
  const int node_c = 1;
  auto a_node = [&](int i) { return 2 + i; };
  auto b_node = [&](int i) { return 2 + m + i; };
  auto p_node = [&](int j) { return 2 + 2 * m + j; };
  const int n = 2 + 2 * m + k;

  std::vector<Edge> tree_edges;
  tree_edges.push_back({node_u, node_c, params.L - params.eps});
  for (int i = 0; i < m; ++i) {
    tree_edges.push_back({node_c, a_node(i), params.eps});
    tree_edges.push_back({node_u, b_node(i), (params.L - params.beta) / 2.0});
  }
  for (int j = 0; j < k; ++j)
    tree_edges.push_back({a_node(first_covering_set(instance, j)), p_node(j),
                          params.L});
  const WeightedTree tree(n, std::move(tree_edges));
  Game game(HostGraph::from_tree(tree), /*alpha=*/1.0);

  SetCoverGadget gadget{Game(game), StrategyProfile(n), node_u, {}, {},
                        instance};
  for (int i = 0; i < m; ++i) gadget.set_nodes.push_back(a_node(i));
  for (int j = 0; j < k; ++j) gadget.element_nodes.push_back(p_node(j));
  gadget.profile.add_buy(node_c, node_u);
  buy_gadget_edges(gadget.profile, instance, node_u,
                   [&] {
                     std::vector<int> b;
                     for (int i = 0; i < m; ++i) b.push_back(b_node(i));
                     return b;
                   }(),
                   gadget.set_nodes, gadget.element_nodes);
  return gadget;
}

SetCoverGadget theorem16_gadget(const SetCoverInstance& instance, double p,
                                const SetCoverGadgetParams& params) {
  check_params(instance, params);
  const int m = static_cast<int>(instance.set_count());
  const int k = instance.universe_size;
  // Layout: u = 0, a_i = 1 + i, b_i = 1 + m + i, p_j = 1 + 2m + j.
  const int node_u = 0;
  auto a_node = [&](int i) { return 1 + i; };
  auto b_node = [&](int i) { return 1 + m + i; };
  auto p_node = [&](int j) { return 1 + 2 * m + j; };
  const int n = 1 + 2 * m + k;

  PointSet points(n, 2);
  const double L = params.L;
  for (int i = 0; i < m; ++i) {
    // Set nodes on an eps-long arc of the radius-L circle.
    const double angle =
        m == 1 ? 0.0 : (params.eps / L) * (static_cast<double>(i) / (m - 1));
    points.set_coord(a_node(i), 0, L * std::cos(angle));
    points.set_coord(a_node(i), 1, L * std::sin(angle));
    // Blockers on the ray OPPOSITE a_i at distance (L - beta)/2, so the path
    // u -> b_i -> a_i has length (L-beta)/2 + ((L-beta)/2 + L) = 2L - beta.
    const double scale = -((L - params.beta) / 2.0) / L;
    points.set_coord(b_node(i), 0, scale * points.coord(a_node(i), 0));
    points.set_coord(b_node(i), 1, scale * points.coord(a_node(i), 1));
  }
  for (int j = 0; j < k; ++j) {
    const double angle =
        k == 1 ? 0.0
               : (params.eps / (2.0 * L)) * (static_cast<double>(j) / (k - 1));
    points.set_coord(p_node(j), 0, 2.0 * L * std::cos(angle));
    points.set_coord(p_node(j), 1, 2.0 * L * std::sin(angle));
  }
  Game game(HostGraph::from_points(points, p), /*alpha=*/1.0);

  SetCoverGadget gadget{Game(game), StrategyProfile(n), node_u, {}, {},
                        instance};
  for (int i = 0; i < m; ++i) gadget.set_nodes.push_back(a_node(i));
  for (int j = 0; j < k; ++j) gadget.element_nodes.push_back(p_node(j));
  buy_gadget_edges(gadget.profile, instance, node_u,
                   [&] {
                     std::vector<int> b;
                     for (int i = 0; i < m; ++i) b.push_back(b_node(i));
                     return b;
                   }(),
                   gadget.set_nodes, gadget.element_nodes);
  return gadget;
}

std::vector<int> gadget_strategy_to_cover(const SetCoverGadget& gadget,
                                          const NodeSet& strategy) {
  std::vector<int> cover;
  strategy.for_each([&](int node) {
    for (std::size_t i = 0; i < gadget.set_nodes.size(); ++i) {
      if (gadget.set_nodes[i] == node) {
        cover.push_back(static_cast<int>(i));
        return;
      }
    }
    GNCG_CHECK(false, "strategy buys non-set node " << node);
  });
  return cover;
}

VertexCoverGadget theorem4_gadget(const VertexCoverInstance& instance,
                                  const std::vector<int>& cover) {
  GNCG_CHECK(is_vertex_cover(instance, cover),
             "theorem4_gadget requires a valid vertex cover");
  const int N = instance.n;
  const int m = static_cast<int>(instance.edges.size());
  // Layout: a_i = i, p_j = N + 2j, p'_j = N + 2j + 1, u last.
  auto p_node = [&](int j, bool prime) { return N + 2 * j + (prime ? 1 : 0); };
  const int node_u = N + 2 * m;
  const int n = node_u + 1;

  DistanceMatrix weights(n, 2.0);
  for (int i = 0; i < N; ++i)
    for (int j = i + 1; j < N; ++j) weights.set_symmetric(i, j, 1.0);
  for (int j = 0; j < m; ++j) {
    const auto& [x, y] = instance.edges[static_cast<std::size_t>(j)];
    for (bool prime : {false, true}) {
      weights.set_symmetric(x, p_node(j, prime), 1.0);
      weights.set_symmetric(y, p_node(j, prime), 1.0);
    }
  }
  Game game(HostGraph::from_weights(std::move(weights), ModelClass::kOneTwo),
            /*alpha=*/1.0);

  // Fixed profile: every 1-edge bought by its smaller endpoint; u buys
  // 2-edges towards the cover's vertex nodes.
  StrategyProfile profile(n);
  for (int i = 0; i < N; ++i)
    for (int j = i + 1; j < N; ++j) profile.add_buy(i, j);
  for (int j = 0; j < m; ++j) {
    const auto& [x, y] = instance.edges[static_cast<std::size_t>(j)];
    for (bool prime : {false, true}) {
      profile.add_buy(std::min(x, y), p_node(j, prime));
      profile.add_buy(std::max(x, y), p_node(j, prime));
    }
  }
  for (int v : cover) profile.add_buy(node_u, v);

  VertexCoverGadget gadget{std::move(game), std::move(profile), node_u,
                           {},        {},   instance,           cover};
  for (int i = 0; i < N; ++i) gadget.vertex_nodes.push_back(i);
  for (int j = 0; j < m; ++j) {
    gadget.edge_nodes.push_back(p_node(j, false));
    gadget.edge_nodes.push_back(p_node(j, true));
  }
  return gadget;
}

double theorem4_agent_cost_formula(const VertexCoverInstance& instance,
                                   int bought) {
  return 3.0 * instance.n + 6.0 * static_cast<double>(instance.edges.size()) +
         static_cast<double>(bought);
}

}  // namespace gncg
