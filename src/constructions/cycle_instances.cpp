#include "constructions/cycle_instances.hpp"

#include "core/game.hpp"

namespace gncg {

std::vector<double> theorem14_weight_multiset() {
  return {3.0, 7.0, 2.0, 5.0, 12.0, 9.0, 11.0, 2.0, 10.0};
}

PointSet theorem17_points() {
  return PointSet({{3.0, 0.0},
                   {0.0, 3.0},
                   {2.0, 2.0},
                   {0.0, 2.0},
                   {1.0, 1.0},
                   {4.0, 3.0},
                   {2.0, 0.0},
                   {4.0, 1.0},
                   {1.0, 4.0},
                   {1.0, 0.0}});
}

CycleSearchResult find_tree_fip_violation(int n, int max_trees,
                                          std::uint64_t seed, double alpha,
                                          bool best_response_arcs_only) {
  CycleSearchResult result;
  result.alpha = alpha;
  Rng rng(seed);
  for (int attempt = 0; attempt < max_trees; ++attempt) {
    WeightedTree tree = random_tree(n, rng, /*w_min=*/1.0, /*w_max=*/10.0);
    Game game(HostGraph::from_tree(tree), alpha);
    ExhaustiveFipOptions options;
    options.best_response_arcs_only = best_response_arcs_only;
    FipAnalysis analysis = exhaustive_fip_analysis(game, options);
    ++result.attempts;
    if (analysis.cycle_found) {
      result.found = true;
      result.tree = std::move(tree);
      result.analysis = std::move(analysis);
      return result;
    }
  }
  return result;
}

CycleSearchResult search_theorem14_cycle(int tree_count, int attempts_per_tree,
                                         std::uint64_t seed, double alpha) {
  CycleSearchResult result;
  result.alpha = alpha;
  Rng rng(seed);
  const auto weights = theorem14_weight_multiset();
  const int n = static_cast<int>(weights.size()) + 1;
  for (int t = 0; t < tree_count; ++t) {
    WeightedTree tree = random_tree_with_weights(n, weights, rng);
    Game game(HostGraph::from_tree(tree), alpha);
    FipAnalysis analysis =
        search_best_response_cycle(game, attempts_per_tree, rng());
    result.attempts += analysis.states_visited;
    if (analysis.cycle_found) {
      result.found = true;
      result.tree = std::move(tree);
      result.analysis = std::move(analysis);
      return result;
    }
  }
  return result;
}

PointSet conjecture1_euclidean_points() {
  return PointSet({{2.0, 0.0},
                   {3.0, 0.0},
                   {2.0, 1.0},
                   {3.0, 2.0},
                   {0.0, 3.0},
                   {0.0, 2.0},
                   {1.0, 1.0},
                   {1.0, 2.0}});
}

CycleSearchResult search_conjecture1_cycle(int attempts, std::uint64_t seed) {
  CycleSearchResult result;
  result.alpha = kConjecture1Alpha;
  const Game game(
      HostGraph::from_points(conjecture1_euclidean_points(), /*p=*/2.0),
      kConjecture1Alpha);
  FipAnalysis analysis =
      search_best_response_cycle(game, attempts, seed, /*max_moves=*/1200);
  result.attempts = analysis.states_visited;
  if (analysis.cycle_found) {
    result.found = true;
    result.analysis = std::move(analysis);
  }
  return result;
}

CycleSearchResult search_theorem17_cycle(const std::vector<double>& alphas,
                                         int attempts_per_alpha,
                                         std::uint64_t seed) {
  CycleSearchResult result;
  Rng rng(seed);
  const PointSet points = theorem17_points();
  for (double alpha : alphas) {
    Game game(HostGraph::from_points(points, /*p=*/1.0), alpha);
    FipAnalysis analysis =
        search_best_response_cycle(game, attempts_per_alpha, rng());
    result.attempts += analysis.states_visited;
    if (analysis.cycle_found) {
      result.found = true;
      result.alpha = alpha;
      result.analysis = std::move(analysis);
      return result;
    }
  }
  return result;
}

}  // namespace gncg
