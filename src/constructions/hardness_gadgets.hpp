// NP-hardness gadgets, run forwards: the paper reduces Minimum Set Cover to
// best-response computation (Theorem 13 on tree metrics, Theorem 16 in the
// plane) and Minimum Vertex Cover to the NE decision problem of the
// 1-2-GNCG (Theorem 4).  These builders materialize the reductions so the
// experiments can check, against exact combinatorial solvers, that the
// game-theoretic optimum (agent u's best response) coincides with the
// covering optimum.
#pragma once

#include <vector>

#include "core/game.hpp"
#include "npc/set_cover.hpp"
#include "npc/vertex_cover.hpp"

namespace gncg {

/// A best-response instance whose solution encodes a minimum set cover.
struct SetCoverGadget {
  Game game;
  StrategyProfile profile;  ///< everyone but `agent` plays the fixed gadget role
  int agent = 0;            ///< the node u whose best response is in question
  std::vector<int> set_nodes;      ///< node id of a_i, one per set
  std::vector<int> element_nodes;  ///< node id of p_j, one per element
  SetCoverInstance instance;       ///< the encoded set-cover instance
};

/// Parameters shared by both gadget geometries.  Defaults satisfy the
/// paper's constraints L >> eps and L/3 > beta > 2 k eps.
struct SetCoverGadgetParams {
  double L = 100.0;
  double beta = 1.0;
  double eps = 1e-3;
};

/// Theorem 13 / Figure 4: the gadget as a tree metric.  Nodes: u, the hub c
/// (edge L-eps from u), set nodes a_i hanging off c at eps, blocker nodes
/// b_i at (L-beta)/2 from u, and element nodes p_j at L below their first
/// covering set node.  The fixed profile buys (c,u), (b_i,u), (b_i,a_i) and
/// every (a_i, p_j) with p_j in X_i; agent u owns nothing.  alpha = 1.
SetCoverGadget theorem13_gadget(const SetCoverInstance& instance,
                                const SetCoverGadgetParams& params = {});

/// Theorem 16 / Figure 7: the same logical gadget embedded in R^2 under any
/// p-norm: u at the origin, set nodes on an eps-arc of the radius-L circle,
/// element nodes on an eps-arc of the radius-2L circle, and blockers on the
/// *opposite* ray at (L-beta)/2 so that d_G(u, a_i) = 2L - beta.  alpha = 1.
SetCoverGadget theorem16_gadget(const SetCoverInstance& instance, double p,
                                const SetCoverGadgetParams& params = {});

/// Extracts the set-cover choice encoded by a strategy of the gadget agent:
/// the indices of sets whose a_i node the strategy buys.  Contract-fails if
/// the strategy buys any non-set node (the paper proves best responses
/// never do).
std::vector<int> gadget_strategy_to_cover(const SetCoverGadget& gadget,
                                          const NodeSet& strategy);

/// Theorem 4 / Figure 2: the NE-decision gadget of the 1-2-GNCG (alpha=1).
struct VertexCoverGadget {
  Game game;
  StrategyProfile profile;        ///< 1-edges owned canonically; u buys `cover`
  int agent = 0;                  ///< u
  std::vector<int> vertex_nodes;  ///< a_i per instance vertex
  std::vector<int> edge_nodes;    ///< p_j, p'_j interleaved per instance edge
  VertexCoverInstance instance;
  std::vector<int> cover;         ///< the cover u's strategy encodes
};

/// Builds the gadget with u buying 2-edges to `cover` (must be a vertex
/// cover of `instance`).  Host: vertex nodes form a 1-clique; (a_i, p_j)
/// and (a_i, p'_j) are 1-edges iff v_i is an endpoint of e_j; all other
/// weights (including all of u's edges) are 2.
VertexCoverGadget theorem4_gadget(const VertexCoverInstance& instance,
                                  const std::vector<int>& cover);

/// The cost formula from the Theorem 4 proof: cost(u) = 3N + 6m + k' where
/// N = #vertices, m = #edges and k' = #vertex nodes u buys.
double theorem4_agent_cost_formula(const VertexCoverInstance& instance,
                                   int bought);

}  // namespace gncg
