// Best-response-cycle instances (Theorems 14 and 17: no finite improvement
// property on tree metrics or 1-norm points).
//
// Figure 5's tree drawing does not fully specify its edge set in the paper
// text, so the Theorem 14 reproduction combines (a) exhaustive
// improvement-graph analysis of small random tree metrics -- a rigorous
// FIP-violation witness -- and (b) heuristic best-response-cycle search over
// 10-node trees carrying the paper's exact weight multiset
// {3,7,2,5,12,9,11,2,10}.  Figure 8's ten points are given exactly in the
// text and are reproduced verbatim for Theorem 17.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fip.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"

namespace gncg {

/// The Figure 5 edge-weight multiset (9 weights for a 10-node tree).
std::vector<double> theorem14_weight_multiset();

/// The exact ten Figure 8 points: a0=(3,0), a1=(0,3), a2=(2,2), a3=(0,2),
/// a4=(1,1), a5=(4,3), a6=(2,0), a7=(4,1), a8=(1,4), a9=(1,0).
PointSet theorem17_points();

/// Result of a search for an instance violating the FIP.
struct CycleSearchResult {
  bool found = false;
  std::uint64_t attempts = 0;
  std::optional<WeightedTree> tree;  ///< tree searches only
  double alpha = 0.0;
  FipAnalysis analysis;              ///< carries the certified cycle
};

/// Exhaustive FIP-violation search over random n-node tree metrics: draws
/// trees until exhaustive_fip_analysis certifies an improving-move cycle
/// (Theorem 14 witness on a tiny instance).  n must keep the state space
/// within the exhaustive cap (n <= 4 for complete hosts by default).
CycleSearchResult find_tree_fip_violation(int n, int max_trees,
                                          std::uint64_t seed, double alpha,
                                          bool best_response_arcs_only = false);

/// Heuristic Theorem 14 search: random 10-node trees with the paper's
/// weight multiset, best-response dynamics with profile-revisit detection.
CycleSearchResult search_theorem14_cycle(int tree_count, int attempts_per_tree,
                                         std::uint64_t seed, double alpha);

/// Heuristic Theorem 17 search on the exact Figure 8 point set under the
/// 1-norm, over an alpha grid.
CycleSearchResult search_theorem17_cycle(const std::vector<double>& alphas,
                                         int attempts_per_alpha,
                                         std::uint64_t seed);

/// Eight DISTINCT integer points in the plane on which best-response
/// dynamics cycle under the EUCLIDEAN norm at alpha = 1: (2,0), (3,0),
/// (2,1), (3,2), (0,3), (0,2), (1,1), (1,2).  Found by randomized search
/// over tie-rich integer grids; a computational witness for the paper's
/// Conjecture 1 (no FIP under any p-norm) beyond the proved 1-norm case.
PointSet conjecture1_euclidean_points();

/// The alpha at which the witness cycle was found.
inline constexpr double kConjecture1Alpha = 1.0;

/// BR-cycle search pinned to the Conjecture 1 witness instance (p = 2).
/// With the documented seed the cycle reproduces deterministically.
CycleSearchResult search_conjecture1_cycle(
    int attempts, std::uint64_t seed = 18199693810459455346ULL);

}  // namespace gncg
