// Per-worker scratch arenas: pool-owned workspaces behind every hot path.
//
// The SSSP-dominated inner loops (engine cache refills, single-move scans,
// best-response branch evaluation) used to draw on a grab-bag of
// thread_local buffers plus per-call vector allocations (strategy
// to_vector(), DFS stacks, candidate/weight rows).  ScratchArena gathers all
// of that per-thread state into one object:
//
//   * the binary-heap and bucket-queue Dijkstra workspaces,
//   * the IncrementalSssp instance best-response branches repair,
//   * the deviation engine's scan scratch (owned-target list, side marks,
//     DFS stack, distance-sum vector),
//   * the best-response driver's candidate/weight/base-distance rows.
//
// `worker_arena()` hands the calling thread its arena, creating and
// registering it on first use.  The worker pool's threads persist for the
// process lifetime, so after one warm-up pass every buffer has reached its
// steady-state capacity and the hot loops allocate nothing
// (tests/test_arena.cpp holds the zero-allocation probe).  Arenas are owned
// by a process-wide registry (not the threads), so `arena_stats()` can
// report fleet-wide footprint and tests can reason about reuse.
//
// Thread-safety: an arena is single-threaded by construction -- only the
// owning thread ever touches it.  Code holding one arena reference must not
// hand it to another thread, and nested users of the same thread must use
// disjoint members (the engine's scan path uses scan buffers + a Dijkstra
// workspace; best-response branches use the IncrementalSssp -- the members
// are partitioned so no hot path aliases another's buffer).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/incremental_sssp.hpp"

namespace gncg {

class ScratchArena {
 public:
  /// Binary-heap Dijkstra workspace (general weights).
  DijkstraBuffers& dijkstra() { return dijkstra_; }

  /// Bucket-queue Dijkstra workspace (integer-weight hosts).
  DialBuffers& dial() { return dial_; }

  /// Incremental SSSP maintained along a best-response DFS branch.
  IncrementalSssp& incremental_sssp() { return sssp_; }

  /// Distance vector for sum-only SSSP queries (masked scans, strategy
  /// costs).  Distinct from the Dijkstra workspaces' internal vectors so a
  /// sum query never clobbers a caller-visible run() result.
  std::vector<double>& sum_dist() { return sum_dist_; }

  // --- deviation-engine scan scratch ---

  /// Owned purchase targets of the scanning agent (replaces per-scan
  /// NodeSet::to_vector()).
  std::vector<int>& owned_targets() { return owned_targets_; }

  /// Per-node side/reachability marks for bridge detection.
  std::vector<char>& side_mark() { return side_mark_; }

  /// Explicit DFS stack for reachability sweeps.
  std::vector<int>& dfs_stack() { return dfs_stack_; }

  // --- best-response driver scratch ---

  struct BrScratch {
    std::vector<std::pair<double, int>> order;  ///< (key, node) branch order
    std::vector<int> candidates;                ///< candidate purchase targets
    std::vector<double> weights;                ///< edge weight per candidate
    std::vector<double> base_dist;              ///< SSSP from the empty set
    std::vector<double> host_row;               ///< host distances from u
    std::vector<double> weight_row;             ///< buy weights from u
  };
  BrScratch& br() { return br_; }

  // --- approximate-BR ladder scratch (core/approx_br.cpp) ---
  //
  // Disjoint from BrScratch and the shared IncrementalSssp on purpose: the
  // ladder's tier 2 nests a full br_search call, which owns those members
  // for its duration -- the ladder must keep its candidate rows and greedy
  // repair state alive across that call.

  struct LadderScratch {
    std::vector<int> cand;          ///< oracle candidate shortlist
    std::vector<double> cand_w;     ///< edge weight per candidate
    std::vector<double> base_dist;  ///< SSSP from the empty strategy
    std::vector<double> host_row;   ///< host distances from u
    std::vector<double> weight_row; ///< buy weights by node id
    std::vector<char> in_cand;      ///< candidate membership by node id
    IncrementalSssp sssp;           ///< tier-1 greedy repair state
    /// Bounded tier-1 probe ranking: (lower-bound estimate, candidate index)
    /// pairs sorted ascending before full-repair commits.
    std::vector<std::pair<double, int>> probe_rank;
  };
  LadderScratch& ladder() { return ladder_; }

  /// Bytes currently reserved across every buffer in this arena.
  std::size_t footprint_bytes() const;

 private:
  DijkstraBuffers dijkstra_;
  DialBuffers dial_;
  IncrementalSssp sssp_;
  std::vector<double> sum_dist_;
  std::vector<int> owned_targets_;
  std::vector<char> side_mark_;
  std::vector<int> dfs_stack_;
  BrScratch br_;
  LadderScratch ladder_;
};

/// The calling thread's arena, created and registered on first use.  Stable
/// for the thread's lifetime; pool workers persist for the process lifetime,
/// so each worker pays the creation exactly once.
ScratchArena& worker_arena();

/// Fleet-wide arena statistics (every arena ever registered, including ones
/// whose threads have exited -- the registry owns them).
struct ArenaStats {
  std::size_t arenas = 0;
  std::size_t footprint_bytes = 0;
  /// Sum of per-arena footprint high-water marks (each arena's peak is
  /// sampled on arena_stats() calls, so bracket a workload with two calls
  /// to observe its peak).  An upper bound on the simultaneous peak, but
  /// attributable per worker.
  std::size_t peak_footprint_bytes = 0;
  /// Buffer shrinks taken process-wide: release_excess firings plus dial
  /// ring-array downsizings, summed over the per-worker
  /// instrument::Counter::kArenaShrinkEvents slots (0 when
  /// GNCG_INSTRUMENT=OFF).
  std::uint64_t shrink_events = 0;
};
ArenaStats arena_stats();

}  // namespace gncg
