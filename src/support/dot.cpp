#include "support/dot.hpp"

#include <ostream>

#include "support/assert.hpp"
#include "support/table.hpp"

namespace gncg {

namespace {

std::string node_label(const DotOptions& options, int v) {
  if (v < static_cast<int>(options.labels.size()))
    return options.labels[static_cast<std::size_t>(v)];
  return "v" + std::to_string(v);
}

void write_nodes(std::ostream& os, int n, const DotOptions& options) {
  for (int v = 0; v < n; ++v) {
    os << "  " << v << " [label=\"" << node_label(options, v) << '"';
    if (options.layout != nullptr) {
      GNCG_CHECK(options.layout->size() >= n && options.layout->dim() >= 2,
                 "layout point set too small for the graph");
      os << ", pos=\"" << format_double(options.layout->coord(v, 0), 3) << ','
         << format_double(options.layout->coord(v, 1), 3) << "!\"";
    }
    os << "];\n";
  }
}

}  // namespace

void write_dot(std::ostream& os, const WeightedGraph& graph,
               const DotOptions& options) {
  os << "graph " << options.name << " {\n";
  write_nodes(os, graph.node_count(), options);
  for (const auto& e : graph.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (options.edge_weights)
      os << " [label=\"" << format_double(e.weight, 3) << "\"]";
    os << ";\n";
  }
  os << "}\n";
}

void write_dot(std::ostream& os, const Game& game, const StrategyProfile& s,
               const DotOptions& options) {
  os << "digraph " << options.name << " {\n";
  write_nodes(os, game.node_count(), options);
  for (int owner = 0; owner < game.node_count(); ++owner) {
    s.strategy(owner).for_each([&](int target) {
      os << "  " << owner << " -> " << target;
      if (options.edge_weights)
        os << " [label=\"" << format_double(game.weight(owner, target), 3)
           << "\"]";
      os << ";\n";
    });
  }
  os << "}\n";
}

}  // namespace gncg
