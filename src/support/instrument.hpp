// Zero-overhead instrumentation: per-worker kernel counters + span tracing.
//
// Every hot kernel in the stack (Dijkstra variants, the incremental SSSP
// repair, the best-response branch-and-bound, the approx-BR ladder, the
// deviation engine's caches, the transposition table, the worker pool)
// reports what it *did* -- relaxations, expansions, prunes, cache hits --
// through this module.  Design rules, in order of importance:
//
//  * Zero overhead when compiled out.  The CMake option GNCG_INSTRUMENT
//    (default ON) defines GNCG_INSTRUMENT_ENABLED; under OFF every macro
//    below expands to nothing and every inline entry point is an empty
//    function, so the instrumented and uninstrumented kernels are the same
//    machine code.  Results never depend on the setting: counters and spans
//    are pure observers.
//  * No atomics on hot paths.  Each thread owns a cache-line-aligned block
//    of plain uint64_t slots (one per Counter), registered once in a global
//    registry on first use.  GNCG_COUNT is a single indexed increment on
//    the owner thread; aggregation happens only at flush
//    (metrics_snapshot()), which sums across the registered blocks.  Call
//    flush at quiescent points (after joins) -- the per-slot reads are not
//    synchronized with in-flight increments.
//  * Counters are deterministic event counts, timings are not.  A counter
//    must count work whose amount is a pure function of the inputs (the
//    relaxation count of a Dijkstra run, the expansion count of a full-mode
//    BR search), never wall time.  Span durations are wall-clock and live
//    exclusively in the trace export -- they are never folded into a
//    MetricsSnapshot, mirroring the sweep contract's rule that *_ms metrics
//    are stripped from journals.  Per-job counter records are thread-count
//    invariant when the job runs on one thread (the sweep runner pins jobs
//    with a NestedSerialGuard when collecting metrics).
//
// Span tracing records (name, category, start, duration, thread) events
// into per-thread buffers while tracing is active and exports them as a
// Chrome trace-event JSON array (load in chrome://tracing or
// ui.perfetto.dev).  Spans cost one relaxed atomic load when tracing is
// compiled in but inactive.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef GNCG_INSTRUMENT_ENABLED
#define GNCG_INSTRUMENT_ENABLED 1
#endif

#if GNCG_INSTRUMENT_ENABLED
#include <atomic>
#endif

namespace gncg::instrument {

/// The fixed counter taxonomy.  Names (counter_name) are stable identifiers
/// used in metrics JSONL records and bench context blocks; append new
/// counters before kCount and never renumber recorded ones mid-series.
enum class Counter : int {
  // SSSP kernels (graph/dijkstra.hpp: DijkstraBuffers, DialBuffers,
  // dijkstra_over -- the free function serves host-closure rows).
  kSsspHeapRuns,         ///< binary-heap Dijkstra runs
  kSsspHeapPops,         ///< heap pops (stale entries included)
  kSsspHeapRelaxations,  ///< successful distance decreases
  kSsspDialRuns,         ///< bucket-queue Dijkstra runs
  kSsspDialPops,         ///< ring entries drained (stale included)
  kSsspDialRelaxations,  ///< successful distance decreases
  kSsspDialRingScans,    ///< distance rings swept (incl. empty rings)

  // Incremental SSSP (graph/incremental_sssp.hpp).
  kSsspRepairs,            ///< relax_insert calls that improved a distance
  kSsspRepairRelaxations,  ///< distances overwritten during repairs
  kSsspRollbackEntries,    ///< log entries replayed by rollback()

  // Best-response branch-and-bound (core/br_search.cpp).
  kBrSearches,          ///< driver invocations (sum + max)
  kBrExpansions,        ///< DFS node expansions (edge inserts)
  kBrEvaluations,       ///< canonical subset evaluations (empty set incl.)
  kBrPrunesGlobal,      ///< subtree cuts by the O(1) global floor
  kBrPrunesPerNode,     ///< subtree cuts by the O(n) per-node floor
  kBrBranchAborts,      ///< first-improvement branches abandoned mid-DFS

  // Approximate-BR ladder (core/approx_br.cpp).
  kLadderCalls,            ///< ladder invocations
  kLadderTier1Final,       ///< calls resolved at tier 1 (greedy)
  kLadderTier2Final,       ///< calls resolved at tier 2 (restricted exact)
  kLadderTier3Final,       ///< calls escalated to tier 3 (full exact)
  kLadderEscapeExact,      ///< tier-2 escape-bound exactness certificates
  kLadderCandidates,       ///< oracle shortlist entries actually returned
  kLadderCandidateBudget,  ///< shortlist budget requested

  // Deviation engine (core/deviation_engine.cpp, graph/csr_adjacency.cpp).
  kEngineCacheHits,       ///< distance-cache queries served warm
  kEngineCacheMisses,     ///< distance-cache refills (one Dijkstra each)
  kEngineEpochBumps,      ///< topology mutations invalidating the caches
  kEngineCsrRelocations,  ///< CSR slices relocated on slack exhaustion
  kEngineCsrCompactions,  ///< CSR slab compactions

  // Transposition table (core/transposition.cpp).
  kTtProbes,      ///< find() calls
  kTtConfirms,    ///< exact profile comparisons performed
  kTtCollisions,  ///< confirmed hash collisions (distinct profiles)

  // Worker pool (support/parallel.cpp) and arenas (support/arena.cpp,
  // graph/dijkstra.hpp shrink policy).
  kPoolRegions,       ///< top-level parallel regions dispatched
  kPoolTasks,         ///< per-worker region bodies executed
  kArenaShrinkEvents, ///< scratch-buffer shrinks taken (release_excess etc.)

  // Bounded-frontier SSSP repair (graph/incremental_sssp.hpp) and the
  // batched certifier (core/approx_br.cpp).  Appended for PR 9; the
  // bounded counters stay 0 on every exact path (FrontierPolicy absent).
  kSsspBoundedRepairs,     ///< relax_insert calls run under a frontier policy
  kSsspBoundedTruncations, ///< bounded repairs cut short (estimate, not exact)
  kLadderBoundedProbes,    ///< tier-1 probes settled on a truncated estimate
  kLadderBatchCalls,       ///< certify_agents batch invocations
  kLadderBatchAgents,      ///< agents certified through certify_agents

  // Parallel-MGM round scheduler (core/dynamics_policy.cpp).  Appended for
  // PR 10; all four are deterministic event counts (per-index proposal
  // slots, serial winner fold), identical at any thread count.
  kMgmRounds,         ///< MGM rounds executed (propose + select + commit)
  kMgmProposals,      ///< agent proposals evaluated across rounds
  kMgmConflictDrops,  ///< shard winners dropped by conflict-set overlap
  kMgmCommits,        ///< moves committed (winners surviving selection)

  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case identifier of a counter (JSONL keys, context blocks).
const char* counter_name(Counter counter);

using CounterArray = std::array<std::uint64_t, kCounterCount>;

/// True when the instrumentation layer is compiled in.
inline constexpr bool compiled_in() { return GNCG_INSTRUMENT_ENABLED != 0; }

#if GNCG_INSTRUMENT_ENABLED

namespace detail {

/// One worker's counter slots.  Cache-line aligned so two workers' blocks
/// never false-share; only the owning thread writes, flush reads.
struct alignas(64) CounterBlock {
  CounterArray slots{};
};

/// The calling thread's block, registered on first use.  The registry owns
/// every block for the process lifetime (like the arena registry), so
/// flushes stay meaningful after worker threads exit.
CounterBlock& tls_counters();

}  // namespace detail

/// Adds `n` to the calling thread's slot for `counter`.  Plain increment on
/// thread-owned memory -- the no-atomics hot-path primitive.
inline void bump(Counter counter, std::uint64_t n = 1) {
  detail::tls_counters().slots[static_cast<std::size_t>(counter)] += n;
}

/// The calling thread's own counter slice (not summed across threads).
CounterArray thread_counters();

#else  // GNCG_INSTRUMENT_ENABLED

inline void bump(Counter, std::uint64_t = 1) {}
inline CounterArray thread_counters() { return CounterArray{}; }

#endif  // GNCG_INSTRUMENT_ENABLED

/// Captures the calling thread's counters at construction; delta() is the
/// work this thread recorded since then.  The sweep runner brackets each
/// (single-thread-pinned) job with one of these to attribute kernel
/// counters per job.  Compiled to a no-op (all-zero deltas) under OFF.
class ThreadFrame {
 public:
  ThreadFrame() : base_(thread_counters()) {}

  CounterArray delta() const {
    CounterArray now = thread_counters();
    for (std::size_t i = 0; i < kCounterCount; ++i) now[i] -= base_[i];
    return now;
  }

 private:
  CounterArray base_;
};

/// Point-in-time aggregate: counter totals summed across every registered
/// worker block, plus non-deterministic process diagnostics (block/arena
/// footprint).  Counters are strictly integer event counts -- wall-clock
/// timings never appear here (they live only in the trace export).
struct MetricsSnapshot {
  CounterArray counters{};

  // Diagnostics: worker/arena fleet state.  These depend on pool width and
  // history, so they belong in context blocks, never in per-job records.
  std::size_t counter_blocks = 0;
  std::size_t arenas = 0;
  std::size_t arena_footprint_bytes = 0;
  std::size_t arena_peak_footprint_bytes = 0;
};

/// Sums all per-worker blocks (call at quiescent points) and samples the
/// arena registry.  Under OFF: all counters zero, arena stats still real.
MetricsSnapshot metrics_snapshot();

/// Sum of a single counter across every registered block (0 under OFF).
/// Same quiescence caveat as metrics_snapshot().
std::uint64_t counter_total(Counter counter);

/// now.counters - before.counters, element-wise.
CounterArray counters_delta(const MetricsSnapshot& before,
                            const MetricsSnapshot& now);

// --- span tracing ----------------------------------------------------------

/// Starts recording spans process-wide (clears previously buffered events).
/// Not reentrant: one trace session at a time.
void start_tracing();

/// True while a trace session is active (cheap: one relaxed load).
bool tracing_enabled();

/// Stops the session and writes every buffered span as a Chrome trace-event
/// JSON array to `path` (one event per line inside the array, sorted by
/// start time; thread_name metadata rows included).  Returns the number of
/// span events written, 0 on an unopenable path.  Under OFF: writes an
/// empty-array file and returns 0.
std::size_t stop_tracing(const std::string& path);

#if GNCG_INSTRUMENT_ENABLED

namespace detail {
std::atomic<bool>& tracing_flag();
void record_span(std::string name, const char* category,
                 std::int64_t start_us, std::int64_t duration_us);
std::int64_t trace_now_us();
}  // namespace detail

/// RAII span: records a complete ("ph":"X") trace event for the enclosing
/// scope when a trace session is active.  `category` must be a string
/// literal (stored by pointer).  Inactive sessions cost one relaxed load.
class Span {
 public:
  explicit Span(std::string name, const char* category = "gncg")
      : name_(std::move(name)), category_(category),
        start_us_(tracing_enabled() ? detail::trace_now_us() : -1) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (start_us_ >= 0 && tracing_enabled())
      detail::record_span(std::move(name_), category_, start_us_,
                          detail::trace_now_us() - start_us_);
  }

 private:
  std::string name_;
  const char* category_;
  std::int64_t start_us_;
};

#else  // GNCG_INSTRUMENT_ENABLED

class Span {
 public:
  explicit Span(std::string, const char* = "gncg") {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // GNCG_INSTRUMENT_ENABLED

}  // namespace gncg::instrument

// --- macros ----------------------------------------------------------------
//
// The macro layer exists so call sites compile to *nothing* under OFF --
// including their argument expressions and any locals declared through
// GNCG_IF_INSTRUMENT (hot kernels accumulate into a stack local and flush
// once per run; the local itself must vanish with the layer).

#if GNCG_INSTRUMENT_ENABLED

#define GNCG_COUNT(counter) \
  ::gncg::instrument::bump(::gncg::instrument::Counter::counter)
#define GNCG_COUNT_N(counter, n) \
  ::gncg::instrument::bump(::gncg::instrument::Counter::counter, (n))
#define GNCG_IF_INSTRUMENT(...) __VA_ARGS__

#define GNCG_INSTRUMENT_CONCAT_(a, b) a##b
#define GNCG_INSTRUMENT_CONCAT(a, b) GNCG_INSTRUMENT_CONCAT_(a, b)
/// Scope span with a string-literal or std::string name.
#define GNCG_SPAN(name, category)                                       \
  const ::gncg::instrument::Span GNCG_INSTRUMENT_CONCAT(gncg_span_,     \
                                                        __LINE__)(      \
      (name), (category))

#else  // GNCG_INSTRUMENT_ENABLED

#define GNCG_COUNT(counter) ((void)0)
#define GNCG_COUNT_N(counter, n) ((void)0)
#define GNCG_IF_INSTRUMENT(...)
#define GNCG_SPAN(name, category) ((void)0)

#endif  // GNCG_INSTRUMENT_ENABLED
