// Graphviz DOT export of built networks, strategy profiles and host
// layouts -- the visualization hook a downstream user needs to *see*
// equilibria (edge direction = ownership, as in the paper's figures).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "graph/weighted_graph.hpp"
#include "metric/points.hpp"

namespace gncg {

/// Options controlling the DOT rendering.
struct DotOptions {
  /// Graph name in the DOT header.
  std::string name = "gncg";
  /// Node labels; defaults to node indices when empty.
  std::vector<std::string> labels;
  /// Print edge weights as labels.
  bool edge_weights = true;
  /// Use point coordinates as fixed positions (needs a 2-D point set).
  const PointSet* layout = nullptr;
};

/// Writes an undirected weighted graph as DOT (`graph { ... }`).
void write_dot(std::ostream& os, const WeightedGraph& graph,
               const DotOptions& options = {});

/// Writes a strategy profile as DOT (`digraph { ... }`): each bought edge
/// is an arrow from its owner to the target, mirroring the paper's figure
/// convention.  Double-bought edges appear twice.
void write_dot(std::ostream& os, const Game& game, const StrategyProfile& s,
               const DotOptions& options = {});

}  // namespace gncg
