// Minimal wall-clock stopwatch used by benchmarks and progress reporting.
#pragma once

#include <chrono>

namespace gncg {

/// Wall-clock stopwatch.  Starts on construction; `seconds()`/`millis()`
/// report elapsed time, `restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gncg
