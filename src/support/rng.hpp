// Deterministic pseudo-random number generation for experiments.
//
// All randomized components of gncg take an explicit 64-bit seed so that every
// test and benchmark is reproducible.  We implement xoshiro256** (Blackman &
// Vigna) seeded through SplitMix64, which is the recommended initialization.
// The generator satisfies the C++ UniformRandomBitGenerator concept so it can
// drive <random> distributions, and it is cheaply splittable for parallel
// experiment sweeps.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

#include "support/assert.hpp"

namespace gncg {

/// SplitMix64 step: used for seeding and for hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Folds `value` into hash `h` through a full SplitMix64 round.  Unlike the
/// boost-style xor-shift combine, every input bit avalanches over the whole
/// word, so nearby values (seed, seed+1, ...) yield uncorrelated hashes.
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t value) {
  std::uint64_t state = h ^ (value + 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

/// Platform-stable string hash built from hash_combine (NOT std::hash, whose
/// value is implementation-defined and would break cross-machine journals).
constexpr std::uint64_t hash_string(std::string_view text) {
  std::uint64_t h = 0x6a09e667f3bcc909ULL;  // sqrt(2) fractional bits
  for (const char c : text)
    h = hash_combine(h, static_cast<unsigned char>(c));
  return hash_combine(h, text.size());
}

/// Derives the RNG stream seed for one experiment job.  Independent streams
/// come from hashing the full job identity -- scenario name, position in the
/// expanded plan and replicate seed -- instead of the raw `seed + i`
/// convention, whose streams are correlated shifts of one another under
/// counter-based seeding.  Every sweep job and every bench replicate must
/// seed through this (or split an Rng) rather than arithmetic on seeds.
constexpr std::uint64_t stream_seed(std::string_view scenario,
                                    std::uint64_t point_index,
                                    std::uint64_t seed) {
  return hash_combine(hash_combine(hash_string(scenario), point_index), seed);
}

/// xoshiro256** PRNG.  Fast, high quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single user seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t uniform_below(std::uint64_t bound) {
    GNCG_CHECK(bound > 0, "uniform_below requires a positive bound");
    // Rejection-free fast path is fine for our experiment scale; use
    // 128-bit multiply with rejection to remove modulo bias exactly.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    GNCG_CHECK(lo <= hi, "uniform_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    GNCG_CHECK(lo <= hi, "uniform_real requires lo <= hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derives an independent child generator (for parallel work items).
  Rng split() {
    Rng child(0);
    std::uint64_t sm = (*this)() ^ 0x1d8e4e27c47d124fULL;
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <class Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Generator seeded from the derived job stream (see stream_seed).
inline Rng stream_rng(std::string_view scenario, std::uint64_t point_index,
                      std::uint64_t seed) {
  return Rng(stream_seed(scenario, point_index, seed));
}

}  // namespace gncg
