// Statistics accumulators for experiment summaries: streaming moments
// (Welford) and an exact sample accumulator with quantiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

/// Accumulates count/mean/variance/min/max of a stream of doubles in O(1)
/// memory using Welford's numerically stable update.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) /
            total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact order statistics over a retained sample, next to the streaming
/// moments.  O(n) memory -- sized for sweep aggregation (thousands of jobs
/// per group), not for unbounded telemetry; the sweep aggregation layer is
/// the intended consumer.  Quantiles sort lazily and cache the sorted order
/// until the next add/merge.
class SampleStats {
 public:
  void add(double x) {
    moments_.add(x);
    values_.push_back(x);
    sorted_ = false;
  }

  /// Merges another accumulator (parallel reduction / group roll-ups).
  void merge(const SampleStats& other) {
    moments_.merge(other.moments_);
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    sorted_ = false;
  }

  std::uint64_t count() const { return moments_.count(); }
  double sum() const { return moments_.sum(); }
  double mean() const { return moments_.mean(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  double variance() const { return moments_.variance(); }
  double stddev() const { return moments_.stddev(); }
  const RunningStats& moments() const { return moments_; }

  /// Quantile with linear interpolation between order statistics (the
  /// "linear" / type-7 estimator): q = 0 is the min, q = 1 the max, q = 0.5
  /// the median.  NaN on an empty sample.
  double quantile(double q) const {
    GNCG_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
    if (values_.empty()) return std::numeric_limits<double>::quiet_NaN();
    ensure_sorted();
    const double rank = q * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] + frac * (values_[hi] - values_[lo]);
  }

  double median() const { return quantile(0.5); }

 private:
  void ensure_sorted() const {
    if (sorted_) return;
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }

  RunningStats moments_;
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace gncg
