#include "support/instrument.hpp"

#include "support/arena.hpp"

#if GNCG_INSTRUMENT_ENABLED
#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>
#endif

#include <fstream>

namespace gncg::instrument {

const char* counter_name(Counter counter) {
  switch (counter) {
    case Counter::kSsspHeapRuns: return "sssp_heap_runs";
    case Counter::kSsspHeapPops: return "sssp_heap_pops";
    case Counter::kSsspHeapRelaxations: return "sssp_heap_relaxations";
    case Counter::kSsspDialRuns: return "sssp_dial_runs";
    case Counter::kSsspDialPops: return "sssp_dial_pops";
    case Counter::kSsspDialRelaxations: return "sssp_dial_relaxations";
    case Counter::kSsspDialRingScans: return "sssp_dial_ring_scans";
    case Counter::kSsspRepairs: return "sssp_repairs";
    case Counter::kSsspRepairRelaxations: return "sssp_repair_relaxations";
    case Counter::kSsspRollbackEntries: return "sssp_rollback_entries";
    case Counter::kBrSearches: return "br_searches";
    case Counter::kBrExpansions: return "br_expansions";
    case Counter::kBrEvaluations: return "br_evaluations";
    case Counter::kBrPrunesGlobal: return "br_prunes_global_floor";
    case Counter::kBrPrunesPerNode: return "br_prunes_per_node_floor";
    case Counter::kBrBranchAborts: return "br_branch_aborts";
    case Counter::kLadderCalls: return "ladder_calls";
    case Counter::kLadderTier1Final: return "ladder_tier1_final";
    case Counter::kLadderTier2Final: return "ladder_tier2_final";
    case Counter::kLadderTier3Final: return "ladder_tier3_final";
    case Counter::kLadderEscapeExact: return "ladder_escape_exact";
    case Counter::kLadderCandidates: return "ladder_candidates";
    case Counter::kLadderCandidateBudget: return "ladder_candidate_budget";
    case Counter::kEngineCacheHits: return "engine_cache_hits";
    case Counter::kEngineCacheMisses: return "engine_cache_misses";
    case Counter::kEngineEpochBumps: return "engine_epoch_bumps";
    case Counter::kEngineCsrRelocations: return "engine_csr_relocations";
    case Counter::kEngineCsrCompactions: return "engine_csr_compactions";
    case Counter::kTtProbes: return "tt_probes";
    case Counter::kTtConfirms: return "tt_confirms";
    case Counter::kTtCollisions: return "tt_collisions";
    case Counter::kPoolRegions: return "pool_regions";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kArenaShrinkEvents: return "arena_shrink_events";
    case Counter::kSsspBoundedRepairs: return "sssp_bounded_repairs";
    case Counter::kSsspBoundedTruncations: return "sssp_bounded_truncations";
    case Counter::kLadderBoundedProbes: return "ladder_bounded_probes";
    case Counter::kLadderBatchCalls: return "ladder_batch_calls";
    case Counter::kLadderBatchAgents: return "ladder_batch_agents";
    case Counter::kMgmRounds: return "mgm_rounds";
    case Counter::kMgmProposals: return "mgm_proposals";
    case Counter::kMgmConflictDrops: return "mgm_conflict_drops";
    case Counter::kMgmCommits: return "mgm_commits";
    case Counter::kCount: break;
  }
  return "unknown";
}

#if GNCG_INSTRUMENT_ENABLED

namespace {

/// One buffered trace event.  `category` points at a string literal.
struct TraceEvent {
  std::string name;
  const char* category;
  std::int64_t start_us;
  std::int64_t duration_us;
  std::uint64_t tid;
};

/// Owns every thread's counter block and trace buffer for the process
/// lifetime.  Leaked (never destroyed) so thread-exit destructors and
/// static-teardown order can't invalidate snapshot reads -- same policy
/// as the arena registry.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::CounterBlock>> blocks;
  std::vector<std::unique_ptr<std::vector<TraceEvent>>> trace_buffers;
  std::uint64_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// Per-thread trace state: a buffer owned by the registry plus a small
/// stable thread id (assigned in registration order, used as the trace
/// `tid` so exports are readable).
struct ThreadTraceState {
  std::vector<TraceEvent>* buffer = nullptr;
  std::uint64_t tid = 0;
};

ThreadTraceState& tls_trace_state() {
  thread_local ThreadTraceState state = [] {
    ThreadTraceState s;
    auto buffer = std::make_unique<std::vector<TraceEvent>>();
    s.buffer = buffer.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    s.tid = reg.next_tid++;
    reg.trace_buffers.push_back(std::move(buffer));
    return s;
  }();
  return state;
}

std::chrono::steady_clock::time_point& trace_epoch() {
  static std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void json_escape_into(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

namespace detail {

CounterBlock& tls_counters() {
  thread_local CounterBlock* block = [] {
    auto owned = std::make_unique<CounterBlock>();
    CounterBlock* raw = owned.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.blocks.push_back(std::move(owned));
    return raw;
  }();
  return *block;
}

std::atomic<bool>& tracing_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

std::int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void record_span(std::string name, const char* category,
                 std::int64_t start_us, std::int64_t duration_us) {
  ThreadTraceState& state = tls_trace_state();
  state.buffer->push_back(TraceEvent{std::move(name), category, start_us,
                                     duration_us, state.tid});
}

}  // namespace detail

CounterArray thread_counters() { return detail::tls_counters().slots; }

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snapshot;
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    snapshot.counter_blocks = reg.blocks.size();
    for (const auto& block : reg.blocks)
      for (std::size_t i = 0; i < kCounterCount; ++i)
        snapshot.counters[i] += block->slots[i];
  }
  const ArenaStats arenas = arena_stats();
  snapshot.arenas = arenas.arenas;
  snapshot.arena_footprint_bytes = arenas.footprint_bytes;
  snapshot.arena_peak_footprint_bytes = arenas.peak_footprint_bytes;
  return snapshot;
}

std::uint64_t counter_total(Counter counter) {
  const std::size_t slot = static_cast<std::size_t>(counter);
  std::uint64_t total = 0;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& block : reg.blocks) total += block->slots[slot];
  return total;
}

void start_tracing() {
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& buffer : reg.trace_buffers) buffer->clear();
  }
  trace_epoch() = std::chrono::steady_clock::now();
  detail::tracing_flag().store(true, std::memory_order_release);
}

bool tracing_enabled() {
  return detail::tracing_flag().load(std::memory_order_relaxed);
}

std::size_t stop_tracing(const std::string& path) {
  detail::tracing_flag().store(false, std::memory_order_release);

  std::vector<TraceEvent> events;
  std::uint64_t max_tid = 0;
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& buffer : reg.trace_buffers) {
      for (TraceEvent& event : *buffer) {
        max_tid = std::max(max_tid, event.tid);
        events.push_back(std::move(event));
      }
      buffer->clear();
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.tid < b.tid;
            });

  std::ofstream out(path);
  if (!out) return 0;
  out << "[\n";
  bool first = true;
  for (std::uint64_t tid = 0; tid <= max_tid && !events.empty(); ++tid) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
        << R"(,"args":{"name":"gncg-thread-)" << tid << "\"}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out << ",\n";
    first = false;
    std::string name;
    json_escape_into(name, event.name.c_str());
    std::string category;
    json_escape_into(category, event.category);
    out << R"({"name":")" << name << R"(","cat":")" << category
        << R"(","ph":"X","ts":)" << event.start_us << R"(,"dur":)"
        << event.duration_us << R"(,"pid":1,"tid":)" << event.tid << "}";
  }
  out << "\n]\n";
  return events.size();
}

#else  // GNCG_INSTRUMENT_ENABLED

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snapshot;
  const ArenaStats arenas = arena_stats();
  snapshot.arenas = arenas.arenas;
  snapshot.arena_footprint_bytes = arenas.footprint_bytes;
  snapshot.arena_peak_footprint_bytes = arenas.peak_footprint_bytes;
  return snapshot;
}

std::uint64_t counter_total(Counter) { return 0; }

void start_tracing() {}
bool tracing_enabled() { return false; }

std::size_t stop_tracing(const std::string& path) {
  std::ofstream out(path);
  if (out) out << "[\n]\n";
  return 0;
}

#endif  // GNCG_INSTRUMENT_ENABLED

CounterArray counters_delta(const MetricsSnapshot& before,
                            const MetricsSnapshot& now) {
  CounterArray delta = now.counters;
  for (std::size_t i = 0; i < kCounterCount; ++i) delta[i] -= before.counters[i];
  return delta;
}

}  // namespace gncg::instrument
