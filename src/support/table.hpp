// Console table and CSV output used by the benchmark harness to print
// paper-style result rows (paper value vs measured value).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gncg {

/// Builds an aligned, boxed console table.  Cells are strings; numeric
/// convenience overloads format doubles with fixed precision.
class ConsoleTable {
 public:
  /// Creates a table with the given column headers.
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent `add` calls fill it left to right.
  ConsoleTable& begin_row();
  ConsoleTable& add(const std::string& cell);
  ConsoleTable& add(const char* cell);
  ConsoleTable& add(double value, int precision = 4);
  ConsoleTable& add(long long value);
  ConsoleTable& add(int value);
  ConsoleTable& add(bool value);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table to `os` with a header rule and column alignment.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (RFC-4180 quoting) to `os`.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly ("inf" for infinities, trimmed zeros).
std::string format_double(double value, int precision = 4);

/// Prints a section banner (used between experiment blocks in benches).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace gncg
