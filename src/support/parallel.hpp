// Shared-memory parallel primitives for the experiment harness.
//
// Follows the C++ Core Guidelines concurrency rules: tasks own their data,
// shared state is read-only or explicitly synchronized, and joins are RAII.
// `parallel_for` block-partitions an index range over a pool of std::thread
// workers; `parallel_reduce` combines thread-local accumulators.  Benchmarks
// and equilibrium enumeration are data-parallel over immutable game state, so
// these two primitives cover all concurrency in the library.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

/// Number of worker threads used by default: the programmatic override if
/// set, else the GNCG_THREADS environment variable if set (how CI forces an
/// 8-worker pool on any runner), else hardware concurrency (>= 1).
std::size_t default_thread_count();

/// Overrides the default worker count (0 restores hardware concurrency).
/// Intended for tests and for benchmarks that measure scaling.
void set_default_thread_count(std::size_t threads);

namespace detail {

/// Runs `body(thread_index)` for thread indices 0..threads-1 on the
/// persistent worker pool (index 0 on the caller), rethrowing the first
/// captured exception.  Nested invocations from inside a pool worker run
/// serially.
void run_on_workers(std::size_t threads,
                    const std::function<void(std::size_t)>& body);

/// True when the calling thread is executing inside a parallel region.
bool inside_parallel_region();

/// RAII pin: while alive, every parallel region started by this thread
/// degrades to serial in-caller execution (the nested-region path), exactly
/// as if the thread were a pool worker.  The sweep runner wraps each job
/// with one when collecting per-job metrics, so all of a job's kernel work
/// executes -- and is counted -- on the job's one thread regardless of the
/// runner's thread count.
class NestedSerialGuard {
 public:
  NestedSerialGuard();
  ~NestedSerialGuard();
  NestedSerialGuard(const NestedSerialGuard&) = delete;
  NestedSerialGuard& operator=(const NestedSerialGuard&) = delete;

 private:
  bool was_inside_;
};

/// Work items below this count run serially: pool dispatch costs more than
/// the work itself for tiny kernels (n-source APSP on toy graphs etc.).
inline constexpr std::size_t kSerialCutoff = 32;

}  // namespace detail

/// Applies `fn(i)` for every i in [begin, end), dynamically chunked across
/// the default worker pool.  `fn` must be safe to call concurrently on
/// distinct indices.  `grain` is the chunk size claimed per atomic fetch.
/// `serial_cutoff` is the work-item count below which dispatch is not worth
/// it -- the default is tuned for tiny kernels; callers whose items are
/// entire jobs (the sweep runner) pass a small value to fan out regardless.
template <class Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  std::size_t grain = 1,
                  std::size_t serial_cutoff = detail::kSerialCutoff) {
  GNCG_CHECK(begin <= end, "parallel_for requires begin <= end");
  const std::size_t total = end - begin;
  if (total == 0) return;
  const std::size_t threads =
      std::min(default_thread_count(), (total + grain - 1) / grain);
  if (threads <= 1 || total < serial_cutoff ||
      detail::inside_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  detail::run_on_workers(threads, [&](std::size_t) {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = std::min(lo + grain, end);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  });
}

/// Parallel reduction: each worker owns an Acc constructed from `make_acc()`,
/// `fn(acc, i)` folds index i into it, and `combine(total, acc)` merges the
/// per-worker results sequentially at the end.  `serial_cutoff` mirrors
/// parallel_for's: callers whose items are entire jobs (the dynamics
/// restart driver) pass a small value so short batches still fan out.
template <class Acc, class MakeAcc, class Fn, class Combine>
Acc parallel_reduce(std::size_t begin, std::size_t end, MakeAcc&& make_acc,
                    Fn&& fn, Combine&& combine, std::size_t grain = 64,
                    std::size_t serial_cutoff = detail::kSerialCutoff) {
  GNCG_CHECK(begin <= end, "parallel_reduce requires begin <= end");
  const std::size_t total = end - begin;
  Acc result = make_acc();
  if (total == 0) return result;
  const std::size_t threads =
      std::min(default_thread_count(), (total + grain - 1) / grain);
  if (threads <= 1 || total < serial_cutoff ||
      detail::inside_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) fn(result, i);
    return result;
  }
  std::vector<Acc> partials;
  partials.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) partials.push_back(make_acc());
  std::atomic<std::size_t> next{begin};
  detail::run_on_workers(threads, [&](std::size_t tid) {
    Acc& acc = partials[tid];
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = std::min(lo + grain, end);
      for (std::size_t i = lo; i < hi; ++i) fn(acc, i);
    }
  });
  for (auto& acc : partials) combine(result, acc);
  return result;
}

}  // namespace gncg
