#include "support/arena.hpp"

#include <memory>
#include <mutex>

#include "support/instrument.hpp"

namespace gncg {

std::size_t ScratchArena::footprint_bytes() const {
  std::size_t total = dijkstra_.footprint_bytes() + dial_.footprint_bytes() +
                      sssp_.footprint_bytes();
  total += sum_dist_.capacity() * sizeof(double);
  total += owned_targets_.capacity() * sizeof(int);
  total += side_mark_.capacity() * sizeof(char);
  total += dfs_stack_.capacity() * sizeof(int);
  total += br_.order.capacity() * sizeof(std::pair<double, int>);
  total += br_.candidates.capacity() * sizeof(int);
  total += (br_.weights.capacity() + br_.base_dist.capacity() +
            br_.host_row.capacity() + br_.weight_row.capacity()) *
           sizeof(double);
  total += ladder_.cand.capacity() * sizeof(int);
  total += (ladder_.cand_w.capacity() + ladder_.base_dist.capacity() +
            ladder_.host_row.capacity() + ladder_.weight_row.capacity()) *
           sizeof(double);
  total += ladder_.in_cand.capacity() * sizeof(char);
  total += ladder_.sssp.footprint_bytes();
  total += ladder_.probe_rank.capacity() * sizeof(std::pair<double, int>);
  return total;
}

namespace {

/// Registry owning every arena; arenas outlive their threads so stats stay
/// meaningful after a pool resize.  Leaked deliberately (never destroyed)
/// so worker threads that outlive main()'s statics can still touch their
/// arena during teardown.
///
/// Peaks are per-arena (worker-sharded, sampled on query): each entry
/// tracks its own arena's footprint high-water mark, and arena_stats()
/// reports the sum of the per-arena peaks.  The sum-of-peaks is an upper
/// bound on the true simultaneous peak, but unlike a single global
/// high-water mark it attributes memory to the worker that reserved it.
struct ArenaRegistry {
  struct Entry {
    std::unique_ptr<ScratchArena> arena;
    std::size_t peak_footprint_bytes = 0;
  };
  std::mutex mu;
  std::vector<Entry> arenas;
};

ArenaRegistry& registry() {
  static ArenaRegistry* instance = new ArenaRegistry();
  return *instance;
}

ScratchArena* make_registered_arena() {
  auto arena = std::make_unique<ScratchArena>();
  ScratchArena* raw = arena.get();
  ArenaRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.arenas.push_back(ArenaRegistry::Entry{std::move(arena), 0});
  return raw;
}

}  // namespace

ScratchArena& worker_arena() {
  static thread_local ScratchArena* arena = make_registered_arena();
  return *arena;
}

ArenaStats arena_stats() {
  ArenaRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ArenaStats stats;
  stats.arenas = reg.arenas.size();
  for (auto& entry : reg.arenas) {
    const std::size_t footprint = entry.arena->footprint_bytes();
    stats.footprint_bytes += footprint;
    if (footprint > entry.peak_footprint_bytes)
      entry.peak_footprint_bytes = footprint;
    stats.peak_footprint_bytes += entry.peak_footprint_bytes;
  }
  stats.shrink_events =
      instrument::counter_total(instrument::Counter::kArenaShrinkEvents);
  return stats;
}

}  // namespace gncg
