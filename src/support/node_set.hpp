// NodeSet: a compact dynamic bitset over node indices.
//
// Strategy sets (the S_u of the paper) and edge-membership masks are sets of
// node indices with n up to a few hundred.  NodeSet stores them as 64-bit
// words with cache-friendly iteration, popcount-based cardinality, and a
// mixing hash used by the dynamics engine for cycle detection.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

/// Fixed-universe dynamic bitset over {0, ..., universe-1}.
class NodeSet {
 public:
  NodeSet() = default;

  /// Creates an empty set over a universe of `universe` node indices.
  explicit NodeSet(int universe)
      : universe_(universe),
        words_(static_cast<std::size_t>((universe + 63) / 64), 0) {
    GNCG_CHECK(universe >= 0, "NodeSet universe must be non-negative");
  }

  /// Number of node indices the set ranges over (not the cardinality).
  int universe() const { return universe_; }

  bool contains(int v) const {
    GNCG_DASSERT(in_range(v));
    return (words_[static_cast<std::size_t>(v) >> 6] >>
            (static_cast<unsigned>(v) & 63U)) &
           1U;
  }

  void insert(int v) {
    GNCG_DASSERT(in_range(v));
    words_[static_cast<std::size_t>(v) >> 6] |=
        std::uint64_t{1} << (static_cast<unsigned>(v) & 63U);
  }

  void erase(int v) {
    GNCG_DASSERT(in_range(v));
    words_[static_cast<std::size_t>(v) >> 6] &=
        ~(std::uint64_t{1} << (static_cast<unsigned>(v) & 63U));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Cardinality of the set.
  int size() const {
    int total = 0;
    for (auto w : words_) total += std::popcount(w);
    return total;
  }

  bool empty() const {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Calls `fn(v)` for every member v in increasing order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(static_cast<int>(wi * 64) + bit);
        w &= w - 1;
      }
    }
  }

  /// Members as a vector (convenience for tests and reporting).
  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(size()));
    for_each([&](int v) { out.push_back(v); });
    return out;
  }

  bool operator==(const NodeSet& other) const {
    return universe_ == other.universe_ && words_ == other.words_;
  }
  bool operator!=(const NodeSet& other) const { return !(*this == other); }

  /// 64-bit mixing hash (SplitMix64 over the words); used for profile
  /// fingerprints in cycle detection.
  std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                      static_cast<std::uint64_t>(universe_);
    for (auto w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      std::uint64_t z = h;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return h;
  }

 private:
  bool in_range(int v) const { return v >= 0 && v < universe_; }

  int universe_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gncg
