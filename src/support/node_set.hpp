// NodeSet: a compact dynamic bitset over node indices.
//
// Strategy sets (the S_u of the paper) and edge-membership masks are sets of
// node indices.  Two storage modes behind one API:
//
//  * dense (universe <= kDenseUniverseLimit): 64-bit words with
//    cache-friendly iteration -- O(1) membership, the historical layout;
//  * sparse (universe > kDenseUniverseLimit): only the *nonzero* words,
//    kept as a sorted (word index, word) list.  Strategy sets at the
//    large-n geometric tier hold a handful of targets out of 10^5..10^6
//    nodes; storing them densely would make one StrategyProfile
//    Theta(n^2 / 8) bytes (125 GB at n = 10^6), while the sparse form is
//    O(n * deg) across a profile.  Membership is a binary search over the
//    member words (the list length is ~|S|, so effectively O(log |S|)).
//
// The mode is a pure function of the universe, so sets that can meet in
// operator== always share a representation.  Iteration (for_each) visits
// members in increasing order in both modes -- the canonical-evaluation
// order every cost summation depends on.  Popcount-based cardinality and a
// mixing hash (used by the dynamics engine for cycle detection) work on
// either form; hashes are only ever compared between sets of the same
// universe, hence the same mode.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

/// Fixed-universe dynamic bitset over {0, ..., universe-1}.
class NodeSet {
 public:
  /// Largest universe stored densely: 64 Ki nodes = 8 KiB of words.  Every
  /// pre-existing workload (n up to a few thousand) stays on the dense
  /// layout bit-for-bit; only the large-n geometric tier crosses over.
  static constexpr int kDenseUniverseLimit = 1 << 16;

  NodeSet() = default;

  /// Creates an empty set over a universe of `universe` node indices.
  explicit NodeSet(int universe) : universe_(universe) {
    GNCG_CHECK(universe >= 0, "NodeSet universe must be non-negative");
    if (!sparse())
      words_.assign(static_cast<std::size_t>((universe + 63) / 64), 0);
  }

  /// Number of node indices the set ranges over (not the cardinality).
  int universe() const { return universe_; }

  bool contains(int v) const {
    GNCG_DASSERT(in_range(v));
    if (sparse()) {
      const auto it = find_word(word_index(v));
      return it != sparse_words_.end() && it->first == word_index(v) &&
             ((it->second >> (static_cast<unsigned>(v) & 63U)) & 1U);
    }
    return (words_[static_cast<std::size_t>(v) >> 6] >>
            (static_cast<unsigned>(v) & 63U)) &
           1U;
  }

  void insert(int v) {
    GNCG_DASSERT(in_range(v));
    const std::uint64_t bit = std::uint64_t{1}
                              << (static_cast<unsigned>(v) & 63U);
    if (sparse()) {
      const auto it = find_word(word_index(v));
      if (it != sparse_words_.end() && it->first == word_index(v)) {
        it->second |= bit;
      } else {
        sparse_words_.insert(it, {word_index(v), bit});
      }
      return;
    }
    words_[static_cast<std::size_t>(v) >> 6] |= bit;
  }

  void erase(int v) {
    GNCG_DASSERT(in_range(v));
    const std::uint64_t bit = std::uint64_t{1}
                              << (static_cast<unsigned>(v) & 63U);
    if (sparse()) {
      const auto it = find_word(word_index(v));
      if (it == sparse_words_.end() || it->first != word_index(v)) return;
      it->second &= ~bit;
      // Canonical form: no zero words, so equality/hash are functions of
      // the member set alone.
      if (it->second == 0) sparse_words_.erase(it);
      return;
    }
    words_[static_cast<std::size_t>(v) >> 6] &= ~bit;
  }

  void clear() {
    sparse_words_.clear();
    for (auto& w : words_) w = 0;
  }

  /// Cardinality of the set.
  int size() const {
    int total = 0;
    if (sparse()) {
      for (const auto& [wi, w] : sparse_words_) total += std::popcount(w);
    } else {
      for (auto w : words_) total += std::popcount(w);
    }
    return total;
  }

  bool empty() const {
    if (sparse()) return sparse_words_.empty();
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Calls `fn(v)` for every member v in increasing order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    if (sparse()) {
      for (const auto& [wi, word] : sparse_words_) {
        std::uint64_t w = word;
        while (w != 0) {
          const int bit = std::countr_zero(w);
          fn(static_cast<int>(static_cast<std::size_t>(wi) * 64) + bit);
          w &= w - 1;
        }
      }
      return;
    }
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(static_cast<int>(wi * 64) + bit);
        w &= w - 1;
      }
    }
  }

  /// Members as a vector (convenience for tests and reporting).
  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(size()));
    for_each([&](int v) { out.push_back(v); });
    return out;
  }

  bool operator==(const NodeSet& other) const {
    // Same universe implies same mode, and both forms are canonical.
    return universe_ == other.universe_ && words_ == other.words_ &&
           sparse_words_ == other.sparse_words_;
  }
  bool operator!=(const NodeSet& other) const { return !(*this == other); }

  /// 64-bit mixing hash (SplitMix64 over the words); used for profile
  /// fingerprints in cycle detection.  Only comparable between sets of the
  /// same universe (which share a storage mode).
  std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                      static_cast<std::uint64_t>(universe_);
    const auto mix = [&h](std::uint64_t w) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      std::uint64_t z = h;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    };
    if (sparse()) {
      for (const auto& [wi, w] : sparse_words_) {
        mix(static_cast<std::uint64_t>(wi));
        mix(w);
      }
    } else {
      for (auto w : words_) mix(w);
    }
    return h;
  }

 private:
  using SparseWord = std::pair<std::uint32_t, std::uint64_t>;

  bool in_range(int v) const { return v >= 0 && v < universe_; }
  bool sparse() const { return universe_ > kDenseUniverseLimit; }

  static std::uint32_t word_index(int v) {
    return static_cast<std::uint32_t>(static_cast<std::size_t>(v) >> 6);
  }

  std::vector<SparseWord>::iterator find_word(std::uint32_t wi) {
    return std::lower_bound(
        sparse_words_.begin(), sparse_words_.end(), wi,
        [](const SparseWord& entry, std::uint32_t key) {
          return entry.first < key;
        });
  }
  std::vector<SparseWord>::const_iterator find_word(std::uint32_t wi) const {
    return std::lower_bound(
        sparse_words_.begin(), sparse_words_.end(), wi,
        [](const SparseWord& entry, std::uint32_t key) {
          return entry.first < key;
        });
  }

  int universe_ = 0;
  std::vector<std::uint64_t> words_;       ///< dense mode storage
  std::vector<SparseWord> sparse_words_;   ///< sparse mode storage (sorted)
};

}  // namespace gncg
