#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace gncg {

std::string format_double(double value, int precision) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one digit after the point.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GNCG_CHECK(!headers_.empty(), "a table needs at least one column");
}

ConsoleTable& ConsoleTable::begin_row() {
  rows_.emplace_back();
  return *this;
}

ConsoleTable& ConsoleTable::add(const std::string& cell) {
  GNCG_CHECK(!rows_.empty(), "call begin_row() before add()");
  GNCG_CHECK(rows_.back().size() < headers_.size(),
             "row has more cells than headers");
  rows_.back().push_back(cell);
  return *this;
}

ConsoleTable& ConsoleTable::add(const char* cell) {
  return add(std::string(cell));
}

ConsoleTable& ConsoleTable::add(double value, int precision) {
  return add(format_double(value, precision));
}

ConsoleTable& ConsoleTable::add(long long value) {
  return add(std::to_string(value));
}

ConsoleTable& ConsoleTable::add(int value) { return add(std::to_string(value)); }

ConsoleTable& ConsoleTable::add(bool value) {
  return add(std::string(value ? "yes" : "no"));
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void ConsoleTable::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << quote(row[c]);
    os << '\n';
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  const std::string rule(title.size() + 4, '=');
  os << '\n' << rule << '\n' << "= " << title << " =" << '\n' << rule << '\n';
}

}  // namespace gncg
