// Contract-checking macros for the gncg library.
//
// GNCG_CHECK enforces preconditions/invariants in all build types and throws
// gncg::ContractViolation (so tests can assert on misuse and callers can
// recover).  GNCG_DASSERT is a debug-only variant for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gncg {

/// Thrown when a GNCG_CHECK contract fails.  Carries file/line context.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "gncg contract violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace gncg

/// Always-on contract check.  `msg` is streamed, e.g.
///   GNCG_CHECK(u < n, "node index " << u << " out of range");
#define GNCG_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream gncg_check_os_;                                  \
      gncg_check_os_ << msg;                                              \
      ::gncg::detail::contract_fail(#cond, __FILE__, __LINE__,            \
                                    gncg_check_os_.str());                \
    }                                                                     \
  } while (false)

/// Debug-only assertion for hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define GNCG_DASSERT(cond) ((void)0)
#else
#define GNCG_DASSERT(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gncg::detail::contract_fail(#cond, __FILE__, __LINE__, "");        \
  } while (false)
#endif
