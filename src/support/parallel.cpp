#include "support/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>

#include "support/instrument.hpp"

namespace gncg {

namespace {

std::atomic<std::size_t> g_thread_override{0};

/// Marks threads currently executing pool work; nested parallel regions
/// degrade to serial execution instead of deadlocking on the pool.
thread_local bool t_inside_pool_worker = false;

/// Persistent worker pool.  One top-level parallel region runs at a time
/// (serialized by run_mutex_); workers sleep on a condition variable
/// between regions, so dispatch costs microseconds instead of the
/// hundreds-of-microseconds thread-spawn penalty that dominates small
/// kernels.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  /// Runs body(0..threads-1), body(0) on the caller, the rest on workers.
  void run(std::size_t threads, const std::function<void(std::size_t)>& body) {
    const std::unique_lock<std::mutex> run_lock(run_mutex_);
    const std::size_t helpers = std::min(threads - 1, workers_.size());
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      body_ = &body;
      helpers_wanted_ = helpers;
      helpers_started_ = 0;
      helpers_done_ = 0;
      ++generation_;
    }
    if (helpers > 0) work_ready_.notify_all();
    t_inside_pool_worker = true;
    body(0);
    t_inside_pool_worker = false;
    if (helpers > 0) {
      std::unique_lock<std::mutex> lock(mutex_);
      all_done_.wait(lock, [&] { return helpers_done_ == helpers_wanted_; });
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = nullptr;
  }

 private:
  ThreadPool() {
    const std::size_t hw = default_thread_count();
    const std::size_t helpers = hw > 1 ? hw - 1 : 0;
    workers_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_ready_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::size_t id = 0;
      const std::function<void(std::size_t)>* body = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] {
          return shutdown_ || (generation_ != seen_generation &&
                               helpers_started_ < helpers_wanted_);
        });
        if (shutdown_) return;
        seen_generation = generation_;
        id = ++helpers_started_;  // worker ids 1..helpers_wanted_
        body = body_;
      }
      t_inside_pool_worker = true;
      (*body)(id);
      t_inside_pool_worker = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (++helpers_done_ == helpers_wanted_) all_done_.notify_all();
      }
    }
  }

  std::mutex run_mutex_;  // one top-level region at a time

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t helpers_wanted_ = 0;
  std::size_t helpers_started_ = 0;
  std::size_t helpers_done_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;  // must outlive fields above
};

}  // namespace

namespace {

/// GNCG_THREADS environment default: consulted once, used only when no
/// programmatic override is set, so set_default_thread_count(1)/(0) probes
/// in tests behave identically under the CI multi-thread job.  0 = unset.
std::size_t env_thread_default() {
  static const std::size_t cached = [] {
    const char* raw = std::getenv("GNCG_THREADS");
    if (raw == nullptr || *raw == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long value = std::strtoul(raw, &end, 10);
    if (end == raw || *end != '\0' || value < 1 || value > 1024)
      return std::size_t{0};
    return static_cast<std::size_t>(value);
  }();
  return cached;
}

}  // namespace

std::size_t default_thread_count() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  const std::size_t env = env_thread_default();
  if (env != 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void set_default_thread_count(std::size_t threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

namespace detail {

bool inside_parallel_region() { return t_inside_pool_worker; }

void run_on_workers(std::size_t threads,
                    const std::function<void(std::size_t)>& body) {
  GNCG_CHECK(threads >= 1, "need at least one worker");
  // Nested regions (a worker spawning a region) run serially: every thread
  // id still executes exactly once, which parallel_reduce relies on.
  if (threads == 1 || t_inside_pool_worker) {
    for (std::size_t tid = 0; tid < threads; ++tid) body(tid);
    return;
  }
  GNCG_COUNT(kPoolRegions);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::function<void(std::size_t)> guarded = [&](std::size_t tid) {
    // Per-worker busy span: one "parallel_region" slice per worker per
    // region, so a trace shows pool occupancy directly.
    GNCG_SPAN("parallel_region", "pool");
    GNCG_COUNT(kPoolTasks);
    try {
      body(tid);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  ThreadPool::instance().run(threads, guarded);
  if (first_error) std::rethrow_exception(first_error);
}

NestedSerialGuard::NestedSerialGuard()
    : was_inside_(t_inside_pool_worker) {
  t_inside_pool_worker = true;
}

NestedSerialGuard::~NestedSerialGuard() {
  t_inside_pool_worker = was_inside_;
}

}  // namespace detail
}  // namespace gncg
