// Point sets in R^d under p-norms (the Rd-GNCG substrate).
//
// Supports any p >= 1 including the Chebyshev limit p = infinity.  Generators
// cover the workloads the experiments need: uniform cubes, Gaussian-ish
// clusters, grids, 1-D lines (Lemma 8 / Theorem 18), circle arcs (the
// Theorem 16 Set-Cover gadget) and the Theorem 19 cross-polytope layout.
#pragma once

#include <vector>

#include "graph/distance_matrix.hpp"
#include "support/rng.hpp"

namespace gncg {

/// Norm exponent; use kPNormInf for the Chebyshev (max) norm.
inline constexpr double kPNormInf = kInf;

/// A set of n points in R^d, stored row-major (point-major) in a flat array.
class PointSet {
 public:
  PointSet() = default;

  /// Creates n points at the origin of R^d.
  PointSet(int n, int dim);

  /// Builds from explicit coordinates; `coords[i]` is point i.
  explicit PointSet(std::vector<std::vector<double>> coords);

  int size() const { return n_; }
  int dim() const { return dim_; }

  double coord(int point, int axis) const;
  void set_coord(int point, int axis, double value);

  /// p-norm distance between points a and b (p >= 1 or kPNormInf).
  double distance(int a, int b, double p) const;

  /// Fills `out` with the distances from point a to every point (out[a] = 0),
  /// in index order.  One row of distance_matrix(p) without materializing the
  /// matrix -- the euclidean host backend streams rows through this.
  void distances_from(int a, double p, std::vector<double>& out) const;

  /// Full pairwise distance matrix under the given p-norm.
  DistanceMatrix distance_matrix(double p) const;

 private:
  int n_ = 0;
  int dim_ = 0;
  std::vector<double> coords_;
};

/// p-norm of a coordinate difference vector (shared helper).
double pnorm(const std::vector<double>& delta, double p);

/// n i.i.d. uniform points in the axis-aligned cube [0, side]^d.
PointSet uniform_points(int n, int dim, double side, Rng& rng);

/// k cluster centers uniform in [0, side]^d; n points assigned round-robin
/// with uniform offsets in [-spread, spread]^d.  Models city-like geometry.
PointSet clustered_points(int n, int dim, int clusters, double side,
                          double spread, Rng& rng);

/// Axis-aligned grid of `per_side`^dim points with unit spacing `step`.
PointSet grid_points(int per_side, int dim, double step);

/// 1-D points at the given positions (Lemma 8 / Theorem 18 layouts).
PointSet line_points(const std::vector<double>& positions);

}  // namespace gncg
