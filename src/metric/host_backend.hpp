// Host-metric backends: serve host weight and host-distance queries with or
// without a dense O(n^2) matrix.
//
// The paper's headline models are *geometric*: Rd-GNCG hosts are p-norm
// point sets and T-GNCG hosts are tree metrics, where w(u, v) is computable
// in O(d) resp. O(1) and the metric closure coincides with the weights.  A
// HostBackend abstracts the storage question away from HostGraph / Game so
// that
//   * small or genuinely dense instances keep the materialized-matrix path
//     (kDense: weights matrix + full Floyd-Warshall closure, computed once
//     on first distance query), while
//   * large geometric instances never allocate an O(n^2) weight or closure
//     matrix at all (kEuclidean / kTree), and
//   * dense non-metric hosts can trade the eager O(n^3) closure for
//     row-granular Dijkstra on demand (kLazyClosure).
//
// Query contract (what DeviationEngine, best_response and Game rely on):
//   * `weight`, `host_distance` and `host_distance_sum` are const,
//     thread-safe and stable: repeated calls with the same arguments return
//     bit-identical values for the lifetime of the backend.
//   * `host_distance(u, v)` is the shortest-path closure of `weight`; on
//     metric backends (euclidean, tree) the two coincide.
//   * `host_distance_sum(u)` equals the sum of host_distance(u, v) over v in
//     increasing index order (the exact summation order matters: it keeps
//     the branch-and-bound pruning bound bit-compatible with the dense
//     path).
//   * Lazily computed state (dense closure, lazy rows, euclidean sums) is
//     synchronized internally; callers never observe partially filled rows.
//   * `candidate_targets(u, budget, out)` is the spatial candidate oracle:
//     a deterministic, (weight, id)-sorted shortlist of purchase targets the
//     approximate best-response ladder searches over.  Same stability and
//     thread-safety rules as every other query.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/distance_matrix.hpp"
#include "metric/points.hpp"
#include "metric/spatial_index.hpp"
#include "metric/tree.hpp"

namespace gncg {

/// Storage/query strategy of a host graph.
enum class HostBackendKind {
  kDense,        ///< materialized weights + eager-once Floyd-Warshall closure
  kLazyClosure,  ///< materialized weights, closure rows Dijkstra'd on demand
  kEuclidean,    ///< implicit p-norm weights from a PointSet (closure == w)
  kTree,         ///< implicit tree-metric weights via LCA (closure == w)
};

/// Stable lower-case token ("dense", "lazy", "euclidean", "tree") used by
/// instance_io and the CLI tools.
std::string backend_name(HostBackendKind kind);

/// Abstract host-metric oracle.  Implementations are immutable after
/// construction up to internal, synchronized caches.
class HostBackend {
 public:
  virtual ~HostBackend() = default;

  virtual HostBackendKind kind() const = 0;
  virtual int node_count() const = 0;

  /// Host edge weight w(u, v) (kInf encodes a forbidden edge).
  virtual double weight(int u, int v) const = 0;

  /// Shortest-path distance d_H(u, v) in the host.
  virtual double host_distance(int u, int v) const = 0;

  /// Sum over v (in increasing index order) of host_distance(u, v).
  virtual double host_distance_sum(int u) const = 0;

  /// Integer-weight capability: when every finite value `weight` can return
  /// is a non-negative integer, returns a positive upper bound on those
  /// values; returns 0.0 when the capability is absent (fractional,
  /// unbounded or unknown weights).  Gates the bucket-queue (dial) Dijkstra
  /// kernel.  Stable and thread-safe like every other query.
  virtual double integer_weight_bound() const { return 0.0; }

  /// The backing weight matrix when this backend stores one (dense / lazy
  /// closure), nullptr for implicit backends.  HostGraph uses this for a
  /// branch-free fast path on `weight`.
  virtual const DistanceMatrix* dense_weights() const { return nullptr; }

  /// Materializes the full weight matrix (O(n^2); small-n escape hatch for
  /// consumers that genuinely need a matrix, e.g. spanner construction).
  virtual DistanceMatrix materialize_weights() const;

  /// Materializes the full closure matrix (O(n^2) queries; small-n only).
  virtual DistanceMatrix materialize_closure() const;

  /// Spatial candidate oracle: fills `out` with at most `budget` purchase
  /// targets for node u (never u itself, never forbidden kInf pairs),
  /// sorted by (weight, id) ascending.  Deterministic, stable and
  /// thread-safe like every other query, so restricted best-response
  /// searches over the returned list are reproducible bit-for-bit.
  ///
  /// Default implementation (dense / lazy / tree): all finite-weight
  /// targets sorted by (weight, id), truncated to `budget` -- with
  /// budget >= n-1 this is exactly the unrestricted candidate list, which
  /// is what keeps restricted-search differential gates meaningful.  The
  /// euclidean backend overrides this with grid-accelerated locality
  /// queries (see metric/spatial_index.hpp).
  virtual void candidate_targets(int u, int budget,
                                 std::vector<int>& out) const;
};

/// Dense backend: the seed representation.  Owns the complete weight matrix;
/// the Floyd-Warshall closure and its row sums are computed once, on the
/// first host_distance / host_distance_sum query (games that never ask for
/// host distances no longer pay the O(n^3) closure).
class DenseHostBackend final : public HostBackend {
 public:
  explicit DenseHostBackend(DistanceMatrix weights);

  HostBackendKind kind() const override { return HostBackendKind::kDense; }
  int node_count() const override { return weights_.size(); }
  double weight(int u, int v) const override { return weights_.at(u, v); }
  double host_distance(int u, int v) const override;
  double host_distance_sum(int u) const override;
  double integer_weight_bound() const override;
  const DistanceMatrix* dense_weights() const override { return &weights_; }
  DistanceMatrix materialize_weights() const override { return weights_; }
  DistanceMatrix materialize_closure() const override;

 private:
  void ensure_closure() const;

  DistanceMatrix weights_;
  mutable std::once_flag closure_once_;
  mutable DistanceMatrix closure_;
  mutable std::vector<double> sums_;
  mutable std::once_flag int_bound_once_;
  mutable double int_bound_ = 0.0;
};

/// Lazy-closure backend: owns the weight matrix but computes closure *rows*
/// on demand (one O(n^2) dense Dijkstra per distinct queried source) instead
/// of the eager O(n^3) Floyd-Warshall.  Wins whenever a workload touches
/// host distances of only a few agents (best-response pruning, incremental
/// dynamics) on a non-metric host too large for the cubic closure.
class LazyClosureHostBackend final : public HostBackend {
 public:
  explicit LazyClosureHostBackend(DistanceMatrix weights);

  HostBackendKind kind() const override {
    return HostBackendKind::kLazyClosure;
  }
  int node_count() const override { return weights_.size(); }
  double weight(int u, int v) const override { return weights_.at(u, v); }
  double host_distance(int u, int v) const override;
  double host_distance_sum(int u) const override;
  double integer_weight_bound() const override;
  const DistanceMatrix* dense_weights() const override { return &weights_; }
  DistanceMatrix materialize_weights() const override { return weights_; }

  /// Number of closure rows computed so far (observability for benches).
  int rows_computed() const;

 private:
  const std::vector<double>& row(int u) const;

  DistanceMatrix weights_;
  mutable std::once_flag int_bound_once_;
  mutable double int_bound_ = 0.0;
  mutable std::mutex fill_mutex_;
  mutable std::vector<std::vector<double>> rows_;
  mutable std::vector<double> sums_;
  // One release/acquire flag per row: readers that observe `ready` see the
  // fully written row without taking the mutex.
  mutable std::unique_ptr<std::atomic<bool>[]> ready_;
};

/// Euclidean (Rd-GNCG) backend: n points in R^d under a p-norm.  Weights are
/// computed on demand in O(d); p-norms are metrics, so host_distance ==
/// weight and there is no closure to compute, ever.  Memory: O(n * d).
class EuclideanHostBackend final : public HostBackend {
 public:
  EuclideanHostBackend(PointSet points, double p);

  HostBackendKind kind() const override { return HostBackendKind::kEuclidean; }
  int node_count() const override { return points_.size(); }
  double weight(int u, int v) const override {
    return u == v ? 0.0 : points_.distance(u, v, p_);
  }
  double host_distance(int u, int v) const override { return weight(u, v); }
  double host_distance_sum(int u) const override;

  /// Real-weight opt-out of the dial (bucket-queue) SSSP kernel: p-norm
  /// distances are generally irrational even on integer coordinates, so
  /// this backend never certifies the integer-weight capability and
  /// HostGraph::dial_weight_bound stays 0 on euclidean hosts -- geometric
  /// SSSP always takes the binary-heap kernel.  (Certifying the rare
  /// integral layouts, e.g. 1-norm grids, would take the O(n^2) pairwise
  /// scan this backend exists to avoid.)  Kept explicit rather than
  /// inherited so the opt-out is a documented decision, not an accident;
  /// tests/test_approx_br.cpp pins it.
  double integer_weight_bound() const override { return 0.0; }

  /// Grid-accelerated locality oracle: the `budget` nearest points united
  /// with the nearest point per angular cone (Yao-style directional
  /// coverage), (weight, id)-sorted.  budget >= n-1 falls back to the base
  /// full scan, bit-identical to the dense backends' ordering.  The grid is
  /// built once, on first query (O(n) memory, never O(n^2)).
  void candidate_targets(int u, int budget,
                         std::vector<int>& out) const override;

  const PointSet& points() const { return points_; }
  double norm_p() const { return p_; }

  /// The lazily built grid (observability for tests/benches); nullptr until
  /// the first restricted candidate_targets query.
  const SpatialIndex* spatial_index() const;

 private:
  void ensure_sums() const;
  void ensure_index() const;

  PointSet points_;
  double p_;
  mutable std::once_flag sums_once_;
  mutable std::vector<double> sums_;
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<SpatialIndex> index_;
};

/// Tree-metric (T-GNCG) backend: the host is the metric closure of an
/// edge-weighted tree.  Distances are served as
///   d_T(u, v) = depth(u) + depth(v) - 2 * depth(lca(u, v))
/// with O(1) LCA queries (Euler tour + sparse-table RMQ).  Per-node distance
/// sums are accumulated once, on first query, by direct increasing-v
/// summation of host_distance (O(n^2) LCA queries) -- NOT by the O(n)
/// rerooting identity, which sums in a different association order and
/// would break the backend contract's "sum in increasing index order"
/// guarantee that branch-and-bound pruning relies on.  Memory: O(n log n).
class TreeHostBackend final : public HostBackend {
 public:
  explicit TreeHostBackend(const WeightedTree& tree);

  HostBackendKind kind() const override { return HostBackendKind::kTree; }
  int node_count() const override { return n_; }
  double weight(int u, int v) const override { return host_distance(u, v); }
  double host_distance(int u, int v) const override;
  double host_distance_sum(int u) const override;
  double integer_weight_bound() const override { return int_bound_; }

  /// Lowest common ancestor of u and v (root is node 0's DFS root).
  int lca(int u, int v) const;

 private:
  void ensure_sums() const;

  int n_ = 0;
  double int_bound_ = 0.0;              ///< integer capability, set at build
  std::vector<double> depth_weighted_;  ///< weighted distance from the root
  std::vector<int> euler_;              ///< Euler tour node sequence
  std::vector<int> euler_level_;        ///< tree level at each tour position
  std::vector<int> first_visit_;        ///< first tour index of each node
  std::vector<std::vector<int>> sparse_;  ///< RMQ over tour positions
  std::vector<int> log2_;               ///< floor(log2) lookup
  mutable std::once_flag sums_once_;
  mutable std::vector<double> sums_;    ///< increasing-v distance sums
};

/// Factory helpers (shared so HostGraph copies stay cheap handles).
std::shared_ptr<const HostBackend> make_dense_backend(DistanceMatrix weights);
std::shared_ptr<const HostBackend> make_lazy_closure_backend(
    DistanceMatrix weights);
std::shared_ptr<const HostBackend> make_euclidean_backend(PointSet points,
                                                          double p);
std::shared_ptr<const HostBackend> make_tree_backend(const WeightedTree& tree);

}  // namespace gncg
