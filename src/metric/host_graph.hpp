// HostGraph: the complete weighted graph the game is played on, together
// with the paper's model taxonomy (Figure 1).
//
// Model relations (special case -> general):
//   NCG (all weights 1)
//     -> 1-2-GNCG (weights in {1,2})       -> M-GNCG -> GNCG
//     -> 1-inf-GNCG (weights in {1,inf})              -> GNCG
//   T-GNCG (tree metric closure)           -> M-GNCG -> GNCG
//   Rd-GNCG (p-norm points)                -> M-GNCG -> GNCG
//
// A HostGraph is a cheap shared handle over a HostBackend (see
// metric/host_backend.hpp): dense hosts keep the materialized symmetric
// weight matrix of the seed implementation (kInf encodes forbidden edges as
// in the 1-inf model), while geometric hosts (point sets, tree metrics)
// serve weights and host distances implicitly and never allocate an O(n^2)
// matrix.  The declared model class and the generating provenance (point
// set / tree) ride along so experiments can report where an instance came
// from, and copying a HostGraph -- which Game does by value -- shares the
// backend instead of duplicating matrices.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "graph/distance_matrix.hpp"
#include "metric/host_backend.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {

/// Paper model classes, ordered roughly from most special to most general.
enum class ModelClass {
  kNCG,        ///< unweighted clique (all weights 1)
  kOneTwo,     ///< weights in {1, 2} (always metric)
  kOneInf,     ///< weights in {1, inf} (generally non-metric)
  kTree,       ///< metric closure of a weighted tree
  kEuclidean,  ///< p-norm distances of points in R^d
  kMetric,     ///< arbitrary metric weights
  kGeneral,    ///< arbitrary non-negative weights
};

/// Human-readable model name ("1-2-GNCG", "T-GNCG", ...).
std::string model_name(ModelClass model);

/// Inverse of model_name; nullopt for unknown names.
std::optional<ModelClass> model_from_name(const std::string& name);

/// Complete weighted host graph with model metadata.
class HostGraph {
 public:
  /// Builds a dense-backend host from an explicit weight matrix.
  /// Contract-checks symmetry, a zero diagonal and non-negative entries.
  /// `declared` records how the instance was generated (defaults to the
  /// general model).
  static HostGraph from_weights(DistanceMatrix weights,
                                ModelClass declared = ModelClass::kGeneral);

  /// Like from_weights, but closure rows are Dijkstra'd on demand instead of
  /// paying the eager O(n^3) Floyd-Warshall (see LazyClosureHostBackend).
  static HostGraph from_weights_lazy(
      DistanceMatrix weights, ModelClass declared = ModelClass::kGeneral);

  /// Metric closure of a weighted tree (the T-GNCG host).  Implicit
  /// tree-metric backend: no O(n^2) matrix is materialized.
  static HostGraph from_tree(const WeightedTree& tree);

  /// p-norm distances between points (the Rd-GNCG host).  Implicit
  /// euclidean backend: no O(n^2) matrix is materialized.
  static HostGraph from_points(const PointSet& points, double p);

  /// The original NCG: an unweighted clique (all weights 1).
  static HostGraph unit(int n);

  /// 1-inf host induced by an arbitrary unweighted graph: pairs joined by an
  /// edge get weight 1, everything else weight inf (cannot be bought).
  static HostGraph one_inf_from_graph(const WeightedGraph& g);

  int node_count() const { return n_; }

  /// Host edge weight w(u, v).  Branch-free matrix read on dense backends;
  /// O(d) / O(1) computation on implicit ones.
  double weight(int u, int v) const {
    return dense_weights_ != nullptr ? dense_weights_->at(u, v)
                                     : backend_->weight(u, v);
  }

  /// Shortest-path distance d_H(u, v) in the host (== weight on metric
  /// backends; closure row / matrix on dense ones, computed on first use).
  double host_distance(int u, int v) const {
    return backend_->host_distance(u, v);
  }

  /// Sum over v of host_distance(u, v) -- the admissible lower bound on any
  /// network's distance cost for agent u, served from the backend's cache.
  double host_distance_sum(int u) const {
    return backend_->host_distance_sum(u);
  }

  const HostBackend& backend() const { return *backend_; }
  HostBackendKind backend_kind() const { return backend_->kind(); }

  /// Spatial candidate oracle (see HostBackend::candidate_targets): at most
  /// `budget` purchase targets for u, (weight, id)-sorted, deterministic.
  /// Grid-accelerated on euclidean backends, weight-sorted truncation
  /// elsewhere; budget >= n-1 always yields the full candidate list.
  void candidate_targets(int u, int budget, std::vector<int>& out) const {
    backend_->candidate_targets(u, budget, out);
  }

  /// Backend integer-weight capability (see
  /// HostBackend::integer_weight_bound): positive bound or 0.0.
  double integer_weight_bound() const {
    return backend_->integer_weight_bound();
  }

  /// Bucket-queue eligibility: the backend's integer bound as an int when
  /// the capability is present *and* small enough that a C+1-ring dial queue
  /// beats the binary heap; 0 otherwise (use the heap).  SSSP kernels key
  /// off this single value.
  int dial_weight_bound() const {
    const double bound = backend_->integer_weight_bound();
    return (bound > 0.0 && bound <= kDialMaxWeight)
               ? static_cast<int>(bound)
               : 0;
  }

  /// Largest integer weight bound for which the dial kernel is used (rings
  /// are O(bound) memory per worker; beyond this the heap wins anyway).
  static constexpr double kDialMaxWeight = 4096.0;

  /// Dense weight matrix view.  On dense backends this is the backing
  /// matrix; on implicit backends the matrix is materialized (O(n^2)) once
  /// and cached -- a small-n escape hatch for matrix-shaped consumers
  /// (spanner construction, tests).  Large-n implicit workloads must not
  /// call this.
  const DistanceMatrix& weights() const;

  ModelClass declared_model() const { return declared_; }

  /// Full shortest-path closure matrix (O(n^2) memory; small-n only).
  DistanceMatrix shortest_path_closure() const {
    return backend_->materialize_closure();
  }

  /// True when all finite weights satisfy the triangle inequality (pairs
  /// with infinite weight are exempt: such edges are forbidden, not long).
  bool is_metric(double eps = 1e-9) const;

  bool is_unit() const;
  bool is_one_two() const;
  bool is_one_inf() const;
  bool has_infinite_weight() const;

  /// Most specific model class detectable from the weights alone (cannot
  /// distinguish tree/euclidean provenance; those stay kMetric).
  ModelClass classify(double eps = 1e-9) const;

  /// Generating point set, served from the euclidean backend (nullptr for
  /// every other backend -- the backend's copy is the single source of
  /// truth).
  const PointSet* points() const;
  std::optional<double> norm_p() const;

  /// Generating tree edges (present when built by from_tree; the backend
  /// keeps only LCA tables, so the edge list lives here).
  const std::optional<std::vector<Edge>>& tree_edges() const {
    return tree_edges_;
  }

 private:
  HostGraph(std::shared_ptr<const HostBackend> backend, ModelClass declared);

  static DistanceMatrix validated(DistanceMatrix weights);

  std::shared_ptr<const HostBackend> backend_;
  const DistanceMatrix* dense_weights_ = nullptr;  ///< into backend_, if dense
  int n_ = 0;
  ModelClass declared_;

  /// Lazily materialized weight matrix for implicit backends (shared across
  /// HostGraph copies; filled at most once).
  struct MaterializedWeights {
    std::once_flag once;
    DistanceMatrix matrix;
  };
  std::shared_ptr<MaterializedWeights> materialized_;

  std::optional<std::vector<Edge>> tree_edges_;
};

/// Random {1,2} host: each pair independently gets weight 1 with probability
/// `p_one`, else 2.  Every 1-2 assignment is metric (1+1 >= 2).
HostGraph random_one_two_host(int n, double p_one, Rng& rng);

/// Random metric host: a random symmetric weight matrix repaired into a
/// metric by shortest-path closure (weights in [w_min, w_max] pre-repair).
HostGraph random_metric_host(int n, Rng& rng, double w_min = 1.0,
                             double w_max = 10.0);

/// Random general (typically non-metric) host with i.i.d. uniform weights.
HostGraph random_general_host(int n, Rng& rng, double w_min = 1.0,
                              double w_max = 10.0);

/// Random 1-inf host from an Erdos-Renyi graph G(n, p_edge), conditioned on
/// connectivity (retries until the sampled graph is connected).
HostGraph random_one_inf_host(int n, double p_edge, Rng& rng);

}  // namespace gncg
