// HostGraph: the complete weighted graph the game is played on, together
// with the paper's model taxonomy (Figure 1).
//
// Model relations (special case -> general):
//   NCG (all weights 1)
//     -> 1-2-GNCG (weights in {1,2})       -> M-GNCG -> GNCG
//     -> 1-inf-GNCG (weights in {1,inf})              -> GNCG
//   T-GNCG (tree metric closure)           -> M-GNCG -> GNCG
//   Rd-GNCG (p-norm points)                -> M-GNCG -> GNCG
//
// A HostGraph stores a complete symmetric weight matrix (kInf encodes
// forbidden edges as in the 1-inf model), its declared model class, and
// optional provenance (the generating point set or tree) so experiments can
// report where an instance came from.
#pragma once

#include <optional>
#include <string>

#include "graph/distance_matrix.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/rng.hpp"

namespace gncg {

/// Paper model classes, ordered roughly from most special to most general.
enum class ModelClass {
  kNCG,        ///< unweighted clique (all weights 1)
  kOneTwo,     ///< weights in {1, 2} (always metric)
  kOneInf,     ///< weights in {1, inf} (generally non-metric)
  kTree,       ///< metric closure of a weighted tree
  kEuclidean,  ///< p-norm distances of points in R^d
  kMetric,     ///< arbitrary metric weights
  kGeneral,    ///< arbitrary non-negative weights
};

/// Human-readable model name ("1-2-GNCG", "T-GNCG", ...).
std::string model_name(ModelClass model);

/// Complete weighted host graph with model metadata.
class HostGraph {
 public:
  /// Builds from an explicit weight matrix.  Contract-checks symmetry, a
  /// zero diagonal and non-negative entries.  `declared` records how the
  /// instance was generated (defaults to the general model).
  static HostGraph from_weights(DistanceMatrix weights,
                                ModelClass declared = ModelClass::kGeneral);

  /// Metric closure of a weighted tree (the T-GNCG host).
  static HostGraph from_tree(const WeightedTree& tree);

  /// p-norm distances between points (the Rd-GNCG host).
  static HostGraph from_points(const PointSet& points, double p);

  /// The original NCG: an unweighted clique (all weights 1).
  static HostGraph unit(int n);

  /// 1-inf host induced by an arbitrary unweighted graph: pairs joined by an
  /// edge get weight 1, everything else weight inf (cannot be bought).
  static HostGraph one_inf_from_graph(const WeightedGraph& g);

  int node_count() const { return weights_.size(); }
  double weight(int u, int v) const { return weights_.at(u, v); }
  const DistanceMatrix& weights() const { return weights_; }
  ModelClass declared_model() const { return declared_; }

  /// Sum over all ordered pairs of d_H(u,v) -- the admissible lower bound on
  /// any network's total distance cost (any subgraph distance >= the host
  /// shortest-path distance).  Cached on first use by callers.
  DistanceMatrix shortest_path_closure() const;

  /// True when all finite weights satisfy the triangle inequality (pairs
  /// with infinite weight are exempt: such edges are forbidden, not long).
  bool is_metric(double eps = 1e-9) const;

  bool is_unit() const;
  bool is_one_two() const;
  bool is_one_inf() const;
  bool has_infinite_weight() const;

  /// Most specific model class detectable from the weights alone (cannot
  /// distinguish tree/euclidean provenance; those stay kMetric).
  ModelClass classify(double eps = 1e-9) const;

  /// Provenance accessors (present when built by the respective factory).
  const std::optional<PointSet>& points() const { return points_; }
  std::optional<double> norm_p() const { return norm_p_; }
  const std::optional<std::vector<Edge>>& tree_edges() const {
    return tree_edges_;
  }

 private:
  explicit HostGraph(DistanceMatrix weights, ModelClass declared)
      : weights_(std::move(weights)), declared_(declared) {}

  DistanceMatrix weights_;
  ModelClass declared_;
  std::optional<PointSet> points_;
  std::optional<double> norm_p_;
  std::optional<std::vector<Edge>> tree_edges_;
};

/// Random {1,2} host: each pair independently gets weight 1 with probability
/// `p_one`, else 2.  Every 1-2 assignment is metric (1+1 >= 2).
HostGraph random_one_two_host(int n, double p_one, Rng& rng);

/// Random metric host: a random symmetric weight matrix repaired into a
/// metric by shortest-path closure (weights in [w_min, w_max] pre-repair).
HostGraph random_metric_host(int n, Rng& rng, double w_min = 1.0,
                             double w_max = 10.0);

/// Random general (typically non-metric) host with i.i.d. uniform weights.
HostGraph random_general_host(int n, Rng& rng, double w_min = 1.0,
                              double w_max = 10.0);

/// Random 1-inf host from an Erdos-Renyi graph G(n, p_edge), conditioned on
/// connectivity (retries until the sampled graph is connected).
HostGraph random_one_inf_host(int n, double p_edge, Rng& rng);

}  // namespace gncg
