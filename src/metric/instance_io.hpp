// Plain-text serialization of game instances and strategy profiles.
//
// Hosts (version 2; version 1 files still load):
//   gncg-host 2            # header + version
//   backend <dense|lazy|euclidean|tree>
//   model <model-name>     # declared model (model_name token, e.g. T-GNCG)
//   n <count>
// followed by a backend-specific payload:
//   * dense / lazy:  one "w <u> <v> <weight>" line per unordered pair
//                    ("inf" allowed);
//   * euclidean:     "p <norm|inf>", "dim <d>", then one
//                    "point <i> <x0> ... <x_{d-1}>" line per point;
//   * tree:          one "tedge <u> <v> <weight>" line per tree edge.
// Geometric hosts round-trip their *provenance* (point set / tree), not the
// expanded O(n^2) matrix: a loaded euclidean or tree host reconstructs the
// same implicit backend, bit-identical weights included (coordinates and
// weights are printed with round-trip precision).
//
// Profiles:
//   gncg-profile 1
//   n <count>
//   buy <owner> <target>
// Deterministic round-trips make experiment configurations shareable and
// let the CLI tools consume externally generated instances.
#pragma once

#include <iosfwd>

#include "core/game.hpp"
#include "metric/host_graph.hpp"

namespace gncg {

/// Writes the host in the version-2 format above: provenance payload for
/// geometric backends, the complete weight matrix otherwise.
void save_host(std::ostream& os, const HostGraph& host);

/// Parses a host written by save_host (version 1 or 2), reconstructing the
/// recorded backend kind.  Contract-fails on malformed input (bad header,
/// missing pairs, asymmetric duplicates, unknown backend).
HostGraph load_host(std::istream& is);

/// Writes a strategy profile (ownership list).
void save_profile(std::ostream& os, const StrategyProfile& profile);

/// Parses a profile written by save_profile.
StrategyProfile load_profile(std::istream& is);

}  // namespace gncg
