// Plain-text serialization of game instances and strategy profiles.
//
// Format (line oriented, '#' comments allowed):
//   gncg-host 1            # header + version
//   n <count>
//   w <u> <v> <weight>     # one line per unordered pair; "inf" allowed
//   ...
// and for profiles:
//   gncg-profile 1
//   n <count>
//   buy <owner> <target>
//   ...
// Deterministic round-trips make experiment configurations shareable and
// let the CLI tools consume externally generated instances.
#pragma once

#include <iosfwd>

#include "core/game.hpp"
#include "metric/host_graph.hpp"

namespace gncg {

/// Writes the host's complete weight matrix.
void save_host(std::ostream& os, const HostGraph& host);

/// Parses a host written by save_host.  Contract-fails on malformed input
/// (bad header, missing pairs, asymmetric duplicates).
HostGraph load_host(std::istream& is);

/// Writes a strategy profile (ownership list).
void save_profile(std::ostream& os, const StrategyProfile& profile);

/// Parses a profile written by save_profile.
StrategyProfile load_profile(std::istream& is);

}  // namespace gncg
