// Plain-text serialization of game instances and strategy profiles.
//
// Hosts (version 2; version 1 files still load):
//   gncg-host 2            # header + version
//   backend <dense|lazy|euclidean|tree>
//   model <model-name>     # declared model (model_name token, e.g. T-GNCG)
//   x-scenario <name>      # optional provenance: sweep scenario,
//   x-point <index>        #   position in the expanded sweep plan,
//   x-stream <hex64>       #   derived RNG stream (support/rng stream_seed)
//   n <count>
// `x-` lines are an extension block: zero or more may follow `model`, and
// readers skip unknown `x-` keys, so provenance-stamped files stay loadable
// by older tools and vice versa.  The sweep pipeline stamps these so a
// dumped instance names the exact job that produced it.
// The header is followed by a backend-specific payload:
//   * dense / lazy:  one "w <u> <v> <weight>" line per unordered pair
//                    ("inf" allowed);
//   * euclidean:     "p <norm|inf>", "dim <d>", then one
//                    "point <i> <x0> ... <x_{d-1}>" line per point;
//   * tree:          one "tedge <u> <v> <weight>" line per tree edge.
// Geometric hosts round-trip their *provenance* (point set / tree), not the
// expanded O(n^2) matrix: a loaded euclidean or tree host reconstructs the
// same implicit backend, bit-identical weights included (coordinates and
// weights are printed with round-trip precision).
//
// Profiles:
//   gncg-profile 1
//   n <count>
//   buy <owner> <target>
// Deterministic round-trips make experiment configurations shareable and
// let the CLI tools consume externally generated instances.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/game.hpp"
#include "metric/host_graph.hpp"

namespace gncg {

/// Where a host instance came from: the sweep job identity.  `stream` is
/// the job's derived RNG seed (stream_seed), so the instance can be rebuilt
/// or the job re-run from the file alone.
struct HostProvenance {
  std::string scenario;
  std::uint64_t point_index = 0;
  std::uint64_t stream = 0;
};

/// Writes the host in the version-2 format above: generating payload for
/// geometric backends, the complete weight matrix otherwise.  A non-null
/// `provenance` is recorded as the x- extension block.
void save_host(std::ostream& os, const HostGraph& host,
               const HostProvenance* provenance = nullptr);

/// Parses a host written by save_host (version 1 or 2), reconstructing the
/// recorded backend kind.  Contract-fails on malformed input (bad header,
/// missing pairs, asymmetric duplicates, unknown backend).  When
/// `provenance` is non-null and the file carries an x- block, it is filled
/// in (left untouched otherwise).
HostGraph load_host(std::istream& is, HostProvenance* provenance = nullptr);

/// Writes a strategy profile (ownership list).
void save_profile(std::ostream& os, const StrategyProfile& profile);

/// Parses a profile written by save_profile.
StrategyProfile load_profile(std::istream& is);

}  // namespace gncg
