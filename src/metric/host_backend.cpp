#include "metric/host_backend.hpp"

#include <algorithm>
#include <cmath>

#include "graph/apsp.hpp"
#include "support/assert.hpp"

namespace gncg {

namespace {

/// Largest weight the integer capability will certify.  Keeps the double ->
/// integer casts exact and the dial ring count bounded by construction.
constexpr double kMaxCertifiedIntegerWeight = 1e9;

bool is_certifiable_integer(double w) {
  return w >= 0.0 && w <= kMaxCertifiedIntegerWeight && w == std::floor(w);
}

/// Scans a weight matrix once: the max finite weight when every finite entry
/// is a small non-negative integer (at least 1.0 so "capable" is always
/// positive), 0.0 otherwise.
double integer_bound_of_matrix(const DistanceMatrix& weights) {
  const int n = weights.size();
  double bound = 1.0;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      const double w = weights.at(u, v);
      if (w == kInf) continue;
      if (!is_certifiable_integer(w)) return 0.0;
      bound = std::max(bound, w);
    }
  }
  return bound;
}

}  // namespace

std::string backend_name(HostBackendKind kind) {
  switch (kind) {
    case HostBackendKind::kDense: return "dense";
    case HostBackendKind::kLazyClosure: return "lazy";
    case HostBackendKind::kEuclidean: return "euclidean";
    case HostBackendKind::kTree: return "tree";
  }
  return "?";
}

DistanceMatrix HostBackend::materialize_weights() const {
  const int n = node_count();
  DistanceMatrix m(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) m.set_symmetric(u, v, weight(u, v));
  return m;
}

DistanceMatrix HostBackend::materialize_closure() const {
  const int n = node_count();
  DistanceMatrix m(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) m.set_symmetric(u, v, host_distance(u, v));
  return m;
}

void HostBackend::candidate_targets(int u, int budget,
                                    std::vector<int>& out) const {
  const int n = node_count();
  GNCG_DASSERT(u >= 0 && u < n);
  out.clear();
  if (budget <= 0) return;
  // All purchasable targets by (weight, id): the id-ascending scan plus a
  // stable-by-construction sort key makes the order deterministic, and the
  // full-budget list is exactly the unrestricted search's candidate set.
  std::vector<std::pair<double, int>> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (v == u) continue;
    const double w = weight(u, v);
    if (w == kInf) continue;
    order.emplace_back(w, v);
  }
  std::sort(order.begin(), order.end());
  if (static_cast<int>(order.size()) > budget)
    order.resize(static_cast<std::size_t>(budget));
  out.reserve(order.size());
  for (const auto& [w, v] : order) out.push_back(v);
}

// --- dense ----------------------------------------------------------------

DenseHostBackend::DenseHostBackend(DistanceMatrix weights)
    : weights_(std::move(weights)) {}

void DenseHostBackend::ensure_closure() const {
  std::call_once(closure_once_, [this] {
    closure_ = weights_;
    floyd_warshall(closure_);
    const int n = closure_.size();
    sums_.resize(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
      double total = 0.0;
      const double* row = closure_.row(u);
      for (int v = 0; v < n; ++v) total += row[v];
      sums_[static_cast<std::size_t>(u)] = total;
    }
  });
}

double DenseHostBackend::host_distance(int u, int v) const {
  ensure_closure();
  return closure_.at(u, v);
}

double DenseHostBackend::host_distance_sum(int u) const {
  ensure_closure();
  GNCG_DASSERT(u >= 0 && u < weights_.size());
  return sums_[static_cast<std::size_t>(u)];
}

DistanceMatrix DenseHostBackend::materialize_closure() const {
  ensure_closure();
  return closure_;
}

double DenseHostBackend::integer_weight_bound() const {
  std::call_once(int_bound_once_,
                 [this] { int_bound_ = integer_bound_of_matrix(weights_); });
  return int_bound_;
}

// --- lazy closure ---------------------------------------------------------

LazyClosureHostBackend::LazyClosureHostBackend(DistanceMatrix weights)
    : weights_(std::move(weights)) {
  const auto n = static_cast<std::size_t>(weights_.size());
  rows_.resize(n);
  sums_.assign(n, 0.0);
  ready_ = std::make_unique<std::atomic<bool>[]>(n);
  for (std::size_t i = 0; i < n; ++i)
    ready_[i].store(false, std::memory_order_relaxed);
}

const std::vector<double>& LazyClosureHostBackend::row(int u) const {
  GNCG_DASSERT(u >= 0 && u < weights_.size());
  const auto i = static_cast<std::size_t>(u);
  if (!ready_[i].load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(fill_mutex_);
    if (!ready_[i].load(std::memory_order_relaxed)) {
      closure_row(weights_, u, rows_[i]);
      double total = 0.0;
      for (double d : rows_[i]) total += d;
      sums_[i] = total;
      ready_[i].store(true, std::memory_order_release);
    }
  }
  return rows_[i];
}

double LazyClosureHostBackend::host_distance(int u, int v) const {
  return row(u)[static_cast<std::size_t>(v)];
}

double LazyClosureHostBackend::host_distance_sum(int u) const {
  row(u);
  return sums_[static_cast<std::size_t>(u)];
}

double LazyClosureHostBackend::integer_weight_bound() const {
  std::call_once(int_bound_once_,
                 [this] { int_bound_ = integer_bound_of_matrix(weights_); });
  return int_bound_;
}

int LazyClosureHostBackend::rows_computed() const {
  const auto n = static_cast<std::size_t>(weights_.size());
  int count = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (ready_[i].load(std::memory_order_acquire)) ++count;
  return count;
}

// --- euclidean ------------------------------------------------------------

EuclideanHostBackend::EuclideanHostBackend(PointSet points, double p)
    : points_(std::move(points)), p_(p) {
  GNCG_CHECK(points_.size() >= 1, "euclidean backend needs at least one point");
  GNCG_CHECK(p >= 1.0, "p-norms require p >= 1");
}

void EuclideanHostBackend::ensure_sums() const {
  // O(n^2 d) once, O(n) memory.  Summation runs in increasing index order so
  // the result is bit-identical to summing a materialized closure row.
  std::call_once(sums_once_, [this] {
    const int n = points_.size();
    sums_.resize(static_cast<std::size_t>(n));
    std::vector<double> row;
    for (int u = 0; u < n; ++u) {
      points_.distances_from(u, p_, row);
      double total = 0.0;
      for (double d : row) total += d;
      sums_[static_cast<std::size_t>(u)] = total;
    }
  });
}

double EuclideanHostBackend::host_distance_sum(int u) const {
  ensure_sums();
  GNCG_DASSERT(u >= 0 && u < points_.size());
  return sums_[static_cast<std::size_t>(u)];
}

void EuclideanHostBackend::ensure_index() const {
  std::call_once(index_once_,
                 [this] { index_ = std::make_unique<SpatialIndex>(points_, p_); });
}

const SpatialIndex* EuclideanHostBackend::spatial_index() const {
  return index_.get();
}

void EuclideanHostBackend::candidate_targets(int u, int budget,
                                             std::vector<int>& out) const {
  // Full budget delegates to the base full scan so the restricted-search
  // differential gates compare against a bit-identical candidate order.
  if (budget >= points_.size() - 1) {
    HostBackend::candidate_targets(u, budget, out);
    return;
  }
  ensure_index();
  // Per-thread query scratch (same pattern as tls_dijkstra_buffers): the
  // oracle is const + thread-safe, and steady-state queries allocate
  // nothing once the buffers reach capacity.
  static thread_local SpatialIndex::QueryScratch scratch;
  index_->candidates(u, budget, out, scratch);
}

// --- tree -----------------------------------------------------------------

TreeHostBackend::TreeHostBackend(const WeightedTree& tree)
    : n_(tree.node_count()) {
  const WeightedGraph& g = tree.graph();
  depth_weighted_.assign(static_cast<std::size_t>(n_), 0.0);
  first_visit_.assign(static_cast<std::size_t>(n_), -1);
  euler_.reserve(static_cast<std::size_t>(2 * n_));
  euler_level_.reserve(static_cast<std::size_t>(2 * n_));

  // Iterative Euler-tour DFS from node 0 recording weighted depth, level and
  // DFS order (children order = adjacency order; any order works).
  std::vector<int> parent(static_cast<std::size_t>(n_), -1);
  std::vector<int> level(static_cast<std::size_t>(n_), 0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n_));
  {
    struct Frame {
      int node;
      std::size_t next_child;
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0});
    first_visit_[0] = 0;
    euler_.push_back(0);
    euler_level_.push_back(0);
    order.push_back(0);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& neighbors = g.neighbors(frame.node);
      if (frame.next_child >= neighbors.size()) {
        stack.pop_back();
        if (!stack.empty()) {
          euler_.push_back(stack.back().node);
          euler_level_.push_back(level[static_cast<std::size_t>(
              stack.back().node)]);
        }
        continue;
      }
      const auto& nb = neighbors[frame.next_child++];
      if (nb.to == parent[static_cast<std::size_t>(frame.node)]) continue;
      parent[static_cast<std::size_t>(nb.to)] = frame.node;
      level[static_cast<std::size_t>(nb.to)] =
          level[static_cast<std::size_t>(frame.node)] + 1;
      depth_weighted_[static_cast<std::size_t>(nb.to)] =
          depth_weighted_[static_cast<std::size_t>(frame.node)] + nb.weight;
      first_visit_[static_cast<std::size_t>(nb.to)] =
          static_cast<int>(euler_.size());
      euler_.push_back(nb.to);
      euler_level_.push_back(level[static_cast<std::size_t>(nb.to)]);
      order.push_back(nb.to);
      stack.push_back({nb.to, 0});
    }
  }
  GNCG_CHECK(static_cast<int>(order.size()) == n_,
             "tree backend DFS did not reach every node");

  // Sparse-table RMQ over the Euler tour (argmin by level).
  const auto m = euler_.size();
  log2_.assign(m + 1, 0);
  for (std::size_t i = 2; i <= m; ++i) log2_[i] = log2_[i / 2] + 1;
  const int levels = log2_[m] + 1;
  sparse_.assign(static_cast<std::size_t>(levels), {});
  sparse_[0].resize(m);
  for (std::size_t i = 0; i < m; ++i) sparse_[0][i] = static_cast<int>(i);
  for (int k = 1; k < levels; ++k) {
    const std::size_t span = std::size_t{1} << k;
    sparse_[static_cast<std::size_t>(k)].resize(m + 1 - span);
    for (std::size_t i = 0; i + span <= m; ++i) {
      const int left = sparse_[static_cast<std::size_t>(k - 1)][i];
      const int right =
          sparse_[static_cast<std::size_t>(k - 1)][i + span / 2];
      sparse_[static_cast<std::size_t>(k)][i] =
          euler_level_[static_cast<std::size_t>(left)] <=
                  euler_level_[static_cast<std::size_t>(right)]
              ? left
              : right;
    }
  }

  // Integer capability: every pairwise distance is a signed combination of
  // weighted depths, so if all edge weights are integers every distance is
  // an exact integer bounded by twice the deepest node.
  bool all_integer = true;
  for (int u = 0; u < n_ && all_integer; ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (!is_certifiable_integer(nb.weight)) {
        all_integer = false;
        break;
      }
    }
  }
  if (all_integer) {
    double max_depth = 0.0;
    for (double d : depth_weighted_) max_depth = std::max(max_depth, d);
    const double bound = std::max(1.0, 2.0 * max_depth);
    int_bound_ = bound <= kMaxCertifiedIntegerWeight ? bound : 0.0;
  }
}

void TreeHostBackend::ensure_sums() const {
  // Direct increasing-v accumulation (O(n^2) O(1)-LCA queries, once): the
  // O(n) rerooting identity would give the same values up to association
  // order, but the backend contract pins the summation order so the pruning
  // floor stays consistent with per-pair host_distance queries.
  std::call_once(sums_once_, [this] {
    sums_.resize(static_cast<std::size_t>(n_));
    for (int u = 0; u < n_; ++u) {
      double total = 0.0;
      for (int v = 0; v < n_; ++v) total += host_distance(u, v);
      sums_[static_cast<std::size_t>(u)] = total;
    }
  });
}

double TreeHostBackend::host_distance_sum(int u) const {
  ensure_sums();
  GNCG_DASSERT(u >= 0 && u < n_);
  return sums_[static_cast<std::size_t>(u)];
}

int TreeHostBackend::lca(int u, int v) const {
  GNCG_DASSERT(u >= 0 && u < n_ && v >= 0 && v < n_);
  std::size_t a = static_cast<std::size_t>(first_visit_[static_cast<std::size_t>(u)]);
  std::size_t b = static_cast<std::size_t>(first_visit_[static_cast<std::size_t>(v)]);
  if (a > b) std::swap(a, b);
  const int k = log2_[b - a + 1];
  const std::size_t span = std::size_t{1} << k;
  const int left = sparse_[static_cast<std::size_t>(k)][a];
  const int right = sparse_[static_cast<std::size_t>(k)][b + 1 - span];
  const int best = euler_level_[static_cast<std::size_t>(left)] <=
                           euler_level_[static_cast<std::size_t>(right)]
                       ? left
                       : right;
  return euler_[static_cast<std::size_t>(best)];
}

double TreeHostBackend::host_distance(int u, int v) const {
  if (u == v) return 0.0;
  const int w = lca(u, v);
  return depth_weighted_[static_cast<std::size_t>(u)] +
         depth_weighted_[static_cast<std::size_t>(v)] -
         2.0 * depth_weighted_[static_cast<std::size_t>(w)];
}

// --- factories ------------------------------------------------------------

std::shared_ptr<const HostBackend> make_dense_backend(DistanceMatrix weights) {
  return std::make_shared<DenseHostBackend>(std::move(weights));
}

std::shared_ptr<const HostBackend> make_lazy_closure_backend(
    DistanceMatrix weights) {
  return std::make_shared<LazyClosureHostBackend>(std::move(weights));
}

std::shared_ptr<const HostBackend> make_euclidean_backend(PointSet points,
                                                          double p) {
  return std::make_shared<EuclideanHostBackend>(std::move(points), p);
}

std::shared_ptr<const HostBackend> make_tree_backend(const WeightedTree& tree) {
  return std::make_shared<TreeHostBackend>(tree);
}

}  // namespace gncg
