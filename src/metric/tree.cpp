#include "metric/tree.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"
#include "graph/graph_algos.hpp"
#include "support/assert.hpp"

namespace gncg {

WeightedTree::WeightedTree(int n, std::vector<Edge> edges)
    : graph_(WeightedGraph::from_edges(n, edges)), edges_(std::move(edges)) {
  GNCG_CHECK(is_tree(graph_), "WeightedTree requires a connected acyclic edge set");
}

DistanceMatrix WeightedTree::metric_closure() const {
  const int n = node_count();
  DistanceMatrix closure(n);
  std::vector<double> dist;
  for (int src = 0; src < n; ++src) {
    dijkstra_over(
        n, src,
        [&](int u, auto&& visit) {
          for (const auto& nb : graph_.neighbors(u)) visit(nb.to, nb.weight);
        },
        dist);
    for (int v = 0; v < n; ++v) closure.at(src, v) = dist[static_cast<std::size_t>(v)];
  }
  return closure;
}

namespace {

/// Decodes a Pruefer sequence into tree edges (weights filled later).
std::vector<std::pair<int, int>> pruefer_to_edges(const std::vector<int>& code,
                                                  int n) {
  std::vector<int> degree(static_cast<std::size_t>(n), 1);
  for (int v : code) ++degree[static_cast<std::size_t>(v)];
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n - 1));
  // Maintain the smallest leaf via a simple pointer scan (n is small).
  int ptr = 0;
  while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  int leaf = ptr;
  for (int v : code) {
    edges.emplace_back(leaf, v);
    if (--degree[static_cast<std::size_t>(v)] == 1 && v < ptr) {
      leaf = v;
    } else {
      ++ptr;
      while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, n - 1);
  return edges;
}

}  // namespace

WeightedTree random_tree(int n, Rng& rng, double w_min, double w_max) {
  GNCG_CHECK(n >= 1, "tree needs at least one node");
  GNCG_CHECK(w_min >= 0.0 && w_min <= w_max, "invalid weight range");
  std::vector<Edge> edges;
  if (n >= 2) {
    std::vector<int> code(static_cast<std::size_t>(std::max(0, n - 2)));
    for (auto& c : code) c = static_cast<int>(rng.uniform_below(
                               static_cast<std::uint64_t>(n)));
    const auto pairs = n == 2
                           ? std::vector<std::pair<int, int>>{{0, 1}}
                           : pruefer_to_edges(code, n);
    edges.reserve(pairs.size());
    for (const auto& [u, v] : pairs)
      edges.push_back({std::min(u, v), std::max(u, v),
                       rng.uniform_real(w_min, w_max)});
  }
  return WeightedTree(n, std::move(edges));
}

WeightedTree random_tree_with_weights(int n, const std::vector<double>& weights,
                                      Rng& rng) {
  GNCG_CHECK(static_cast<int>(weights.size()) == n - 1,
             "need exactly n-1 weights, got " << weights.size());
  std::vector<double> shuffled = weights;
  rng.shuffle(shuffled);
  std::vector<Edge> edges;
  if (n >= 2) {
    std::vector<int> code(static_cast<std::size_t>(std::max(0, n - 2)));
    for (auto& c : code) c = static_cast<int>(rng.uniform_below(
                               static_cast<std::uint64_t>(n)));
    const auto pairs = n == 2
                           ? std::vector<std::pair<int, int>>{{0, 1}}
                           : pruefer_to_edges(code, n);
    edges.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
      edges.push_back({std::min(pairs[i].first, pairs[i].second),
                       std::max(pairs[i].first, pairs[i].second), shuffled[i]});
  }
  return WeightedTree(n, std::move(edges));
}

WeightedTree star_tree(int n, int center, double leaf_weight) {
  GNCG_CHECK(n >= 1, "star needs at least one node");
  GNCG_CHECK(center >= 0 && center < n, "star center out of range");
  GNCG_CHECK(leaf_weight >= 0.0, "negative leaf weight");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n - 1));
  for (int v = 0; v < n; ++v)
    if (v != center)
      edges.push_back({std::min(center, v), std::max(center, v), leaf_weight});
  return WeightedTree(n, std::move(edges));
}

WeightedTree path_tree(const std::vector<double>& consecutive_weights) {
  const int n = static_cast<int>(consecutive_weights.size()) + 1;
  std::vector<Edge> edges;
  edges.reserve(consecutive_weights.size());
  for (int i = 0; i + 1 < n; ++i)
    edges.push_back({i, i + 1, consecutive_weights[static_cast<std::size_t>(i)]});
  return WeightedTree(n, std::move(edges));
}

}  // namespace gncg
