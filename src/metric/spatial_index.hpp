// Uniform-grid spatial index over a PointSet: the geometric candidate
// oracle behind HostBackend::candidate_targets on euclidean hosts.
//
// The paper's structural results say useful strategy edges on geometric
// hosts are *local* (NE are spanners, so every bought edge is short relative
// to the detour it saves).  The approximate best-response ladder
// (core/approx_br.hpp) therefore searches over a small geometric candidate
// set instead of all n-1 targets; this index serves that set:
//
//  * a uniform grid over the first min(dim, 3) axes, sized so the cell
//    population stays O(1) on uniform inputs (total cells capped at O(n),
//    memory O(n) always);
//  * budget-k nearest neighbors via an expanding Chebyshev ring walk with an
//    admissible ring lower bound ((r-1) * min occupied cell edge bounds any
//    p-norm distance from below, p >= 1 including the Chebyshev limit);
//  * Yao/theta-style cone coverage in the plane: the walk also tracks the
//    nearest point in each of kCones angular cones around the query point,
//    so the candidate set always spans all directions (the classic Yao-graph
//    spanner argument) even when the k nearest cluster on one side.
//
// Determinism contract: queries are pure functions of (points, p, u,
// budget).  All ties break toward the smaller node id ((distance, id)
// lexicographic order everywhere), the ring walk visits cells in a fixed
// order, and no state is mutated after construction -- so concurrent
// queries are safe and repeated queries are bit-identical, matching the
// host-backend query contract the oracle is exposed through.
//
// The index never computes or stores pairwise distances: construction is
// O(n * dim), queries touch O(points in the visited rings) distances, and
// the no-O(n^2) discipline of the euclidean backend (DistanceMatrix
// allocation probe) is preserved.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "metric/points.hpp"

namespace gncg {

class SpatialIndex {
 public:
  /// Number of angular cones tracked in the plane (2-D projections).
  static constexpr int kCones = 8;

  /// Cone search stops once the ring lower bound exceeds this factor times
  /// the k-th nearest distance: far cone representatives stop being useful
  /// candidates long before the grid is exhausted, and boundary points
  /// (whose outward cones are empty) must not force O(n) scans.
  static constexpr double kConeRadiusFactor = 4.0;

  /// Builds the grid over `points` (kept by reference: the caller -- the
  /// euclidean host backend -- owns the points for the index's lifetime).
  SpatialIndex(const PointSet& points, double p);

  /// Reusable per-query workspace (the caller threads it through so steady-
  /// state queries allocate nothing once buffers reach capacity).
  struct QueryScratch {
    std::vector<std::pair<double, int>> heap;  ///< (dist, id) k-NN max-heap
    std::vector<std::pair<double, int>> pool;  ///< union before selection
  };

  /// Geometric candidate targets of point u: the `budget` nearest neighbors
  /// united with the nearest point in each angular cone (plane only), sorted
  /// by (distance, id) and truncated to `budget` entries -- cone
  /// representatives survive truncation first, so directional coverage is
  /// never traded for one more near neighbor.  Never includes u itself.
  void candidates(int u, int budget, std::vector<int>& out,
                  QueryScratch& scratch) const;

  int cell_count() const { return static_cast<int>(cell_start_.size()) - 1; }
  int grid_dim() const { return gdim_; }

  /// Flat grid-cell id of a point.  Exposed for spatial-locality ordering
  /// (the batched certifier processes agents cell by cell so consecutive
  /// ladder calls touch overlapping neighborhoods); pure and O(1).
  int cell_of(int point) const;

  std::size_t footprint_bytes() const {
    return cell_start_.capacity() * sizeof(int) +
           cell_points_.capacity() * sizeof(int);
  }

 private:
  int cell_coord(int point, int axis) const;

  const PointSet* points_;
  double p_;
  int gdim_ = 1;                ///< grid dimensionality (min(dim, 3))
  bool cones_ = false;          ///< track angular cones (dim >= 2)
  double min_[3] = {0, 0, 0};   ///< per-axis bounding-box minimum
  double edge_[3] = {1, 1, 1};  ///< per-axis cell edge length
  int count_[3] = {1, 1, 1};    ///< per-axis cell count
  double ring_edge_ = kInf;     ///< ring lower-bound unit (min multi-cell edge)
  std::vector<int> cell_start_;   ///< CSR offsets into cell_points_
  std::vector<int> cell_points_;  ///< point ids grouped by cell, id-ascending
};

}  // namespace gncg
