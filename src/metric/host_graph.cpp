#include "metric/host_graph.hpp"

#include <cmath>

#include "graph/apsp.hpp"
#include "graph/graph_algos.hpp"
#include "support/assert.hpp"

namespace gncg {

std::string model_name(ModelClass model) {
  switch (model) {
    case ModelClass::kNCG: return "NCG";
    case ModelClass::kOneTwo: return "1-2-GNCG";
    case ModelClass::kOneInf: return "1-inf-GNCG";
    case ModelClass::kTree: return "T-GNCG";
    case ModelClass::kEuclidean: return "Rd-GNCG";
    case ModelClass::kMetric: return "M-GNCG";
    case ModelClass::kGeneral: return "GNCG";
  }
  return "?";
}

std::optional<ModelClass> model_from_name(const std::string& name) {
  for (ModelClass model :
       {ModelClass::kNCG, ModelClass::kOneTwo, ModelClass::kOneInf,
        ModelClass::kTree, ModelClass::kEuclidean, ModelClass::kMetric,
        ModelClass::kGeneral}) {
    if (model_name(model) == name) return model;
  }
  return std::nullopt;
}

HostGraph::HostGraph(std::shared_ptr<const HostBackend> backend,
                     ModelClass declared)
    : backend_(std::move(backend)),
      dense_weights_(backend_->dense_weights()),
      n_(backend_->node_count()),
      declared_(declared) {
  if (dense_weights_ == nullptr)
    materialized_ = std::make_shared<MaterializedWeights>();
}

DistanceMatrix HostGraph::validated(DistanceMatrix weights) {
  const int n = weights.size();
  GNCG_CHECK(n >= 1, "host graph needs at least one node");
  for (int u = 0; u < n; ++u) {
    GNCG_CHECK(weights.at(u, u) == 0.0, "host diagonal must be zero");
    for (int v = u + 1; v < n; ++v) {
      const double w = weights.at(u, v);
      GNCG_CHECK(w >= 0.0, "host weights must be non-negative");
      // Exact equality (not a difference test): inf - inf is NaN, and
      // forbidden (infinite) pairs must round-trip too.
      GNCG_CHECK(w == weights.at(v, u),
                 "host weights must be symmetric at (" << u << "," << v << ")");
    }
  }
  return weights;
}

HostGraph HostGraph::from_weights(DistanceMatrix weights, ModelClass declared) {
  return HostGraph(make_dense_backend(validated(std::move(weights))),
                   declared);
}

HostGraph HostGraph::from_weights_lazy(DistanceMatrix weights,
                                       ModelClass declared) {
  return HostGraph(make_lazy_closure_backend(validated(std::move(weights))),
                   declared);
}

HostGraph HostGraph::from_tree(const WeightedTree& tree) {
  HostGraph host(make_tree_backend(tree), ModelClass::kTree);
  host.tree_edges_ = tree.edges();
  return host;
}

HostGraph HostGraph::from_points(const PointSet& points, double p) {
  return HostGraph(make_euclidean_backend(points, p), ModelClass::kEuclidean);
}

const PointSet* HostGraph::points() const {
  const auto* euclidean =
      dynamic_cast<const EuclideanHostBackend*>(backend_.get());
  return euclidean != nullptr ? &euclidean->points() : nullptr;
}

std::optional<double> HostGraph::norm_p() const {
  const auto* euclidean =
      dynamic_cast<const EuclideanHostBackend*>(backend_.get());
  if (euclidean == nullptr) return std::nullopt;
  return euclidean->norm_p();
}

HostGraph HostGraph::unit(int n) {
  GNCG_CHECK(n >= 1, "host graph needs at least one node");
  DistanceMatrix weights(n, 1.0);
  return HostGraph(make_dense_backend(std::move(weights)), ModelClass::kNCG);
}

HostGraph HostGraph::one_inf_from_graph(const WeightedGraph& g) {
  const int n = g.node_count();
  GNCG_CHECK(n >= 1, "host graph needs at least one node");
  DistanceMatrix weights(n, kInf);
  for (const auto& e : g.edges()) weights.set_symmetric(e.u, e.v, 1.0);
  return HostGraph(make_dense_backend(std::move(weights)),
                   ModelClass::kOneInf);
}

const DistanceMatrix& HostGraph::weights() const {
  if (dense_weights_ != nullptr) return *dense_weights_;
  std::call_once(materialized_->once, [this] {
    materialized_->matrix = backend_->materialize_weights();
  });
  return materialized_->matrix;
}

bool HostGraph::is_metric(double eps) const {
  const int n = node_count();
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double w_uv = weight(u, v);
      if (!(w_uv < kInf)) return false;  // forbidden edges break metricity
      for (int x = 0; x < n; ++x) {
        if (x == u || x == v) continue;
        if (weight(u, x) + weight(x, v) < w_uv - eps) return false;
      }
    }
  }
  return true;
}

bool HostGraph::is_unit() const {
  const int n = node_count();
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (weight(u, v) != 1.0) return false;
  return true;
}

bool HostGraph::is_one_two() const {
  const int n = node_count();
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const double w = weight(u, v);
      if (w != 1.0 && w != 2.0) return false;
    }
  return true;
}

bool HostGraph::is_one_inf() const {
  const int n = node_count();
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const double w = weight(u, v);
      if (w != 1.0 && w < kInf) return false;
    }
  return true;
}

bool HostGraph::has_infinite_weight() const {
  const int n = node_count();
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (!(weight(u, v) < kInf)) return true;
  return false;
}

ModelClass HostGraph::classify(double eps) const {
  if (is_unit()) return ModelClass::kNCG;
  if (is_one_two()) return ModelClass::kOneTwo;
  if (is_one_inf()) return ModelClass::kOneInf;
  if (is_metric(eps)) return ModelClass::kMetric;
  return ModelClass::kGeneral;
}

HostGraph random_one_two_host(int n, double p_one, Rng& rng) {
  DistanceMatrix weights(n, 2.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.bernoulli(p_one)) weights.set_symmetric(u, v, 1.0);
  return HostGraph::from_weights(std::move(weights), ModelClass::kOneTwo);
}

HostGraph random_metric_host(int n, Rng& rng, double w_min, double w_max) {
  DistanceMatrix weights(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      weights.set_symmetric(u, v, rng.uniform_real(w_min, w_max));
  floyd_warshall(weights);  // metric repair: closure obeys the triangle inequality
  return HostGraph::from_weights(std::move(weights), ModelClass::kMetric);
}

HostGraph random_general_host(int n, Rng& rng, double w_min, double w_max) {
  DistanceMatrix weights(n, 0.0);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      weights.set_symmetric(u, v, rng.uniform_real(w_min, w_max));
  return HostGraph::from_weights(std::move(weights), ModelClass::kGeneral);
}

HostGraph random_one_inf_host(int n, double p_edge, Rng& rng) {
  GNCG_CHECK(n >= 2, "need at least two nodes");
  for (int attempt = 0; attempt < 10000; ++attempt) {
    WeightedGraph g(n);
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        if (rng.bernoulli(p_edge)) g.add_edge(u, v, 1.0);
    if (is_connected(g)) return HostGraph::one_inf_from_graph(g);
  }
  GNCG_CHECK(false, "failed to sample a connected G(n,p); raise p_edge");
  __builtin_unreachable();
}

}  // namespace gncg
