#include "metric/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace gncg {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Angular cone of the projected direction u -> v (first two axes).
/// Duplicate positions land in the atan2(0, 0) = 0 cone; any fixed choice
/// works, it only has to be deterministic.
int cone_of(const PointSet& points, int u, int v) {
  const double dx = points.coord(v, 0) - points.coord(u, 0);
  const double dy = points.coord(v, 1) - points.coord(u, 1);
  const double angle = std::atan2(dy, dx);  // [-pi, pi]
  int cone = static_cast<int>((angle + kPi) * SpatialIndex::kCones /
                              (2.0 * kPi));
  return std::clamp(cone, 0, SpatialIndex::kCones - 1);
}

}  // namespace

SpatialIndex::SpatialIndex(const PointSet& points, double p)
    : points_(&points), p_(p) {
  const int n = points.size();
  GNCG_CHECK(n >= 1, "spatial index needs at least one point");
  gdim_ = std::min(points.dim(), 3);
  GNCG_CHECK(gdim_ >= 1, "spatial index needs dimension >= 1");
  cones_ = points.dim() >= 2;

  double max_c[3] = {0, 0, 0};
  for (int a = 0; a < gdim_; ++a) {
    min_[a] = max_c[a] = points.coord(0, a);
    for (int i = 1; i < n; ++i) {
      const double c = points.coord(i, a);
      min_[a] = std::min(min_[a], c);
      max_c[a] = std::max(max_c[a], c);
    }
  }

  // Cell sizing: aim for ~4 points per cell (total cells <= n/4, so the CSR
  // stays O(n) memory).  Cells are near-cubes of one shared target edge; an
  // axis whose extent is below that edge collapses to a single cell and
  // never contributes to ring distances.
  double max_extent = 0.0;
  for (int a = 0; a < gdim_; ++a)
    max_extent = std::max(max_extent, max_c[a] - min_[a]);
  const double total_target = std::max(1.0, static_cast<double>(n) / 4.0);
  const int cpa = std::max(
      1, static_cast<int>(std::floor(
             std::pow(total_target, 1.0 / static_cast<double>(gdim_)))));
  const double target_edge =
      max_extent > 0.0 ? max_extent / static_cast<double>(cpa) : 1.0;
  for (int a = 0; a < gdim_; ++a) {
    const double extent = max_c[a] - min_[a];
    // floor keeps every multi-cell axis's actual edge >= target_edge, which
    // is what makes the ring lower bound below admissible.
    count_[a] = extent > 0.0
                    ? std::clamp(static_cast<int>(std::floor(
                                     extent / target_edge)),
                                 1, cpa)
                    : 1;
    edge_[a] = count_[a] > 1 ? extent / static_cast<double>(count_[a]) : 1.0;
    if (count_[a] > 1) ring_edge_ = std::min(ring_edge_, edge_[a]);
  }

  // CSR: counting sort of point ids by cell; scanning ids in increasing
  // order keeps each cell's list id-ascending (the tie-break order).
  const int cells = count_[0] * count_[1] * count_[2];
  cell_start_.assign(static_cast<std::size_t>(cells) + 1, 0);
  for (int i = 0; i < n; ++i)
    ++cell_start_[static_cast<std::size_t>(cell_of(i)) + 1];
  for (int c = 0; c < cells; ++c)
    cell_start_[static_cast<std::size_t>(c) + 1] +=
        cell_start_[static_cast<std::size_t>(c)];
  cell_points_.resize(static_cast<std::size_t>(n));
  std::vector<int> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (int i = 0; i < n; ++i)
    cell_points_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(cell_of(i))]++)] = i;
}

int SpatialIndex::cell_coord(int point, int axis) const {
  if (count_[axis] <= 1) return 0;
  const int c = static_cast<int>((points_->coord(point, axis) - min_[axis]) /
                                 edge_[axis]);
  return std::clamp(c, 0, count_[axis] - 1);
}

int SpatialIndex::cell_of(int point) const {
  int cell = 0;
  for (int a = 0; a < gdim_; ++a) cell = cell * count_[a] + cell_coord(point, a);
  // Axes beyond gdim_ are absent; axes between gdim_ and 3 have count 1 and
  // coordinate 0, so the linearization above already matches
  // (c0 * count1 + c1) * count2 + c2.
  for (int a = gdim_; a < 3; ++a) cell = cell * count_[a];
  return cell;
}

void SpatialIndex::candidates(int u, int budget, std::vector<int>& out,
                              QueryScratch& scratch) const {
  const int n = points_->size();
  GNCG_DASSERT(u >= 0 && u < n);
  out.clear();
  const int k = std::min(budget, n - 1);
  if (k <= 0) return;

  auto& heap = scratch.heap;
  heap.clear();
  std::pair<double, int> cone_best[kCones];
  for (auto& c : cone_best) c = {kInf, -1};

  const auto visit_point = [&](int v) {
    if (v == u) return;
    const std::pair<double, int> entry{points_->distance(u, v, p_), v};
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end());
    } else if (entry < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end());
    }
    if (cones_) {
      auto& best = cone_best[cone_of(*points_, u, v)];
      if (entry < best) best = entry;
    }
  };

  if (cell_count() == 1 || ring_edge_ == kInf || k >= n - 1) {
    // Degenerate grids (single cell, zero-extent cloud) and near-full
    // budgets: one id-ordered scan.
    for (int v = 0; v < n; ++v) visit_point(v);
  } else {
    const int cu0 = cell_coord(u, 0);
    const int cu1 = gdim_ >= 2 ? cell_coord(u, 1) : 0;
    const int cu2 = gdim_ >= 3 ? cell_coord(u, 2) : 0;
    const auto visit_cell = [&](int c0, int c1, int c2) {
      if (c0 < 0 || c0 >= count_[0] || c1 < 0 || c1 >= count_[1] || c2 < 0 ||
          c2 >= count_[2])
        return;
      const int cell = (c0 * count_[1] + c1) * count_[2] + c2;
      const int begin = cell_start_[static_cast<std::size_t>(cell)];
      const int end = cell_start_[static_cast<std::size_t>(cell) + 1];
      for (int i = begin; i < end; ++i)
        visit_point(cell_points_[static_cast<std::size_t>(i)]);
    };

    int max_r = 0;
    max_r = std::max(max_r, std::max(cu0, count_[0] - 1 - cu0));
    max_r = std::max(max_r, std::max(cu1, count_[1] - 1 - cu1));
    max_r = std::max(max_r, std::max(cu2, count_[2] - 1 - cu2));

    for (int r = 0; r <= max_r; ++r) {
      // Shell |dc|_inf == r, fixed enumeration order (axis-0 faces first,
      // then axis-1, then axis-2 with shrinking spans so no cell repeats).
      if (r == 0) {
        visit_cell(cu0, cu1, cu2);
      } else {
        for (int d1 = -r; d1 <= r; ++d1)
          for (int d2 = -r; d2 <= r; ++d2) {
            visit_cell(cu0 - r, cu1 + d1, cu2 + d2);
            visit_cell(cu0 + r, cu1 + d1, cu2 + d2);
          }
        for (int d0 = -(r - 1); d0 <= r - 1; ++d0)
          for (int d2 = -r; d2 <= r; ++d2) {
            visit_cell(cu0 + d0, cu1 - r, cu2 + d2);
            visit_cell(cu0 + d0, cu1 + r, cu2 + d2);
          }
        for (int d0 = -(r - 1); d0 <= r - 1; ++d0)
          for (int d1 = -(r - 1); d1 <= r - 1; ++d1) {
            visit_cell(cu0 + d0, cu1 + d1, cu2 - r);
            visit_cell(cu0 + d0, cu1 + d1, cu2 + r);
          }
      }

      if (static_cast<int>(heap.size()) < k) continue;
      // Any point in ring r+1 or beyond is at least lb away on some
      // multi-cell axis (it is >= r cells from u's cell there, each of edge
      // >= ring_edge_) -- admissible for every p >= 1.
      const double lb = static_cast<double>(r) * ring_edge_;
      const double kth = heap.front().first;
      if (!(lb > kth)) continue;  // a farther point could still enter the k-NN
      bool cones_done = !cones_;
      if (!cones_done) {
        if (lb > kConeRadiusFactor * kth) {
          cones_done = true;  // far cone reps are no longer useful candidates
        } else {
          cones_done = true;
          for (const auto& best : cone_best)
            if (best.second < 0 || !(best.first < lb)) {
              cones_done = false;
              break;
            }
        }
      }
      if (cones_done) break;
    }
  }

  // Union, (distance, id) order, cone-priority truncation to `budget`.
  auto& pool = scratch.pool;
  pool.assign(heap.begin(), heap.end());
  if (cones_)
    for (const auto& best : cone_best)
      if (best.second >= 0) pool.push_back(best);
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  if (static_cast<int>(pool.size()) <= budget) {
    for (const auto& [d, v] : pool) out.push_back(v);
    return;
  }
  int cone_ids[kCones];
  int cone_n = 0;
  if (cones_)
    for (const auto& best : cone_best)
      if (best.second >= 0) cone_ids[cone_n++] = best.second;
  const auto is_cone = [&](int v) {
    for (int i = 0; i < cone_n; ++i)
      if (cone_ids[i] == v) return true;
    return false;
  };
  // Cone representatives first (they are why the pool overflows), then the
  // nearest remaining entries; emission in pool order keeps the output
  // (distance, id)-sorted.
  int kept_cones = 0;
  for (const auto& [d, v] : pool)
    if (is_cone(v) && kept_cones < budget) ++kept_cones;
  int room = budget - kept_cones;
  int taken_cones = 0;
  for (const auto& [d, v] : pool) {
    if (is_cone(v)) {
      if (taken_cones < kept_cones) {
        out.push_back(v);
        ++taken_cones;
      }
    } else if (room > 0) {
      out.push_back(v);
      --room;
    }
  }
}

}  // namespace gncg
