#include "metric/points.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace gncg {

PointSet::PointSet(int n, int dim)
    : n_(n), dim_(dim),
      coords_(static_cast<std::size_t>(n) * static_cast<std::size_t>(dim), 0.0) {
  GNCG_CHECK(n >= 0 && dim >= 1, "invalid point-set shape");
}

PointSet::PointSet(std::vector<std::vector<double>> coords) {
  n_ = static_cast<int>(coords.size());
  GNCG_CHECK(n_ > 0, "empty coordinate list");
  dim_ = static_cast<int>(coords.front().size());
  GNCG_CHECK(dim_ >= 1, "points need at least one coordinate");
  coords_.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(dim_));
  for (const auto& point : coords) {
    GNCG_CHECK(static_cast<int>(point.size()) == dim_,
               "ragged coordinate list");
    coords_.insert(coords_.end(), point.begin(), point.end());
  }
}

double PointSet::coord(int point, int axis) const {
  GNCG_DASSERT(point >= 0 && point < n_ && axis >= 0 && axis < dim_);
  return coords_[static_cast<std::size_t>(point) * static_cast<std::size_t>(dim_) +
                 static_cast<std::size_t>(axis)];
}

void PointSet::set_coord(int point, int axis, double value) {
  GNCG_DASSERT(point >= 0 && point < n_ && axis >= 0 && axis < dim_);
  coords_[static_cast<std::size_t>(point) * static_cast<std::size_t>(dim_) +
          static_cast<std::size_t>(axis)] = value;
}

double pnorm(const std::vector<double>& delta, double p) {
  GNCG_CHECK(p >= 1.0, "p-norms require p >= 1");
  if (p == kPNormInf) {
    double worst = 0.0;
    for (double d : delta) worst = std::max(worst, std::abs(d));
    return worst;
  }
  if (p == 1.0) {
    double total = 0.0;
    for (double d : delta) total += std::abs(d);
    return total;
  }
  if (p == 2.0) {
    double total = 0.0;
    for (double d : delta) total += d * d;
    return std::sqrt(total);
  }
  double total = 0.0;
  for (double d : delta) total += std::pow(std::abs(d), p);
  return std::pow(total, 1.0 / p);
}

double PointSet::distance(int a, int b, double p) const {
  GNCG_CHECK(p >= 1.0, "p-norms require p >= 1");
  const auto* pa = &coords_[static_cast<std::size_t>(a) *
                            static_cast<std::size_t>(dim_)];
  const auto* pb = &coords_[static_cast<std::size_t>(b) *
                            static_cast<std::size_t>(dim_)];
  if (p == kPNormInf) {
    double worst = 0.0;
    for (int k = 0; k < dim_; ++k)
      worst = std::max(worst, std::abs(pa[k] - pb[k]));
    return worst;
  }
  if (p == 1.0) {
    double total = 0.0;
    for (int k = 0; k < dim_; ++k) total += std::abs(pa[k] - pb[k]);
    return total;
  }
  if (p == 2.0) {
    double total = 0.0;
    for (int k = 0; k < dim_; ++k) {
      const double d = pa[k] - pb[k];
      total += d * d;
    }
    return std::sqrt(total);
  }
  double total = 0.0;
  for (int k = 0; k < dim_; ++k) total += std::pow(std::abs(pa[k] - pb[k]), p);
  return std::pow(total, 1.0 / p);
}

void PointSet::distances_from(int a, double p, std::vector<double>& out) const {
  GNCG_CHECK(a >= 0 && a < n_, "point index out of range");
  out.resize(static_cast<std::size_t>(n_));
  for (int b = 0; b < n_; ++b)
    out[static_cast<std::size_t>(b)] = b == a ? 0.0 : distance(a, b, p);
}

DistanceMatrix PointSet::distance_matrix(double p) const {
  DistanceMatrix m(n_, 0.0);
  for (int a = 0; a < n_; ++a)
    for (int b = a + 1; b < n_; ++b) m.set_symmetric(a, b, distance(a, b, p));
  return m;
}

PointSet uniform_points(int n, int dim, double side, Rng& rng) {
  PointSet points(n, dim);
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < dim; ++k)
      points.set_coord(i, k, rng.uniform_real(0.0, side));
  return points;
}

PointSet clustered_points(int n, int dim, int clusters, double side,
                          double spread, Rng& rng) {
  GNCG_CHECK(clusters >= 1, "need at least one cluster");
  PointSet centers = uniform_points(clusters, dim, side, rng);
  PointSet points(n, dim);
  for (int i = 0; i < n; ++i) {
    const int c = i % clusters;
    for (int k = 0; k < dim; ++k)
      points.set_coord(i, k,
                       centers.coord(c, k) + rng.uniform_real(-spread, spread));
  }
  return points;
}

PointSet grid_points(int per_side, int dim, double step) {
  GNCG_CHECK(per_side >= 1 && dim >= 1, "invalid grid shape");
  int n = 1;
  for (int k = 0; k < dim; ++k) n *= per_side;
  PointSet points(n, dim);
  for (int i = 0; i < n; ++i) {
    int rest = i;
    for (int k = 0; k < dim; ++k) {
      points.set_coord(i, k, step * (rest % per_side));
      rest /= per_side;
    }
  }
  return points;
}

PointSet line_points(const std::vector<double>& positions) {
  PointSet points(static_cast<int>(positions.size()), 1);
  for (int i = 0; i < points.size(); ++i)
    points.set_coord(i, 0, positions[static_cast<std::size_t>(i)]);
  return points;
}

}  // namespace gncg
