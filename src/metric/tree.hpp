// Weighted trees and tree metrics (the T-GNCG substrate).
//
// The paper's T-GNCG plays on the *metric closure* of an edge-weighted tree:
// w(u, v) = d_T(u, v) for all pairs.  This module owns the tree
// representation, its metric closure, and random tree generation for the
// dynamics and equilibrium experiments (Theorems 12-15).
#pragma once

#include <vector>

#include "graph/distance_matrix.hpp"
#include "graph/weighted_graph.hpp"
#include "support/rng.hpp"

namespace gncg {

/// An edge-weighted tree on n nodes.  Construction validates treeness.
class WeightedTree {
 public:
  /// Builds from an edge list; contract-checks connectivity and |E| = n - 1.
  WeightedTree(int n, std::vector<Edge> edges);

  int node_count() const { return graph_.node_count(); }
  const WeightedGraph& graph() const { return graph_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Pairwise tree distances (the tree metric), computed by n graph
  /// traversals in O(n^2).
  DistanceMatrix metric_closure() const;

 private:
  WeightedGraph graph_;
  std::vector<Edge> edges_;
};

/// Uniform random labelled tree (random Pruefer sequence) with i.i.d.
/// uniform edge weights in [w_min, w_max].
WeightedTree random_tree(int n, Rng& rng, double w_min = 1.0,
                         double w_max = 10.0);

/// Random tree whose edge weights are a permutation of `weights`
/// (|weights| must equal n - 1).  Used to replay the Theorem 14 / Figure 5
/// search with the paper's weight multiset {3,7,2,5,12,9,11,2,10}.
WeightedTree random_tree_with_weights(int n, const std::vector<double>& weights,
                                      Rng& rng);

/// Star tree: node `center` adjacent to every other node with weight
/// `leaf_weight` (uniform) -- the shape behind Theorems 15 and 19.
WeightedTree star_tree(int n, int center, double leaf_weight);

/// Path tree v_0 - v_1 - ... - v_{n-1} with the given consecutive weights.
WeightedTree path_tree(const std::vector<double>& consecutive_weights);

}  // namespace gncg
