#include "metric/instance_io.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace gncg {

namespace {

/// Reads the next content line (skipping blanks and '#' comments).
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    line = line.substr(start);
    return true;
  }
  return false;
}

double parse_weight(const std::string& token) {
  if (token == "inf") return kInf;
  return std::stod(token);
}

std::string format_weight(double w) {
  if (!(w < kInf)) return "inf";
  std::ostringstream os;
  os.precision(17);
  os << w;
  return os.str();
}

/// Parses "n <count>" from an already-read content line.
int parse_node_count(const std::string& line, bool have_line) {
  GNCG_CHECK(have_line && line.rfind("n ", 0) == 0, "missing node count");
  const int n = std::stoi(line.substr(2));
  GNCG_CHECK(n >= 1, "invalid node count " << n);
  return n;
}

/// Reads "n <count>" from the next content line.
int read_node_count(std::istream& is, std::string& line) {
  return parse_node_count(line, next_line(is, line));
}

/// Consumes the optional `x-<key> <value>` extension block.  Known keys fill
/// `provenance` (when non-null); unknown x- keys are skipped for forward
/// compatibility.  On return `line` holds the first non-extension line and
/// the result says whether one exists.
bool read_extension_block(std::istream& is, std::string& line,
                          HostProvenance* provenance) {
  bool have_line = next_line(is, line);
  while (have_line && line.rfind("x-", 0) == 0) {
    std::istringstream tokens(line);
    std::string key, value;
    tokens >> key >> value;
    GNCG_CHECK(!value.empty(), "extension line misses its value: " << line);
    if (provenance != nullptr) {
      // stoull throws raw std::invalid_argument/out_of_range; keep the
      // header's "contract-fails on malformed input" promise instead.
      try {
        if (key == "x-scenario") provenance->scenario = value;
        else if (key == "x-point")
          provenance->point_index = std::stoull(value);
        else if (key == "x-stream")
          provenance->stream = std::stoull(value, nullptr, 16);
        // other x- keys: written by a newer tool, intentionally ignored
      } catch (const std::exception&) {
        GNCG_CHECK(false, "malformed extension value: " << line);
      }
    }
    have_line = next_line(is, line);
  }
  return have_line;
}

/// Shared "w" pair-list parser (v1 body and the v2 dense/lazy payload).
DistanceMatrix read_weight_lines(std::istream& is, std::string& line, int n) {
  DistanceMatrix weights(n, kInf);
  std::vector<char> seen(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  while (next_line(is, line)) {
    std::istringstream tokens(line);
    std::string tag, weight_token;
    int u = -1, v = -1;
    tokens >> tag >> u >> v >> weight_token;
    GNCG_CHECK(tag == "w" && tokens, "malformed weight line: " << line);
    GNCG_CHECK(u >= 0 && u < n && v >= 0 && v < n && u != v,
               "weight line out of range: " << line);
    const auto index =
        static_cast<std::size_t>(std::min(u, v)) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(std::max(u, v));
    GNCG_CHECK(!seen[index], "duplicate pair in host file: " << line);
    seen[index] = 1;
    weights.set_symmetric(u, v, parse_weight(weight_token));
  }
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const auto index = static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(v);
      GNCG_CHECK(seen[index],
                 "host file misses pair (" << u << "," << v << ")");
    }
  return weights;
}

HostGraph load_host_v2(std::istream& is, std::string& line,
                       HostProvenance* provenance) {
  GNCG_CHECK(next_line(is, line) && line.rfind("backend ", 0) == 0,
             "missing backend line");
  const std::string backend = line.substr(8);
  GNCG_CHECK(next_line(is, line) && line.rfind("model ", 0) == 0,
             "missing model line");
  const auto model = model_from_name(line.substr(6));
  GNCG_CHECK(model.has_value(), "unknown model name in host file: " << line);
  const bool have_payload = read_extension_block(is, line, provenance);

  if (backend == "euclidean") {
    // from_points always declares Rd-GNCG; a file claiming otherwise is
    // inconsistent, not silently rewritable.
    GNCG_CHECK(*model == ModelClass::kEuclidean,
               "euclidean backend requires model "
                   << model_name(ModelClass::kEuclidean) << ", file says "
                   << model_name(*model));
    GNCG_CHECK(have_payload && line.rfind("p ", 0) == 0,
               "missing norm line");
    const double p = parse_weight(line.substr(2));
    GNCG_CHECK(next_line(is, line) && line.rfind("dim ", 0) == 0,
               "missing dim line");
    const int dim = std::stoi(line.substr(4));
    GNCG_CHECK(dim >= 1, "invalid point dimension " << dim);
    const int n = read_node_count(is, line);
    PointSet points(n, dim);
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    while (next_line(is, line)) {
      std::istringstream tokens(line);
      std::string tag;
      int i = -1;
      tokens >> tag >> i;
      GNCG_CHECK(tag == "point" && tokens, "malformed point line: " << line);
      GNCG_CHECK(i >= 0 && i < n, "point index out of range: " << line);
      GNCG_CHECK(!seen[static_cast<std::size_t>(i)],
                 "duplicate point in host file: " << line);
      seen[static_cast<std::size_t>(i)] = 1;
      for (int k = 0; k < dim; ++k) {
        std::string coord;
        tokens >> coord;
        GNCG_CHECK(tokens, "point line has too few coordinates: " << line);
        const double value = parse_weight(coord);
        // Coordinates may be negative but must be finite: a NaN/inf here
        // would silently poison every weight, unlike the dense path where
        // HostGraph::validated rejects such entries.
        GNCG_CHECK(std::isfinite(value),
                   "non-finite point coordinate: " << line);
        points.set_coord(i, k, value);
      }
    }
    for (int i = 0; i < n; ++i)
      GNCG_CHECK(seen[static_cast<std::size_t>(i)],
                 "host file misses point " << i);
    return HostGraph::from_points(points, p);
  }

  if (backend == "tree") {
    GNCG_CHECK(*model == ModelClass::kTree,
               "tree backend requires model "
                   << model_name(ModelClass::kTree) << ", file says "
                   << model_name(*model));
    const int n = parse_node_count(line, have_payload);
    std::vector<Edge> edges;
    while (next_line(is, line)) {
      std::istringstream tokens(line);
      std::string tag, weight_token;
      int u = -1, v = -1;
      tokens >> tag >> u >> v >> weight_token;
      GNCG_CHECK(tag == "tedge" && tokens, "malformed tree line: " << line);
      GNCG_CHECK(u >= 0 && u < n && v >= 0 && v < n && u != v,
                 "tree edge out of range: " << line);
      edges.push_back({u, v, parse_weight(weight_token)});
    }
    return HostGraph::from_tree(WeightedTree(n, std::move(edges)));
  }

  GNCG_CHECK(backend == "dense" || backend == "lazy",
             "unknown backend in host file: " << backend);
  const int n = parse_node_count(line, have_payload);
  DistanceMatrix weights = read_weight_lines(is, line, n);
  return backend == "lazy"
             ? HostGraph::from_weights_lazy(std::move(weights), *model)
             : HostGraph::from_weights(std::move(weights), *model);
}

}  // namespace

void save_host(std::ostream& os, const HostGraph& host,
               const HostProvenance* provenance) {
  const int n = host.node_count();
  os << "gncg-host 2\n";
  os << "# complete weighted host graph, " << model_name(host.declared_model())
     << "\n";
  os << "backend " << backend_name(host.backend_kind()) << "\n";
  os << "model " << model_name(host.declared_model()) << "\n";
  if (provenance != nullptr) {
    GNCG_CHECK(!provenance->scenario.empty() &&
                   provenance->scenario.find_first_of(" \t\r\n") ==
                       std::string::npos,
               "provenance scenario must be a non-empty token");
    char stream_hex[20];
    std::snprintf(stream_hex, sizeof(stream_hex), "%016llx",
                  static_cast<unsigned long long>(provenance->stream));
    os << "x-scenario " << provenance->scenario << "\n";
    os << "x-point " << provenance->point_index << "\n";
    os << "x-stream " << stream_hex << "\n";
  }

  if (host.backend_kind() == HostBackendKind::kEuclidean) {
    const PointSet* points = host.points();
    GNCG_CHECK(points != nullptr && host.norm_p().has_value(),
               "euclidean host lost its point provenance");
    os << "p " << format_weight(*host.norm_p()) << "\n";
    os << "dim " << points->dim() << "\n";
    os << "n " << n << "\n";
    std::ostringstream coords;
    coords.precision(17);
    for (int i = 0; i < n; ++i) {
      coords.str("");
      coords << "point " << i;
      for (int k = 0; k < points->dim(); ++k)
        coords << ' ' << points->coord(i, k);
      os << coords.str() << "\n";
    }
    return;
  }

  if (host.backend_kind() == HostBackendKind::kTree) {
    const auto& edges = host.tree_edges();
    GNCG_CHECK(edges.has_value(), "tree host lost its tree provenance");
    os << "n " << n << "\n";
    for (const auto& e : *edges)
      os << "tedge " << e.u << ' ' << e.v << ' ' << format_weight(e.weight)
         << "\n";
    return;
  }

  os << "n " << n << "\n";
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      os << "w " << u << ' ' << v << ' ' << format_weight(host.weight(u, v))
         << "\n";
}

HostGraph load_host(std::istream& is, HostProvenance* provenance) {
  std::string line;
  GNCG_CHECK(next_line(is, line) && line.rfind("gncg-host", 0) == 0,
             "missing gncg-host header");
  std::istringstream header(line);
  std::string tag;
  int version = 0;
  header >> tag >> version;
  GNCG_CHECK(version == 1 || version == 2,
             "unsupported gncg-host version: " << line);
  if (version == 2) return load_host_v2(is, line, provenance);

  const int n = read_node_count(is, line);
  return HostGraph::from_weights(read_weight_lines(is, line, n));
}

void save_profile(std::ostream& os, const StrategyProfile& profile) {
  os << "gncg-profile 1\n";
  os << "n " << profile.node_count() << "\n";
  for (int u = 0; u < profile.node_count(); ++u)
    profile.strategy(u).for_each(
        [&](int v) { os << "buy " << u << ' ' << v << "\n"; });
}

StrategyProfile load_profile(std::istream& is) {
  std::string line;
  GNCG_CHECK(next_line(is, line) && line.rfind("gncg-profile", 0) == 0,
             "missing gncg-profile header");
  GNCG_CHECK(next_line(is, line) && line.rfind("n ", 0) == 0,
             "missing node count");
  const int n = std::stoi(line.substr(2));
  StrategyProfile profile(n);
  while (next_line(is, line)) {
    std::istringstream tokens(line);
    std::string tag;
    int owner = -1, target = -1;
    tokens >> tag >> owner >> target;
    GNCG_CHECK(tag == "buy" && tokens, "malformed buy line: " << line);
    GNCG_CHECK(owner >= 0 && owner < n && target >= 0 && target < n &&
                   owner != target,
               "buy line out of range: " << line);
    profile.add_buy(owner, target);
  }
  return profile;
}

}  // namespace gncg
