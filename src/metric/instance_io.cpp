#include "metric/instance_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "support/assert.hpp"

namespace gncg {

namespace {

/// Reads the next content line (skipping blanks and '#' comments).
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    line = line.substr(start);
    return true;
  }
  return false;
}

double parse_weight(const std::string& token) {
  if (token == "inf") return kInf;
  return std::stod(token);
}

std::string format_weight(double w) {
  if (!(w < kInf)) return "inf";
  std::ostringstream os;
  os.precision(17);
  os << w;
  return os.str();
}

}  // namespace

void save_host(std::ostream& os, const HostGraph& host) {
  const int n = host.node_count();
  os << "gncg-host 1\n";
  os << "# complete weighted host graph, " << model_name(host.declared_model())
     << "\n";
  os << "n " << n << "\n";
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      os << "w " << u << ' ' << v << ' ' << format_weight(host.weight(u, v))
         << "\n";
}

HostGraph load_host(std::istream& is) {
  std::string line;
  GNCG_CHECK(next_line(is, line) && line.rfind("gncg-host", 0) == 0,
             "missing gncg-host header");
  GNCG_CHECK(next_line(is, line) && line.rfind("n ", 0) == 0,
             "missing node count");
  const int n = std::stoi(line.substr(2));
  GNCG_CHECK(n >= 1, "invalid node count " << n);

  DistanceMatrix weights(n, kInf);
  std::vector<char> seen(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  while (next_line(is, line)) {
    std::istringstream tokens(line);
    std::string tag, weight_token;
    int u = -1, v = -1;
    tokens >> tag >> u >> v >> weight_token;
    GNCG_CHECK(tag == "w" && tokens, "malformed weight line: " << line);
    GNCG_CHECK(u >= 0 && u < n && v >= 0 && v < n && u != v,
               "weight line out of range: " << line);
    const auto index =
        static_cast<std::size_t>(std::min(u, v)) * static_cast<std::size_t>(n) +
        static_cast<std::size_t>(std::max(u, v));
    GNCG_CHECK(!seen[index], "duplicate pair in host file: " << line);
    seen[index] = 1;
    weights.set_symmetric(u, v, parse_weight(weight_token));
  }
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      const auto index = static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(v);
      GNCG_CHECK(seen[index],
                 "host file misses pair (" << u << "," << v << ")");
    }
  return HostGraph::from_weights(std::move(weights));
}

void save_profile(std::ostream& os, const StrategyProfile& profile) {
  os << "gncg-profile 1\n";
  os << "n " << profile.node_count() << "\n";
  for (int u = 0; u < profile.node_count(); ++u)
    profile.strategy(u).for_each(
        [&](int v) { os << "buy " << u << ' ' << v << "\n"; });
}

StrategyProfile load_profile(std::istream& is) {
  std::string line;
  GNCG_CHECK(next_line(is, line) && line.rfind("gncg-profile", 0) == 0,
             "missing gncg-profile header");
  GNCG_CHECK(next_line(is, line) && line.rfind("n ", 0) == 0,
             "missing node count");
  const int n = std::stoi(line.substr(2));
  StrategyProfile profile(n);
  while (next_line(is, line)) {
    std::istringstream tokens(line);
    std::string tag;
    int owner = -1, target = -1;
    tokens >> tag >> owner >> target;
    GNCG_CHECK(tag == "buy" && tokens, "malformed buy line: " << line);
    GNCG_CHECK(owner >= 0 && owner < n && target >= 0 && target < n &&
                   owner != target,
               "buy line out of range: " << line);
    profile.add_buy(owner, target);
  }
  return profile;
}

}  // namespace gncg
