#include "sweep/runner.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"
#include "support/instrument.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "sweep/jsonl.hpp"

namespace gncg {

namespace {

constexpr const char* kRecordSchema = "gncg-sweep-1";
constexpr const char* kJournalSchema = "gncg-sweep-journal-1";
constexpr const char* kMetricsSchema = "gncg-sweep-metrics-1";

std::string hex16(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

/// Parses one journal record line back into rows.  Returns false (leaving
/// `out` untouched) on any mismatch -- a truncated or foreign line simply
/// does not count as a completed job.
bool restore_record(const JsonValue& record, const SweepPoint& expected,
                    ScenarioResult& out) {
  if (record.string_at("schema") != std::optional<std::string>(kRecordSchema))
    return false;
  if (record.string_at("scenario") !=
      std::optional<std::string>(expected.scenario))
    return false;
  if (record.string_at("host") != std::optional<std::string>(expected.host))
    return false;
  if (record.string_at("stream") !=
      std::optional<std::string>(hex16(expected.rng_stream())))
    return false;
  const JsonValue* rows = record.find("rows");
  if (rows == nullptr || !rows->is_array()) return false;
  ScenarioResult result;
  for (const JsonValue& row_value : rows->items()) {
    const JsonValue* metrics = row_value.find("metrics");
    const JsonValue* tags = row_value.find("tags");
    if (metrics == nullptr || !metrics->is_object() || tags == nullptr ||
        !tags->is_object())
      return false;
    ScenarioRow row;
    for (const auto& [name, value] : metrics->members()) {
      const auto number = json_to_double(value);
      if (!number.has_value()) return false;
      row.metric(name, *number);
    }
    for (const auto& [name, value] : tags->members()) {
      if (!value.is_string()) return false;
      row.tag(name, value.as_string());
    }
    result.rows.push_back(std::move(row));
  }
  out = std::move(result);
  return true;
}

/// Replays a journal: fills `restored[i]` for every fully recorded job.
/// Returns the number of restored jobs.  Contract-fails on a valid header
/// with the wrong fingerprint; tolerates a truncated trailing line.
std::size_t replay_journal(const std::string& path,
                           const std::vector<SweepPoint>& points,
                           std::uint64_t fingerprint,
                           std::vector<SweepOutcome>& outcomes,
                           std::vector<char>& restored) {
  std::ifstream in(path);
  if (!in.is_open()) return 0;  // fresh start: nothing to resume

  std::string line;
  if (!std::getline(in, line)) return 0;  // empty file
  const auto header = JsonValue::parse(line);
  GNCG_CHECK(header.has_value() &&
                 header->string_at("schema") ==
                     std::optional<std::string>(kJournalSchema),
             "sweep journal " << path << " has no valid header line");
  GNCG_CHECK(header->string_at("fingerprint") ==
                 std::optional<std::string>(hex16(fingerprint)),
             "sweep journal " << path
                              << " was recorded for a different plan "
                                 "(fingerprint mismatch); refusing to resume");

  std::size_t count = 0;
  while (std::getline(in, line)) {
    const auto record = JsonValue::parse(line);
    if (!record.has_value()) continue;  // truncated mid-write: not completed
    const auto index = record->number_at("point");
    if (!index.has_value() || *index < 0.0 ||
        *index >= static_cast<double>(points.size()))
      continue;
    const auto point_index = static_cast<std::size_t>(*index);
    if (restored[point_index]) continue;  // duplicate line: first one wins
    ScenarioResult result;
    if (!restore_record(*record, points[point_index], result)) continue;
    outcomes[point_index].result = std::move(result);
    outcomes[point_index].from_journal = true;
    restored[point_index] = 1;
    ++count;
  }
  return count;
}

void write_rows(JsonWriter& writer, const ScenarioResult& result) {
  writer.key("rows").begin_array();
  for (const ScenarioRow& row : result.rows) {
    writer.begin_object();
    writer.key("metrics").begin_object();
    for (const auto& [name, value] : row.metrics)
      if (!is_timing_metric(name)) writer.key(name).number(value);
    writer.end_object();
    writer.key("tags").begin_object();
    for (const auto& [name, value] : row.tags) writer.key(name).string(value);
    writer.end_object();
    writer.end_object();
  }
  writer.end_array();
}

/// Restores the default thread count on scope exit (the runner temporarily
/// overrides the pool width; callers' configuration must survive).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t threads)
      : saved_(default_thread_count()) {
    if (threads != 0) set_default_thread_count(threads);
  }
  ~ThreadCountGuard() { set_default_thread_count(saved_); }

 private:
  std::size_t saved_;
};

}  // namespace

std::string sweep_record_json(const SweepPoint& point,
                              const ScenarioResult& result) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("schema").string(kRecordSchema);
  writer.key("scenario").string(point.scenario);
  writer.key("point").number(point.point_index);
  writer.key("host").string(point.host);
  writer.key("n").number(point.n);
  writer.key("alpha").number(point.alpha);
  writer.key("norm_p").number(point.norm_p);
  writer.key("seed").number(point.seed);
  writer.key("stream").string(hex16(point.rng_stream()));
  if (!point.extras.empty()) {
    writer.key("extras").begin_object();
    for (const auto& [name, value] : point.extras)
      writer.key(name).number(value);
    writer.end_object();
  }
  write_rows(writer, result);
  writer.end_object();
  return writer.str();
}

std::string sweep_journal_header(std::uint64_t fingerprint,
                                 std::size_t job_count) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("schema").string(kJournalSchema);
  writer.key("fingerprint").string(hex16(fingerprint));
  writer.key("jobs").number(static_cast<std::uint64_t>(job_count));
  writer.end_object();
  return writer.str();
}

std::string sweep_metrics_json(const SweepPoint& point,
                               const instrument::CounterArray& counters) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("schema").string(kMetricsSchema);
  writer.key("scenario").string(point.scenario);
  writer.key("point").number(point.point_index);
  writer.key("host").string(point.host);
  writer.key("n").number(point.n);
  writer.key("seed").number(point.seed);
  writer.key("stream").string(hex16(point.rng_stream()));
  writer.key("counters").begin_object();
  for (std::size_t i = 0; i < instrument::kCounterCount; ++i)
    writer.key(instrument::counter_name(static_cast<instrument::Counter>(i)))
        .number(counters[i]);
  writer.end_object();
  writer.end_object();
  return writer.str();
}

std::string sweep_metrics_header(std::uint64_t fingerprint,
                                 std::size_t job_count) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("schema").string(kMetricsSchema);
  writer.key("fingerprint").string(hex16(fingerprint));
  writer.key("jobs").number(static_cast<std::uint64_t>(job_count));
  writer.key("instrumented").boolean(instrument::compiled_in());
  writer.end_object();
  return writer.str();
}

SweepReport run_sweep(const SweepPlan& plan,
                      const SweepRunnerOptions& options) {
  return run_sweep(plan, options, ScenarioRegistry::instance());
}

SweepReport run_sweep(const SweepPlan& plan, const SweepRunnerOptions& options,
                      const ScenarioRegistry& registry) {
  const Stopwatch total_timer;
  const std::vector<SweepPoint> points = plan.expand(registry);
  const std::uint64_t fingerprint = sweep_fingerprint(points);

  SweepReport report;
  report.outcomes.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    report.outcomes[i].point = points[i];

  std::vector<char> restored(points.size(), 0);
  if (options.resume && !options.journal_path.empty())
    report.resumed = replay_journal(options.journal_path, points, fingerprint,
                                    report.outcomes, restored);

  // (Re)write the journal: header plus every restored record.  Resuming
  // compacts the file -- a trailing line truncated by a mid-write kill and
  // any duplicate lines disappear, so a resumed journal sorts to exactly
  // the bytes an uninterrupted run produces.  The compacted file is staged
  // next to the journal and renamed over it so completed work survives a
  // kill at any instant (the original is the only copy of those records).
  std::ofstream journal;
  if (!options.journal_path.empty()) {
    const std::string staging = options.journal_path + ".compact";
    {
      std::ofstream staged(staging, std::ios::trunc);
      GNCG_CHECK(staged.is_open(),
                 "cannot open sweep journal staging file " << staging);
      staged << sweep_journal_header(fingerprint, points.size()) << '\n';
      for (std::size_t i = 0; i < points.size(); ++i)
        if (restored[i])
          staged << sweep_record_json(points[i], report.outcomes[i].result)
                 << '\n';
      staged.flush();
      GNCG_CHECK(staged.good(),
                 "failed writing sweep journal staging file " << staging);
    }
    GNCG_CHECK(std::rename(staging.c_str(), options.journal_path.c_str()) == 0,
               "cannot move " << staging << " over "
                              << options.journal_path);
    journal.open(options.journal_path, std::ios::app);
    GNCG_CHECK(journal.is_open(),
               "cannot open sweep journal " << options.journal_path);
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!restored[i]) pending.push_back(i);

  // Per-job kernel metrics: header up front, one record per executed job
  // appended under the sink mutex.  Records are deterministic (jobs are
  // pinned, see below), so sorting the lines of two metrics files of the
  // same plan yields identical bytes at any thread count.
  const bool collect_metrics = !options.metrics_path.empty();
  std::ofstream metrics;
  if (collect_metrics) {
    metrics.open(options.metrics_path, std::ios::trunc);
    GNCG_CHECK(metrics.is_open(),
               "cannot open sweep metrics file " << options.metrics_path);
    metrics << sweep_metrics_header(fingerprint, points.size()) << '\n';
  }
  const bool tracing = !options.trace_path.empty();
  if (tracing) instrument::start_tracing();

  std::mutex sink_mutex;  // journal + metrics + progress stream
  const ThreadCountGuard thread_guard(options.threads);
  // serial_cutoff 2: each item is an entire job (possibly seconds of work),
  // so the small-kernel dispatch cutoff must not serialize small plans.
  parallel_for(
      0, pending.size(),
      [&](std::size_t job) {
        const std::size_t index = pending[job];
        const SweepPoint& point = points[index];
        const Scenario& scenario = registry.at(point.scenario);
        Rng rng(point.rng_stream());
        // Metrics mode pins the job to this thread (scenario-internal
        // parallel regions degrade to serial), so the ThreadFrame delta
        // captures exactly this job's kernel work -- thread-count
        // invariant, including first-improvement branch behavior.
        std::optional<detail::NestedSerialGuard> pin;
        std::optional<instrument::ThreadFrame> frame;
        if (collect_metrics) {
          pin.emplace();
          frame.emplace();
        }
        const instrument::Span job_span(
            instrument::tracing_enabled()
                ? point.scenario + " #" + std::to_string(point.point_index)
                : std::string(),
            "sweep_job");
        const Stopwatch job_timer;
        ScenarioResult result = scenario.run(point, rng);
        const double elapsed = job_timer.millis();
        if (frame.has_value())
          report.outcomes[index].counters = frame->delta();

        const std::string record = sweep_record_json(point, result);
        {
          const std::lock_guard<std::mutex> lock(sink_mutex);
          if (journal.is_open()) journal << record << '\n' << std::flush;
          if (metrics.is_open())
            metrics << sweep_metrics_json(point,
                                          report.outcomes[index].counters)
                    << '\n';
          if (options.progress != nullptr)
            *options.progress << "[sweep] " << point.scenario << " #"
                              << point.point_index << " host=" << point.host
                              << " n=" << point.n
                              << " alpha=" << point.alpha
                              << " seed=" << point.seed << " ("
                              << format_double(elapsed, 1) << " ms)\n";
        }
        report.outcomes[index].result = std::move(result);
        report.outcomes[index].elapsed_ms = elapsed;
      },
      /*grain=*/1, /*serial_cutoff=*/2);

  if (tracing) instrument::stop_tracing(options.trace_path);
  if (collect_metrics) {
    metrics.flush();
    GNCG_CHECK(metrics.good(), "sweep metrics write to "
                                   << options.metrics_path << " failed");
  }

  // A failed append (disk full) would otherwise go unnoticed: the stream
  // sets badbit and silently swallows every later record.
  GNCG_CHECK(options.journal_path.empty() || journal.good(),
             "sweep journal write to " << options.journal_path
                                       << " failed (disk full?)");

  report.executed = pending.size();
  report.elapsed_ms = total_timer.millis();
  return report;
}

}  // namespace gncg
