// Builtin scenario registrations and the shared sweep host builder.
//
// Registered scenarios (see register_builtin_scenarios):
//   fig3_onetwo_poa  -- Figure 3 / Theorem 8: 1-2-GNCG PoA lower bound
//                       (hosts: dense; n is the clique parameter N >= 2)
//   fig10_dimension  -- Figure 10 / Theorem 19: 1-norm dimension sweep
//                       (hosts: euclidean; n is the dimension d >= 1)
//   br_dynamics      -- the PoA-explorer workload: best-single-move rounds
//                       over a random host with a cached deviation engine
//                       (hosts: dense, lazy, euclidean, tree;
//                        extras: rounds=3, agents=64; one row per round)
//   poa_random       -- PoA/PoS of random instances against the paper bound
//                       (hosts: dense, euclidean, tree; extras: attempts=20;
//                        exact enumeration for n <= 5, sampled beyond)
//   optimum_gap      -- heuristic optimum quality: local search vs the
//                       admissible lower bound and the MST baseline
//                       (hosts: dense, euclidean, tree)
#pragma once

#include "metric/host_graph.hpp"
#include "sweep/plan.hpp"
#include "sweep/scenario.hpp"

namespace gncg {

/// The host graph the random-game scenarios (br_dynamics, poa_random,
/// optimum_gap) play on, by backend kind:
///   dense / lazy : random {1,2} host, P(w=1) = 1/2 (metric by construction,
///                  so large n never pays a cubic repair pass)
///   euclidean    : n uniform points in [0, 1000]^2 under the point's p-norm
///   tree         : uniform random tree, edge weights uniform in [1, 10]
/// Consumes a deterministic rng prefix: callers that re-derive the job's
/// stream rebuild the exact instance the job used.
HostGraph make_sweep_host(const SweepPoint& point, Rng& rng);

}  // namespace gncg
