#include "sweep/aggregate.hpp"

#include <ostream>

#include "sweep/jsonl.hpp"

namespace gncg {

namespace {

SweepGroupKey key_of(const SweepPoint& point) {
  return {point.scenario, point.host, point.n, point.alpha, point.norm_p};
}

}  // namespace

std::vector<SweepAggregate> aggregate_outcomes(
    const std::vector<SweepOutcome>& outcomes) {
  // Outcomes arrive in plan expansion order, so linear scans keep group and
  // metric order deterministic; sweep cardinalities make O(groups * metrics)
  // lookups irrelevant next to the jobs that produced them.
  std::vector<SweepAggregate> aggregates;
  for (const SweepOutcome& outcome : outcomes) {
    const SweepGroupKey key = key_of(outcome.point);
    for (const ScenarioRow& row : outcome.result.rows)
      for (const auto& [metric, value] : row.metrics) {
        // Timing metrics are absent from journal-restored rows, so
        // aggregating them would make summaries depend on where a run was
        // interrupted; they stay in-memory only (see is_timing_metric).
        if (is_timing_metric(metric)) continue;
        SweepAggregate* slot = nullptr;
        for (auto& aggregate : aggregates)
          if (aggregate.metric == metric && aggregate.key == key) {
            slot = &aggregate;
            break;
          }
        if (slot == nullptr) {
          aggregates.push_back({key, metric, SampleStats{}});
          slot = &aggregates.back();
        }
        slot->stats.add(value);
      }
  }
  return aggregates;
}

ConsoleTable aggregate_table(const std::vector<SweepAggregate>& aggregates) {
  ConsoleTable table({"scenario", "host", "n", "alpha", "p", "metric", "count",
                      "mean", "stddev", "median", "p10", "p90", "min", "max"});
  for (const SweepAggregate& aggregate : aggregates) {
    table.begin_row()
        .add(aggregate.key.scenario)
        .add(aggregate.key.host)
        .add(aggregate.key.n)
        .add(aggregate.key.alpha, 3)
        .add(aggregate.key.norm_p, 2)
        .add(aggregate.metric)
        .add(static_cast<long long>(aggregate.stats.count()))
        .add(aggregate.stats.mean(), 6)
        .add(aggregate.stats.stddev(), 6)
        .add(aggregate.stats.median(), 6)
        .add(aggregate.stats.quantile(0.1), 6)
        .add(aggregate.stats.quantile(0.9), 6)
        .add(aggregate.stats.min(), 6)
        .add(aggregate.stats.max(), 6);
  }
  return table;
}

void write_summary_jsonl(std::ostream& os,
                         const std::vector<SweepAggregate>& aggregates) {
  for (const SweepAggregate& aggregate : aggregates) {
    JsonWriter writer;
    writer.begin_object();
    writer.key("schema").string("gncg-sweep-summary-1");
    writer.key("scenario").string(aggregate.key.scenario);
    writer.key("host").string(aggregate.key.host);
    writer.key("n").number(aggregate.key.n);
    writer.key("alpha").number(aggregate.key.alpha);
    writer.key("norm_p").number(aggregate.key.norm_p);
    writer.key("metric").string(aggregate.metric);
    writer.key("count").number(aggregate.stats.count());
    writer.key("mean").number(aggregate.stats.mean());
    writer.key("stddev").number(aggregate.stats.stddev());
    writer.key("min").number(aggregate.stats.min());
    writer.key("p10").number(aggregate.stats.quantile(0.1));
    writer.key("median").number(aggregate.stats.median());
    writer.key("p90").number(aggregate.stats.quantile(0.9));
    writer.key("max").number(aggregate.stats.max());
    writer.end_object();
    os << writer.str() << '\n';
  }
}

void write_records_jsonl(std::ostream& os,
                         const std::vector<SweepOutcome>& outcomes) {
  for (const SweepOutcome& outcome : outcomes)
    os << sweep_record_json(outcome.point, outcome.result) << '\n';
}

}  // namespace gncg
