// Sweep plans: cartesian parameter grids expanded into deterministic jobs.
//
// A SweepPlan names scenarios and lists values for the canonical grid axes
// (host backend kind, n, alpha, p-norm, replicate seeds).  `expand` produces
// the job list in one fixed nesting order -- scenario, host, n, alpha,
// norm_p, seed -- assigning each job its position `point_index`.  A job's
// RNG stream is `stream_seed(scenario, point_index, seed)`: a pure function
// of the plan text, so results are bit-identical regardless of thread count
// or execution order, and a journal can name a job by its index alone.
//
// `fingerprint` hashes the expanded job list; the runner stamps it into the
// journal header and refuses to resume a journal recorded for a different
// plan (or a registry whose host support changed the expansion).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/scenario.hpp"

namespace gncg {

/// One job: a full parameter assignment for one scenario execution.
struct SweepPoint {
  std::string scenario;
  std::string host;        ///< backend kind: dense | lazy | euclidean | tree
  int n = 0;               ///< scenario size axis (agents, N, dimension d...)
  double alpha = 1.0;
  double norm_p = 2.0;     ///< p-norm (euclidean hosts; 2.0 elsewhere)
  std::uint64_t seed = 0;  ///< replicate seed value
  std::uint64_t point_index = 0;  ///< position in the expanded plan

  /// Scenario-specific extra parameters (sorted by name at expansion).
  std::vector<std::pair<std::string, double>> extras;

  /// Extra parameter lookup with fallback.
  double extra_or(std::string_view name, double fallback) const;

  /// The job's derived RNG stream seed (see support/rng.hpp).
  std::uint64_t rng_stream() const {
    return stream_seed(scenario, point_index, seed);
  }
};

/// A cartesian grid over scenarios x canonical axes (+ shared extras).
struct SweepPlan {
  std::vector<std::string> scenarios;
  std::vector<std::string> hosts = {"dense"};
  std::vector<int> ns = {5};
  std::vector<double> alphas = {1.0};
  std::vector<double> norm_ps = {2.0};  ///< expanded for euclidean hosts only
  std::uint64_t seeds = 1;              ///< replicate count
  std::uint64_t seed_base = 0;          ///< first replicate seed value
  std::vector<std::pair<std::string, double>> extras;

  /// Expands the grid into jobs in the fixed nesting order.  Contract-fails
  /// on unknown scenario names, on a scenario supporting none of the
  /// requested hosts, and on empty axes.  Non-euclidean hosts take a single
  /// canonical norm_p = 2.0 instead of multiplying by the norm axis.
  std::vector<SweepPoint> expand(const ScenarioRegistry& registry) const;

  /// Order-sensitive hash of the expanded job list.
  std::uint64_t fingerprint(const ScenarioRegistry& registry) const;
};

/// Hash of one expanded point (fingerprint building block; exposed so tests
/// can pin journal compatibility).
std::uint64_t point_fingerprint(const SweepPoint& point);

/// Order-sensitive hash of an already-expanded job list (what
/// SweepPlan::fingerprint computes; callers holding the expansion avoid
/// expanding the grid a second time).
std::uint64_t sweep_fingerprint(const std::vector<SweepPoint>& points);

}  // namespace gncg
