#include "sweep/scenarios_builtin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "constructions/ratio_constructions.hpp"
#include "core/approx_br.hpp"
#include "core/cost.hpp"
#include "core/deviation_engine.hpp"
#include "core/equilibrium.hpp"
#include "core/equilibrium_search.hpp"
#include "core/poa.hpp"
#include "core/profile_gen.hpp"
#include "core/restarts.hpp"
#include "core/social_optimum.hpp"
#include "metric/points.hpp"
#include "metric/tree.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace gncg {

HostGraph make_sweep_host(const SweepPoint& point, Rng& rng) {
  GNCG_CHECK(point.n >= 2, "sweep host needs n >= 2, got " << point.n);
  if (point.host == "tree")
    return HostGraph::from_tree(random_tree(point.n, rng, 1.0, 10.0));
  if (point.host == "euclidean")
    return HostGraph::from_points(uniform_points(point.n, 2, 1000.0, rng),
                                  point.norm_p);
  GNCG_CHECK(point.host == "dense" || point.host == "lazy",
             "unknown sweep host kind " << point.host);
  HostGraph host = random_one_two_host(point.n, 0.5, rng);
  if (point.host == "lazy")
    host = HostGraph::from_weights_lazy(host.weights(), ModelClass::kOneTwo);
  return host;
}

namespace {

// --- fig3_onetwo_poa ------------------------------------------------------

/// Equilibrium certification level by instance size (matching what the
/// bench always reported: exact NE check to N=2, greedy to N=4, "-" above).
std::string fig3_check(const RatioConstruction& c, int N) {
  if (N <= 2)
    return is_nash_equilibrium(c.game, c.equilibrium) ? "exact NE" : "NOT NE";
  if (N <= 4)
    return is_greedy_equilibrium(c.game, c.equilibrium) ? "greedy eq"
                                                        : "NOT GE";
  return "-";
}

ScenarioResult run_fig3(const SweepPoint& point, Rng&) {
  const int N = point.n;
  GNCG_CHECK(N >= 2, "fig3_onetwo_poa needs N >= 2");
  const double alpha = point.alpha;
  const double limit =
      alpha == 1.0 ? 1.5 : 3.0 / (alpha + 2.0);  // Theorem 8 limit
  const auto c = theorem8_construction(N, alpha);
  const double measured = social_cost(c.game, c.equilibrium) /
                          network_social_cost(c.game, c.optimum);
  ScenarioRow row;
  row.metric("N", N)
      .metric("n_nodes", c.game.node_count())
      .metric("measured_ratio", measured)
      .metric("paper_limit", limit)
      .metric("gap_to_limit", limit - measured)
      .tag("equilibrium_check", fig3_check(c, N));
  return {{std::move(row)}};
}

// --- fig10_dimension ------------------------------------------------------

ScenarioResult run_fig10(const SweepPoint& point, Rng&) {
  const int d = point.n;
  GNCG_CHECK(d >= 1, "fig10_dimension needs dimension d >= 1");
  // The Theorem 19 construction is inherently 1-norm; accepting any other
  // p would journal records labeled with a norm the computation never used.
  GNCG_CHECK(point.norm_p == 1.0,
             "fig10_dimension is a 1-norm construction; plan it with "
             "norm_ps = {1.0}, got p = "
                 << point.norm_p);
  const double alpha = point.alpha;
  const auto c = theorem19_construction(d, alpha);
  const double measured = social_cost(c.game, c.equilibrium) /
                          network_social_cost(c.game, c.optimum);
  const double formula = paper::theorem19_lower(alpha, d);
  std::string check = "-";
  if (d <= 4)
    check = is_nash_equilibrium(c.game, c.equilibrium) ? "exact NE" : "NOT NE";
  const double scale =
      std::max({1.0, std::abs(formula), std::abs(measured)});
  ScenarioRow row;
  row.metric("d", d)
      .metric("n_nodes", 2 * d + 1)
      .metric("measured_ratio", measured)
      .metric("paper_formula", formula)
      .metric("metric_limit", paper::metric_poa(alpha))
      .tag("ne_check", check)
      .tag("agreement",
           std::abs(measured - formula) <= 1e-6 * scale ? "ok" : "MISMATCH");
  return {{std::move(row)}};
}

// --- br_dynamics ----------------------------------------------------------

double engine_social_cost(DeviationEngine& engine) {
  engine.warm_distances();
  double total = 0.0;
  for (int u = 0; u < engine.game().node_count(); ++u)
    total += engine.agent_cost_warm(u);
  return total;
}

ScenarioResult run_br_dynamics(const SweepPoint& point, Rng& rng) {
  const int rounds = static_cast<int>(point.extra_or("rounds", 3.0));
  const int agents = static_cast<int>(point.extra_or("agents", 64.0));
  GNCG_CHECK(rounds >= 1 && agents >= 1,
             "br_dynamics needs rounds >= 1 and agents >= 1");

  const Stopwatch construct_timer;
  const Game game(make_sweep_host(point, rng), point.alpha);
  DeviationEngine engine(game, recursive_tree_profile(game, rng));
  const double construct_ms = construct_timer.millis();

  // Exactly min(agents, n) distinct agents, evenly spaced over the whole id
  // range (u_i = i*n/agents is strictly increasing while agents <= n).
  const int per_round = std::min(agents, point.n);
  ScenarioResult result;
  for (int round = 0; round < rounds; ++round) {
    const Stopwatch round_timer;
    int improved = 0;
    engine.warm_distances();
    for (int i = 0; i < per_round; ++i) {
      const int u = static_cast<int>(
          (static_cast<long long>(i) * point.n) / per_round);
      const auto move = engine.best_single_move(u);
      if (move.improved) {
        ++improved;
        engine.apply_move(u, move.move);
      }
    }
    const double social = engine_social_cost(engine);
    ScenarioRow row;
    row.metric("round", round)
        .metric("social_cost", social)
        .metric("agents_scanned", per_round)
        .metric("agents_improved", improved)
        .metric("construct_ms", round == 0 ? construct_ms : 0.0)
        .metric("elapsed_ms", round_timer.millis());
    result.rows.push_back(std::move(row));
  }
  return result;
}

// --- br_certify -----------------------------------------------------------

ScenarioResult run_br_certify(const SweepPoint& point, Rng& rng) {
  const int settle_rounds =
      static_cast<int>(point.extra_or("settle_rounds", 2.0));
  GNCG_CHECK(settle_rounds >= 0, "br_certify needs settle_rounds >= 0");
  const Game game(make_sweep_host(point, rng), point.alpha);
  DeviationEngine engine(game, recursive_tree_profile(game, rng));

  // Settle with best-single-move rounds first, so certification runs
  // against a near-equilibrium profile (the paper's certification shape).
  for (int round = 0; round < settle_rounds; ++round) {
    for (int u = 0; u < point.n; ++u) {
      const auto move = engine.best_single_move(u);
      if (move.improved) engine.apply_move(u, move.move);
    }
  }

  // Full-mode exact best response per agent (incumbent-bounded, no
  // first-improvement stop): its evaluation counts are deterministic at any
  // thread count, which journaled metrics must be -- the first-improvement
  // fan-out's early abort makes that mode's work counter timing-dependent.
  const Stopwatch timer;
  int improving = 0;
  double evaluations = 0.0;
  double max_gain = 0.0;
  for (int u = 0; u < point.n; ++u) {
    BestResponseOptions options;
    options.incumbent = engine.agent_cost(u);
    const auto br = exact_best_response(engine, u, options);
    evaluations += static_cast<double>(br.evaluations);
    if (br.improved) {
      ++improving;
      if (options.incumbent < kInf)
        max_gain = std::max(max_gain, options.incumbent - br.cost);
    }
  }

  ScenarioRow row;
  row.metric("agents", point.n)
      .metric("settle_rounds", settle_rounds)
      .metric("improving_agents", improving)
      .metric("br_evaluations", evaluations)
      .metric("max_gain", max_gain)
      .metric("social_cost", engine_social_cost(engine))
      .metric("certify_ms", timer.millis())
      .tag("certified", improving == 0 ? "NE" : "not NE");
  return {{std::move(row)}};
}

// --- poa_random -----------------------------------------------------------

ScenarioResult run_poa_random(const SweepPoint& point, Rng& rng) {
  const int attempts = static_cast<int>(point.extra_or("attempts", 20.0));
  GNCG_CHECK(attempts >= 1, "poa_random needs attempts >= 1");
  const Game game(make_sweep_host(point, rng), point.alpha);
  const bool exact = point.n <= 5;

  EquilibriumSet equilibria;
  double opt_cost = 0.0;
  if (exact) {
    equilibria = enumerate_nash_equilibria(game);
    opt_cost = exact_social_optimum(game).cost.total();
  } else {
    SamplingOptions options;
    options.attempts = attempts;
    options.seed = rng();
    options.verify_exact_ne = point.n <= 9;
    equilibria = sample_equilibria(game, options);
    opt_cost = local_search_optimum(game).cost.total();
  }
  const auto estimate = estimate_poa(equilibria, opt_cost, exact);
  const double bound = paper::metric_poa(point.alpha);

  ScenarioRow row;
  row.metric("ne_count", static_cast<double>(equilibria.profiles.size()))
      .metric("opt_cost", opt_cost)
      .metric("poa", estimate.poa)
      .metric("pos", estimate.pos)
      .metric("paper_bound", bound)
      .tag("mode", exact ? "exact" : "sampled")
      .tag("bound_holds", equilibria.empty()
                              ? "no NE found"
                              : (estimate.poa <= bound + 1e-6 ? "yes" : "NO"));
  return {{std::move(row)}};
}

// --- optimum_gap ----------------------------------------------------------

ScenarioResult run_optimum_gap(const SweepPoint& point, Rng& rng) {
  const Game game(make_sweep_host(point, rng), point.alpha);
  const auto mst = mst_network(game);
  const auto local = local_search_optimum(game);
  const double lower = social_optimum_lower_bound(game);

  ScenarioRow row;
  row.metric("local_search_cost", local.cost.total())
      .metric("mst_cost", mst.cost.total())
      .metric("lower_bound", lower)
      .metric("gap_ratio", lower > 0.0 ? local.cost.total() / lower
                                       : std::numeric_limits<double>::quiet_NaN())
      .metric("mst_gap_ratio", local.cost.total() > 0.0
                                   ? mst.cost.total() / local.cost.total()
                                   : std::numeric_limits<double>::quiet_NaN())
      .metric("edges", static_cast<double>(local.edges.size()));
  return {{std::move(row)}};
}

// --- ne_sampling / fip_probe (dynamics kernel) ----------------------------

/// Canonical scheduler / move-rule axes for the dynamics scenarios.  A
/// plan's numeric "schedulers" / "rules" extras select a *prefix* of these
/// (extras are doubles, so axes are encoded as prefix lengths of a fixed
/// order); each selected combination yields one result row tagged with the
/// policy names.
constexpr SchedulerKind kSchedulerAxis[] = {
    SchedulerKind::kRoundRobin, SchedulerKind::kSoftmaxGain,
    SchedulerKind::kMaxGain, SchedulerKind::kFairnessBounded,
    SchedulerKind::kRandomOrder};
constexpr MoveRule kRuleAxis[] = {MoveRule::kBestSingleMove,
                                  MoveRule::kBestResponse,
                                  MoveRule::kUmflResponse};

int axis_prefix(const SweepPoint& point, const char* name, double fallback,
                int limit) {
  const int count = static_cast<int>(point.extra_or(name, fallback));
  GNCG_CHECK(count >= 1 && count <= limit,
             point.scenario << " needs 1 <= " << name << " <= " << limit
                            << ", got " << count);
  return count;
}

ScenarioResult run_ne_sampling(const SweepPoint& point, Rng& rng) {
  const int restarts = static_cast<int>(point.extra_or("restarts", 12.0));
  const auto max_moves =
      static_cast<std::uint64_t>(point.extra_or("max_moves", 2000.0));
  const int schedulers = axis_prefix(point, "schedulers", 2.0, 5);
  const int rules = axis_prefix(point, "rules", 1.0, 3);
  GNCG_CHECK(restarts >= 1 && max_moves >= 1,
             "ne_sampling needs restarts >= 1 and max_moves >= 1");

  const Game game(make_sweep_host(point, rng), point.alpha);
  // One base seed for every combination: each scheduler x rule combo faces
  // the identical start-profile sequence (label and seed pin the streams),
  // so rows compare policies, not luck.
  const std::uint64_t base_seed = rng();
  const bool verify_exact = point.n <= 9;

  ScenarioResult result;
  for (int si = 0; si < schedulers; ++si) {
    for (int ri = 0; ri < rules; ++ri) {
      RestartOptions restart_options;
      restart_options.restarts = restarts;
      restart_options.seed = base_seed;
      restart_options.label = "ne_sampling";
      restart_options.dynamics.scheduler = kSchedulerAxis[si];
      restart_options.dynamics.rule = kRuleAxis[ri];
      restart_options.dynamics.max_moves = max_moves;
      restart_options.dynamics.detect_cycles = true;
      restart_options.dynamics.record_steps = false;
      const Stopwatch timer;
      const RestartReport report = run_restarts(game, restart_options);

      // Distinct converged profiles (exact NE check up to n = 9, the
      // poa_random threshold; beyond that the move rule is the evidence).
      const EquilibriumSet distinct =
          collect_distinct_equilibria(game, report, verify_exact);

      ScenarioRow row;
      row.metric("restarts", restarts)
          .metric("converged", static_cast<double>(report.converged))
          .metric("cycles", static_cast<double>(report.cycles_found))
          .metric("distinct_ne", static_cast<double>(distinct.profiles.size()))
          .metric("mean_moves", report.moves_to_convergence.count() > 0
                                    ? report.moves_to_convergence.mean()
                                    : 0.0)
          .metric("median_moves", report.moves_to_convergence.count() > 0
                                      ? report.moves_to_convergence.median()
                                      : 0.0);
      if (!distinct.empty())
        row.metric("best_social", distinct.min_cost())
            .metric("worst_social", distinct.max_cost());
      row.metric("elapsed_ms", timer.millis())
          .tag("scheduler", std::string(scheduler_name(kSchedulerAxis[si])))
          .tag("rule", std::string(move_rule_name(kRuleAxis[ri])))
          .tag("ne_check", verify_exact ? "exact" : "rule");
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

ScenarioResult run_fip_probe(const SweepPoint& point, Rng& rng) {
  const int restarts = static_cast<int>(point.extra_or("restarts", 16.0));
  const auto max_moves =
      static_cast<std::uint64_t>(point.extra_or("max_moves", 600.0));
  const int schedulers = axis_prefix(point, "schedulers", 2.0, 5);
  GNCG_CHECK(restarts >= 1 && max_moves >= 1,
             "fip_probe needs restarts >= 1 and max_moves >= 1");

  const Game game(make_sweep_host(point, rng), point.alpha);
  const std::uint64_t base_seed = rng();

  ScenarioResult result;
  for (int si = 0; si < schedulers; ++si) {
    RestartOptions restart_options;
    restart_options.restarts = restarts;
    restart_options.seed = base_seed;
    restart_options.label = "fip_probe";
    restart_options.dynamics.rule = MoveRule::kBestResponse;
    restart_options.dynamics.scheduler = kSchedulerAxis[si];
    restart_options.dynamics.max_moves = max_moves;
    restart_options.dynamics.detect_cycles = true;
    restart_options.verify_cycles = true;
    const Stopwatch timer;
    const RestartReport report = run_restarts(game, restart_options);

    double first_cycle_length = 0.0;
    for (const RestartRun& run : report.runs) {
      if (run.cycle_verified) {
        first_cycle_length = static_cast<double>(run.result.cycle_length);
        break;
      }
    }

    ScenarioRow row;
    row.metric("restarts", restarts)
        .metric("converged", static_cast<double>(report.converged))
        .metric("cycles_found", static_cast<double>(report.cycles_found))
        .metric("cycles_verified",
                static_cast<double>(report.cycles_verified))
        .metric("first_cycle_length", first_cycle_length)
        .metric("mean_moves", report.moves_to_convergence.count() > 0
                                  ? report.moves_to_convergence.mean()
                                  : 0.0)
        .metric("hash_collisions",
                static_cast<double>(report.hash_collisions))
        .metric("elapsed_ms", timer.millis())
        .tag("scheduler", std::string(scheduler_name(kSchedulerAxis[si])))
        .tag("rule", "best_response")
        .tag("fip_witness", report.cycles_verified > 0 ? "cycle" : "none");
    result.rows.push_back(std::move(row));
  }
  return result;
}

// --- parallel_mgm ---------------------------------------------------------

/// Round-based sharded MGM vs the sequential schedulers on identical
/// restart streams: does committing a conflict-free batch per round reach
/// equilibria in fewer rounds, and at what move overhead?  One row per
/// scheduler x rule combo; the MGM rows additionally report the achieved
/// round parallelism (mean commits per round, max batch).
ScenarioResult run_parallel_mgm(const SweepPoint& point, Rng& rng) {
  const int restarts = static_cast<int>(point.extra_or("restarts", 8.0));
  const auto max_moves =
      static_cast<std::uint64_t>(point.extra_or("max_moves", 2000.0));
  const int rules = axis_prefix(point, "rules", 1.0, 3);
  const int shards = static_cast<int>(point.extra_or("shards", 0.0));
  GNCG_CHECK(restarts >= 1 && max_moves >= 1,
             "parallel_mgm needs restarts >= 1 and max_moves >= 1");

  const Game game(make_sweep_host(point, rng), point.alpha);
  // One base seed across schedulers: every row faces the identical
  // start-profile streams, so rows compare round semantics, not luck.
  const std::uint64_t base_seed = rng();
  constexpr SchedulerKind kCompared[] = {SchedulerKind::kParallelMgm,
                                         SchedulerKind::kMaxGain,
                                         SchedulerKind::kRoundRobin};

  ScenarioResult result;
  for (const SchedulerKind scheduler : kCompared) {
    for (int ri = 0; ri < rules; ++ri) {
      RestartOptions restart_options;
      restart_options.restarts = restarts;
      restart_options.seed = base_seed;
      restart_options.label = "parallel_mgm";
      restart_options.dynamics.scheduler = scheduler;
      restart_options.dynamics.rule = kRuleAxis[ri];
      restart_options.dynamics.max_moves = max_moves;
      restart_options.dynamics.mgm_shards = shards;
      restart_options.dynamics.detect_cycles = true;
      restart_options.dynamics.record_steps = false;
      const Stopwatch timer;
      const RestartReport report = run_restarts(game, restart_options);

      SampleStats rounds_to_convergence;
      std::uint64_t total_moves = 0;
      std::uint64_t total_rounds = 0;
      std::size_t max_batch = 0;
      for (const RestartRun& run : report.runs) {
        if (run.result.converged)
          rounds_to_convergence.add(
              static_cast<double>(run.result.rounds));
        total_moves += run.result.moves;
        total_rounds += run.result.rounds;
        max_batch = std::max(max_batch, run.result.max_round_commits);
      }

      ScenarioRow row;
      row.metric("restarts", restarts)
          .metric("converged", static_cast<double>(report.converged))
          .metric("cycles", static_cast<double>(report.cycles_found))
          .metric("mean_moves", report.moves_to_convergence.count() > 0
                                    ? report.moves_to_convergence.mean()
                                    : 0.0)
          .metric("mean_rounds", rounds_to_convergence.count() > 0
                                     ? rounds_to_convergence.mean()
                                     : 0.0)
          .metric("commits_per_round",
                  total_rounds > 0 ? static_cast<double>(total_moves) /
                                         static_cast<double>(total_rounds)
                                   : 0.0)
          .metric("max_round_commits", static_cast<double>(max_batch))
          .metric("elapsed_ms", timer.millis())
          .tag("scheduler", std::string(scheduler_name(scheduler)))
          .tag("rule", std::string(move_rule_name(kRuleAxis[ri])));
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

// --- approx_ne ------------------------------------------------------------

/// Large-n geometric tier: approximate-better-response dynamics under the
/// approx-ladder move rule, then a per-agent (beta, eps) certificate on the
/// reached profile.  Every per-agent bound comes from the ladder's
/// admissible escape lower bound (core/approx_br.hpp), so the reported
/// max_beta / max_eps are *certified*: no agent can gain more than factor
/// max_beta (additive max_eps) by any unrestricted deviation.  Euclidean
/// hosts only -- the whole point is the spatial oracle's shortlist, and the
/// scenario asserts the run never materialized a dense O(n^2) matrix.
ScenarioResult run_approx_ne(const SweepPoint& point, Rng& rng) {
  const int restarts = static_cast<int>(point.extra_or("restarts", 2.0));
  const auto max_moves =
      static_cast<std::uint64_t>(point.extra_or("max_moves", 200.0));
  const int budget = static_cast<int>(point.extra_or("budget", 16.0));
  const int certify_count =
      static_cast<int>(point.extra_or("certify_agents", 64.0));
  const auto repair_cap =
      static_cast<std::size_t>(point.extra_or("repair_cap", 0.0));
  const bool verify_unbounded = point.extra_or("verify_unbounded", 0.0) != 0.0;
  GNCG_CHECK(restarts >= 1 && max_moves >= 1 && budget >= 1 &&
                 certify_count >= 1,
             "approx_ne needs restarts, max_moves, budget and "
             "certify_agents >= 1");
  GNCG_CHECK(point.host == "euclidean",
             "approx_ne is the large-n geometric tier; plan it with "
             "hosts = {\"euclidean\"}, got " << point.host);

  const std::uint64_t dense_cells_before =
      DistanceMatrix::allocated_cells_total();
  const Game game(make_sweep_host(point, rng), point.alpha);

  RestartOptions restart_options;
  restart_options.restarts = restarts;
  restart_options.seed = rng();
  restart_options.label = "approx_ne";
  // O(n) start profiles: the default spanning-random family draws
  // Theta(n^2) extra edges, which dwarfs the game itself at n >= 10^4.
  restart_options.start = StartProfileKind::kRecursiveTree;
  restart_options.dynamics.rule = MoveRule::kApproxLadder;
  restart_options.dynamics.scheduler = SchedulerKind::kRoundRobin;
  restart_options.dynamics.max_moves = max_moves;
  restart_options.dynamics.approx_budget = budget;
  restart_options.dynamics.approx_repair_cap = repair_cap;
  restart_options.dynamics.detect_cycles = true;
  restart_options.dynamics.record_steps = false;
  const Stopwatch dynamics_timer;
  const RestartReport report = run_restarts(game, restart_options);
  const double dynamics_ms = dynamics_timer.millis();

  double total_moves = 0.0;
  const RestartRun* certified_run = nullptr;
  for (const RestartRun& run : report.runs) {
    if (run.skipped) continue;
    total_moves += static_cast<double>(run.result.moves);
    if (certified_run == nullptr) certified_run = &run;
  }
  GNCG_CHECK(certified_run != nullptr, "approx_ne ran no restart");

  // Certify the first run's reached profile through the batched certifier:
  // one warmed engine shared across the sampled agents (evenly spaced ids,
  // the br_dynamics convention), each ladder seeded with the agent's cached
  // current-network row.  The ladder's lower bound LB_u on the unrestricted
  // best response gives beta_u = cost_u / LB_u, eps_u = cost_u - LB_u.
  const Stopwatch certify_timer;
  DeviationEngine engine(game, certified_run->result.final_profile);
  const int per = std::min(certify_count, point.n);
  std::vector<int> agent_ids;
  agent_ids.reserve(static_cast<std::size_t>(per));
  for (int i = 0; i < per; ++i)
    agent_ids.push_back(
        static_cast<int>((static_cast<long long>(i) * point.n) / per));
  ApproxBrOptions certify_options;
  certify_options.budget = budget;
  certify_options.repair_cap = repair_cap;
  const std::vector<CertifiedAgent> certified =
      certify_agents(engine, agent_ids, certify_options);
  double max_beta = 1.0;
  double beta_sum = 0.0;
  double max_eps = 0.0;
  int improving = 0;
  int certified_exact = 0;
  int tier2 = 0;
  int verified = 0;
  for (const CertifiedAgent& ca : certified) {
    const ApproxBrResult& ladder = ca.result;
    const double beta_u =
        ladder.lower_bound > 0.0 && ca.current_cost < kInf
            ? ca.current_cost / ladder.lower_bound
            : 1.0;
    const double eps_u =
        ca.current_cost < kInf && ladder.lower_bound < kInf
            ? std::max(0.0, ca.current_cost - ladder.lower_bound)
            : 0.0;
    max_beta = std::max(max_beta, beta_u);
    beta_sum += beta_u;
    max_eps = std::max(max_eps, eps_u);
    if (ladder.improved) ++improving;
    if (ladder.exact) ++certified_exact;
    if (ladder.tier >= 2) ++tier2;

    // Differential gate (verify_unbounded=1): every certified agent is
    // re-run with the cap off.  Both ladders' lower bounds under-bound the
    // true optimum and both costs upper-bound it, so the cross inequalities
    // must hold; and wherever the bounded ladder claimed exactness the
    // unbounded ladder must achieve the byte-equal cost (both then equal
    // the unrestricted best-response cost) -- any violation means a broken
    // truncation certificate.
    if (verify_unbounded && repair_cap > 0) {
      ApproxBrOptions unbounded = certify_options;
      unbounded.repair_cap = 0;
      unbounded.incumbent = ca.current_cost;
      unbounded.current_dist = &engine.distances(ca.agent);
      const ApproxBrResult reference =
          approx_best_response_ladder(engine, ca.agent, unbounded);
      const double tol =
          kImproveEps *
          std::max(1.0, std::min(std::abs(ladder.cost),
                                 std::abs(reference.cost)));
      GNCG_CHECK(ladder.lower_bound <= reference.cost + tol,
                 "bounded lower bound " << ladder.lower_bound
                                        << " exceeds the unbounded cost "
                                        << reference.cost << " for agent "
                                        << ca.agent);
      GNCG_CHECK(reference.lower_bound <= ladder.cost + tol,
                 "unbounded lower bound " << reference.lower_bound
                                          << " exceeds the bounded cost "
                                          << ladder.cost << " for agent "
                                          << ca.agent);
      if (ladder.exact) {
        GNCG_CHECK(reference.cost == ladder.cost,
                   "bounded ladder claimed exact with cost "
                       << ladder.cost << " but the unbounded ladder achieved "
                       << reference.cost << " for agent " << ca.agent);
      }
      ++verified;
    }
  }
  const double certify_ms = certify_timer.millis();

  // The euclidean path must stay matrix-free end to end (the backend
  // contract); a nonzero delta means something materialized O(n^2) state.
  const double dense_cells_delta = static_cast<double>(
      DistanceMatrix::allocated_cells_total() - dense_cells_before);
  GNCG_CHECK(dense_cells_delta == 0.0,
             "approx_ne materialized a dense matrix ("
                 << dense_cells_delta << " cells) on the euclidean path");

  ScenarioRow row;
  row.metric("restarts", restarts)
      .metric("budget", budget)
      .metric("repair_cap", static_cast<double>(repair_cap))
      .metric("verified_unbounded", verified)
      .metric("converged", static_cast<double>(report.converged))
      .metric("total_moves", total_moves)
      .metric("certified_agents", per)
      .metric("max_beta", max_beta)
      .metric("mean_beta", per > 0 ? beta_sum / per : 1.0)
      .metric("max_eps", max_eps)
      .metric("improving_agents", improving)
      .metric("certified_exact", certified_exact)
      .metric("tier2_certifications", tier2)
      .metric("dense_cells_delta", dense_cells_delta)
      .metric("dynamics_ms", dynamics_ms)
      .metric("certify_ms", certify_ms)
      .tag("rule", "approx_ladder")
      .tag("equilibrium",
           improving == 0 ? "approx NE (no improving agent sampled)"
                          : "not settled");
  return {{std::move(row)}};
}

/// build_host hook shared by the random-game scenarios.
std::optional<HostGraph> sweep_host_of(const SweepPoint& point, Rng& rng) {
  return make_sweep_host(point, rng);
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  registry.add(std::make_shared<FunctionScenario>(
      "fig3_onetwo_poa",
      "Figure 3 / Theorem 8: 1-2-GNCG PoA lower bound; n is the clique "
      "parameter N, the measured ratio approaches 3/(alpha+2) (3/2 at "
      "alpha=1)",
      std::vector<std::string>{"dense"}, std::vector<ScenarioParam>{},
      run_fig3));
  registry.add(std::make_shared<FunctionScenario>(
      "fig10_dimension",
      "Figure 10 / Theorem 19: 1-norm dimension sweep; n is the dimension "
      "d, ratio 1 + a/(2 + a/(2d-1)) approaches the metric bound (a+2)/2",
      std::vector<std::string>{"euclidean"}, std::vector<ScenarioParam>{},
      run_fig10));
  registry.add(std::make_shared<FunctionScenario>(
      "br_dynamics",
      "best-single-move dynamics rounds over a random host with a cached "
      "deviation engine (the poa_explorer sweep workload); one row per round",
      std::vector<std::string>{"dense", "lazy", "euclidean", "tree"},
      std::vector<ScenarioParam>{
          {"rounds", 3.0, "activation rounds to run"},
          {"agents", 64.0, "agents scanned per round (evenly spaced)"}},
      run_br_dynamics, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "br_certify",
      "exact NE certification through the incremental best-response engine: "
      "settle with best-single-move rounds, then one incumbent-bounded "
      "exact BR per agent (deterministic evaluation counts)",
      std::vector<std::string>{"dense", "lazy", "euclidean", "tree"},
      std::vector<ScenarioParam>{
          {"settle_rounds", 2.0, "best-single-move rounds before certifying"}},
      run_br_certify, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "poa_random",
      "PoA/PoS of random instances vs the paper bound (alpha+2)/2; exact "
      "NE enumeration and optimum for n <= 5, sampled dynamics beyond",
      std::vector<std::string>{"dense", "euclidean", "tree"},
      std::vector<ScenarioParam>{
          {"attempts", 20.0, "dynamics restarts when sampling (n > 5)"}},
      run_poa_random, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "optimum_gap",
      "heuristic optimum quality: local-search social cost vs the "
      "admissible lower bound and the MST baseline",
      std::vector<std::string>{"dense", "euclidean", "tree"},
      std::vector<ScenarioParam>{}, run_optimum_gap, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "ne_sampling",
      "distinct Nash equilibria reached by parallel dynamics restarts "
      "(run_restarts kernel); one row per scheduler x move-rule combo, "
      "identical start profiles across combos",
      std::vector<std::string>{"dense", "lazy", "euclidean", "tree"},
      std::vector<ScenarioParam>{
          {"restarts", 12.0, "dynamics restarts per combo"},
          {"max_moves", 2000.0, "move budget per restart"},
          {"schedulers", 2.0, "scheduler-axis prefix length (1-5)"},
          {"rules", 1.0, "move-rule-axis prefix length (1-3)"}},
      run_ne_sampling, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "fip_probe",
      "best-response cycle hunting via restart dynamics with hashed "
      "transposition cycle detection; one row per scheduler, found cycles "
      "replay-verified",
      std::vector<std::string>{"dense", "lazy", "euclidean", "tree"},
      std::vector<ScenarioParam>{
          {"restarts", 16.0, "dynamics restarts per scheduler"},
          {"max_moves", 600.0, "move budget per restart"},
          {"schedulers", 2.0, "scheduler-axis prefix length (1-5)"}},
      run_fip_probe, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "parallel_mgm",
      "round-based sharded MGM dynamics vs the sequential max_gain / "
      "round_robin schedulers on identical restart streams; one row per "
      "scheduler x rule combo with rounds-to-convergence and achieved "
      "round parallelism",
      std::vector<std::string>{"dense", "lazy", "euclidean", "tree"},
      std::vector<ScenarioParam>{
          {"restarts", 8.0, "dynamics restarts per combo"},
          {"max_moves", 2000.0, "move budget per restart"},
          {"rules", 1.0, "move-rule-axis prefix length (1-3)"},
          {"shards", 0.0, "MGM agent shards per round (0 = auto n/16)"}},
      run_parallel_mgm, sweep_host_of));
  registry.add(std::make_shared<FunctionScenario>(
      "approx_ne",
      "large-n geometric tier: approx-ladder restart dynamics over the "
      "spatial candidate oracle, then per-agent (beta, eps) certification "
      "from the ladder's admissible escape bound; euclidean hosts only, "
      "asserted matrix-free",
      std::vector<std::string>{"euclidean"},
      std::vector<ScenarioParam>{
          {"restarts", 2.0, "dynamics restarts"},
          {"max_moves", 200.0, "move budget per restart"},
          {"budget", 16.0, "spatial candidate budget per agent"},
          {"certify_agents", 64.0, "agents certified (evenly spaced)"},
          {"repair_cap", 0.0,
           "bounded-frontier repair cap per SSSP repair (0 = exact)"},
          {"verify_unbounded", 0.0,
           "re-run certified agents with cap 0, cross-check lower bounds "
           "and byte-equal exact costs (differential gate; 0 = off)"}},
      run_approx_ne, sweep_host_of));
}

}  // namespace gncg
