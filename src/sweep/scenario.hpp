// Scenario registry: named, self-describing experiment units.
//
// A *scenario* packages one workload of the reproduction -- a figure/table
// experiment, the PoA-explorer dynamics sweep, a random-game PoA probe --
// behind a uniform interface: it declares which host-backend kinds it
// supports and which extra parameters it reads, and it maps one SweepPoint
// (host kind, n, alpha, p-norm, seed) plus a derived RNG to a list of result
// rows.  The SweepRunner executes scenarios over expanded plans; nothing in
// a scenario may depend on thread count or execution order (all randomness
// flows from the passed Rng, which the runner seeds from the job identity
// via stream_seed).
//
// Result rows carry named doubles (metrics) and named strings (tags), in
// insertion order.  Metrics whose name ends in "_ms" are wall-clock
// measurements: the runner strips them from journal records and canonical
// JSONL output so recorded results stay bit-identical across machines and
// thread counts, while interactive wrappers (poa_explorer) still see them.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metric/host_graph.hpp"
#include "support/rng.hpp"

namespace gncg {

struct SweepPoint;  // sweep/plan.hpp

/// True for wall-clock metric names (suffix "_ms").  Timing metrics are
/// stripped from journal records and canonical output and excluded from
/// aggregation -- they exist only in the in-memory report of the process
/// that measured them, so deterministic outputs never depend on the clock.
constexpr bool is_timing_metric(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_ms";
}

/// One self-described scenario parameter (beyond the canonical grid axes).
struct ScenarioParam {
  std::string name;
  double default_value = 0.0;
  std::string description;
};

/// One result row: ordered named doubles plus ordered named strings.
struct ScenarioRow {
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, std::string>> tags;

  ScenarioRow& metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
    return *this;
  }
  ScenarioRow& tag(std::string name, std::string value) {
    tags.emplace_back(std::move(name), std::move(value));
    return *this;
  }

  /// Metric lookup; NaN when absent.
  double metric_or_nan(std::string_view name) const;

  /// Tag lookup; empty string when absent.
  std::string tag_or_empty(std::string_view name) const;
};

struct ScenarioResult {
  std::vector<ScenarioRow> rows;
};

/// A registered experiment workload.  Implementations must be stateless
/// const-callable from multiple threads.
class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual const std::string& name() const = 0;
  virtual const std::string& description() const = 0;

  /// Host-backend kinds this scenario accepts ("dense", "lazy",
  /// "euclidean", "tree").  Plan expansion intersects the requested hosts
  /// with this set.
  virtual const std::vector<std::string>& supported_hosts() const = 0;

  /// Extra parameters read from SweepPoint::extras, with defaults.
  virtual const std::vector<ScenarioParam>& params() const = 0;

  /// Executes one job.  `rng` is the job's private derived stream.
  virtual ScenarioResult run(const SweepPoint& point, Rng& rng) const = 0;

  /// Rebuilds the host graph the job under `point` plays on, consuming the
  /// same `rng` prefix `run` does -- lets tooling dump a job's exact
  /// instance (instance_io provenance) without re-running it.  nullopt for
  /// scenarios whose construction is not host-shaped (closed-form figure
  /// constructions).
  virtual std::optional<HostGraph> build_host(const SweepPoint& point,
                                              Rng& rng) const {
    (void)point;
    (void)rng;
    return std::nullopt;
  }
};

/// Scenario built from plain functions (how every builtin registers).
class FunctionScenario final : public Scenario {
 public:
  using RunFn = std::function<ScenarioResult(const SweepPoint&, Rng&)>;
  using HostFn = std::function<std::optional<HostGraph>(const SweepPoint&,
                                                        Rng&)>;

  FunctionScenario(std::string name, std::string description,
                   std::vector<std::string> hosts,
                   std::vector<ScenarioParam> params, RunFn run,
                   HostFn host = nullptr)
      : name_(std::move(name)),
        description_(std::move(description)),
        hosts_(std::move(hosts)),
        params_(std::move(params)),
        run_(std::move(run)),
        host_(std::move(host)) {}

  const std::string& name() const override { return name_; }
  const std::string& description() const override { return description_; }
  const std::vector<std::string>& supported_hosts() const override {
    return hosts_;
  }
  const std::vector<ScenarioParam>& params() const override { return params_; }
  ScenarioResult run(const SweepPoint& point, Rng& rng) const override {
    return run_(point, rng);
  }
  std::optional<HostGraph> build_host(const SweepPoint& point,
                                      Rng& rng) const override {
    if (!host_) return std::nullopt;
    return host_(point, rng);
  }

 private:
  std::string name_;
  std::string description_;
  std::vector<std::string> hosts_;
  std::vector<ScenarioParam> params_;
  RunFn run_;
  HostFn host_;
};

/// Process-wide scenario registry.  `instance()` registers the builtin
/// scenarios on first use (explicitly, not via static initializers: gncg is
/// a static library and the linker would drop self-registering translation
/// units nothing references).
class ScenarioRegistry {
 public:
  /// The global registry with all builtin scenarios registered.
  static ScenarioRegistry& instance();

  /// Registers a scenario; contract-fails on duplicate names.
  void add(std::shared_ptr<const Scenario> scenario);

  /// Lookup by name; nullptr when unknown.
  const Scenario* find(std::string_view name) const;

  /// Lookup that contract-fails with the known-name list on miss.
  const Scenario& at(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::vector<std::shared_ptr<const Scenario>> scenarios_;
};

/// Registers the builtin scenario set into `registry` (idempotent on the
/// global instance; exposed for registry-isolation in tests).
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace gncg
