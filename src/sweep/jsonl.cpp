#include "sweep/jsonl.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/assert.hpp"

namespace gncg {

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  // Shortest representation that round-trips: try increasing precision.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

// --- parser ---------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      }
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return consume("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return consume("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return consume("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (peek() != '"' || !parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items_.push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Our writer only emits \u for C0 controls; decode the BMP code
          // point as UTF-8 so foreign documents at least round-trip text.
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    // Copy into a bounded null-terminated buffer: the string_view need not
    // be null-terminated and strtod reads until a terminator.
    char buf[48];
    const std::size_t avail = std::min(text_.size() - pos_, sizeof(buf) - 1);
    text_.copy(buf, avail, pos_);
    buf[avail] = '\0';
    char* end = nullptr;
    const double value = std::strtod(buf, &end);
    if (end == buf) return false;
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = value;
    pos_ += static_cast<std::size_t>(end - buf);
    return true;
  }

  bool consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

std::optional<double> JsonValue::number_at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) return std::nullopt;
  return json_to_double(*value);
}

std::optional<std::string> JsonValue::string_at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr || !value->is_string()) return std::nullopt;
  return value->as_string();
}

std::optional<double> json_to_double(const JsonValue& value) {
  if (value.is_number()) return value.as_number();
  if (value.is_string()) {
    const std::string& s = value.as_string();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  return std::nullopt;
}

// --- writer ---------------------------------------------------------------

void JsonWriter::comma() {
  if (first_in_scope_.empty()) return;
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (first_in_scope_.back())
    first_in_scope_.back() = false;
  else
    out_.push_back(',');
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  GNCG_CHECK(!first_in_scope_.empty() && !pending_key_,
             "unbalanced json writer scope");
  out_.push_back('}');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  GNCG_CHECK(!first_in_scope_.empty() && !pending_key_,
             "unbalanced json writer scope");
  out_.push_back(']');
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  GNCG_CHECK(!pending_key_, "json writer: key after key");
  comma();
  out_ += json_quote(name);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::string(std::string_view value) {
  comma();
  out_ += json_quote(value);
  return *this;
}

JsonWriter& JsonWriter::number(double value) {
  comma();
  out_ += json_number(value);
  return *this;
}

JsonWriter& JsonWriter::number(std::uint64_t value) {
  comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::number(int value) {
  comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::boolean(bool value) {
  comma();
  out_ += value ? "true" : "false";
  return *this;
}

}  // namespace gncg
