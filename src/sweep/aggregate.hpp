// Aggregation over sweep outcomes: replicate roll-ups and result sinks.
//
// Jobs differing only in the replicate seed form one *group*; every numeric
// metric of a group aggregates into a SampleStats (count / mean / stddev /
// median / quantiles / min / max).  Timing metrics (*_ms) are excluded:
// journal-restored jobs have no timing, so including them would make a
// resumed run's summary differ from an uninterrupted one's.  Group order
// and metric order are deterministic: groups appear in plan expansion
// order, metrics in row insertion order.
//
// Sinks: an aligned console table (also CSV through ConsoleTable::write_csv)
// and a summary JSONL file -- one line per group carrying every metric's
// statistics, consumed by the BENCH plotting workflow.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "support/table.hpp"
#include "sweep/runner.hpp"

namespace gncg {

/// A group key: every plan axis except the replicate seed.
struct SweepGroupKey {
  std::string scenario;
  std::string host;
  int n = 0;
  double alpha = 1.0;
  double norm_p = 2.0;

  bool operator==(const SweepGroupKey& other) const {
    return scenario == other.scenario && host == other.host && n == other.n &&
           alpha == other.alpha && norm_p == other.norm_p;
  }
};

/// Aggregated statistics of one metric within one group.
struct SweepAggregate {
  SweepGroupKey key;
  std::string metric;
  SampleStats stats;
};

/// Rolls replicate outcomes up into per-(group, metric) statistics.  Every
/// row of a multi-row result contributes one sample per metric.
std::vector<SweepAggregate> aggregate_outcomes(
    const std::vector<SweepOutcome>& outcomes);

/// Renders aggregates as an aligned table (print or write_csv downstream).
ConsoleTable aggregate_table(const std::vector<SweepAggregate>& aggregates);

/// Writes one summary JSONL line per (group, metric):
///   {"schema":"gncg-sweep-summary-1","scenario":...,"host":...,"n":...,
///    "alpha":...,"norm_p":...,"metric":...,"count":...,"mean":...,
///    "stddev":...,"min":...,"p10":...,"median":...,"p90":...,"max":...}
void write_summary_jsonl(std::ostream& os,
                         const std::vector<SweepAggregate>& aggregates);

/// Writes the canonical per-job records (timing-stripped, sorted by point
/// index) -- the deterministic result file for downstream pipelines.
void write_records_jsonl(std::ostream& os,
                         const std::vector<SweepOutcome>& outcomes);

}  // namespace gncg
