#include "sweep/scenario.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/assert.hpp"

namespace gncg {

double ScenarioRow::metric_or_nan(std::string_view name) const {
  for (const auto& [key, value] : metrics)
    if (key == name) return value;
  return std::numeric_limits<double>::quiet_NaN();
}

std::string ScenarioRow::tag_or_empty(std::string_view name) const {
  for (const auto& [key, value] : tags)
    if (key == name) return value;
  return {};
}

ScenarioRegistry& ScenarioRegistry::instance() {
  // Magic statics initialize thread-safely and in order: the builtins are
  // registered before the first caller sees the registry.  (No leaked `new`
  // -- the ASan CI job runs with leak detection on.)
  static ScenarioRegistry registry;
  static const bool builtins_registered =
      (register_builtin_scenarios(registry), true);
  (void)builtins_registered;
  return registry;
}

void ScenarioRegistry::add(std::shared_ptr<const Scenario> scenario) {
  GNCG_CHECK(scenario != nullptr, "cannot register a null scenario");
  GNCG_CHECK(!scenario->name().empty(), "scenario needs a non-empty name");
  GNCG_CHECK(find(scenario->name()) == nullptr,
             "duplicate scenario registration: " << scenario->name());
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& scenario : scenarios_)
    if (scenario->name() == name) return scenario.get();
  return nullptr;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    std::ostringstream known;
    for (const auto& known_name : names()) known << ' ' << known_name;
    GNCG_CHECK(false, "unknown scenario '" << name << "' (registered:"
                                           << known.str() << ")");
  }
  return *scenario;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) out.push_back(scenario->name());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gncg
