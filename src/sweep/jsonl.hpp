// Minimal JSON support for the sweep journal / result pipeline.
//
// The sweep subsystem speaks JSON Lines: one self-contained JSON object per
// line, written deterministically (key order fixed by the writer, doubles
// with round-trip precision) so that journals from different thread counts
// are byte-identical after sorting.  We need exactly two capabilities:
//
//   * JsonWriter -- a streaming object/array writer benches and the runner
//     use to emit records without ever building a DOM;
//   * JsonValue::parse -- a small recursive-descent reader the journal
//     replay uses on its *own* records.  Parsing returns nullopt on any
//     malformed input instead of throwing: a truncated final line (the
//     process was killed mid-write) is an expected state, not an error.
//
// JSON has no Infinity/NaN literals; non-finite doubles are written as the
// strings "inf" / "-inf" / "nan" and json_to_double maps them back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gncg {

/// Escapes and quotes `text` as a JSON string literal.
std::string json_quote(std::string_view text);

/// Formats a finite double with round-trip (%.17g-style shortest) precision;
/// non-finite values become the quoted strings "inf" / "-inf" / "nan".
std::string json_number(double value);

/// Parsed JSON value (object keys keep document order: journal records are
/// compared as sorted text, so replay must not silently reorder anything).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parses one complete JSON document; nullopt on malformed or trailing
  /// garbage (tolerates surrounding whitespace).
  static std::optional<JsonValue> parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Member's numeric value, honoring the "inf"/"-inf"/"nan" string
  /// convention; nullopt when absent or not numeric.
  std::optional<double> number_at(std::string_view key) const;

  /// Member's string value; nullopt when absent or not a string.
  std::optional<std::string> string_at(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Maps a parsed value back to a double, accepting both JSON numbers and
/// the non-finite string encodings; nullopt for anything else.
std::optional<double> json_to_double(const JsonValue& value);

/// Streaming writer producing compact (no whitespace) deterministic JSON.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("n").number(5);
///   w.key("rows").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string line = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);
  JsonWriter& string(std::string_view value);
  JsonWriter& number(double value);
  JsonWriter& number(std::uint64_t value);
  JsonWriter& number(int value);
  JsonWriter& boolean(bool value);

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace gncg
