// Checkpointed parallel sweep execution over expanded plans.
//
// The runner executes every job of a SweepPlan on the shared worker pool
// (dynamic chunking over the pending job list -- long jobs do not block the
// queue) and journals each completed job as one JSONL record.  Because a
// job's RNG stream is a pure function of its identity (see sweep/plan.hpp),
// results are bit-identical for any thread count and any execution order;
// the journal is therefore both a checkpoint and the canonical result file.
//
// Journal format (one JSON object per line):
//   header:  {"schema":"gncg-sweep-journal-1","fingerprint":"<hex16>",
//             "jobs":<count>}
//   record:  {"schema":"gncg-sweep-1","scenario":...,"point":<index>,
//             "host":...,"n":...,"alpha":...,"norm_p":...,"seed":...,
//             "stream":"<hex16>","rows":[{"metrics":{...},"tags":{...}}]}
// Records appear in completion order (non-deterministic under threads); the
// per-record bytes are deterministic, so sorting the lines of two journals
// of the same plan yields identical files.  Metrics named *_ms (wall-clock)
// are stripped before journaling -- they live only in the in-memory report.
//
// Resume: `options.resume` replays an existing journal, verifies the plan
// fingerprint, restores every fully written record without re-running its
// job, ignores a truncated trailing line (killed mid-write), and appends
// only the missing jobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/instrument.hpp"
#include "sweep/plan.hpp"
#include "sweep/scenario.hpp"

namespace gncg {

struct SweepRunnerOptions {
  /// Worker threads; 0 keeps the pool default (hardware concurrency).
  std::size_t threads = 0;

  /// JSONL journal path; empty disables checkpointing.
  std::string journal_path;

  /// Replay `journal_path` and skip completed jobs instead of truncating.
  bool resume = false;

  /// Per-completed-job progress notes to this stream (nullptr = silent).
  std::ostream* progress = nullptr;

  /// Per-job kernel-counter JSONL path; empty disables collection.  When
  /// set, every executed job is pinned to its one executing thread
  /// (detail::NestedSerialGuard): scenario-internal parallel regions run
  /// serially, so each job's counter deltas -- and therefore its metrics
  /// record -- are byte-identical at any runner thread count (jobs, not
  /// kernels, stay the unit of parallelism).  Counters are event counts
  /// only; wall-clock never appears in the file (the sweep `*_ms` rule).
  /// Restored (resumed) jobs did not execute here and get no record.
  /// Under GNCG_INSTRUMENT=OFF builds every counter reads 0.
  std::string metrics_path;

  /// Chrome trace-event JSON path; empty disables tracing.  Records one
  /// span per executed job plus per-worker pool busy spans; view in
  /// chrome://tracing or ui.perfetto.dev.  Tracing never pins jobs --
  /// the trace shows the real execution shape.
  std::string trace_path;
};

/// One completed job with its (restored or freshly computed) result.
struct SweepOutcome {
  SweepPoint point;
  ScenarioResult result;
  double elapsed_ms = 0.0;    ///< 0 when restored from a journal
  bool from_journal = false;
  /// Kernel-counter deltas attributed to this job (all zero unless
  /// options.metrics_path enabled collection and the job executed here).
  instrument::CounterArray counters{};
};

struct SweepReport {
  std::vector<SweepOutcome> outcomes;  ///< sorted by point_index
  std::size_t executed = 0;            ///< jobs run in this process
  std::size_t resumed = 0;             ///< jobs restored from the journal
  double elapsed_ms = 0.0;
};

/// Executes `plan` against `registry` (the global instance by default).
/// Contract-fails on plan errors and on resuming a journal whose
/// fingerprint does not match the plan.
SweepReport run_sweep(const SweepPlan& plan,
                      const SweepRunnerOptions& options = {});
SweepReport run_sweep(const SweepPlan& plan, const SweepRunnerOptions& options,
                      const ScenarioRegistry& registry);

/// The canonical (deterministic, timing-stripped) journal record for one
/// outcome -- exactly the line the journal stores.  Exposed so tests and
/// result sinks share one serialization.
std::string sweep_record_json(const SweepPoint& point,
                              const ScenarioResult& result);

/// Journal header line for a plan fingerprint and job count.
std::string sweep_journal_header(std::uint64_t fingerprint,
                                 std::size_t job_count);

/// The per-job metrics record: scenario/point/stream identity plus every
/// kernel counter by name.  Deterministic bytes when the job was pinned
/// (see SweepRunnerOptions::metrics_path).
std::string sweep_metrics_json(const SweepPoint& point,
                               const instrument::CounterArray& counters);

/// Metrics file header line (schema "gncg-sweep-metrics-1").
std::string sweep_metrics_header(std::uint64_t fingerprint,
                                 std::size_t job_count);

}  // namespace gncg
