// Checkpointed parallel sweep execution over expanded plans.
//
// The runner executes every job of a SweepPlan on the shared worker pool
// (dynamic chunking over the pending job list -- long jobs do not block the
// queue) and journals each completed job as one JSONL record.  Because a
// job's RNG stream is a pure function of its identity (see sweep/plan.hpp),
// results are bit-identical for any thread count and any execution order;
// the journal is therefore both a checkpoint and the canonical result file.
//
// Journal format (one JSON object per line):
//   header:  {"schema":"gncg-sweep-journal-1","fingerprint":"<hex16>",
//             "jobs":<count>}
//   record:  {"schema":"gncg-sweep-1","scenario":...,"point":<index>,
//             "host":...,"n":...,"alpha":...,"norm_p":...,"seed":...,
//             "stream":"<hex16>","rows":[{"metrics":{...},"tags":{...}}]}
// Records appear in completion order (non-deterministic under threads); the
// per-record bytes are deterministic, so sorting the lines of two journals
// of the same plan yields identical files.  Metrics named *_ms (wall-clock)
// are stripped before journaling -- they live only in the in-memory report.
//
// Resume: `options.resume` replays an existing journal, verifies the plan
// fingerprint, restores every fully written record without re-running its
// job, ignores a truncated trailing line (killed mid-write), and appends
// only the missing jobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/plan.hpp"
#include "sweep/scenario.hpp"

namespace gncg {

struct SweepRunnerOptions {
  /// Worker threads; 0 keeps the pool default (hardware concurrency).
  std::size_t threads = 0;

  /// JSONL journal path; empty disables checkpointing.
  std::string journal_path;

  /// Replay `journal_path` and skip completed jobs instead of truncating.
  bool resume = false;

  /// Per-completed-job progress notes to this stream (nullptr = silent).
  std::ostream* progress = nullptr;
};

/// One completed job with its (restored or freshly computed) result.
struct SweepOutcome {
  SweepPoint point;
  ScenarioResult result;
  double elapsed_ms = 0.0;    ///< 0 when restored from a journal
  bool from_journal = false;
};

struct SweepReport {
  std::vector<SweepOutcome> outcomes;  ///< sorted by point_index
  std::size_t executed = 0;            ///< jobs run in this process
  std::size_t resumed = 0;             ///< jobs restored from the journal
  double elapsed_ms = 0.0;
};

/// Executes `plan` against `registry` (the global instance by default).
/// Contract-fails on plan errors and on resuming a journal whose
/// fingerprint does not match the plan.
SweepReport run_sweep(const SweepPlan& plan,
                      const SweepRunnerOptions& options = {});
SweepReport run_sweep(const SweepPlan& plan, const SweepRunnerOptions& options,
                      const ScenarioRegistry& registry);

/// The canonical (deterministic, timing-stripped) journal record for one
/// outcome -- exactly the line the journal stores.  Exposed so tests and
/// result sinks share one serialization.
std::string sweep_record_json(const SweepPoint& point,
                              const ScenarioResult& result);

/// Journal header line for a plan fingerprint and job count.
std::string sweep_journal_header(std::uint64_t fingerprint,
                                 std::size_t job_count);

}  // namespace gncg
