#include "sweep/plan.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "support/assert.hpp"

namespace gncg {

double SweepPoint::extra_or(std::string_view name, double fallback) const {
  for (const auto& [key, value] : extras)
    if (key == name) return value;
  return fallback;
}

namespace {

/// Canonical double hashing: totally defined by the bit pattern, with +0/-0
/// collapsed so equal values hash equally.
std::uint64_t hash_double(double value) {
  return std::bit_cast<std::uint64_t>(value == 0.0 ? 0.0 : value);
}

}  // namespace

std::uint64_t point_fingerprint(const SweepPoint& point) {
  std::uint64_t h = hash_string(point.scenario);
  h = hash_combine(h, hash_string(point.host));
  h = hash_combine(h, static_cast<std::uint64_t>(point.n));
  h = hash_combine(h, hash_double(point.alpha));
  h = hash_combine(h, hash_double(point.norm_p));
  h = hash_combine(h, point.seed);
  h = hash_combine(h, point.point_index);
  for (const auto& [name, value] : point.extras) {
    h = hash_combine(h, hash_string(name));
    h = hash_combine(h, hash_double(value));
  }
  return h;
}

std::vector<SweepPoint> SweepPlan::expand(
    const ScenarioRegistry& registry) const {
  GNCG_CHECK(!scenarios.empty(), "sweep plan names no scenarios");
  GNCG_CHECK(!hosts.empty() && !ns.empty() && !alphas.empty() &&
                 !norm_ps.empty() && seeds >= 1,
             "sweep plan has an empty grid axis");

  // Shared extras ride along sorted by name so the expansion (and therefore
  // every derived RNG stream) is independent of flag order.
  auto sorted_extras = extras;
  std::sort(sorted_extras.begin(), sorted_extras.end());
  for (std::size_t i = 1; i < sorted_extras.size(); ++i)
    GNCG_CHECK(sorted_extras[i - 1].first != sorted_extras[i].first,
               "duplicate extra parameter " << sorted_extras[i].first);

  // Every extra must be declared by at least one scenario in the plan: a
  // typo'd key would otherwise fall back to the default inside the scenario
  // while the journal records the typo as applied provenance.
  for (const auto& [extra_name, extra_value] : sorted_extras) {
    (void)extra_value;
    bool declared = false;
    for (const auto& scenario_name : scenarios)
      for (const auto& param : registry.at(scenario_name).params())
        declared = declared || param.name == extra_name;
    GNCG_CHECK(declared, "extra parameter '"
                             << extra_name
                             << "' is not declared by any plan scenario");
  }

  std::vector<SweepPoint> points;
  for (const auto& scenario_name : scenarios) {
    const Scenario& scenario = registry.at(scenario_name);
    const auto& supported = scenario.supported_hosts();
    std::vector<std::string> scenario_hosts;
    for (const auto& host : hosts)
      if (std::find(supported.begin(), supported.end(), host) !=
          supported.end())
        scenario_hosts.push_back(host);
    {
      std::ostringstream supported_list;
      for (const auto& host : supported) supported_list << ' ' << host;
      GNCG_CHECK(!scenario_hosts.empty(),
                 "scenario " << scenario_name
                             << " supports none of the requested hosts "
                                "(supports:"
                             << supported_list.str() << ")");
    }
    for (const auto& host : scenario_hosts) {
      // The p-norm only parameterizes euclidean hosts; every other backend
      // gets one canonical job instead of |norm_ps| duplicates.
      const std::vector<double> host_norms =
          host == "euclidean" ? norm_ps : std::vector<double>{2.0};
      for (const int n : ns)
        for (const double alpha : alphas)
          for (const double norm_p : host_norms)
            for (std::uint64_t s = 0; s < seeds; ++s) {
              SweepPoint point;
              point.scenario = scenario_name;
              point.host = host;
              point.n = n;
              point.alpha = alpha;
              point.norm_p = norm_p;
              point.seed = seed_base + s;
              point.point_index = points.size();
              point.extras = sorted_extras;
              points.push_back(std::move(point));
            }
    }
  }
  return points;
}

std::uint64_t sweep_fingerprint(const std::vector<SweepPoint>& points) {
  std::uint64_t h = hash_string("gncg-sweep-plan");
  h = hash_combine(h, points.size());
  for (const auto& point : points) h = hash_combine(h, point_fingerprint(point));
  return h;
}

std::uint64_t SweepPlan::fingerprint(const ScenarioRegistry& registry) const {
  return sweep_fingerprint(expand(registry));
}

}  // namespace gncg
