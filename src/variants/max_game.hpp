// The MAX (egalitarian) variant of the game.
//
// The paper studies the SUM version -- agents minimize their *total*
// distance.  The literature it builds on also studies the MAX version
// (Demaine et al.'s max-NCG; Bilò et al.'s max-distance game on host
// graphs, both cited in Section 1.2), where an agent pays its worst-case
// distance instead:
//     cost_max(u) = alpha * w(u, S_u) + max_v d_G(u, v).
// This module provides the egalitarian cost, the pruned exact best
// response (the admissible floor is alpha * w(S) + the host-closure
// eccentricity of u), equilibrium checks and the social cost, so the two
// objectives can be compared on identical hosts.
#pragma once

#include "core/best_response.hpp"
#include "core/game.hpp"

namespace gncg {

class DeviationEngine;

/// alpha * w(u, S_u) + max_v d_G(u, v)  (kInf when disconnected).
double max_agent_cost(const Game& game, const StrategyProfile& s, int u);

/// Engine-backed egalitarian cost: buying cost plus the maximum of the
/// engine's cached distance vector (no environment rebuild).
double max_agent_cost(DeviationEngine& engine, int u);

/// Sum of egalitarian agent costs.
double max_social_cost(const Game& game, const StrategyProfile& s);

/// Egalitarian social cost of a bare network: alpha * w(E) + sum of
/// weighted eccentricities.
double max_network_social_cost(const Game& game,
                               const std::vector<Edge>& network);

/// Exact best response under the egalitarian objective.  Runs the shared
/// incremental branch-and-bound driver (core/br_search.hpp) with the MAX
/// cost model -- the same skeleton as exact_best_response, so the sum/max
/// searches cannot diverge.
BestResponseResult max_exact_best_response(
    const Game& game, const StrategyProfile& s, int u,
    const BestResponseOptions& options = {});

/// Engine-backed variant: borrows the engine's materialized adjacency for
/// the environment (no rebuild).  Batch callers reuse one engine.
BestResponseResult max_exact_best_response(
    const DeviationEngine& engine, int u,
    const BestResponseOptions& options = {});

/// Pre-refactor reference search (one fresh Dijkstra per visited subset,
/// sequential): the differential-testing and benchmarking baseline for the
/// shared driver, mirroring naive_exact_best_response.
BestResponseResult naive_max_exact_best_response(
    const Game& game, const StrategyProfile& s, int u,
    const BestResponseOptions& options = {});

/// True when agent u has a strictly cheaper egalitarian strategy.
bool max_has_improving_deviation(const Game& game, const StrategyProfile& s,
                                 int u);

/// Engine-backed early-exit existence check.
bool max_has_improving_deviation(DeviationEngine& engine, int u);

/// Pure NE check under the egalitarian objective (one engine reused across
/// the agent loop).
bool max_is_nash_equilibrium(const Game& game, const StrategyProfile& s);

}  // namespace gncg
