#include "variants/max_game.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"
#include "graph/graph_algos.hpp"

namespace gncg {

namespace {

/// Eccentricity of `u` in (environment + candidate edges) -- the
/// egalitarian distance term.
double eccentricity_of(const Game& game,
                       const std::vector<std::vector<Neighbor>>& environment,
                       int u, const NodeSet& targets) {
  std::vector<double> dist;
  dijkstra_over(
      game.node_count(), u,
      [&](int x, auto&& visit) {
        for (const auto& nb : environment[static_cast<std::size_t>(x)])
          visit(nb.to, nb.weight);
        if (x == u) {
          targets.for_each([&](int v) { visit(v, game.weight(u, v)); });
        } else if (targets.contains(x)) {
          visit(u, game.weight(u, x));
        }
      },
      dist);
  double worst = 0.0;
  for (double d : dist) worst = std::max(worst, d);
  return worst;
}

std::vector<std::vector<Neighbor>> environment_of(const Game& game,
                                                  const StrategyProfile& s,
                                                  int u) {
  const int n = game.node_count();
  std::vector<std::vector<Neighbor>> environment(static_cast<std::size_t>(n));
  for (int owner = 0; owner < n; ++owner) {
    if (owner == u) continue;
    s.strategy(owner).for_each([&](int target) {
      const double w = game.weight(owner, target);
      environment[static_cast<std::size_t>(owner)].push_back({target, w});
      environment[static_cast<std::size_t>(target)].push_back({owner, w});
    });
  }
  return environment;
}

/// Pruned DFS over candidate subsets, mirroring the SUM-version search but
/// with the eccentricity floor max_v d_H(u, v) as the admissible bound.
struct MaxBrSearch {
  const Game* game = nullptr;
  const std::vector<std::vector<Neighbor>>* environment = nullptr;
  int agent = 0;
  std::vector<int> candidates;
  std::vector<double> weights;
  double ecc_floor = 0.0;
  double incumbent = kInf;
  bool first_improvement = false;
  bool done = false;

  NodeSet current;
  double current_weight = 0.0;
  BestResponseResult result;

  double bound() const { return std::min(result.cost, incumbent); }

  void evaluate() {
    const double cost =
        game->alpha() * current_weight +
        eccentricity_of(*game, *environment, agent, current);
    ++result.evaluations;
    if (improves(cost, bound())) {
      result.cost = cost;
      result.strategy = current;
      result.improved = improves(cost, incumbent);
      if (first_improvement && result.improved) done = true;
    }
  }

  void descend(std::size_t start) {
    for (std::size_t i = start; i < candidates.size() && !done; ++i) {
      const double lb =
          game->alpha() * (current_weight + weights[i]) + ecc_floor;
      if (!improves(lb, bound())) break;  // weight-sorted: rest are worse
      current.insert(candidates[i]);
      current_weight += weights[i];
      evaluate();
      if (!done) descend(i + 1);
      current.erase(candidates[i]);
      current_weight -= weights[i];
    }
  }
};

}  // namespace

double max_agent_cost(const Game& game, const StrategyProfile& s, int u) {
  const auto environment = environment_of(game, s, u);
  double edge_weight = 0.0;
  s.strategy(u).for_each([&](int v) { edge_weight += game.weight(u, v); });
  return game.alpha() * edge_weight +
         eccentricity_of(game, environment, u, s.strategy(u));
}

double max_social_cost(const Game& game, const StrategyProfile& s) {
  double total = 0.0;
  for (int u = 0; u < game.node_count(); ++u)
    total += max_agent_cost(game, s, u);
  return total;
}

double max_network_social_cost(const Game& game,
                               const std::vector<Edge>& network) {
  WeightedGraph g(game.node_count());
  double edge_weight = 0.0;
  for (const auto& e : network) {
    GNCG_CHECK(game.can_buy(e.u, e.v), "network contains a forbidden edge");
    g.add_edge(e.u, e.v, game.weight(e.u, e.v));
    edge_weight += game.weight(e.u, e.v);
  }
  double ecc_total = 0.0;
  for (double e : eccentricities(g)) ecc_total += e;
  return game.alpha() * edge_weight + ecc_total;
}

BestResponseResult max_exact_best_response(const Game& game,
                                           const StrategyProfile& s, int u,
                                           const BestResponseOptions& options) {
  const auto environment = environment_of(game, s, u);

  MaxBrSearch search;
  search.game = &game;
  search.environment = &environment;
  search.agent = u;
  search.incumbent = options.incumbent;
  search.first_improvement = options.first_improvement;
  search.current = NodeSet(game.node_count());
  search.result.strategy = NodeSet(game.node_count());
  // Any built network's eccentricity of u is at least the host-closure one.
  for (int v = 0; v < game.node_count(); ++v)
    search.ecc_floor = std::max(search.ecc_floor, game.host_distance(u, v));

  std::vector<std::pair<double, int>> order;
  for (int v = 0; v < game.node_count(); ++v)
    if (game.can_buy(u, v)) order.emplace_back(game.weight(u, v), v);
  std::sort(order.begin(), order.end());
  for (const auto& [w, v] : order) {
    search.candidates.push_back(v);
    search.weights.push_back(w);
  }

  search.evaluate();
  if (!search.done) search.descend(0);

  if (!(search.result.cost < kInf) && !(options.incumbent < kInf)) {
    search.result.cost =
        eccentricity_of(game, environment, u, search.result.strategy);
  }
  return search.result;
}

bool max_has_improving_deviation(const Game& game, const StrategyProfile& s,
                                 int u) {
  BestResponseOptions options;
  options.incumbent = max_agent_cost(game, s, u);
  options.first_improvement = true;
  return max_exact_best_response(game, s, u, options).improved;
}

bool max_is_nash_equilibrium(const Game& game, const StrategyProfile& s) {
  for (int u = 0; u < game.node_count(); ++u)
    if (max_has_improving_deviation(game, s, u)) return false;
  return true;
}

}  // namespace gncg
