#include "variants/max_game.hpp"

#include <algorithm>

#include "core/br_search.hpp"
#include "core/deviation_engine.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph_algos.hpp"

namespace gncg {

namespace {

/// Eccentricity of `u` in (environment + candidate edges) -- the
/// egalitarian distance term of the naive reference path.
double eccentricity_of(const Game& game, const AgentEnvironment& env, int u,
                       const NodeSet& targets) {
  std::vector<double> dist;
  dijkstra_over(
      game.node_count(), u,
      [&](int x, auto&& visit) {
        env.for_neighbors(x, visit);
        if (x == u) {
          targets.for_each([&](int v) { visit(v, game.weight(u, v)); });
        } else if (targets.contains(x)) {
          visit(u, game.weight(u, x));
        }
      },
      dist);
  double worst = 0.0;
  for (double d : dist) worst = std::max(worst, d);
  return worst;
}

/// Pruned DFS of the pre-refactor MAX search (fresh Dijkstra per subset,
/// eccentricity floor only): the differential baseline for br_search_max.
struct NaiveMaxBrSearch {
  const Game* game = nullptr;
  const AgentEnvironment* env = nullptr;
  int agent = 0;
  std::vector<int> candidates;
  std::vector<double> weights;
  double ecc_floor = 0.0;
  double incumbent = kInf;
  bool first_improvement = false;
  bool done = false;

  NodeSet current;
  double current_weight = 0.0;
  BestResponseResult result;

  double bound() const { return std::min(result.cost, incumbent); }

  void evaluate() {
    const double cost = game->alpha() * current_weight +
                        eccentricity_of(*game, *env, agent, current);
    ++result.evaluations;
    if (improves(cost, bound())) {
      result.cost = cost;
      result.strategy = current;
      result.improved = improves(cost, incumbent);
      if (first_improvement && result.improved) done = true;
    }
  }

  void descend(std::size_t start) {
    for (std::size_t i = start; i < candidates.size() && !done; ++i) {
      const double lb =
          game->alpha() * (current_weight + weights[i]) + ecc_floor;
      if (!improves(lb, bound())) break;  // weight-sorted: rest are worse
      current.insert(candidates[i]);
      current_weight += weights[i];
      evaluate();
      if (!done) descend(i + 1);
      current.erase(candidates[i]);
      current_weight -= weights[i];
    }
  }
};

}  // namespace

double max_agent_cost(const Game& game, const StrategyProfile& s, int u) {
  const AgentEnvironment env(game, s, u);
  double edge_weight = 0.0;
  s.strategy(u).for_each([&](int v) { edge_weight += game.weight(u, v); });
  return game.alpha() * edge_weight +
         eccentricity_of(game, env, u, s.strategy(u));
}

double max_agent_cost(DeviationEngine& engine, int u) {
  const std::vector<double>& dist = engine.distances(u);
  double ecc = 0.0;
  for (double d : dist) ecc = std::max(ecc, d);
  return engine.buying_cost(u) + ecc;
}

double max_social_cost(const Game& game, const StrategyProfile& s) {
  double total = 0.0;
  for (int u = 0; u < game.node_count(); ++u)
    total += max_agent_cost(game, s, u);
  return total;
}

double max_network_social_cost(const Game& game,
                               const std::vector<Edge>& network) {
  WeightedGraph g(game.node_count());
  double edge_weight = 0.0;
  for (const auto& e : network) {
    GNCG_CHECK(game.can_buy(e.u, e.v), "network contains a forbidden edge");
    g.add_edge(e.u, e.v, game.weight(e.u, e.v));
    edge_weight += game.weight(e.u, e.v);
  }
  double ecc_total = 0.0;
  for (double e : eccentricities(g)) ecc_total += e;
  return game.alpha() * edge_weight + ecc_total;
}

BestResponseResult max_exact_best_response(const Game& game,
                                           const StrategyProfile& s, int u,
                                           const BestResponseOptions& options) {
  const AgentEnvironment env(game, s, u);
  return br_search_max(env, options);
}

BestResponseResult max_exact_best_response(const DeviationEngine& engine,
                                           int u,
                                           const BestResponseOptions& options) {
  const AgentEnvironment env(engine, u);
  return br_search_max(env, options);
}

BestResponseResult naive_max_exact_best_response(
    const Game& game, const StrategyProfile& s, int u,
    const BestResponseOptions& options) {
  const AgentEnvironment env(game, s, u);

  NaiveMaxBrSearch search;
  search.game = &game;
  search.env = &env;
  search.agent = u;
  search.incumbent = options.incumbent;
  search.first_improvement = options.first_improvement;
  search.current = NodeSet(game.node_count());
  search.result.strategy = NodeSet(game.node_count());
  // Any built network's eccentricity of u is at least the host-closure one.
  for (int v = 0; v < game.node_count(); ++v)
    search.ecc_floor = std::max(search.ecc_floor, game.host_distance(u, v));

  std::vector<std::pair<double, int>> order;
  for (int v = 0; v < game.node_count(); ++v)
    if (game.can_buy(u, v)) order.emplace_back(game.weight(u, v), v);
  std::sort(order.begin(), order.end());
  for (const auto& [w, v] : order) {
    search.candidates.push_back(v);
    search.weights.push_back(w);
  }

  search.evaluate();
  if (!search.done) search.descend(0);

  if (!(search.result.cost < kInf) && !(options.incumbent < kInf)) {
    search.result.cost = eccentricity_of(game, env, u, search.result.strategy);
  }
  return search.result;
}

bool max_has_improving_deviation(const Game& game, const StrategyProfile& s,
                                 int u) {
  DeviationEngine engine(game, s);
  return max_has_improving_deviation(engine, u);
}

bool max_has_improving_deviation(DeviationEngine& engine, int u) {
  BestResponseOptions options;
  options.incumbent = max_agent_cost(engine, u);
  options.first_improvement = true;
  return max_exact_best_response(engine, u, options).improved;
}

bool max_is_nash_equilibrium(const Game& game, const StrategyProfile& s) {
  DeviationEngine engine(game, s);
  for (int u = 0; u < game.node_count(); ++u)
    if (max_has_improving_deviation(engine, u)) return false;
  return true;
}

}  // namespace gncg
