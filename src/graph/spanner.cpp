#include "graph/spanner.hpp"

#include <algorithm>
#include <cmath>

#include "graph/apsp.hpp"
#include "graph/dijkstra.hpp"
#include "support/assert.hpp"

namespace gncg {

double max_stretch_over(int n,
                        const std::function<double(int, int)>& host_dist_fn,
                        const DistanceMatrix& sub_dist) {
  GNCG_CHECK(sub_dist.size() == n, "stretch: dimension mismatch");
  double worst = 1.0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double dh = host_dist_fn(u, v);
      const double ds = sub_dist.at(u, v);
      if (dh == 0.0) {
        if (ds > 0.0) return kInf;
        continue;
      }
      if (!(dh < kInf)) continue;  // host itself does not connect the pair
      if (!(ds < kInf)) return kInf;
      worst = std::max(worst, ds / dh);
    }
  }
  return worst;
}

double max_stretch(const DistanceMatrix& host_dist,
                   const DistanceMatrix& sub_dist) {
  GNCG_CHECK(host_dist.size() == sub_dist.size(),
             "stretch: dimension mismatch");
  return max_stretch_over(
      host_dist.size(),
      [&host_dist](int u, int v) { return host_dist.at(u, v); }, sub_dist);
}

bool is_k_spanner(const DistanceMatrix& host_dist,
                  const DistanceMatrix& sub_dist, double k, double eps) {
  const double stretch = max_stretch(host_dist, sub_dist);
  return stretch <= k * (1.0 + eps) + eps;
}

std::vector<Edge> greedy_spanner(const DistanceMatrix& weights, double t) {
  GNCG_CHECK(t >= 1.0, "spanner stretch factor must be >= 1");
  const int n = weights.size();
  std::vector<Edge> candidates;
  candidates.reserve(static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(n) / 2);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (weights.at(u, v) < kInf)
        candidates.push_back({u, v, weights.at(u, v)});
  std::sort(candidates.begin(), candidates.end(),
            [](const Edge& a, const Edge& b) { return a.weight < b.weight; });

  WeightedGraph spanner(n);
  std::vector<double> dist;
  for (const auto& e : candidates) {
    // Distance query in the current partial spanner.
    dijkstra_over(
        n, e.u,
        [&](int u, auto&& visit) {
          for (const auto& nb : spanner.neighbors(u)) visit(nb.to, nb.weight);
        },
        dist);
    if (dist[static_cast<std::size_t>(e.v)] > t * e.weight)
      spanner.add_edge(e.u, e.v, e.weight);
  }
  return spanner.edges();
}

namespace {

/// State for the exact 1-2 spanner search.
struct OneTwoSearch {
  int n = 0;
  const DistanceMatrix* weights = nullptr;
  WeightedGraph current{0};          // all 1-edges + currently selected 2-edges
  std::vector<Edge> two_edges;       // all 2-edges of the host
  std::vector<char> selected;        // parallel to two_edges
  int selected_count = 0;
  int best_count = 0;                // incumbent (upper bound)
  std::vector<Edge> best_selection;  // selected 2-edges of the incumbent

  /// Finds a pair (u, v) with w(u,v) == 2 whose current distance exceeds 3;
  /// returns false when the current graph is already a 3/2-spanner.
  bool find_violated_pair(int& out_u, int& out_v) const {
    std::vector<double> dist;
    for (int u = 0; u < n; ++u) {
      dijkstra_over(
          n, u,
          [&](int x, auto&& visit) {
            for (const auto& nb : current.neighbors(x)) visit(nb.to, nb.weight);
          },
          dist);
      for (int v = u + 1; v < n; ++v) {
        if (weights->at(u, v) == 2.0 &&
            dist[static_cast<std::size_t>(v)] > 3.0 + 1e-9) {
          out_u = u;
          out_v = v;
          return true;
        }
      }
    }
    return false;
  }

  /// Candidate 2-edges that can fix the violated pair (u, v): because every
  /// path of length <= 3 uses at most one 2-edge, a fixing edge must be
  /// (u, x) with d1(x, v) <= 1 or (y, v) with d1(u, y) <= 1, where d1 uses
  /// only 1-edges (all present in `current`).
  std::vector<std::size_t> fix_candidates(int u, int v) const {
    std::vector<std::size_t> fixes;
    for (std::size_t i = 0; i < two_edges.size(); ++i) {
      if (selected[i]) continue;
      const auto& e = two_edges[i];
      const bool fixes_pair =
          (e.u == u && one_dist_at_most_one(e.v, v)) ||
          (e.v == u && one_dist_at_most_one(e.u, v)) ||
          (e.u == v && one_dist_at_most_one(e.v, u)) ||
          (e.v == v && one_dist_at_most_one(e.u, u));
      if (fixes_pair) fixes.push_back(i);
    }
    return fixes;
  }

  bool one_dist_at_most_one(int a, int b) const {
    return a == b || weights->at(a, b) == 1.0;
  }

  void search() {
    if (selected_count >= best_count) return;  // bound
    int u = -1;
    int v = -1;
    if (!find_violated_pair(u, v)) {
      best_count = selected_count;
      best_selection.clear();
      for (std::size_t i = 0; i < two_edges.size(); ++i)
        if (selected[i]) best_selection.push_back(two_edges[i]);
      return;
    }
    for (std::size_t i : fix_candidates(u, v)) {
      selected[i] = 1;
      ++selected_count;
      current.add_edge(two_edges[i].u, two_edges[i].v, 2.0);
      search();
      current.remove_edge(two_edges[i].u, two_edges[i].v);
      --selected_count;
      selected[i] = 0;
    }
  }
};

}  // namespace

std::vector<Edge> min_weight_three_halves_spanner_onetwo(
    const DistanceMatrix& weights) {
  const int n = weights.size();
  OneTwoSearch state;
  state.n = n;
  state.weights = &weights;
  state.current = WeightedGraph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double w = weights.at(u, v);
      GNCG_CHECK(w == 1.0 || w == 2.0,
                 "min-weight 3/2 spanner requires a 1-2 host, got weight "
                     << w);
      if (w == 1.0) state.current.add_edge(u, v, 1.0);
      else state.two_edges.push_back({u, v, 2.0});
    }
  }
  state.selected.assign(state.two_edges.size(), 0);
  state.best_count = static_cast<int>(state.two_edges.size()) + 1;
  state.search();
  GNCG_CHECK(state.best_count <= static_cast<int>(state.two_edges.size()),
             "1-2 spanner search failed to find a feasible solution");

  std::vector<Edge> result = state.best_selection;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (weights.at(u, v) == 1.0) result.push_back({u, v, 1.0});
  std::sort(result.begin(), result.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return result;
}

}  // namespace gncg
