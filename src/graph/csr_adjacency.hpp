// Flat CSR adjacency with per-node slack: the cache-friendly storage behind
// DeviationEngine's materialized built network.
//
// The per-node `std::vector<Neighbor>` layout the engine used to carry pays
// one pointer dereference per visited node and scatters neighbor lists across
// the allocator's whim -- measurably hostile to the SSSP inner loops that
// dominate every dynamics / best-response workload.  CsrAdjacency packs all
// adjacency entries into one contiguous slab:
//
//   * node u's live entries occupy entries_[start_[u], start_[u] + deg_[u]),
//     inside a reserved slice of cap_[u] slots, so enumeration is a single
//     contiguous span (SIMD/prefetcher friendly, one indirection total);
//   * incremental mutation is O(degree): `add_half` appends into the node's
//     slack, `remove_half` swap-erases within the slice (the same
//     enumeration-order semantics the old per-node vectors had);
//   * when a node's slack is exhausted its slice relocates to the end of the
//     slab with doubled capacity (the old slice becomes a dead region), and
//     once dead regions exceed a third of the slab an epoch compaction rewrites
//     every slice tight-plus-slack in node order -- amortized O(1) per
//     mutation, like vector push_back;
//   * a two-pass rebuild API (`begin_rebuild` / `count_half` /
//     `finish_counts` / `fill_half`) refills the structure from a profile
//     without intermediate per-node vectors, reusing the slab's capacity --
//     what DeviationEngine::set_profile rides on in the restart hot loop.
//
// Mutations may move entries (relocation, compaction, slab growth), so any
// borrowed span or pointer is invalidated by any mutation -- exactly the
// invalidation contract engine.adjacency() always had.  Enumeration order is
// deterministic: a given operation sequence yields the same per-node order
// regardless of relocations/compactions (live entries are moved in order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace gncg {

class CsrAdjacency {
 public:
  CsrAdjacency() = default;

  int node_count() const { return static_cast<int>(deg_.size()); }

  /// Live entries of node u as one contiguous span.  Invalidated by any
  /// mutation (entries may relocate).
  std::span<const Neighbor> neighbors(int u) const {
    const std::size_t ui = static_cast<std::size_t>(u);
    GNCG_DASSERT(ui < deg_.size());
    return {entries_.data() + start_[ui],
            static_cast<std::size_t>(deg_[ui])};
  }

  int degree(int u) const { return deg_[static_cast<std::size_t>(u)]; }

  // --- incremental mutation (amortized O(degree)) ---

  /// Appends the half-edge u -> (v, w); relocates u's slice when its slack
  /// is exhausted.
  void add_half(int u, int v, double w);

  /// Removes the half-edge u -> v by swap-with-last inside u's slice;
  /// contract-checks that it exists.
  void remove_half(int u, int v);

  /// Undirected insert/remove: both half-edges.
  void link(int a, int b, double w) {
    add_half(a, b, w);
    add_half(b, a, w);
  }
  void unlink(int a, int b) {
    remove_half(a, b);
    remove_half(b, a);
  }

  // --- two-pass rebuild (reuses slab capacity; for set_profile) ---
  //
  //   begin_rebuild(n);
  //   for each half-edge: count_half(u);
  //   finish_counts();
  //   for each half-edge (same order): fill_half(u, v, w);

  void begin_rebuild(int n);
  void count_half(int u) { ++deg_[static_cast<std::size_t>(u)]; }
  void finish_counts();
  void fill_half(int u, int v, double w) {
    const std::size_t ui = static_cast<std::size_t>(u);
    GNCG_DASSERT(deg_[ui] < cap_[ui]);
    entries_[start_[ui] + static_cast<std::size_t>(deg_[ui]++)] = {v, w};
  }

  // --- observability (tests, benches) ---

  std::size_t slab_entries() const { return entries_.size(); }
  std::size_t dead_entries() const { return dead_; }
  std::uint64_t relocations() const { return relocations_; }
  std::uint64_t compactions() const { return compactions_; }
  std::size_t footprint_bytes() const;

 private:
  /// Fresh slack for a node holding `count` live entries: enough that a few
  /// add/remove cycles never relocate, growing with the degree.
  static int slack_for(int count) {
    return count < 4 ? 2 : count / 2;
  }

  void relocate_grow(std::size_t ui);
  void compact();

  std::vector<std::size_t> start_;  ///< slice offset per node
  std::vector<int> deg_;            ///< live entries per node
  std::vector<int> cap_;            ///< reserved slots per node
  std::vector<Neighbor> entries_;   ///< the slab (live + slack + dead)
  std::vector<Neighbor> scratch_;   ///< compaction double-buffer (reused)
  std::size_t dead_ = 0;            ///< slots stranded by relocations
  std::uint64_t relocations_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace gncg
