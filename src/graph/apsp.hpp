// All-pairs shortest paths.
//
// Three strategies, all exposed because they are useful at different scales:
//  * `apsp(graph)` -- n Dijkstra runs fanned out over the worker pool
//    (O(n * m log n)); the default for the sparse game networks.
//  * `floyd_warshall(matrix)` -- in-place O(n^3) closure of a dense weight
//    matrix; used for metric repair / metric closure of host weights.
//  * `closure_row(matrix, src, out)` -- one row of the closure in O(n^2)
//    (array-based Dijkstra, no heap: optimal on complete graphs).  The
//    lazy-closure host backend serves d_H(u, .) queries from this without
//    ever paying the full cubic closure.
#pragma once

#include <vector>

#include "graph/distance_matrix.hpp"
#include "graph/weighted_graph.hpp"

namespace gncg {

/// All-pairs shortest path distances of `g` (parallel Dijkstra per source).
DistanceMatrix apsp(const WeightedGraph& g);

/// In-place Floyd-Warshall closure of a dense symmetric weight matrix.
/// Entries may be kInf (absent edges).  After the call, m(u, v) is the
/// shortest-path distance in the graph whose edge weights were m.
void floyd_warshall(DistanceMatrix& m);

/// Fills `out` with row `src` of the shortest-path closure of `weights`
/// without touching any other row: dense O(n^2) Dijkstra over the complete
/// graph described by the matrix (kInf entries are forbidden edges).
void closure_row(const DistanceMatrix& weights, int src,
                 std::vector<double>& out);

}  // namespace gncg
