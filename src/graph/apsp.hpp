// All-pairs shortest paths.
//
// Two strategies, both exposed because they are useful at different scales:
//  * `apsp(graph)` -- n Dijkstra runs fanned out over the worker pool
//    (O(n * m log n)); the default for the sparse game networks.
//  * `floyd_warshall(matrix)` -- in-place O(n^3) closure of a dense weight
//    matrix; used for metric repair / metric closure of host weights.
#pragma once

#include "graph/distance_matrix.hpp"
#include "graph/weighted_graph.hpp"

namespace gncg {

/// All-pairs shortest path distances of `g` (parallel Dijkstra per source).
DistanceMatrix apsp(const WeightedGraph& g);

/// In-place Floyd-Warshall closure of a dense symmetric weight matrix.
/// Entries may be kInf (absent edges).  After the call, m(u, v) is the
/// shortest-path distance in the graph whose edge weights were m.
void floyd_warshall(DistanceMatrix& m);

}  // namespace gncg
