// Structural graph algorithms used across the library:
// connectivity, tree tests, eccentricity/diameter, bridges (cut edges) and
// weighted betweenness centrality.
//
// These back several paper facts: Theorem 12 ("every NE in the T-GNCG is a
// tree") is verified with `is_tree`; Lemma 7's cut-edge argument uses
// `bridges`; Lemma 8's path-cost derivation "counts for each edge how many
// shortest paths it participates in, i.e., its betweenness centrality",
// which `edge_betweenness` computes directly.
#pragma once

#include <vector>

#include "graph/distance_matrix.hpp"
#include "graph/weighted_graph.hpp"

namespace gncg {

/// True when every node is reachable from every other.
bool is_connected(const WeightedGraph& g);

/// Number of connected components.
int component_count(const WeightedGraph& g);

/// True when g is connected and has exactly n - 1 edges (n >= 1).
bool is_tree(const WeightedGraph& g);

/// Weighted eccentricity of every node (kInf when disconnected).
std::vector<double> eccentricities(const WeightedGraph& g);

/// Weighted diameter: max eccentricity (kInf when disconnected).
double diameter(const WeightedGraph& g);

/// Hop diameter: maximum number of edges on any shortest path when all edge
/// weights are treated as 1.  Used for the 1-2-GNCG arguments where the paper
/// reasons about "diameter 2 / diameter 3" networks of 1- and 2-edges.
int hop_diameter(const WeightedGraph& g);

/// Bridges (cut edges) of g via Tarjan's low-link DFS, as normalized edges.
std::vector<Edge> bridges(const WeightedGraph& g);

/// Weighted edge betweenness: for every edge, the number of ordered-pair
/// shortest paths that use it (Brandes' accumulation adapted to edges, with
/// shortest-path DAG counting).  Ties split fractionally.
/// Returns entries aligned with g.edges().
std::vector<double> edge_betweenness(const WeightedGraph& g);

}  // namespace gncg
