#include "graph/apsp.hpp"

#include "graph/dijkstra.hpp"
#include "support/parallel.hpp"

namespace gncg {

DistanceMatrix apsp(const WeightedGraph& g) {
  const int n = g.node_count();
  DistanceMatrix result(n);
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t src) {
    std::vector<double> dist;
    dijkstra_over(
        n, static_cast<int>(src),
        [&](int u, auto&& visit) {
          for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
        },
        dist);
    for (int v = 0; v < n; ++v) result.at(static_cast<int>(src), v) = dist[static_cast<std::size_t>(v)];
  });
  return result;
}

void floyd_warshall(DistanceMatrix& m) {
  const int n = m.size();
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      const double dik = m.at(i, k);
      if (!(dik < kInf)) continue;
      for (int j = 0; j < n; ++j) {
        const double through = dik + m.at(k, j);
        if (through < m.at(i, j)) m.at(i, j) = through;
      }
    }
  }
}

}  // namespace gncg
