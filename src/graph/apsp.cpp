#include "graph/apsp.hpp"

#include "graph/dijkstra.hpp"
#include "support/parallel.hpp"

namespace gncg {

DistanceMatrix apsp(const WeightedGraph& g) {
  const int n = g.node_count();
  DistanceMatrix result(n);
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t src) {
    std::vector<double> dist;
    dijkstra_over(
        n, static_cast<int>(src),
        [&](int u, auto&& visit) {
          for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
        },
        dist);
    for (int v = 0; v < n; ++v) result.at(static_cast<int>(src), v) = dist[static_cast<std::size_t>(v)];
  });
  return result;
}

void floyd_warshall(DistanceMatrix& m) {
  const int n = m.size();
  for (int k = 0; k < n; ++k) {
    const double* row_k = m.row(k);
    for (int i = 0; i < n; ++i) {
      const double dik = m.at(i, k);
      if (!(dik < kInf)) continue;
      double* row_i = m.row(i);
      for (int j = 0; j < n; ++j) {
        const double through = dik + row_k[j];
        if (through < row_i[j]) row_i[j] = through;
      }
    }
  }
}

void closure_row(const DistanceMatrix& weights, int src,
                 std::vector<double>& out) {
  const int n = weights.size();
  GNCG_CHECK(src >= 0 && src < n, "closure_row source out of range");
  out.assign(static_cast<std::size_t>(n), kInf);
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  out[static_cast<std::size_t>(src)] = 0.0;
  for (int round = 0; round < n; ++round) {
    int u = -1;
    double best = kInf;
    for (int v = 0; v < n; ++v) {
      if (!done[static_cast<std::size_t>(v)] &&
          out[static_cast<std::size_t>(v)] < best) {
        best = out[static_cast<std::size_t>(v)];
        u = v;
      }
    }
    if (u < 0) break;  // remaining nodes unreachable
    done[static_cast<std::size_t>(u)] = 1;
    const double* row_u = weights.row(u);
    for (int v = 0; v < n; ++v) {
      if (done[static_cast<std::size_t>(v)]) continue;
      const double w = row_u[v];
      if (!(w < kInf)) continue;
      const double through = best + w;
      if (through < out[static_cast<std::size_t>(v)])
        out[static_cast<std::size_t>(v)] = through;
    }
  }
}

}  // namespace gncg
