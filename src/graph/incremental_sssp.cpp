#include "graph/incremental_sssp.hpp"

namespace gncg {

void IncrementalSssp::reset(const std::vector<double>& dist) {
  // Same shrink policy as DijkstraBuffers: release capacities left over
  // from a much larger previous search (log/heap needs are estimated by the
  // previous search's peaks, so stable workloads never churn).
  detail::release_excess(dist_, dist.size());
  detail::release_excess(log_, log_peak_);
  detail::release_excess(heap_, heap_peak_);
  log_peak_ = 0;
  heap_peak_ = 0;
  dist_ = dist;
  log_.clear();
  heap_.clear();
}

void IncrementalSssp::rollback(Checkpoint mark) {
  GNCG_DASSERT(mark <= log_.size());
  GNCG_COUNT_N(kSsspRollbackEntries, log_.size() - mark);
  while (log_.size() > mark) {
    const auto& [node, old_dist] = log_.back();
    dist_[static_cast<std::size_t>(node)] = old_dist;
    log_.pop_back();
  }
}

}  // namespace gncg
