#include "graph/incremental_sssp.hpp"

namespace gncg {

void IncrementalSssp::reset(const std::vector<double>& dist) {
  // Same shrink policy as DijkstraBuffers: release capacities left over
  // from a much larger previous search.  Log/heap needs are *decaying peak
  // estimates* -- the estimate is the previous search's peak, floored at
  // half the prior estimate -- so a workload alternating small probes and
  // large floods never shrink-then-regrows, while a genuine downshift
  // still releases within a logarithmic number of resets.
  log_need_ = std::max(log_peak_, log_need_ / 2);
  heap_need_ = std::max(heap_peak_, heap_need_ / 2);
  detail::release_excess(dist_, dist.size());
  detail::release_excess(log_, log_need_);
  detail::release_excess(heap_, heap_need_);
  log_peak_ = 0;
  heap_peak_ = 0;
  dist_ = dist;
  log_.clear();
  heap_.clear();
}

void IncrementalSssp::rollback(Checkpoint mark) {
  GNCG_DASSERT(mark <= log_.size());
  GNCG_COUNT_N(kSsspRollbackEntries, log_.size() - mark);
  while (log_.size() > mark) {
    const auto& [node, old_dist] = log_.back();
    dist_[static_cast<std::size_t>(node)] = old_dist;
    log_.pop_back();
  }
}

}  // namespace gncg
