#include "graph/incremental_sssp.hpp"

namespace gncg {

void IncrementalSssp::reset(const std::vector<double>& dist) {
  dist_ = dist;
  log_.clear();
  heap_.clear();
}

void IncrementalSssp::rollback(Checkpoint mark) {
  GNCG_DASSERT(mark <= log_.size());
  while (log_.size() > mark) {
    const auto& [node, old_dist] = log_.back();
    dist_[static_cast<std::size_t>(node)] = old_dist;
    log_.pop_back();
  }
}

}  // namespace gncg
