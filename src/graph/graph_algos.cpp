#include "graph/graph_algos.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>
#include <stack>

#include "graph/dijkstra.hpp"

namespace gncg {

namespace {

/// Iterative DFS marking reachable nodes from node 0.
int count_reachable_from(const WeightedGraph& g, int start,
                         std::vector<char>& visited) {
  std::stack<int> stack;
  stack.push(start);
  visited[static_cast<std::size_t>(start)] = 1;
  int count = 0;
  while (!stack.empty()) {
    const int u = stack.top();
    stack.pop();
    ++count;
    for (const auto& nb : g.neighbors(u)) {
      if (!visited[static_cast<std::size_t>(nb.to)]) {
        visited[static_cast<std::size_t>(nb.to)] = 1;
        stack.push(nb.to);
      }
    }
  }
  return count;
}

}  // namespace

bool is_connected(const WeightedGraph& g) {
  const int n = g.node_count();
  if (n <= 1) return true;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  return count_reachable_from(g, 0, visited) == n;
}

int component_count(const WeightedGraph& g) {
  const int n = g.node_count();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  int components = 0;
  for (int v = 0; v < n; ++v) {
    if (!visited[static_cast<std::size_t>(v)]) {
      ++components;
      count_reachable_from(g, v, visited);
    }
  }
  return components;
}

bool is_tree(const WeightedGraph& g) {
  const int n = g.node_count();
  if (n == 0) return false;
  return g.edge_count() == n - 1 && is_connected(g);
}

std::vector<double> eccentricities(const WeightedGraph& g) {
  const int n = g.node_count();
  std::vector<double> ecc(static_cast<std::size_t>(n), 0.0);
  for (int u = 0; u < n; ++u) {
    const auto result = sssp(g, u);
    double worst = 0.0;
    for (double d : result.dist) worst = std::max(worst, d);
    ecc[static_cast<std::size_t>(u)] = worst;
  }
  return ecc;
}

double diameter(const WeightedGraph& g) {
  double worst = 0.0;
  for (double e : eccentricities(g)) worst = std::max(worst, e);
  return worst;
}

int hop_diameter(const WeightedGraph& g) {
  const int n = g.node_count();
  int worst = 0;
  std::vector<int> depth(static_cast<std::size_t>(n));
  for (int src = 0; src < n; ++src) {
    std::fill(depth.begin(), depth.end(), -1);
    std::queue<int> queue;
    queue.push(src);
    depth[static_cast<std::size_t>(src)] = 0;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      worst = std::max(worst, depth[static_cast<std::size_t>(u)]);
      for (const auto& nb : g.neighbors(u)) {
        if (depth[static_cast<std::size_t>(nb.to)] < 0) {
          depth[static_cast<std::size_t>(nb.to)] =
              depth[static_cast<std::size_t>(u)] + 1;
          queue.push(nb.to);
        }
      }
    }
    for (int v = 0; v < n; ++v)
      if (depth[static_cast<std::size_t>(v)] < 0) return -1;  // disconnected
  }
  return worst;
}

std::vector<Edge> bridges(const WeightedGraph& g) {
  const int n = g.node_count();
  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<Edge> result;
  int timer = 0;

  // Iterative Tarjan bridge-finding: each frame tracks the parent node so the
  // tree edge back to the parent is skipped exactly once (parallel-edge-free
  // graphs make the single-skip variant unnecessary, but we keep it robust).
  struct Frame {
    int node;
    int parent;
    std::size_t next_index;
  };
  for (int root = 0; root < n; ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    std::stack<Frame> stack;
    stack.push({root, -1, 0});
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] =
        timer++;
    while (!stack.empty()) {
      Frame& frame = stack.top();
      const auto nbs = g.neighbors(frame.node);
      if (frame.next_index < nbs.size()) {
        const int to = nbs[frame.next_index].to;
        ++frame.next_index;
        if (to == frame.parent) continue;
        if (disc[static_cast<std::size_t>(to)] == -1) {
          disc[static_cast<std::size_t>(to)] =
              low[static_cast<std::size_t>(to)] = timer++;
          stack.push({to, frame.node, 0});
        } else {
          low[static_cast<std::size_t>(frame.node)] =
              std::min(low[static_cast<std::size_t>(frame.node)],
                       disc[static_cast<std::size_t>(to)]);
        }
      } else {
        const int child = frame.node;
        const int parent = frame.parent;
        stack.pop();
        if (parent >= 0) {
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(child)]);
          if (low[static_cast<std::size_t>(child)] >
              disc[static_cast<std::size_t>(parent)]) {
            result.push_back({std::min(parent, child), std::max(parent, child),
                              g.edge_weight(parent, child)});
          }
        }
      }
    }
  }
  std::sort(result.begin(), result.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return result;
}

std::vector<double> edge_betweenness(const WeightedGraph& g) {
  const int n = g.node_count();
  const auto edge_list = g.edges();
  std::map<std::pair<int, int>, std::size_t> edge_index;
  for (std::size_t i = 0; i < edge_list.size(); ++i)
    edge_index[{edge_list[i].u, edge_list[i].v}] = i;
  std::vector<double> centrality(edge_list.size(), 0.0);

  constexpr double kTieEps = 1e-12;
  for (int src = 0; src < n; ++src) {
    // Dijkstra with path counting.
    std::vector<double> dist(static_cast<std::size_t>(n), kInf);
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<std::vector<int>> preds(static_cast<std::size_t>(n));
    std::vector<int> order;  // nodes in non-decreasing settled distance
    detail::MinHeap heap;
    dist[static_cast<std::size_t>(src)] = 0.0;
    sigma[static_cast<std::size_t>(src)] = 1.0;
    heap.emplace(0.0, src);
    std::vector<char> settled(static_cast<std::size_t>(n), 0);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (settled[static_cast<std::size_t>(u)]) continue;
      settled[static_cast<std::size_t>(u)] = 1;
      order.push_back(u);
      for (const auto& nb : g.neighbors(u)) {
        const double nd = d + nb.weight;
        auto& dv = dist[static_cast<std::size_t>(nb.to)];
        if (nd < dv - kTieEps) {
          dv = nd;
          sigma[static_cast<std::size_t>(nb.to)] =
              sigma[static_cast<std::size_t>(u)];
          preds[static_cast<std::size_t>(nb.to)].assign(1, u);
          heap.emplace(nd, nb.to);
        } else if (nd <= dv + kTieEps && !settled[static_cast<std::size_t>(nb.to)]) {
          sigma[static_cast<std::size_t>(nb.to)] +=
              sigma[static_cast<std::size_t>(u)];
          preds[static_cast<std::size_t>(nb.to)].push_back(u);
        }
      }
    }
    // Brandes back-propagation of pair dependencies onto edges.
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int w = *it;
      for (int v : preds[static_cast<std::size_t>(w)]) {
        const double share =
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
        const auto key = std::make_pair(std::min(v, w), std::max(v, w));
        centrality[edge_index.at(key)] += share;
        delta[static_cast<std::size_t>(v)] += share;
      }
    }
  }
  return centrality;
}

}  // namespace gncg
