// Dijkstra single-source shortest paths.
//
// Two entry points:
//  * `sssp(graph, source)` for materialized WeightedGraph instances, and
//  * the templated `dijkstra_over(n, source, neighbor_fn, out)` that runs over
//    an *implicit* graph described by a callback.  The game engine uses the
//    implicit form heavily: evaluating a candidate strategy S_u means running
//    Dijkstra over "everyone else's edges plus u's candidate edges" without
//    materializing that graph (the exact best-response search does this tens
//    of thousands of times per agent).
//
// Weights are non-negative doubles (zero allowed); unreachable nodes get kInf.
#pragma once

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace gncg {

/// Result of a single-source run: distances (kInf if unreachable) and the
/// predecessor of each node on some shortest path (-1 for source/unreached).
struct SsspResult {
  std::vector<double> dist;
  std::vector<int> parent;
};

namespace detail {

/// Min-heap entry: (distance, node).
using HeapEntry = std::pair<double, int>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace detail

/// Dijkstra over an implicit graph.  `neighbor_fn(u, visit)` must invoke
/// `visit(v, w)` for every edge (u, v) of weight w incident to u.  Fills
/// `dist` (resized to n, kInf-initialized).  If `parent` is non-null it is
/// filled with shortest-path-tree predecessors.
template <class NeighborFn>
void dijkstra_over(int n, int source, NeighborFn&& neighbor_fn,
                   std::vector<double>& dist,
                   std::vector<int>* parent = nullptr) {
  GNCG_CHECK(source >= 0 && source < n, "source out of range");
  dist.assign(static_cast<std::size_t>(n), kInf);
  if (parent != nullptr) parent->assign(static_cast<std::size_t>(n), -1);
  detail::MinHeap heap;
  dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    neighbor_fn(u, [&](int v, double w) {
      GNCG_DASSERT(w >= 0.0);
      const double candidate = d + w;
      if (candidate < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = candidate;
        if (parent != nullptr) (*parent)[static_cast<std::size_t>(v)] = u;
        heap.emplace(candidate, v);
      }
    });
  }
}

/// Reusable Dijkstra workspace: the distance vector and the heap's backing
/// store survive across runs, so hot paths (single-move scans, best-response
/// candidate evaluation, the deviation engine's cache refills) do not pay a
/// heap/vector allocation per call.  Not thread-safe; use the per-thread
/// instance from tls_dijkstra_buffers() inside parallel regions.
///
/// The heap is a binary min-heap over (distance, node) pairs driven by
/// std::push_heap/std::pop_heap with the same comparator std::priority_queue
/// uses, so pop order (and therefore floating-point relaxation order) is
/// identical to dijkstra_over's.
class DijkstraBuffers {
 public:
  /// Runs Dijkstra from `source` over the implicit graph `neighbor_fn`,
  /// filling `dist` (external storage, e.g. a cache vector owned by the
  /// caller).  `dist` is resized to n and kInf-initialized.
  template <class NeighborFn>
  void run_into(std::vector<double>& dist, int n, int source,
                NeighborFn&& neighbor_fn) {
    GNCG_CHECK(source >= 0 && source < n, "source out of range");
    dist.assign(static_cast<std::size_t>(n), kInf);
    heap_.clear();
    dist[static_cast<std::size_t>(source)] = 0.0;
    push(0.0, source);
    while (!heap_.empty()) {
      const auto [d, u] = pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
      neighbor_fn(u, [&](int v, double w) {
        GNCG_DASSERT(w >= 0.0);
        const double candidate = d + w;
        if (candidate < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = candidate;
          push(candidate, v);
        }
      });
    }
  }

  /// Runs Dijkstra into the internally owned distance vector and returns it.
  /// The reference stays valid until the next run on this workspace -- do
  /// not hold it across another run (in particular, not across a nested use
  /// of the same thread-local instance).
  template <class NeighborFn>
  const std::vector<double>& run(int n, int source, NeighborFn&& neighbor_fn) {
    run_into(dist_, n, source, std::forward<NeighborFn>(neighbor_fn));
    return dist_;
  }

 private:
  void push(double d, int v) {
    heap_.emplace_back(d, v);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  detail::HeapEntry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const detail::HeapEntry entry = heap_.back();
    heap_.pop_back();
    return entry;
  }

  std::vector<double> dist_;
  std::vector<detail::HeapEntry> heap_;
};

/// Per-thread Dijkstra workspace for hot paths.
inline DijkstraBuffers& tls_dijkstra_buffers() {
  static thread_local DijkstraBuffers buffers;
  return buffers;
}

/// Sum of distances from `source` over an implicit graph, computed with the
/// thread-local workspace (no per-call allocation).  kInf-propagating: any
/// unreachable node makes the sum kInf.
template <class NeighborFn>
double distance_sum_over(int n, int source, NeighborFn&& neighbor_fn) {
  const auto& dist = tls_dijkstra_buffers().run(
      n, source, std::forward<NeighborFn>(neighbor_fn));
  double total = 0.0;
  for (double d : dist) total += d;
  return total;
}

/// Single-source shortest paths on a materialized graph.
inline SsspResult sssp(const WeightedGraph& g, int source) {
  SsspResult result;
  dijkstra_over(
      g.node_count(), source,
      [&](int u, auto&& visit) {
        for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
      },
      result.dist, &result.parent);
  return result;
}

/// Sum of distances from `source` to all nodes (the paper's distance cost
/// d_G(u, V)); kInf when the graph is disconnected from `source`.
inline double distance_sum(const WeightedGraph& g, int source) {
  return distance_sum_over(g.node_count(), source, [&](int u, auto&& visit) {
    for (const auto& nb : g.neighbors(u)) visit(nb.to, nb.weight);
  });
}

}  // namespace gncg
